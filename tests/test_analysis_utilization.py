"""Unit tests for unit-utilization analysis."""

import pytest

from repro.analysis import compare_utilization, utilization_report
from repro.resources import AllFastCompletion, AllSlowCompletion
from repro.sim import simulate


@pytest.fixture()
def dist_sim(fig3_result):
    return simulate(
        fig3_result.distributed_system(),
        fig3_result.bound,
        AllSlowCompletion(),
    )


class TestUtilizationReport:
    def test_all_units_present(self, fig3_result, dist_sim):
        report = utilization_report(fig3_result.bound, dist_sim)
        assert {u.unit for u in report.units} == {
            u.name for u in fig3_result.bound.used_units()
        }

    def test_busy_at_most_window(self, fig3_result, dist_sim):
        report = utilization_report(fig3_result.bound, dist_sim)
        for u in report.units:
            assert 0 < u.busy_cycles <= u.window_cycles
            assert 0.0 < u.utilization <= 1.0
            assert u.idle_cycles == u.window_cycles - u.busy_cycles

    def test_op_counts(self, fig3_result, dist_sim):
        report = utilization_report(fig3_result.bound, dist_sim)
        for u in report.units:
            assert u.operations_executed == len(
                fig3_result.bound.ops_on_unit(u.unit)
            )

    def test_busy_cycles_sum_to_work(self, fig3_result, dist_sim):
        """All-slow: unit busy cycles equal the worst-case work bound."""
        report = utilization_report(fig3_result.bound, dist_sim)
        for u in report.units:
            work = sum(
                fig3_result.bound.duration_cycles(op, fast=False)
                for op in fig3_result.bound.ops_on_unit(u.unit)
            )
            assert u.busy_cycles == min(work, u.window_cycles)

    def test_unit_lookup(self, fig3_result, dist_sim):
        report = utilization_report(fig3_result.bound, dist_sim)
        assert report.unit("TM1").unit == "TM1"
        with pytest.raises(KeyError):
            report.unit("nope")

    def test_render(self, fig3_result, dist_sim):
        text = utilization_report(fig3_result.bound, dist_sim).render()
        assert "utilization" in text and "%" in text


class TestSchemeComparison:
    def test_dist_not_less_utilized_than_sync(self, fig3_result):
        """The paper's goal: DIST minimizes idle time — with equal work
        and shorter (or equal) latency, utilization can only rise."""
        dist = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllSlowCompletion(),
        )
        sync = simulate(
            fig3_result.cent_sync_system(),
            fig3_result.bound,
            AllSlowCompletion(),
        )
        dist_report = utilization_report(fig3_result.bound, dist, "DIST")
        sync_report = utilization_report(
            fig3_result.bound, sync, "CENT-SYNC"
        )
        assert (
            dist_report.mean_utilization()
            >= sync_report.mean_utilization() - 1e-9
        )

    def test_compare_renders_both(self, fig3_result):
        dist = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        sync = simulate(
            fig3_result.cent_sync_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        text = compare_utilization(fig3_result.bound, dist, sync)
        assert "DIST" in text and "CENT-SYNC" in text
