"""Unit tests for operation→unit binding."""

import pytest

from repro.benchmarks import paper_fig3_dfg
from repro.binding.binder import BoundDataflowGraph, bind
from repro.core.ops import ResourceClass
from repro.errors import BindingError
from repro.resources.allocation import ResourceAllocation
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.order_based import order_based_schedule


@pytest.fixture()
def bound(fig3_result):
    return fig3_result.bound


class TestBind:
    def test_every_op_bound(self, bound):
        for op in bound.dfg:
            unit = bound.unit_of(op.name)
            assert unit.resource_class is op.resource_class

    def test_ops_on_unit_matches_chains(self, bound):
        all_ops = []
        for unit in bound.allocation:
            all_ops.extend(bound.ops_on_unit(unit.name))
        assert sorted(all_ops) == sorted(bound.dfg.op_names())

    def test_chain_count_exceeding_units_rejected(self):
        dfg = paper_fig3_dfg()
        wide_alloc = ResourceAllocation.parse("mul:3T,add:2")
        order = order_based_schedule(dfg, wide_alloc)
        narrow_alloc = ResourceAllocation.parse("mul:2T,add:2")
        with pytest.raises(BindingError, match="chains of class"):
            bind(dfg, narrow_alloc, order)

    def test_class_mismatch_rejected(self, fig3_result):
        binding = dict(fig3_result.bound.binding)
        binding["o0"] = "A1"  # a multiplication on an adder
        with pytest.raises(BindingError, match="bound to"):
            BoundDataflowGraph(
                dfg=fig3_result.dfg,
                allocation=fig3_result.allocation,
                order=fig3_result.order,
                binding=binding,
            )

    def test_unbound_op_rejected(self, fig3_result):
        binding = dict(fig3_result.bound.binding)
        del binding["o0"]
        with pytest.raises(BindingError, match="unbound"):
            BoundDataflowGraph(
                dfg=fig3_result.dfg,
                allocation=fig3_result.allocation,
                order=fig3_result.order,
                binding=binding,
            )


class TestCrossUnitRelations:
    def test_same_unit_pred_excluded(self, bound):
        """A chain predecessor that is also a data predecessor is not a
        cross-unit predecessor (the controller orders it implicitly)."""
        for op in bound.dfg:
            unit = bound.binding[op.name]
            for pred in bound.cross_unit_predecessors(op.name):
                assert bound.binding[pred] != unit

    def test_successor_inverse_of_predecessor(self, bound):
        for op in bound.dfg:
            for succ in bound.cross_unit_successors(op.name):
                assert op.name in bound.cross_unit_predecessors(succ)


class TestTiming:
    def test_duration_cycles(self, bound):
        tau_op = bound.telescopic_ops()[0]
        assert bound.duration_cycles(tau_op, fast=True) == 1
        assert bound.duration_cycles(tau_op, fast=False) == 2

    def test_fixed_op_duration(self, bound):
        fixed = [
            op.name
            for op in bound.dfg
            if not bound.is_telescopic_op(op.name)
        ][0]
        assert bound.duration_cycles(fixed, fast=True) == 1
        assert bound.duration_cycles(fixed, fast=False) == 1

    def test_telescopic_ops_are_multiplications(self, bound):
        for name in bound.telescopic_ops():
            assert (
                bound.dfg.op(name).resource_class
                is ResourceClass.MULTIPLIER
            )


class TestReporting:
    def test_describe_lists_units(self, bound):
        text = bound.describe()
        for unit in bound.allocation:
            assert unit.name in text

    def test_used_units(self, bound):
        assert {u.name for u in bound.used_units()} == {
            u.name for u in bound.allocation
        }
