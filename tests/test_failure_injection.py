"""Failure-injection tests: do the safety nets actually catch bugs?

Each test deliberately breaks one layer — a completion net, the wiring,
the datapath, a CSG — and asserts the corresponding checker (simulator
deadlock detection, occupancy checking, datapath verification, FSM
validation, CSG safety verification) reports it.  A reproduction whose
checks cannot fail is not checking anything.

The controller-level breakage goes through :mod:`repro.faults` injectors
(the hand-rolled FSM mutations they replaced lived here first); the old
assertions are kept verbatim as regression tests.
"""

import pytest

from repro.errors import (
    DeadlockError,
    FSMError,
    LogicError,
    ProtocolError,
    SimulationError,
)
from repro.faults import DroppedPulseFault, SpuriousPulseFault, inject
from repro.fsm.model import FSM, make_transition
from repro.resources import AllFastCompletion, AllSlowCompletion
from repro.sim import ControllerSystem, simulate


def _mutate_fsm(fsm: FSM, transitions) -> FSM:
    return FSM(
        name=fsm.name,
        states=fsm.states,
        initial=fsm.initial,
        inputs=fsm.inputs,
        outputs=fsm.outputs,
        transitions=tuple(transitions),
        initial_starts=fsm.initial_starts,
    )


class TestControllerFaults:
    def test_dropped_completion_pulse_deadlocks(self, fig3_result):
        """Cut a CC net: the consumer never fires → deadlock.

        ``occurrence=None`` suppresses every pulse of the net — the exact
        effect of the FSM mutation (deleting the CC output) this test used
        before :mod:`repro.faults` existed.
        """
        edges = fig3_result.distributed_system().dependence_edges()
        victim = sorted({producer for (_, _, producer) in edges})[0]
        system = inject(
            fig3_result.distributed_system(),
            DroppedPulseFault(producer_op=victim, occurrence=None),
        )
        with pytest.raises(SimulationError, match="deadlock") as excinfo:
            simulate(system, fig3_result.bound, AllFastCompletion())
        assert isinstance(excinfo.value, DeadlockError)
        assert victim in str(excinfo.value)

    def test_skipped_ready_wait_breaks_dataflow(self, fig3_result):
        """Fake a token before the producer is done: the consumer starts
        without its operand and the datapath verifier flags the premature
        start as a control bug — same assertion as the old hand-rolled
        ready-state-bypass mutation."""
        edges = fig3_result.distributed_system().dependence_edges()
        victim = sorted({producer for (_, _, producer) in edges})[0]
        system = inject(
            fig3_result.distributed_system(),
            SpuriousPulseFault(producer_op=victim, cycle=0),
        )
        inputs = {n: i + 1 for i, n in enumerate(fig3_result.dfg.inputs)}
        with pytest.raises(SimulationError, match="control bug"):
            simulate(
                system,
                fig3_result.bound,
                AllSlowCompletion(),
                inputs=inputs,
            )

    def test_double_occupancy_detected(self, fig2_result):
        """A rogue controller claiming a second op on a busy unit trips
        the occupancy monitor at the start cycle, naming both ops."""
        dcu = fig2_result.distributed
        bound = fig2_result.bound
        unit_name = next(
            u.name
            for u in bound.used_units()
            if len(bound.ops_on_unit(u.name)) >= 2
        )
        second_op = bound.ops_on_unit(unit_name)[1]
        rogue = FSM(
            name="rogue",
            states=("E", "D"),
            initial="E",
            inputs=(),
            outputs=(),
            transitions=(
                make_transition("E", "D", {}, completes=(second_op,)),
                make_transition("D", "D", {}),
            ),
            initial_starts=frozenset({second_op}),
        )
        controllers = dict(dcu.controllers)
        controllers["rogue"] = rogue
        system = ControllerSystem(controllers, consumes={})
        with pytest.raises(
            SimulationError, match="occupancy violation"
        ) as excinfo:
            simulate(system, bound, AllFastCompletion())
        assert isinstance(excinfo.value, ProtocolError)
        assert unit_name in str(excinfo.value)
        assert second_op in str(excinfo.value)

    def test_phantom_completion_detected(self, fig2_result):
        """A rogue controller completing an op it never started trips the
        executing-record check (the pre-monitor 'not executing' net)."""
        dcu = fig2_result.distributed
        bound = fig2_result.bound
        unit_name = next(
            u.name
            for u in bound.used_units()
            if len(bound.ops_on_unit(u.name)) >= 2
        )
        second_op = bound.ops_on_unit(unit_name)[1]
        rogue = FSM(
            name="rogue",
            states=("E", "D"),
            initial="E",
            inputs=(),
            outputs=(),
            transitions=(
                make_transition("E", "D", {}, completes=(second_op,)),
                make_transition("D", "D", {}),
            ),
        )
        controllers = dict(dcu.controllers)
        controllers["rogue"] = rogue
        system = ControllerSystem(controllers, consumes={})
        with pytest.raises(SimulationError, match="not executing"):
            simulate(system, bound, AllFastCompletion())


class TestValidationNets:
    def test_incomplete_fsm_caught_at_validation(self, fig3_result):
        fsm = fig3_result.distributed.controller("TM1")
        truncated = _mutate_fsm(fsm, fsm.transitions[:-2])
        with pytest.raises(FSMError):
            truncated.validate()

    def test_overlapping_guards_caught(self):
        fsm = FSM(
            name="overlap",
            states=("A",),
            initial="A",
            inputs=("x",),
            outputs=(),
            transitions=(
                make_transition("A", "A", {"x": True}),
                make_transition("A", "A", {}),
            ),
        )
        with pytest.raises(FSMError, match="nondeterministic"):
            fsm.validate()

    def test_cover_verifier_catches_bad_minimizer_output(self):
        from repro.logic.quine_mccluskey import verify_cover
        from repro.logic.terms import BooleanFunction, Cube

        f = BooleanFunction(width=3, ones=frozenset({0, 7}))
        almost = (Cube.minterm(3, 0),)  # misses minterm 7
        with pytest.raises(AssertionError, match="uncovered"):
            verify_cover(f, almost)


class TestDatapathNets:
    def test_wrong_arithmetic_detected(self, fig2_result, monkeypatch):
        """Corrupt one ALU result: the per-iteration verifier fires."""
        from repro.sim.datapath import Datapath

        original = Datapath.start

        def corrupting_start(self, op_name):
            operands = original(self, op_name)
            if op_name == "o5":
                self._results[op_name][-1] ^= 1
            return operands

        monkeypatch.setattr(Datapath, "start", corrupting_start)
        inputs = {n: i + 1 for i, n in enumerate(fig2_result.dfg.inputs)}
        with pytest.raises(SimulationError, match="datapath mismatch"):
            simulate(
                fig2_result.distributed_system(),
                fig2_result.bound,
                AllFastCompletion(),
                inputs=inputs,
            )


class TestCsgNets:
    def test_optimistic_csg_rejected(self):
        """A CSG that claims everything is fast must fail verification."""
        from repro.resources import ArrayMultiplier, verify_csg_safety

        class LyingCsg:
            def is_fast(self, a, b):
                return True

        mult = ArrayMultiplier(width=6)
        tight_sd = mult.base_delay_ns + 1.0
        with pytest.raises(LogicError, match="unsafe CSG"):
            verify_csg_safety(
                LyingCsg(), mult.delay_ns, tight_sd, 6
            )
