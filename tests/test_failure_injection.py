"""Failure-injection tests: do the safety nets actually catch bugs?

Each test deliberately breaks one layer — a controller FSM, the wiring,
the datapath, a CSG — and asserts the corresponding checker (simulator
deadlock detection, occupancy checking, datapath verification, FSM
validation, CSG safety verification) reports it.  A reproduction whose
checks cannot fail is not checking anything.
"""

import pytest

from repro.errors import FSMError, LogicError, SimulationError
from repro.fsm.model import FSM, Transition, make_transition
from repro.resources import AllFastCompletion, AllSlowCompletion
from repro.sim import ControllerSystem, simulate


def _mutate_fsm(fsm: FSM, transitions) -> FSM:
    return FSM(
        name=fsm.name,
        states=fsm.states,
        initial=fsm.initial,
        inputs=fsm.inputs,
        outputs=fsm.outputs,
        transitions=tuple(transitions),
        initial_starts=fsm.initial_starts,
    )


class TestControllerMutations:
    def test_dropped_completion_pulse_deadlocks(self, fig3_result):
        """Remove a CC output: the consumer never fires → deadlock."""
        dcu = fig3_result.distributed
        victim_unit = None
        victim_signal = None
        for net in dcu.live_nets():
            victim_unit = net.producer_unit
            victim_signal = f"CC_{net.producer_op}"
            break
        fsm = dcu.controller(victim_unit)
        broken = _mutate_fsm(
            fsm,
            (
                Transition(
                    source=t.source,
                    target=t.target,
                    guard=t.guard,
                    outputs=frozenset(t.outputs - {victim_signal}),
                    starts=t.starts,
                    completes=t.completes,
                    queries=t.queries,
                )
                for t in fsm.transitions
            ),
        )
        controllers = dict(dcu.controllers)
        controllers[victim_unit] = broken
        system = ControllerSystem(
            controllers,
            consumes={
                (key, op): fig3_result.bound.cross_unit_predecessors(op)
                for key in controllers
                for op in fig3_result.bound.ops_on_unit(key)
                if fig3_result.bound.cross_unit_predecessors(op)
            },
        )
        with pytest.raises(SimulationError, match="deadlock"):
            simulate(system, fig3_result.bound, AllFastCompletion())

    def test_skipped_ready_wait_breaks_dataflow(self, fig3_result):
        """Bypass a ready state (start without tokens): the datapath
        verifier flags the premature start as a control bug."""
        dcu = fig3_result.distributed
        controllers = {}
        for unit_name, fsm in dcu.controllers.items():
            mutated = []
            for t in fsm.transitions:
                if t.source.startswith("R_") and t.source == t.target:
                    # Ready self-loop now releases immediately.
                    op = t.source[2:]
                    mutated.append(
                        Transition(
                            source=t.source,
                            target=f"S_{op}",
                            guard=t.guard,
                            outputs=t.outputs,
                            starts=frozenset({op}),
                            completes=t.completes,
                            queries=t.queries,
                        )
                    )
                else:
                    mutated.append(t)
            controllers[unit_name] = _mutate_fsm(fsm, mutated)
        from repro.sim import system_from_bound

        system = system_from_bound(fig3_result.bound, controllers)
        inputs = {n: i + 1 for i, n in enumerate(fig3_result.dfg.inputs)}
        with pytest.raises(SimulationError, match="control bug"):
            simulate(
                system,
                fig3_result.bound,
                AllSlowCompletion(),
                inputs=inputs,
            )

    def test_double_occupancy_detected(self, fig2_result):
        """A rogue controller claiming a second op on a busy unit trips
        the executing-record check."""
        dcu = fig2_result.distributed
        bound = fig2_result.bound
        unit_name = next(
            u.name
            for u in bound.used_units()
            if len(bound.ops_on_unit(u.name)) >= 2
        )
        second_op = bound.ops_on_unit(unit_name)[1]
        rogue = FSM(
            name="rogue",
            states=("E", "D"),
            initial="E",
            inputs=(),
            outputs=(),
            transitions=(
                make_transition("E", "D", {}, completes=(second_op,)),
                make_transition("D", "D", {}),
            ),
            initial_starts=frozenset({second_op}),
        )
        controllers = dict(dcu.controllers)
        controllers["rogue"] = rogue
        system = ControllerSystem(controllers, consumes={})
        with pytest.raises(SimulationError, match="not executing"):
            simulate(system, bound, AllFastCompletion())


class TestValidationNets:
    def test_incomplete_fsm_caught_at_validation(self, fig3_result):
        fsm = fig3_result.distributed.controller("TM1")
        truncated = _mutate_fsm(fsm, fsm.transitions[:-2])
        with pytest.raises(FSMError):
            truncated.validate()

    def test_overlapping_guards_caught(self):
        fsm = FSM(
            name="overlap",
            states=("A",),
            initial="A",
            inputs=("x",),
            outputs=(),
            transitions=(
                make_transition("A", "A", {"x": True}),
                make_transition("A", "A", {}),
            ),
        )
        with pytest.raises(FSMError, match="nondeterministic"):
            fsm.validate()

    def test_cover_verifier_catches_bad_minimizer_output(self):
        from repro.logic.quine_mccluskey import verify_cover
        from repro.logic.terms import BooleanFunction, Cube

        f = BooleanFunction(width=3, ones=frozenset({0, 7}))
        almost = (Cube.minterm(3, 0),)  # misses minterm 7
        with pytest.raises(AssertionError, match="uncovered"):
            verify_cover(f, almost)


class TestDatapathNets:
    def test_wrong_arithmetic_detected(self, fig2_result, monkeypatch):
        """Corrupt one ALU result: the per-iteration verifier fires."""
        from repro.sim.datapath import Datapath

        original = Datapath.start

        def corrupting_start(self, op_name):
            operands = original(self, op_name)
            if op_name == "o5":
                self._results[op_name][-1] ^= 1
            return operands

        monkeypatch.setattr(Datapath, "start", corrupting_start)
        inputs = {n: i + 1 for i, n in enumerate(fig2_result.dfg.inputs)}
        with pytest.raises(SimulationError, match="datapath mismatch"):
            simulate(
                fig2_result.distributed_system(),
                fig2_result.bound,
                AllFastCompletion(),
                inputs=inputs,
            )


class TestCsgNets:
    def test_optimistic_csg_rejected(self):
        """A CSG that claims everything is fast must fail verification."""
        from repro.resources import ArrayMultiplier, verify_csg_safety

        class LyingCsg:
            def is_fast(self, a, b):
                return True

        mult = ArrayMultiplier(width=6)
        tight_sd = mult.base_delay_ns + 1.0
        with pytest.raises(LogicError, match="unsafe CSG"):
            verify_csg_safety(
                LyingCsg(), mult.delay_ns, tight_sd, 6
            )
