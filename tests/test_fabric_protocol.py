"""Tests for the fabric wire protocol (:mod:`repro.fabric.protocol`)."""

from __future__ import annotations

import hashlib
import json
import socket
import struct

import pytest

from repro.errors import FabricProtocolError
from repro.fabric.protocol import (
    MAGIC,
    MAX_BLOB_BYTES,
    PROTOCOL_VERSION,
    recv_message,
    send_message,
)


def _frame(
    header: dict,
    blob: bytes = b"",
    *,
    magic: bytes = MAGIC,
    checksum: bool = True,
) -> bytes:
    """Hand-build one raw frame (for malformed-input tests)."""
    head = dict(header)
    if blob and checksum:
        head.setdefault(
            "blob_sha256", hashlib.sha256(blob).hexdigest()
        )
    encoded = json.dumps(head).encode("utf-8")
    return (
        magic
        + struct.pack(">II", len(encoded), len(blob))
        + encoded
        + blob
    )


def _deliver(raw: bytes) -> "tuple[dict, bytes] | None":
    a, b = socket.socketpair()
    try:
        a.sendall(raw)
        a.close()
        return recv_message(b)
    finally:
        b.close()


class TestRoundtrip:
    def test_header_only(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"type": "heartbeat", "node": 3})
            header, blob = recv_message(b)
        finally:
            a.close()
            b.close()
        assert header["type"] == "heartbeat"
        assert header["node"] == 3
        assert header["v"] == PROTOCOL_VERSION
        assert blob == b""

    def test_blob_checksummed(self):
        payload = b"\x00\x01binary payload\xff" * 100
        a, b = socket.socketpair()
        try:
            send_message(a, {"type": "result", "shard": 7}, payload)
            header, blob = recv_message(b)
        finally:
            a.close()
            b.close()
        assert blob == payload
        assert (
            header["blob_sha256"]
            == hashlib.sha256(payload).hexdigest()
        )

    def test_multiple_frames_in_sequence(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"type": "need-work", "node": 0})
            send_message(a, {"type": "bye", "node": 0}, b"tail")
            first = recv_message(b)
            second = recv_message(b)
            a.close()
            third = recv_message(b)
        finally:
            b.close()
        assert first[0]["type"] == "need-work"
        assert second[0]["type"] == "bye" and second[1] == b"tail"
        assert third is None  # clean EOF at a frame boundary

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()


class TestRejection:
    def test_foreign_magic(self):
        raw = _frame({"type": "hello", "v": PROTOCOL_VERSION},
                     magic=b"HTTP")
        with pytest.raises(FabricProtocolError, match="magic"):
            _deliver(raw)

    def test_version_mismatch(self):
        raw = _frame({"type": "hello", "v": PROTOCOL_VERSION + 1})
        with pytest.raises(FabricProtocolError, match="version"):
            _deliver(raw)

    def test_missing_type_field(self):
        raw = _frame({"v": PROTOCOL_VERSION, "shard": 1})
        with pytest.raises(FabricProtocolError, match="typed"):
            _deliver(raw)

    def test_header_not_an_object(self):
        encoded = json.dumps(["not", "a", "dict"]).encode()
        raw = MAGIC + struct.pack(">II", len(encoded), 0) + encoded
        with pytest.raises(FabricProtocolError, match="typed"):
            _deliver(raw)

    def test_unparseable_header(self):
        bad = b"{nope"
        raw = MAGIC + struct.pack(">II", len(bad), 0) + bad
        with pytest.raises(FabricProtocolError, match="unparseable"):
            _deliver(raw)

    def test_oversized_blob_rejected_before_allocation(self):
        encoded = json.dumps(
            {"type": "result", "v": PROTOCOL_VERSION}
        ).encode()
        raw = MAGIC + struct.pack(
            ">II", len(encoded), MAX_BLOB_BYTES + 1
        )
        with pytest.raises(FabricProtocolError, match="oversized"):
            _deliver(raw + encoded)

    def test_blob_checksum_mismatch(self):
        blob = b"shard result bytes"
        head = {
            "type": "result",
            "v": PROTOCOL_VERSION,
            "blob_sha256": hashlib.sha256(b"different").hexdigest(),
        }
        raw = _frame(head, blob, checksum=False)
        with pytest.raises(FabricProtocolError, match="checksum"):
            _deliver(raw)

    def test_eof_mid_frame_raises(self):
        raw = _frame({"type": "hello", "v": PROTOCOL_VERSION},
                     b"payload")
        with pytest.raises(FabricProtocolError, match="mid-frame"):
            _deliver(raw[:-3])
