"""Runtime invariant monitors: configuration, diagnostics, soundness."""

import pytest

from repro.api import synthesize
from repro.benchmarks.registry import benchmark
from repro.errors import DeadlockError, ProtocolError
from repro.faults import (
    DroppedPulseFault,
    StuckCompletionFault,
    inject,
)
from repro.resources import AllFastCompletion, AllSlowCompletion
from repro.sim import MonitorConfig, simulate


@pytest.fixture(scope="module")
def fir5_result():
    entry = benchmark("fir5")
    return synthesize(entry.dfg(), entry.allocation())


class TestDeadlockWatchdog:
    def test_quiescence_fires_long_before_max_cycles(self, fig2_result):
        """The watchdog proves the system stuck from a repeated
        configuration — it must not wait for the max_cycles fuse."""
        victim = sorted(
            {
                producer
                for (_, _, producer) in (
                    fig2_result.distributed_system().dependence_edges()
                )
            }
        )[0]
        system = inject(
            fig2_result.distributed_system(),
            DroppedPulseFault(producer_op=victim),
        )
        with pytest.raises(DeadlockError) as excinfo:
            simulate(
                system,
                fig2_result.bound,
                AllFastCompletion(),
                max_cycles=10_000,
            )
        assert "quiescent" in str(excinfo.value)
        assert excinfo.value.cycle < 100

    def test_context_is_machine_readable(self, fig2_result):
        victim = sorted(
            {
                producer
                for (_, _, producer) in (
                    fig2_result.distributed_system().dependence_edges()
                )
            }
        )[0]
        system = inject(
            fig2_result.distributed_system(),
            DroppedPulseFault(producer_op=victim),
        )
        with pytest.raises(DeadlockError) as excinfo:
            simulate(system, fig2_result.bound, AllFastCompletion())
        context = excinfo.value.context()
        assert context["pending_ops"]
        assert context["controller_states"]
        assert context["starved_edges"]
        import json

        json.dumps(context)  # must serialize

    def test_no_false_positive_on_wraparound_pipelining(self):
        """Independent 1-cycle ops under overlapped iterations complete and
        restart every cycle at a fixed configuration — progress with a
        repeating config must not trip the quiescence watchdog."""
        from repro.core.builder import DFGBuilder

        b = DFGBuilder("spin")
        x = b.input("x")
        b.mul("m1", x, x)
        b.mul("m2", x, x)
        s = b.add("s", x, x)
        b.output("y", s)
        result = synthesize(b.build(), "mul:2T,add:1")
        sim = simulate(
            result.distributed_system(),
            result.bound,
            AllFastCompletion(),
            iterations=6,
        )
        assert len(sim.iteration_finish_cycles) == 6

    def test_disabled_watchdog_falls_back_to_max_cycles(self, fig2_result):
        victim = sorted(
            {
                producer
                for (_, _, producer) in (
                    fig2_result.distributed_system().dependence_edges()
                )
            }
        )[0]
        system = inject(
            fig2_result.distributed_system(),
            DroppedPulseFault(producer_op=victim),
        )
        with pytest.raises(DeadlockError, match="exceeded 60 cycles"):
            simulate(
                system,
                fig2_result.bound,
                AllFastCompletion(),
                max_cycles=60,
                monitors=MonitorConfig(deadlock=False),
            )


class TestTimingMonitor:
    def test_premature_completion_names_op_and_unit(self, fig3_result):
        system = inject(
            fig3_result.distributed_system(),
            StuckCompletionFault(unit="TM1", value=True),
        )
        with pytest.raises(ProtocolError) as excinfo:
            simulate(system, fig3_result.bound, AllSlowCompletion())
        assert excinfo.value.kind == "timing"
        assert excinfo.value.unit == "TM1"
        assert excinfo.value.op is not None
        assert excinfo.value.cycle is not None

    def test_can_be_disabled(self, fig3_result):
        """With timing off, a lying CSG completes ops early: the run either
        finishes (wrongly fast) or trips a later net — but never the
        timing check."""
        system = inject(
            fig3_result.distributed_system(),
            StuckCompletionFault(unit="TM1", value=True),
        )
        try:
            simulate(
                system,
                fig3_result.bound,
                AllSlowCompletion(),
                monitors=MonitorConfig(timing=False),
            )
        except ProtocolError as exc:
            assert exc.kind != "timing"


class TestHandshakeMonitor:
    def test_overruns_are_legal_by_default(self, fir5_result):
        """Overlapped iterations legally re-pulse latched edges; the
        default configuration only counts them."""
        result = simulate(
            fir5_result.distributed_system(),
            fir5_result.bound,
            AllFastCompletion(),
            iterations=8,
        )
        assert result.token_overruns > 0

    def test_strict_mode_promotes_overruns(self, fir5_result):
        with pytest.raises(ProtocolError) as excinfo:
            simulate(
                fir5_result.distributed_system(),
                fir5_result.bound,
                AllFastCompletion(),
                iterations=8,
                monitors=MonitorConfig(handshake=True),
            )
        assert excinfo.value.kind == "overrun"
        assert excinfo.value.edges  # names the overrun latches

    def test_single_iteration_never_overruns(self, fig3_result):
        result = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
            monitors=MonitorConfig(handshake=True),
        )
        assert result.token_overruns == 0


class TestMonitorConfig:
    def test_defaults_are_fault_free_safe(self):
        config = MonitorConfig()
        assert config.deadlock and config.occupancy and config.timing
        assert not config.handshake

    def test_default_monitors_pass_clean_runs(self, fig3_result):
        """All fault-free-safe monitors on: a clean run is unaffected."""
        plain = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        off = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
            monitors=MonitorConfig(
                deadlock=False, occupancy=False, timing=False
            ),
        )
        assert plain.cycles == off.cycles
