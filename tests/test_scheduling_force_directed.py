"""Unit tests for force-directed scheduling."""

import pytest

from repro.benchmarks import differential_equation, fir5
from repro.core.analysis import schedule_length
from repro.core.ops import ResourceClass
from repro.errors import SchedulingError
from repro.scheduling.force_directed import force_directed_schedule


class TestForceDirected:
    def test_dependencies_respected(self):
        dfg = differential_equation()
        sched = force_directed_schedule(dfg)
        for op in dfg:
            for pred in dfg.predecessors(op.name):
                assert sched.start[pred] < sched.start[op.name]

    def test_horizon_respected(self):
        dfg = fir5()
        horizon = schedule_length(dfg) + 2
        sched = force_directed_schedule(dfg, horizon=horizon)
        assert sched.num_steps <= horizon

    def test_short_horizon_rejected(self):
        dfg = fir5()
        with pytest.raises(SchedulingError, match="below critical path"):
            force_directed_schedule(dfg, horizon=1)

    def test_balances_below_asap_peak(self):
        """With slack, FDS should not need more units than ASAP's peak."""
        from repro.scheduling.asap_alap import asap_schedule

        dfg = fir5()
        asap_usage = asap_schedule(dfg).resource_usage()
        fds = force_directed_schedule(dfg, horizon=schedule_length(dfg) + 2)
        fds_usage = fds.resource_usage()
        assert (
            fds_usage[ResourceClass.MULTIPLIER]
            <= asap_usage[ResourceClass.MULTIPLIER]
        )

    def test_deterministic(self):
        dfg = differential_equation()
        a = force_directed_schedule(dfg, horizon=schedule_length(dfg) + 1)
        b = force_directed_schedule(dfg, horizon=schedule_length(dfg) + 1)
        assert a.start == b.start
