"""Unit tests for the DataflowGraph model."""

import pytest

from repro.core.dfg import (
    ConstRef,
    DataflowGraph,
    InputRef,
    OpRef,
    as_operand,
    reachable_from,
    transitive_dependency,
)
from repro.core.ops import OpType, ResourceClass
from repro.errors import GraphError


@pytest.fixture()
def graph() -> DataflowGraph:
    g = DataflowGraph("g")
    g.add_input("a")
    g.add_input("b")
    g.add_op("m", OpType.MUL, "a", "b")
    g.add_op("n", OpType.ADD, "m", 5)
    g.add_op("o", OpType.SUB, "n", "m")
    g.set_output("y", "o")
    return g


class TestConstruction:
    def test_inputs_in_order(self, graph):
        assert graph.inputs == ("a", "b")

    def test_duplicate_input_rejected(self, graph):
        with pytest.raises(GraphError, match="duplicate primary input"):
            graph.add_input("a")

    def test_duplicate_op_rejected(self, graph):
        with pytest.raises(GraphError, match="duplicate operation"):
            graph.add_op("m", OpType.ADD, "a", "b")

    def test_op_name_colliding_with_input(self, graph):
        with pytest.raises(GraphError, match="collides"):
            graph.add_op("a", OpType.ADD, "m", "m")

    def test_input_name_colliding_with_op(self, graph):
        with pytest.raises(GraphError, match="collides"):
            graph.add_input("m")

    def test_unknown_operand_rejected(self, graph):
        with pytest.raises(GraphError, match="neither an existing"):
            graph.add_op("p", OpType.ADD, "nope", "a")

    def test_forward_reference_impossible(self):
        g = DataflowGraph("fwd")
        g.add_input("x")
        with pytest.raises(GraphError):
            g.add_op("p", OpType.ADD, "q", "x")

    def test_wrong_arity(self, graph):
        with pytest.raises(GraphError, match="expects 2 operands"):
            graph.add_op("p", OpType.ADD, "m")

    def test_output_must_be_op(self, graph):
        with pytest.raises(GraphError, match="is not an operation"):
            graph.set_output("z", "a")

    def test_duplicate_output(self, graph):
        with pytest.raises(GraphError, match="duplicate primary output"):
            graph.set_output("y", "m")

    def test_bool_operand_rejected(self):
        with pytest.raises(GraphError, match="booleans"):
            as_operand(True)


class TestStructure:
    def test_len_and_contains(self, graph):
        assert len(graph) == 3
        assert "m" in graph
        assert "zz" not in graph

    def test_predecessors_distinct(self, graph):
        assert graph.predecessors("o") == ("n", "m")

    def test_successors(self, graph):
        assert set(graph.successors("m")) == {"n", "o"}

    def test_edges(self, graph):
        assert set(graph.edges()) == {
            ("m", "n"),
            ("m", "o"),
            ("n", "o"),
        }

    def test_source_and_sink_ops(self, graph):
        assert graph.source_ops() == ("m",)
        assert graph.sink_ops() == ("o",)

    def test_ops_of_class(self, graph):
        assert graph.ops_of_class(ResourceClass.MULTIPLIER) == ("m",)
        assert graph.ops_of_class(ResourceClass.ADDER) == ("n",)

    def test_resource_classes_in_order(self, graph):
        assert graph.resource_classes() == (
            ResourceClass.MULTIPLIER,
            ResourceClass.ADDER,
            ResourceClass.SUBTRACTOR,
        )

    def test_topological_order_is_insertion_order(self, graph):
        assert graph.topological_order() == ("m", "n", "o")

    def test_op_lookup_error(self, graph):
        with pytest.raises(GraphError, match="no operation named"):
            graph.op("missing")

    def test_same_producer_both_ports(self):
        g = DataflowGraph("sq")
        g.add_input("x")
        g.add_op("m", OpType.MUL, "x", "x")
        g.add_op("sq", OpType.MUL, "m", "m")
        assert g.op("sq").data_predecessors() == ("m", "m")
        assert g.predecessors("sq") == ("m",)


class TestEvaluate:
    def test_values(self, graph):
        values = graph.evaluate({"a": 3, "b": 4})
        assert values["m"] == 12
        assert values["n"] == 17
        assert values["o"] == 5
        assert values["y"] == 5

    def test_missing_input(self, graph):
        with pytest.raises(GraphError, match="missing values"):
            graph.evaluate({"a": 1})

    def test_const_operand(self):
        g = DataflowGraph("c")
        g.add_input("x")
        g.add_op("m", OpType.MUL, "x", ConstRef(10))
        assert g.evaluate({"x": 7})["m"] == 70


class TestCopyAndSummary:
    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add_op("extra", OpType.ADD, "m", "n")
        assert "extra" not in graph
        assert "extra" in clone

    def test_copy_rename(self, graph):
        assert graph.copy("other").name == "other"

    def test_summary_mentions_counts(self, graph):
        text = graph.summary()
        assert "3 ops" in text
        assert "2 inputs" in text


class TestTransitiveHelpers:
    def test_reachable_from(self, graph):
        assert reachable_from(graph, "m") == {"m", "n", "o"}
        assert reachable_from(graph, "o") == {"o"}

    def test_transitive_dependency(self, graph):
        deps = transitive_dependency(graph)
        assert deps["m"] == frozenset()
        assert deps["o"] == {"m", "n"}


class TestOperandStr:
    def test_str_forms(self):
        assert str(InputRef("x")) == "x"
        assert str(ConstRef(3)) == "3"
        assert str(OpRef("m")) == "m"
