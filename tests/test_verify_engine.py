"""Tests for the verification engine surface: reports, baselines,
the ``verify-artifacts`` pipeline pass and the ``repro lint`` CLI."""

import dataclasses
import json

import pytest

from repro.benchmarks.registry import all_benchmarks, benchmark
from repro.cli import main
from repro.errors import PipelineError, VerificationError
from repro.perf.cache import SynthesisCache
from repro.pipeline import run_synthesis_pipeline
from repro.verify import (
    Diagnostic,
    DiagnosticReport,
    gate_report,
    lint_benchmark,
    lint_result,
    load_baseline,
    severity_rank,
    write_baseline,
)
from repro.verify.baseline import baseline_path


def make_diag(rule="RTL003", severity="warning", location="net x"):
    return Diagnostic(
        rule=rule,
        severity=severity,
        artifact="rtl:control_top",
        location=location,
        message=f"{location} msg",
        hint="",
    )


# ----------------------------------------------------------------------
# Diagnostic reports
# ----------------------------------------------------------------------
class TestDiagnosticReport:
    def test_sorted_and_deduplicated(self):
        a = make_diag(severity="warning", location="net b")
        b = make_diag(rule="LIVE002", severity="error", location="net a")
        report = DiagnosticReport.build("d", [a, b, a])
        assert len(report.diagnostics) == 2
        assert report.diagnostics[0].rule == "LIVE002"  # errors first
        assert report.count("error") == 1
        assert report.has_errors

    def test_at_least(self):
        report = DiagnosticReport.build(
            "d",
            [
                make_diag(severity="warning"),
                make_diag(
                    rule="FSM006", severity="info", location="input i"
                ),
            ],
        )
        assert len(report.at_least("info")) == 2
        assert len(report.at_least("warning")) == 1
        assert report.at_least("error") == ()

    def test_json_round_trip_and_byte_stability(self):
        report = DiagnosticReport.build(
            "d", [make_diag(), make_diag(rule="LIVE002", severity="error")]
        )
        text = report.to_json()
        again = DiagnosticReport.from_json(text)
        assert again == report
        assert again.to_json() == text

    def test_severity_rank_validates(self):
        assert severity_rank("error") < severity_rank("warning")
        with pytest.raises(VerificationError, match="unknown severity"):
            severity_rank("fatal")


# ----------------------------------------------------------------------
# Baselines and the gate
# ----------------------------------------------------------------------
class TestBaselineGate:
    def test_write_load_round_trip(self, tmp_path):
        report = DiagnosticReport.build("design", [make_diag()])
        path = write_baseline(tmp_path, report)
        assert path == baseline_path(tmp_path, "design")
        assert load_baseline(tmp_path, "design") == report
        assert load_baseline(tmp_path, "other") is None

    def test_corrupt_baseline_rejected(self, tmp_path):
        baseline_path(tmp_path, "bad").write_text("{nope")
        with pytest.raises(VerificationError, match="corrupt"):
            load_baseline(tmp_path, "bad")

    def test_new_finding_fails_gate(self):
        fresh = DiagnosticReport.build(
            "d", [make_diag(rule="LIVE002", severity="error")]
        )
        gate = gate_report(fresh, None, fail_on="error")
        assert not gate.passed
        assert len(gate.new) == 1

    def test_known_finding_passes_gate(self):
        finding = make_diag(rule="LIVE002", severity="error")
        fresh = DiagnosticReport.build("d", [finding])
        baseline = DiagnosticReport.build("d", [finding])
        gate = gate_report(fresh, baseline, fail_on="error")
        assert gate.passed
        assert gate.known == (finding,)

    def test_resolved_findings_reported(self):
        finding = make_diag()
        baseline = DiagnosticReport.build("d", [finding])
        fresh = DiagnosticReport.build("d", [])
        gate = gate_report(fresh, baseline, fail_on="warning")
        assert gate.passed
        assert gate.resolved == (finding,)

    def test_fail_on_never_only_checks_bytes(self):
        fresh = DiagnosticReport.build(
            "d", [make_diag(rule="LIVE002", severity="error")]
        )
        gate = gate_report(fresh, None, fail_on="never", check_bytes=True)
        assert gate.new == ()
        assert gate.byte_stable is False
        assert not gate.passed

    def test_severity_threshold(self):
        fresh = DiagnosticReport.build("d", [make_diag()])  # warning
        assert gate_report(fresh, None, fail_on="error").passed
        assert not gate_report(fresh, None, fail_on="warning").passed


# ----------------------------------------------------------------------
# Committed benchmark baselines (the repository contract)
# ----------------------------------------------------------------------
class TestCommittedBaselines:
    def test_every_benchmark_is_error_clean(self, repo_baseline_dir):
        for entry in all_benchmarks():
            report = lint_benchmark(entry.name)
            assert not report.has_errors, report.render()

    def test_baselines_byte_identical(self, repo_baseline_dir):
        for entry in all_benchmarks():
            path = baseline_path(repo_baseline_dir, entry.name)
            assert path.is_file(), f"missing baseline {path}"
            fresh = lint_benchmark(entry.name)
            assert path.read_text() == fresh.to_json() + "\n", (
                f"baseline {path} is stale; regenerate with "
                f"`repro lint --write-baseline`"
            )

    @pytest.fixture(scope="class")
    def repo_baseline_dir(self):
        import pathlib

        directory = (
            pathlib.Path(__file__).resolve().parent.parent
            / "baselines"
            / "lint"
        )
        assert directory.is_dir()
        return directory


# ----------------------------------------------------------------------
# The verify-artifacts pipeline pass
# ----------------------------------------------------------------------
class TestVerifyPass:
    def test_diagnostics_in_manifest_and_cache(self, tmp_path):
        entry = benchmark("fig2")
        cache = SynthesisCache(tmp_path)

        def run():
            _, manifest = run_synthesis_pipeline(
                entry.factory(),
                entry.allocation(),
                upto="verify-artifacts",
                cache=cache,
            )
            return manifest.record_for("verify-artifacts")

        cold = run()
        assert cold.status == "computed"
        assert cold.diagnostics
        assert all(
            set(d) >= {"rule", "severity", "artifact", "message"}
            for d in cold.diagnostics
        )
        warm = run()
        assert warm.status == "cached"
        assert list(warm.diagnostics) == list(cold.diagnostics)

    def test_default_flow_stops_before_verify(self):
        entry = benchmark("fig2")
        _, manifest = run_synthesis_pipeline(
            entry.factory(), entry.allocation()
        )
        names = [r.name for r in manifest.records]
        assert "verify-artifacts" not in names

    def test_strict_raises_on_errors(self, monkeypatch):
        import repro.verify.engine as engine

        def dirty(store, name=None):
            return DiagnosticReport.build(
                name or "d",
                [make_diag(rule="LIVE002", severity="error")],
            )

        monkeypatch.setattr(engine, "lint_store", dirty)
        entry = benchmark("fig2")
        with pytest.raises(PipelineError, match="error finding"):
            run_synthesis_pipeline(
                entry.factory(),
                entry.allocation(),
                upto="verify-artifacts",
                options={"verify-artifacts": {"strict": True}},
            )


# ----------------------------------------------------------------------
# The repro lint CLI
# ----------------------------------------------------------------------
class TestLintCli:
    def test_single_benchmark_text(self, tmp_path, capsys):
        code = main(
            ["lint", "fig2", "--baseline-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lint fig2:" in out
        assert "gate fig2:" in out

    def test_json_output_file(self, tmp_path):
        out_file = tmp_path / "lint.json"
        code = main(
            [
                "lint",
                "fig2",
                "--baseline-dir",
                str(tmp_path),
                "--format",
                "json",
                "-o",
                str(out_file),
            ]
        )
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["format"] == 1
        assert payload["reports"][0]["design"] == "fig2"

    def test_warning_gate_without_baseline_fails(self, tmp_path):
        code = main(
            [
                "lint",
                "fig2",
                "--baseline-dir",
                str(tmp_path),
                "--fail-on",
                "warning",
            ]
        )
        assert code == 1

    def test_write_then_check_baseline(self, tmp_path):
        assert (
            main(
                [
                    "lint",
                    "fig2",
                    "--baseline-dir",
                    str(tmp_path),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "lint",
                    "fig2",
                    "--baseline-dir",
                    str(tmp_path),
                    "--check-baseline",
                    "--fail-on",
                    "warning",
                ]
            )
            == 0
        )
        # corrupt a byte: the drift gate must fail
        path = baseline_path(tmp_path, "fig2")
        path.write_text(path.read_text() + "\n")
        assert (
            main(
                [
                    "lint",
                    "fig2",
                    "--baseline-dir",
                    str(tmp_path),
                    "--check-baseline",
                ]
            )
            == 1
        )

    def test_allocation_requires_single_benchmark(self, tmp_path):
        code = main(
            [
                "lint",
                "fig2",
                "fig3",
                "--allocation",
                "mul:2T,add:1",
                "--baseline-dir",
                str(tmp_path),
            ]
        )
        assert code == 2

    def test_custom_allocation(self, tmp_path, capsys):
        code = main(
            [
                "lint",
                "fig2",
                "--allocation",
                "mul:2T,add:1",
                "--baseline-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "lint fig2:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# lint_result naming
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_lint_result_default_name(self, fig2_result):
        report = lint_result(fig2_result)
        assert report.design == fig2_result.dfg.name

    def test_gate_result_is_frozen(self):
        gate = gate_report(DiagnosticReport.build("d", []), None)
        with pytest.raises(dataclasses.FrozenInstanceError):
            gate.design = "other"
