"""Golden structural tests: the figure experiments reproduce the paper's
claims (Figs. 1–7)."""

import pytest

from repro.experiments import (
    run_fig1_adder,
    run_fig1_multiplier,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig6,
    run_fig7,
)


class TestFig1:
    def test_multiplier_csg_safe_and_useful(self):
        result = run_fig1_multiplier(width=7)
        assert result.pairs_verified == (1 << 7) ** 2
        assert result.short_delay_ns < result.long_delay_ns
        # Small operands must be (weakly) more often fast than uniform.
        assert (
            result.achieved_p["small-operand"]
            >= result.achieved_p["uniform"]
        )
        assert "Fig. 1" in result.render()

    def test_adder_csg(self):
        result = run_fig1_adder(width=7, max_chain=3)
        assert result.pairs_verified == (1 << 7) ** 2
        assert 0 < result.achieved_p["uniform"] <= 1.0


class TestFig2:
    def test_latency_range_4_to_6(self):
        result = run_fig2()
        assert result.min_cycles == 4
        assert result.max_cycles == 6

    def test_fsm_has_six_states(self):
        """Fig. 2(c): S0, S0', S1, S2, S2', S3."""
        result = run_fig2()
        assert result.fsm.num_states == 6

    def test_artifacts_render(self):
        result = run_fig2()
        assert "digraph" in result.dfg_dot
        assert "TAUBM" in result.taubm_text


class TestFig3:
    def test_three_multipliers_minimum(self):
        assert run_fig3().min_multipliers_needed == 3

    def test_schedule_arcs_inserted(self):
        result = run_fig3()
        # Two TAU multipliers + two adders need arc insertion; the paper
        # inserts 4, our deterministic heuristic inserts 3-4 depending on
        # the chain split — assert the range and the width property.
        assert 3 <= result.num_schedule_arcs <= 4

    def test_dot_shows_dashed_arcs(self):
        assert "dashed" in run_fig3().dot


class TestFig4:
    def test_exponential_vs_flat(self):
        result = run_fig4(tau_counts=(1, 2, 3))
        assert result.cent_states[0] < result.cent_states[1]
        assert result.cent_states[1] < result.cent_states[2]
        growth1 = result.cent_states[1] - result.cent_states[0]
        growth2 = result.cent_states[2] - result.cent_states[1]
        assert growth2 > growth1  # accelerating (exponential-like)
        # Synchronized states grow at most linearly (one extension state).
        assert result.sync_states[-1] - result.sync_states[0] <= 2

    def test_render(self):
        assert "CENT-FSM states" in run_fig4(tau_counts=(1, 2)).render()


class TestFig6:
    def test_controller_is_tau_style(self):
        result = run_fig6()
        assert result.fsm.name.startswith("D-FSM-TM")
        assert any(s.startswith("SX_") for s in result.fsm.states)

    def test_logical_transition_listing(self):
        result = run_fig6()
        assert result.logical_transition_count >= result.fsm.num_states
        assert "states" in result.render()


class TestFig7:
    def test_signal_pruning_happened(self):
        result = run_fig7()
        assert result.pruned_signals
        assert result.live_wires > 0

    def test_sink_completion_removed(self):
        """The paper's example: C_CO of an unconsumed op is removed."""
        result = run_fig7()
        assert "CC_o5" in result.pruned_signals
