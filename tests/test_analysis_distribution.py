"""Unit tests for exact latency distributions."""

import pytest

from repro.analysis import (
    DistLatencyEvaluator,
    LatencyDistribution,
    compare_distributions,
    exact_latency_distribution,
)
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def comparison(fig3_result):
    return compare_distributions(fig3_result.bound, fig3_result.taubm, p=0.7)


class TestLatencyDistribution:
    def test_pmf_sums_to_one(self, comparison):
        assert sum(p for _, p in comparison.dist.pmf) == pytest.approx(1.0)

    def test_pmf_validated(self):
        with pytest.raises(SimulationError, match="sums to"):
            LatencyDistribution(
                scheme="x", clock_ns=15.0, pmf=((4, 0.5), (5, 0.2))
            )

    def test_mean_matches_expectation(self, fig3_result, comparison):
        expected = fig3_result.latency_comparison(ps=(0.7,))
        assert comparison.dist.mean() == pytest.approx(
            expected.dist.expected_cycles[0.7]
        )
        assert comparison.sync.mean() == pytest.approx(
            expected.sync.expected_cycles[0.7]
        )

    def test_support_within_best_worst(self, fig3_result, comparison):
        expected = fig3_result.latency_comparison(ps=())
        assert comparison.dist.support[0] == expected.dist.best_cycles
        assert comparison.dist.support[-1] == expected.dist.worst_cycles

    def test_quantiles_monotone(self, comparison):
        dist = comparison.dist
        assert dist.quantile(0.1) <= dist.quantile(0.5) <= dist.quantile(0.99)

    def test_quantile_range_checked(self, comparison):
        with pytest.raises(SimulationError, match="quantile"):
            comparison.dist.quantile(0.0)

    def test_probability_at_most(self, comparison):
        dist = comparison.dist
        assert dist.probability_at_most(dist.support[-1]) == pytest.approx(
            1.0
        )
        assert dist.probability_at_most(dist.support[0] - 1) == 0.0

    def test_variance_nonnegative(self, comparison):
        assert comparison.dist.variance() >= 0
        assert comparison.dist.std() == pytest.approx(
            comparison.dist.variance() ** 0.5
        )

    def test_histogram_renders(self, comparison):
        text = comparison.dist.histogram()
        assert "#" in text and "ns" in text


class TestDominance:
    def test_stochastic_dominance(self, comparison):
        """DIST first-order stochastically dominates CENT-SYNC."""
        assert comparison.stochastic_dominance_holds()

    def test_p99_budget_not_worse(self, comparison):
        assert comparison.dist.quantile(0.99) <= comparison.sync.quantile(
            0.99
        )

    def test_degenerate_p(self, fig3_result):
        sure = compare_distributions(
            fig3_result.bound, fig3_result.taubm, p=1.0
        )
        assert len(sure.dist.pmf) == 1
        assert sure.dist.pmf[0][1] == pytest.approx(1.0)


class TestExactDistributionApi:
    def test_limit_enforced_for_opaque_callables(self, fig3_result):
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        with pytest.raises(SimulationError, match="enumeration limit"):
            exact_latency_distribution(
                "DIST", lambda fast: evaluator(fast), ["x"] * 30, 0.5, 15.0
            )

    def test_structured_evaluator_beyond_limit(self, fig3_result):
        """The exact engine is feasible past the enumeration horizon."""
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        wide = exact_latency_distribution(
            "DIST", evaluator, ["x"] * 30, 0.5, 15.0
        )
        # the extra enumerated names touch no node, so the PMF matches
        # the all-fast baseline exactly
        baseline = exact_latency_distribution(
            "DIST", evaluator, (), 0.5, 15.0
        )
        assert wide.pmf == baseline.pmf

    def test_bad_p(self, fig3_result):
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        with pytest.raises(SimulationError, match="P must"):
            exact_latency_distribution(
                "DIST",
                evaluator,
                fig3_result.bound.telescopic_ops(),
                -0.1,
                15.0,
            )
