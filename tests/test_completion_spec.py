"""Unit tests for completion-model specs (parse/encode/keys/models)."""

import random

import pytest

from repro.errors import ExactAnalysisError, SimulationError
from repro.core.ops import ResourceClass
from repro.resources.completion import (
    BernoulliCompletion,
    MarkovCompletion,
    PerUnitCompletion,
    markov_transition_probabilities,
    resolve_unit_probability,
)
from repro.resources.spec import (
    BernoulliSpec,
    MarkovSpec,
    PerUnitSpec,
    as_completion_spec,
    parse_completion_spec,
    spec_from_dict,
)
from repro.resources.units import TelescopicUnit
from repro.serialize import completion_spec_from_dict, completion_spec_to_dict

TM1 = TelescopicUnit("TM1", ResourceClass.MULTIPLIER)
TA1 = TelescopicUnit("TA1", ResourceClass.ADDER)

ALL_SPECS = [
    BernoulliSpec(0.7),
    PerUnitSpec({"mul": 0.9, "*": 0.5}),
    PerUnitSpec({"TM1": 0.95, "mul": 0.9, "*": 0.5}),
    MarkovSpec(p_fast=0.7, stickiness=0.5),
]


# ----------------------------------------------------------------------
# Parsing and canonical encodings
# ----------------------------------------------------------------------
def test_parse_bare_float():
    spec = parse_completion_spec("0.7")
    assert spec == BernoulliSpec(0.7)


def test_parse_bernoulli_prefix():
    assert parse_completion_spec("bernoulli:0.25") == BernoulliSpec(0.25)


def test_parse_per_unit_both_spellings():
    expected = PerUnitSpec({"mul": 0.9, "*": 0.5})
    assert parse_completion_spec("per-unit:mul=0.9,*=0.5") == expected
    assert parse_completion_spec("per_unit:mul=0.9,*=0.5") == expected


def test_parse_markov():
    spec = parse_completion_spec("markov:0.7,0.5")
    assert spec == MarkovSpec(p_fast=0.7, stickiness=0.5)


@pytest.mark.parametrize(
    "text",
    ["", "bogus:1", "per-unit:", "per-unit:mul", "markov:0.7", "markov:x,y"],
)
def test_parse_rejects_malformed(text):
    with pytest.raises(SimulationError):
        parse_completion_spec(text)


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_encode_parse_round_trip(spec):
    assert parse_completion_spec(spec.encode()) == spec


def test_per_unit_encoding_is_canonical():
    a = PerUnitSpec({"mul": 0.9, "*": 0.5})
    b = PerUnitSpec({"*": 0.5, "mul": 0.9})
    assert a == b
    assert a.encode() == b.encode() == "per-unit:*=0.5,mul=0.9"


def test_as_completion_spec_coercions():
    spec = BernoulliSpec(0.7)
    assert as_completion_spec(spec) is spec
    assert as_completion_spec(0.7) == spec
    assert as_completion_spec("0.7") == spec
    assert as_completion_spec("markov:0.7,0.5") == MarkovSpec(0.7, 0.5)
    with pytest.raises(SimulationError):
        as_completion_spec(True)
    with pytest.raises(SimulationError):
        as_completion_spec(None)


@pytest.mark.parametrize("bad", [-0.1, 1.5])
def test_probability_bounds_checked(bad):
    with pytest.raises(SimulationError):
        BernoulliSpec(bad)
    with pytest.raises(SimulationError):
        PerUnitSpec({"*": bad})


def test_markov_stickiness_bounds():
    with pytest.raises(SimulationError):
        MarkovSpec(p_fast=0.7, stickiness=1.0)
    with pytest.raises(SimulationError):
        MarkovSpec(p_fast=0.7, stickiness=-0.1)


# ----------------------------------------------------------------------
# Fingerprints and serialization
# ----------------------------------------------------------------------
def test_fingerprints_stable_and_distinct():
    prints = {spec.fingerprint() for spec in ALL_SPECS}
    assert len(prints) == len(ALL_SPECS)
    for spec in ALL_SPECS:
        assert spec.fingerprint() == spec.fingerprint()
    # same content, different construction order: same fingerprint
    assert (
        PerUnitSpec({"mul": 0.9, "*": 0.5}).fingerprint()
        == PerUnitSpec({"*": 0.5, "mul": 0.9}).fingerprint()
    )


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_dict_round_trip(spec):
    assert spec_from_dict(spec.to_dict()) == spec
    assert completion_spec_from_dict(completion_spec_to_dict(spec)) == spec


def test_serialized_spec_checks_format():
    data = completion_spec_to_dict(BernoulliSpec(0.7))
    data["format"] = 99
    with pytest.raises(Exception):
        completion_spec_from_dict(data)


# ----------------------------------------------------------------------
# Legacy key compatibility (cache keys must not rotate)
# ----------------------------------------------------------------------
def test_bernoulli_key_fragment_is_legacy_literal():
    assert BernoulliSpec(0.7).key_fragment() == "p=0.7"
    assert BernoulliSpec(0.25).key_fragment() == "p=0.25"


def test_non_bernoulli_key_fragments_are_namespaced():
    assert (
        PerUnitSpec({"mul": 0.9}).key_fragment()
        == "completion=per-unit:mul=0.9"
    )
    assert (
        MarkovSpec(0.7, 0.5).key_fragment() == "completion=markov:0.7,0.5"
    )


def test_monte_carlo_run_key_matches_legacy_format(fig2_result):
    from repro.perf.cache import design_fingerprint, system_fingerprint
    from repro.sim.runner import _monte_carlo_run_key

    system = fig2_result.distributed_system()
    bound = fig2_result.bound
    key = _monte_carlo_run_key(system, bound, BernoulliSpec(0.7), 40, 3)
    legacy = (
        f"monte-carlo|{design_fingerprint(bound)}"
        f"|{system_fingerprint(system)}|p=0.7|trials=40|seed=3"
    )
    assert key == legacy


def test_simulation_cache_key_unchanged_for_bernoulli(fig2_result):
    from repro.perf.cache import SimulationCache

    cache = SimulationCache()
    system = fig2_result.distributed_system()
    new = cache.key(
        system,
        fig2_result.bound,
        BernoulliSpec(0.7).model(),
        seed=0,
        iterations=1,
    )
    old = cache.key(
        system,
        fig2_result.bound,
        BernoulliCompletion(0.7),
        seed=0,
        iterations=1,
    )
    assert new == old


def test_markov_history_does_not_leak_into_cache_key(fig2_result):
    from repro.perf.cache import SimulationCache

    cache = SimulationCache()
    system = fig2_result.distributed_system()
    model = MarkovSpec(0.7, 0.5).model()
    before = cache.key(
        system, fig2_result.bound, model, seed=0, iterations=1
    )
    rng = random.Random(0)
    model.is_fast("m1", TM1, (), rng)
    after = cache.key(
        system, fig2_result.bound, model, seed=0, iterations=1
    )
    assert before == after


# ----------------------------------------------------------------------
# Model semantics
# ----------------------------------------------------------------------
def test_spec_model_types():
    assert isinstance(BernoulliSpec(0.7).model(), BernoulliCompletion)
    assert isinstance(
        PerUnitSpec({"*": 0.5}).model(), PerUnitCompletion
    )
    assert isinstance(MarkovSpec(0.7, 0.5).model(), MarkovCompletion)


def test_resolve_unit_probability_precedence():
    table = {"TM1": 0.95, "mul": 0.9, "*": 0.5}
    assert resolve_unit_probability(table, TM1) == 0.95
    assert resolve_unit_probability({"mul": 0.9, "*": 0.5}, TM1) == 0.9
    assert resolve_unit_probability({"*": 0.5}, TM1) == 0.5
    with pytest.raises(SimulationError):
        resolve_unit_probability({"add": 0.4}, TM1)


def test_probability_for_uses_unit_lookup():
    spec = PerUnitSpec({"mul": 0.9, "*": 0.5})
    assert spec.probability_for(TM1) == 0.9
    assert spec.probability_for(TA1) == 0.5
    assert BernoulliSpec(0.7).probability_for(TM1) == 0.7


def test_markov_probability_for_raises_correlated():
    with pytest.raises(ExactAnalysisError) as excinfo:
        MarkovSpec(0.7, 0.5).probability_for(TM1)
    assert excinfo.value.context()["reason"] == "correlated"


def test_markov_transition_probabilities_stationary():
    for p_fast, stickiness in [(0.7, 0.5), (0.3, 0.0), (0.9, 0.99)]:
        after_fast, after_slow = markov_transition_probabilities(
            p_fast, stickiness
        )
        assert 0.0 <= after_slow <= after_fast <= 1.0
        # stationary fast share is exactly p_fast
        stationary = after_slow / (1.0 - after_fast + after_slow)
        assert stationary == pytest.approx(p_fast)


def test_markov_completion_is_sticky_and_resets():
    model = MarkovCompletion(p_fast=0.5, stickiness=0.9)
    rng = random.Random(7)
    draws = [model.is_fast("m1", TM1, (), rng) for _ in range(400)]
    # with stickiness 0.9 consecutive draws agree far more often than
    # the 50/50 independent baseline would
    agree = sum(a == b for a, b in zip(draws, draws[1:]))
    assert agree / (len(draws) - 1) > 0.8
    model.reset()
    assert not model._last


def test_markov_zero_stickiness_matches_bernoulli():
    markov = MarkovCompletion(p_fast=0.7, stickiness=0.0)
    bernoulli = BernoulliCompletion(0.7)
    a = [
        markov.is_fast("m1", TM1, (), random.Random(s)) for s in range(50)
    ]
    b = [
        bernoulli.is_fast("m1", TM1, (), random.Random(s))
        for s in range(50)
    ]
    assert a == b
