"""Unit tests for the bit-level adder/multiplier delay models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.resources.bitlevel import (
    ArrayMultiplier,
    RippleCarryAdder,
    carry_chain_length,
)


class TestCarryChain:
    def test_no_carry(self):
        assert carry_chain_length(0b0101, 0b1010, 4) == 0

    def test_single_generate(self):
        assert carry_chain_length(0b0001, 0b0001, 4) == 1

    def test_full_ripple(self):
        # 1 + 0b1111: carry generated at bit 0 ripples through all bits.
        assert carry_chain_length(0b0001, 0b1111, 4) == 4

    def test_kill_stops_chain(self):
        # generate at bit0, propagate at bit1, kill at bit2.
        assert carry_chain_length(0b0011, 0b0001, 4) == 2

    def test_all_generates_no_propagation(self):
        assert carry_chain_length(0b1111, 0b1111, 4) == 1

    def test_negative_rejected(self):
        with pytest.raises(LogicError, match="unsigned"):
            carry_chain_length(-1, 0, 4)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_bounds(self, a, b):
        chain = carry_chain_length(a, b, 8)
        assert 0 <= chain <= 8


class TestRippleCarryAdder:
    def test_functional_result_truncates(self):
        adder = RippleCarryAdder(width=8)
        assert adder.result(200, 100) == (300) & 0xFF

    def test_delay_monotone_in_chain(self):
        adder = RippleCarryAdder(width=8)
        assert adder.delay_ns(1, 1) < adder.delay_ns(1, 255)

    def test_worst_delay_is_upper_bound(self):
        adder = RippleCarryAdder(width=6)
        worst = adder.worst_delay_ns
        for a in range(0, 64, 7):
            for b in range(0, 64, 5):
                assert adder.delay_ns(a, b) <= worst + 1e-9

    def test_bad_width(self):
        with pytest.raises(LogicError, match="width"):
            RippleCarryAdder(width=0)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_gate_level_agrees_functionally(self, a, b):
        adder = RippleCarryAdder(width=6)
        # gate_level_settle_ns raises internally on functional mismatch.
        adder.gate_level_settle_ns(a, b)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_gate_level_correlates_with_chain(self, a, b):
        """Longer excited chains never settle faster at the gate level."""
        adder = RippleCarryAdder(width=8)
        settle = adder.gate_level_settle_ns(a, b)
        chain = carry_chain_length(a, b, 8)
        # Settle time is bounded by the analytic model's chain term plus
        # the sum/setup overhead.
        assert settle <= adder.delay_ns(a, b) + 2 * adder.gate_delay_ns


class TestArrayMultiplier:
    def test_functional_result(self):
        mult = ArrayMultiplier(width=8)
        assert mult.result(13, 11) == 143

    def test_zero_operand_is_fast(self):
        mult = ArrayMultiplier(width=8)
        assert mult.delay_ns(0, 200) == mult.base_delay_ns
        assert mult.delay_ns(200, 0) == mult.base_delay_ns

    def test_delay_monotone_in_rows(self):
        mult = ArrayMultiplier(width=8)
        assert mult.delay_ns(255, 1) < mult.delay_ns(255, 255)

    def test_active_rows(self):
        mult = ArrayMultiplier(width=8)
        assert mult.active_rows(0b0001) == 1
        assert mult.active_rows(0b1000) == 4
        assert mult.active_rows(0) == 0

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_worst_delay_bounds_everything(self, a, b):
        mult = ArrayMultiplier(width=8)
        assert mult.delay_ns(a, b) <= mult.worst_delay_ns + 1e-9

    def test_bad_width(self):
        with pytest.raises(LogicError, match="width"):
            ArrayMultiplier(width=0)
