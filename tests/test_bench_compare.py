"""The bench regression gate: timing diffs and value-drift detection."""

import json

import pytest

from repro.perf.bench import (
    BenchComparison,
    ComparisonRow,
    compare_bench,
    compare_bench_files,
)


def _report(synthesize_s, mc_mean=10.0, exact_value=8.5, **meta):
    return {
        "schema": 2,
        "p": 0.7,
        "trials": 100,
        "seed": 0,
        "benchmarks": {
            "fig3": {
                "synthesize_s": synthesize_s,
                "simulate_s": 0.001,
                "simulated_cycles": 7,
                "monte_carlo": {
                    "trials": 100,
                    "serial_s": 0.5,
                    "mean_cycles": mc_mean,
                },
                "exact_expectation": {
                    "seconds": 0.002,
                    "value": exact_value,
                },
            }
        },
        **meta,
    }


class TestComparisonRow:
    def test_speedup_and_regression(self):
        row = ComparisonRow("fig3", "synthesize", old_s=0.2, new_s=0.1)
        assert row.speedup == pytest.approx(2.0)
        assert not row.regressed(0.2)
        slower = ComparisonRow("fig3", "synthesize", old_s=0.1, new_s=0.13)
        assert slower.regressed(0.2)
        borderline = ComparisonRow(
            "fig3", "synthesize", old_s=0.1, new_s=0.119
        )
        assert not borderline.regressed(0.2)


class TestCompareBench:
    def test_clean_comparison_passes(self):
        comparison = compare_bench(_report(0.1), _report(0.1))
        assert isinstance(comparison, BenchComparison)
        assert comparison.ok
        assert not comparison.regressions
        assert "ok — no section regressed" in comparison.render()

    def test_regression_fails_gate(self):
        comparison = compare_bench(
            _report(0.1), _report(0.5), threshold=0.2
        )
        assert not comparison.ok
        assert [r.metric for r in comparison.regressions] == ["synthesize"]
        assert "<< REGRESSION" in comparison.render()
        assert "FAIL" in comparison.render()

    def test_speedup_never_fails(self):
        comparison = compare_bench(_report(0.5), _report(0.01))
        assert comparison.ok

    def test_value_drift_fails_at_any_threshold(self):
        comparison = compare_bench(
            _report(0.1, exact_value=8.5),
            _report(0.1, exact_value=8.6),
            threshold=100.0,
        )
        assert not comparison.ok
        assert any("exact_expectation" in d for d in comparison.value_drifts)

    def test_mc_mean_drift_detected_only_at_same_seed(self):
        drifted = compare_bench(
            _report(0.1, mc_mean=10.0), _report(0.1, mc_mean=11.0)
        )
        assert not drifted.ok
        other_seed = _report(0.1, mc_mean=11.0)
        other_seed["seed"] = 99
        assert compare_bench(_report(0.1, mc_mean=10.0), other_seed).ok

    def test_trial_counts_normalized(self):
        """A --quick run (fewer trials) diffs cleanly per trial."""
        old = _report(0.1)
        new = _report(0.1)
        new["trials"] = 10
        new["benchmarks"]["fig3"]["monte_carlo"] = {
            "trials": 10,
            "serial_s": 0.05,
            "mean_cycles": 9.9,  # different trials: not a drift
        }
        comparison = compare_bench(old, new)
        per_trial = [
            r for r in comparison.rows if r.metric == "mc_serial_per_trial"
        ]
        assert per_trial[0].old_s == pytest.approx(per_trial[0].new_s)
        assert comparison.ok

    def test_missing_sections_skipped(self):
        """Reports from different schema versions diff on common ground."""
        old = _report(0.1)
        del old["benchmarks"]["fig3"]["exact_expectation"]
        comparison = compare_bench(old, _report(0.1))
        metrics = {r.metric for r in comparison.rows}
        assert "exact_expectation" not in metrics
        assert "synthesize" in metrics
        assert comparison.ok


class TestCompareFiles:
    def test_file_round_trip(self, tmp_path):
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(_report(0.1)))
        new_path.write_text(json.dumps(_report(0.5)))
        comparison = compare_bench_files(
            str(old_path), str(new_path), threshold=0.2
        )
        assert not comparison.ok


class TestCli:
    def test_compare_to_exits_nonzero_on_regression(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(_report(0.1)))
        new_path.write_text(json.dumps(_report(0.9)))
        code = main(
            [
                "bench",
                "--compare", str(old_path),
                "--compare-to", str(new_path),
            ]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_to_clean_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        old_path = tmp_path / "old.json"
        old_path.write_text(json.dumps(_report(0.1)))
        code = main(
            [
                "bench",
                "--compare", str(old_path),
                "--compare-to", str(old_path),
            ]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out


class TestCompletionTolerance:
    """Schema-3 ``completion`` fields vs schema-2 float-p baselines."""

    def test_schema2_baseline_matches_schema3_bernoulli(self):
        old = _report(0.1)  # schema 2: only a float p
        new = _report(0.1, schema=3, completion="bernoulli:0.7")
        comparison = compare_bench(old, new)
        assert comparison.ok

    def test_value_drift_still_detected_across_schemas(self):
        old = _report(0.1)
        new = _report(0.1, mc_mean=11.0, schema=3, completion="bernoulli:0.7")
        comparison = compare_bench(old, new)
        assert any(
            "mean_cycles" in drift for drift in comparison.value_drifts
        )

    def test_different_completions_diff_on_timings_only(self):
        old = _report(0.1)
        new = _report(
            0.1,
            mc_mean=12.5,
            exact_value=9.9,
            schema=3,
            completion="markov:0.7,0.5",
        )
        new["p"] = "markov:0.7,0.5"
        comparison = compare_bench(old, new)
        assert not comparison.value_drifts
        assert comparison.ok

    def test_report_completion_derives_bernoulli_from_float_p(self):
        from repro.perf.bench import _report_completion

        assert _report_completion({"p": 0.7}) == "bernoulli:0.7"
        assert _report_completion({"p": 0.7, "completion": "x"}) == "x"
        assert (
            _report_completion({"p": "markov:0.7,0.5"}) == "markov:0.7,0.5"
        )
        assert _report_completion({}) is None
