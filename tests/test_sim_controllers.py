"""Unit tests for the communicating controller system runtime."""

import pytest

from repro.errors import SimulationError
from repro.fsm.algorithm1 import derive_all_unit_controllers
from repro.fsm.model import FSM, make_transition
from repro.sim.controllers import (
    ControllerSystem,
    single_fsm_system,
    system_from_bound,
)


@pytest.fixture()
def system(fig3_result) -> ControllerSystem:
    return fig3_result.distributed.system()


class TestConfig:
    def test_initial_config(self, system, fig3_result):
        config = system.initial_config()
        assert len(config.states) == len(system.keys)
        assert config.flags == frozenset()

    def test_initial_starts_are_source_chain_heads(
        self, system, fig3_result
    ):
        bound = fig3_result.bound
        expected = {
            bound.ops_on_unit(u.name)[0]
            for u in bound.used_units()
            if not bound.cross_unit_predecessors(
                bound.ops_on_unit(u.name)[0]
            )
        }
        assert system.initial_starts() == expected

    def test_all_ops(self, system, fig3_result):
        assert system.all_ops() == set(fig3_result.dfg.op_names())


class TestStep:
    def test_pulse_delivered_same_cycle(self, system, fig3_result):
        """A completion pulse is visible to a waiting consumer in the same
        cycle (the consumer transitions at the same clock edge)."""
        config = system.initial_config()
        # Run all-fast until some flag or a cross-unit start appears.
        seen_cross_start = False
        bound = fig3_result.bound
        for _ in range(12):
            step = system.step(
                config, {u.name: True for u in bound.used_units()}
            )
            for op in step.starts:
                if bound.cross_unit_predecessors(op):
                    seen_cross_start = True
            config = step.config
        assert seen_cross_start

    def test_flag_latched_until_consumed(self, system, fig3_result):
        """If a producer finishes while the consumer is busy, the arrival
        flag persists across cycles."""
        bound = fig3_result.bound
        config = system.initial_config()
        saw_flag = False
        for _ in range(16):
            step = system.step(config, {})  # every TAU slow
            if step.config.flags:
                saw_flag = True
            config = step.config
        assert saw_flag

    def test_deterministic(self, system):
        a = system.initial_config()
        b = system.initial_config()
        for _ in range(10):
            a = system.step(a, {"TM1": True, "TM2": False}).config
            b = system.step(b, {"TM1": True, "TM2": False}).config
        assert a == b

    def test_output_independence_enforced(self):
        """A controller whose outputs depend on a CC input is rejected."""
        bad = FSM(
            name="bad",
            states=("A", "B"),
            initial="A",
            inputs=("CC_x",),
            outputs=("OF_y",),
            transitions=(
                make_transition(
                    "A", "B", {"CC_x": True}, ("OF_y",), queries="j"
                ),
                make_transition("A", "A", {"CC_x": False}, (), queries="j"),
                make_transition("B", "B", {}, ()),
            ),
        )
        producer = FSM(
            name="prod",
            states=("P",),
            initial="P",
            inputs=(),
            outputs=("CC_x",),
            transitions=(make_transition("P", "P", {}, ("CC_x",)),),
        )
        system = ControllerSystem(
            controllers={"u1": producer, "u2": bad},
            consumes={("u2", "j"): ("x",)},
        )
        with pytest.raises(SimulationError, match="outputs depend"):
            system.step(system.initial_config(), {})

    def test_empty_system_rejected(self):
        with pytest.raises(SimulationError, match=">= 1"):
            ControllerSystem(controllers={}, consumes={})


class TestTokenSemantics:
    def _make_pair(self, consume_now: bool):
        """producer pulses CC_x every cycle; consumer waits then runs."""
        producer = FSM(
            name="prod",
            states=("P",),
            initial="P",
            inputs=(),
            outputs=("CC_x",),
            transitions=(make_transition("P", "P", {}, ("CC_x",)),),
        )
        consumer = FSM(
            name="cons",
            states=("W", "E"),
            initial="W",
            inputs=("CC_x",),
            outputs=(),
            transitions=(
                make_transition(
                    "W", "E", {"CC_x": True}, starts=("j",), queries="j"
                ),
                make_transition("W", "W", {"CC_x": False}, queries="j"),
                make_transition("E", "E", {}),
            ),
        )
        return ControllerSystem(
            controllers={"u1": producer, "u2": consumer},
            consumes={("u2", "j"): ("x",)},
        )

    def test_pulse_with_simultaneous_consume_survives(self):
        system = self._make_pair(consume_now=True)
        config = system.initial_config()
        step1 = system.step(config, {})
        # Consumer consumed the pulse directly and started j; a *new*
        # pulse arrives every cycle, so the flag latches afterwards.
        assert "j" in step1.starts
        step2 = system.step(step1.config, {})
        assert ("u2", "j", "x") in step2.config.flags

    def test_overrun_reported(self):
        system = self._make_pair(consume_now=False)
        config = system.initial_config()
        step1 = system.step(config, {})  # consume + repulse
        step2 = system.step(step1.config, {})  # flag set, pulse again
        step3 = system.step(step2.config, {})
        assert step3.overruns == {("u2", "j", "x")}


def test_system_from_bound_wiring(fig3_result):
    controllers = derive_all_unit_controllers(fig3_result.bound)
    system = system_from_bound(fig3_result.bound, controllers)
    bound = fig3_result.bound
    for unit in bound.used_units():
        for op in bound.ops_on_unit(unit.name):
            preds = bound.cross_unit_predecessors(op)
            if preds:
                assert system._consumes[(unit.name, op)] == preds


def test_single_fsm_system(fig2_result):
    system = single_fsm_system(fig2_result.cent_sync_fsm)
    assert system.keys == ("central",)
    assert system.all_ops() == set(fig2_result.dfg.op_names())
