"""Unit tests for DFGBuilder."""

import pytest

from repro.core.builder import DFGBuilder
from repro.core.ops import OpType
from repro.errors import GraphError


class TestBuilder:
    def test_full_build(self):
        b = DFGBuilder("t")
        x, y = b.inputs("x", "y")
        m = b.mul("m", x, y)
        s = b.add("s", m, 1)
        d = b.sub("d", s, x)
        c = b.lt("c", d, 100)
        b.output("out", c)
        dfg = b.build()
        assert dfg.name == "t"
        assert len(dfg) == 4
        assert dfg.outputs == {"out": "c"}

    def test_mixed_operand_styles(self):
        b = DFGBuilder("mix")
        x = b.input("x")
        m = b.mul("m", x, 3)
        b.add("a", "m", "x")  # by-name references
        dfg = b.build()
        assert dfg.predecessors("a") == ("m",)

    def test_generic_op(self):
        b = DFGBuilder("g")
        x = b.input("x")
        b.op("sh", OpType.SHL, x, 2)
        dfg = b.build()
        assert dfg.op("sh").op_type is OpType.SHL

    def test_empty_build_rejected(self):
        b = DFGBuilder("empty")
        b.input("x")
        with pytest.raises(GraphError, match="no operations"):
            b.build()

    def test_auto_name_unique(self):
        b = DFGBuilder("auto")
        names = {b.auto_name("t") for _ in range(10)}
        assert len(names) == 10

    def test_output_by_ref(self):
        b = DFGBuilder("o")
        x = b.input("x")
        m = b.mul("m", x, x)
        b.output("y", m)
        assert b.build().outputs["y"] == "m"
