"""Unit tests for per-operation controllers ([3]-style baseline)."""

import pytest

from repro.fsm.op_controller import (
    derive_all_operation_controllers,
    derive_operation_controller,
    operation_controller_consumes,
)
from repro.fsm.signals import op_completion, unit_completion
from repro.resources import AllFastCompletion, AllSlowCompletion
from repro.sim.controllers import ControllerSystem
from repro.sim.simulator import simulate
from repro.analysis.latency import dist_latency_cycles


@pytest.fixture()
def op_system(fig3_result) -> ControllerSystem:
    controllers = derive_all_operation_controllers(fig3_result.bound)
    return ControllerSystem(
        controllers=controllers,
        consumes=operation_controller_consumes(fig3_result.bound),
    )


class TestStructure:
    def test_one_controller_per_operation(self, fig3_result):
        controllers = derive_all_operation_controllers(fig3_result.bound)
        assert set(controllers) == set(fig3_result.dfg.op_names())

    def test_all_validate(self, fig3_result):
        for fsm in derive_all_operation_controllers(
            fig3_result.bound
        ).values():
            fsm.validate()

    def test_tau_op_has_extension_state(self, fig3_result):
        tau_op = fig3_result.bound.telescopic_ops()[0]
        fsm = derive_operation_controller(fig3_result.bound, tau_op)
        assert f"EX_{tau_op}" in fsm.states
        assert unit_completion(
            fig3_result.bound.unit_of(tau_op).name
        ) in fsm.inputs

    def test_fixed_op_has_no_extension(self, fig3_result):
        bound = fig3_result.bound
        fixed = next(
            op.name
            for op in bound.dfg
            if not bound.is_telescopic_op(op.name)
        )
        fsm = derive_operation_controller(bound, fixed)
        assert f"EX_{fixed}" not in fsm.states

    def test_chain_serialization_inputs(self, fig3_result):
        """Non-first chain ops wait for their chain predecessor."""
        bound = fig3_result.bound
        for unit in bound.used_units():
            ops = bound.ops_on_unit(unit.name)
            for prev, op in zip(ops, ops[1:]):
                fsm = derive_operation_controller(bound, op)
                assert op_completion(prev) in fsm.inputs

    def test_wrap_interlock_on_first_chain_op(self, fig3_result):
        bound = fig3_result.bound
        unit = next(
            u for u in bound.used_units() if len(bound.ops_on_unit(u.name)) > 1
        )
        ops = bound.ops_on_unit(unit.name)
        fsm = derive_operation_controller(bound, ops[0])
        assert op_completion(ops[-1]) in fsm.inputs

    def test_unknown_op_rejected(self, fig3_result):
        from repro.errors import FSMError

        with pytest.raises(FSMError, match="unknown operation"):
            derive_operation_controller(fig3_result.bound, "zzz")


class TestSemantics:
    def test_latency_matches_distributed_all_fast(
        self, fig3_result, op_system
    ):
        sim = simulate(op_system, fig3_result.bound, AllFastCompletion())
        expected = dist_latency_cycles(
            fig3_result.bound,
            {op: True for op in fig3_result.dfg.op_names()},
        )
        assert sim.cycles == expected

    def test_latency_matches_distributed_all_slow(
        self, fig3_result, op_system
    ):
        sim = simulate(op_system, fig3_result.bound, AllSlowCompletion())
        expected = dist_latency_cycles(
            fig3_result.bound,
            {op: False for op in fig3_result.dfg.op_names()},
        )
        assert sim.cycles == expected

    def test_functional_correctness(self, fig3_result, op_system):
        inputs = {name: i + 2 for i, name in enumerate(fig3_result.dfg.inputs)}
        sim = simulate(
            op_system,
            fig3_result.bound,
            AllSlowCompletion(),
            inputs=inputs,
        )
        reference = fig3_result.dfg.evaluate(inputs)
        assert sim.datapath.output_values()["out"] == reference["out"]

    def test_unit_mutual_exclusion(self, fig3_result, op_system):
        """The chain tokens must keep each unit at one op per cycle; the
        simulator raises if two controllers overlap on a unit."""
        sim = simulate(
            op_system, fig3_result.bound, AllSlowCompletion(), iterations=2
        )
        assert len(sim.iteration_finish_cycles) == 2
