"""Tests for the parallel execution engine (:mod:`repro.perf`)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import SerialFallbackWarning, SimulationError
from repro.perf.bench import BenchReport, run_bench
from repro.perf.cache import (
    SimulationCache,
    design_fingerprint,
    model_fingerprint,
    simulate_cached,
    system_fingerprint,
)
from repro.perf.engine import (
    default_chunksize,
    derive_seed,
    parallel_map,
    resolve_workers,
)
from repro.resources.completion import BernoulliCompletion
from repro.sim.runner import monte_carlo_latency
from repro.sim.simulator import simulate

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        seeds = [derive_seed(0, t) for t in range(100)]
        assert seeds == [derive_seed(0, t) for t in range(100)]
        assert len(set(seeds)) == 100

    def test_no_arithmetic_structure(self):
        # Unlike seed + trial, the derivation must not collide when the
        # base seed shifts by the trial delta.
        assert derive_seed(0, 1) != derive_seed(1, 0)

    def test_fits_in_63_bits(self):
        for t in range(50):
            assert 0 <= derive_seed(12345, t) < 2**63

    def test_stable_across_processes(self):
        """The same seeds come out regardless of PYTHONHASHSEED."""
        code = (
            "from repro.perf.engine import derive_seed;"
            "print([derive_seed(7, t) for t in range(5)])"
        )
        outputs = set()
        for hashseed in ("0", "424242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(proc.stdout.strip())
        assert outputs == {str([derive_seed(7, t) for t in range(5)])}


class TestResolveWorkers:
    def test_auto_detect(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_explicit_pass_through(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            resolve_workers(-1)


class TestChunksize:
    def test_four_chunks_per_worker(self):
        assert default_chunksize(400, 4) == 25

    def test_never_below_one(self):
        assert default_chunksize(2, 8) == 1


class TestParallelMap:
    def test_matches_serial_map(self):
        items = list(range(37))
        assert parallel_map(str, items, workers=3) == [str(i) for i in items]

    def test_order_preserved(self):
        out = parallel_map(str, [5, 1, 9, 1], workers=2)
        assert out == ["5", "1", "9", "1"]

    def test_empty_items(self):
        assert parallel_map(str, [], workers=4) == []

    def test_unpicklable_fn_falls_back_to_serial(self):
        with pytest.warns(SerialFallbackWarning, match="<lambda>"):
            out = parallel_map(lambda x: x + 1, [1, 2, 3], workers=2)
        assert out == [2, 3, 4]

    def test_fallback_warning_records_ambient_event(self):
        from repro.runtime import active_report

        with active_report() as report:
            with pytest.warns(SerialFallbackWarning):
                parallel_map(lambda x: x, [1, 2], workers=2)
        assert report.count("serial-fallback") == 1

    def test_deliberate_serial_never_warns(self, recwarn):
        assert parallel_map(lambda x: x + 1, [1, 2], workers=1) == [2, 3]
        assert parallel_map(str, [7], workers=4) == ["7"]  # single item
        assert not [
            w for w in recwarn if issubclass(
                w.category, SerialFallbackWarning
            )
        ]

    def test_serial_default(self):
        assert parallel_map(str, [1, 2]) == ["1", "2"]


class TestSimulationCache:
    def test_hit_returns_identical_result(self, fig2_result):
        cache = SimulationCache()
        system = fig2_result.distributed_system()
        model = BernoulliCompletion(p=0.7)
        first = simulate_cached(
            system, fig2_result.bound, model, cache=cache, seed=3
        )
        second = simulate_cached(
            system, fig2_result.bound, BernoulliCompletion(p=0.7),
            cache=cache, seed=3,
        )
        assert cache.hits == 1 and cache.misses == 1
        assert first == second
        direct = simulate(
            system, fig2_result.bound, BernoulliCompletion(p=0.7), seed=3
        )
        assert second.cycles == direct.cycles
        assert second.fast_outcomes == direct.fast_outcomes

    def test_key_sensitivity(self, fig2_result, fig3_result):
        cache = SimulationCache()
        model = BernoulliCompletion(p=0.7)
        base = cache.key(
            fig2_result.distributed_system(), fig2_result.bound, model,
            seed=0, iterations=1,
        )
        assert base != cache.key(
            fig2_result.distributed_system(), fig2_result.bound, model,
            seed=1, iterations=1,
        )
        assert base != cache.key(
            fig2_result.distributed_system(), fig2_result.bound, model,
            seed=0, iterations=2,
        )
        assert base != cache.key(
            fig3_result.distributed_system(), fig3_result.bound, model,
            seed=0, iterations=1,
        )

    def test_directory_backed_survives_new_instance(
        self, tmp_path, fig2_result
    ):
        path = str(tmp_path / "simcache")
        system = fig2_result.distributed_system()
        first = simulate_cached(
            system, fig2_result.bound, BernoulliCompletion(p=0.5),
            cache=SimulationCache(path), seed=1,
        )
        fresh = SimulationCache(path)
        second = simulate_cached(
            system, fig2_result.bound, BernoulliCompletion(p=0.5),
            cache=fresh, seed=1,
        )
        assert fresh.hits == 1 and fresh.misses == 0
        assert first == second

    def test_trace_request_bypasses_cache(self, fig2_result):
        cache = SimulationCache()
        simulate_cached(
            fig2_result.distributed_system(), fig2_result.bound,
            BernoulliCompletion(p=0.7), cache=cache, seed=0,
            record_trace=True,
        )
        assert len(cache) == 0 and cache.misses == 0

    def test_fingerprints_are_stable_hex(self, fig2_result):
        fp = design_fingerprint(fig2_result.bound)
        assert fp == design_fingerprint(fig2_result.bound)
        assert len(fp) == 64
        sp = system_fingerprint(fig2_result.distributed_system())
        assert sp == system_fingerprint(fig2_result.distributed_system())
        assert model_fingerprint(
            BernoulliCompletion(p=0.7)
        ) != model_fingerprint(BernoulliCompletion(p=0.9))

    def test_monte_carlo_with_cache_matches_without(self, fig2_result):
        system = fig2_result.distributed_system()
        plain = monte_carlo_latency(
            system, fig2_result.bound, p=0.7, trials=25, seed=0
        )
        cache = SimulationCache()
        cached = monte_carlo_latency(
            system, fig2_result.bound, p=0.7, trials=25, seed=0, cache=cache,
        )
        assert cached == plain
        assert cache.misses == 25
        again = monte_carlo_latency(
            system, fig2_result.bound, p=0.7, trials=25, seed=0, cache=cache,
        )
        assert again == plain
        assert cache.hits == 25


class TestSelfHealingCaches:
    """Corrupt cache files are quarantined and recomputed, never raised."""

    def _seed_entry(self, path, fig2_result):
        cache = SimulationCache(path)
        system = fig2_result.distributed_system()
        model = BernoulliCompletion(p=0.5)
        first = simulate_cached(
            system, fig2_result.bound, model, cache=cache, seed=2
        )
        key = cache.key(
            system, fig2_result.bound, model, seed=2, iterations=1
        )
        return first, key, os.path.join(path, f"{key}.json")

    def test_truncated_file_is_a_miss_not_an_error(
        self, tmp_path, fig2_result
    ):
        # regression: a truncated entry used to raise JSONDecodeError
        # out of get(); now it is quarantined and recomputed
        path = str(tmp_path / "simcache")
        first, key, file_path = self._seed_entry(path, fig2_result)
        blob = open(file_path).read()
        with open(file_path, "w") as handle:
            handle.write(blob[: len(blob) // 2])
        fresh = SimulationCache(path)
        assert fresh.get(key) is None
        assert fresh.quarantined == 1
        assert os.path.exists(file_path + ".corrupt")
        model = BernoulliCompletion(p=0.5)
        recomputed = simulate_cached(
            fig2_result.distributed_system(), fig2_result.bound, model,
            cache=fresh, seed=2,
        )
        assert recomputed == first
        assert SimulationCache(path).get(key) == first

    def test_checksum_mismatch_quarantined(self, tmp_path, fig2_result):
        import json

        path = str(tmp_path / "simcache")
        _, key, file_path = self._seed_entry(path, fig2_result)
        data = json.load(open(file_path))
        data["payload"]["cycles"] = data["payload"]["cycles"] + 1
        with open(file_path, "w") as handle:
            json.dump(data, handle)
        fresh = SimulationCache(path)
        assert fresh.get(key) is None
        assert fresh.quarantined == 1

    def test_quarantine_reports_to_ambient_report(
        self, tmp_path, fig2_result
    ):
        from repro.runtime import active_report

        path = str(tmp_path / "simcache")
        _, key, file_path = self._seed_entry(path, fig2_result)
        with open(file_path, "w") as handle:
            handle.write("not json at all")
        with active_report() as report:
            assert SimulationCache(path).get(key) is None
        assert report.count("cache-quarantine") == 1

    def test_synthesis_cache_truncated_entry_heals(self, tmp_path):
        from repro.perf.cache import SynthesisCache

        path = str(tmp_path / "syncache")
        cache = SynthesisCache(path)
        key = SynthesisCache.key("schedule", {"dfg": "abc"}, {"opt": 1})
        cache.put(key, {"artifact": [1, 2, 3]})
        file_path = os.path.join(path, f"{key}.syn.json")
        with open(file_path, "w") as handle:
            handle.write('{"sha256": "dead')
        fresh = SynthesisCache(path)
        assert fresh.get(key) is None
        assert fresh.quarantined == 1
        fresh.put(key, {"artifact": [1, 2, 3]})
        assert SynthesisCache(path).get(key) == {"artifact": [1, 2, 3]}

    def test_legacy_bare_payload_still_readable(self, tmp_path):
        import json

        from repro.perf.cache import SynthesisCache

        path = str(tmp_path / "syncache")
        cache = SynthesisCache(path)
        key = SynthesisCache.key("bind", {"order": "xyz"}, {})
        # a pre-envelope file: bare payload, no checksum wrapper
        os.makedirs(path, exist_ok=True)
        with open(os.path.join(path, f"{key}.syn.json"), "w") as handle:
            json.dump({"legacy": True}, handle)
        assert cache.get(key) == {"legacy": True}
        assert cache.quarantined == 0


class TestBench:
    def test_quick_bench_structure(self):
        report = run_bench(
            ("fig3",), quick=True, trials=16, workers=2, seed=0
        )
        assert isinstance(report, BenchReport)
        assert report.data["quick"] is True
        assert report.data["schema"] == 3
        assert report.data["p"] == 0.7
        assert report.data["completion"] == "bernoulli:0.7"
        assert list(report.data["benchmarks"]) == ["fig3"]
        row = report.data["benchmarks"]["fig3"]
        mc = row["monte_carlo"]
        assert mc["completion"] == "bernoulli:0.7"
        assert mc["trials"] == 16
        assert mc["serial_s"] > 0 and mc["parallel_s"] > 0
        assert mc["speedup"] == pytest.approx(
            mc["serial_s"] / mc["parallel_s"], rel=1e-2
        )
        engine = row["exact_engine"]
        assert engine["method"] == "frontier-dp"
        assert engine["mean_cycles"] == pytest.approx(
            row["exact_expectation"]["value"], abs=1e-6
        )
        assert "repro bench" in report.render()

    def test_report_round_trips_to_json(self, tmp_path):
        report = run_bench(("fig3",), quick=True, trials=8, workers=1)
        out = tmp_path / "BENCH.json"
        report.write(str(out))
        text = out.read_text()
        assert text.endswith("\n")
        import json

        assert json.loads(text) == report.data
