"""Unit tests for signal naming conventions."""

import pytest

from repro.fsm.signals import (
    is_op_completion,
    is_unit_completion,
    op_completion,
    op_of_completion,
    operand_fetch,
    register_enable,
    state_exec,
    state_extend,
    state_ready,
    unit_completion,
    unit_of_completion,
)


class TestNaming:
    def test_round_trips(self):
        assert op_of_completion(op_completion("o3")) == "o3"
        assert unit_of_completion(unit_completion("TM1")) == "TM1"

    def test_classification_disjoint(self):
        assert is_op_completion(op_completion("o1"))
        assert not is_unit_completion(op_completion("o1"))
        assert is_unit_completion(unit_completion("TM1"))
        assert not is_op_completion(unit_completion("TM1"))

    def test_of_re_not_completions(self):
        assert not is_op_completion(operand_fetch("o1"))
        assert not is_unit_completion(register_enable("o1"))

    def test_wrong_kind_raises(self):
        with pytest.raises(ValueError):
            op_of_completion("OF_o1")
        with pytest.raises(ValueError):
            unit_of_completion("CC_o1")

    def test_state_names_distinct(self):
        names = {state_exec("o1"), state_extend("o1"), state_ready("o1")}
        assert len(names) == 3
