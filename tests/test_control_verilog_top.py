"""Unit tests for the distributed top-level Verilog export."""

import re

import pytest

from repro.control.verilog_top import distributed_to_verilog
from repro.fsm.verilog import sanitize_identifier


@pytest.fixture()
def top_text(fig3_result) -> str:
    return distributed_to_verilog(fig3_result.distributed, "fig3_top")


class TestTopLevel:
    def test_one_module_per_controller_plus_top(self, fig3_result, top_text):
        modules = re.findall(r"^module\s+(\w+)", top_text, re.MULTILINE)
        assert "fig3_top" in modules
        assert len(modules) == len(fig3_result.distributed.controllers) + 1

    def test_live_wires_declared(self, fig3_result, top_text):
        for net in fig3_result.distributed.live_nets():
            assert (
                f"wire pulse_{sanitize_identifier(net.producer_op)};"
                in top_text
            )

    def test_arrival_latches_per_consumer(self, fig3_result, top_text):
        for net in fig3_result.distributed.live_nets():
            for consumer in net.consumer_units:
                flag = (
                    f"flag_{sanitize_identifier(consumer)}_"
                    f"{sanitize_identifier(net.producer_op)}"
                )
                assert f"reg {flag};" in top_text

    def test_pulse_or_flag_effective_signal(self, top_text):
        assert re.search(r"wire eff_\w+ = flag_\w+ \| pulse_\w+;", top_text)

    def test_every_controller_instantiated(self, fig3_result, top_text):
        for unit_name in fig3_result.distributed.unit_names:
            assert f"u_{sanitize_identifier(unit_name)}" in top_text

    def test_external_ports_only(self, fig3_result, top_text):
        header = top_text.split("module fig3_top")[1].split(");")[0]
        assert "C_TM1" in header
        assert "CC_" not in header  # completion wires are internal

    def test_consume_uses_start_strobes(self, top_text):
        assert re.search(r"else if \(st_\w+", top_text)


class TestNameCollisions:
    """Cross-module sanitize collisions must dedupe, not alias."""

    @pytest.fixture()
    def colliding_result(self):
        from repro.api import synthesize
        from repro.core.builder import DFGBuilder

        b = DFGBuilder("collide")
        x, y = b.inputs("x", "y")
        p1 = b.mul("p!", x, y)  # both sanitize to "p_"
        p2 = b.mul("p?", p1, y)
        s = b.add("s", p1, p2)
        b.output("o", s)
        return synthesize(b.build(), "mul:1T,add:1")

    def test_no_duplicate_declarations(self, colliding_result):
        from repro.verify.rtl import parse_verilog

        text = distributed_to_verilog(colliding_result.distributed)
        for module in parse_verilog(text):
            names = [n for n, _ in module.ports]
            names += [n for n, _ in module.decls]
            assert len(names) == len(set(names)), module.name

    def test_lint_reports_no_collision(self, colliding_result):
        from repro.verify import lint_result

        report = lint_result(colliding_result, name="collide")
        assert "RTL004" not in report.rules_fired()
        assert not report.has_errors, report.render()

    def test_colliding_pulse_wires_deduped(self, colliding_result):
        text = distributed_to_verilog(colliding_result.distributed)
        assert "wire pulse_p_;" in text
        assert "wire pulse_p__2;" in text

    def test_clean_names_byte_stable(self, fig3_result, top_text):
        # collision handling must not perturb collision-free designs
        assert top_text == distributed_to_verilog(
            fig3_result.distributed, "fig3_top"
        )
