"""Unit tests for left-edge register binding."""

from hypothesis import given, settings

from repro.benchmarks import differential_equation, fir5
from repro.binding.registers import (
    Lifetime,
    left_edge_register_binding,
    value_lifetimes,
    verify_register_binding,
)
from repro.resources.allocation import ResourceAllocation
from repro.scheduling.asap_alap import asap_schedule
from repro.scheduling.list_scheduler import list_schedule

from conftest import random_dfgs


class TestLifetimes:
    def test_birth_at_producer_step(self):
        sched = asap_schedule(differential_equation())
        lifetimes = {lt.op: lt for lt in value_lifetimes(sched)}
        assert lifetimes["m1"].birth == sched.start["m1"]

    def test_output_values_live_to_end(self):
        sched = asap_schedule(differential_equation())
        lifetimes = {lt.op: lt for lt in value_lifetimes(sched)}
        assert lifetimes["a2"].death == sched.num_steps

    def test_overlap_predicate(self):
        a = Lifetime("a", 0, 2)
        b = Lifetime("b", 2, 3)
        c = Lifetime("c", 3, 4)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestLeftEdge:
    def test_binding_is_legal(self):
        sched = asap_schedule(differential_equation())
        binding = left_edge_register_binding(sched)
        verify_register_binding(sched, binding)

    def test_fewer_registers_than_values(self):
        dfg = fir5()
        sched = list_schedule(dfg, ResourceAllocation.parse("mul:2T,add:1"))
        binding = left_edge_register_binding(sched)
        assert binding.num_registers < len(dfg)

    def test_register_count_equals_peak_overlap(self):
        sched = asap_schedule(differential_equation())
        binding = left_edge_register_binding(sched)
        lifetimes = value_lifetimes(sched)
        peak = 0
        horizon = max(lt.death for lt in lifetimes)
        for t in range(horizon + 1):
            live = sum(1 for lt in lifetimes if lt.birth <= t <= lt.death)
            peak = max(peak, live)
        # Left-edge is optimal for interval graphs.
        assert binding.num_registers == peak

    def test_describe(self):
        sched = asap_schedule(differential_equation())
        binding = left_edge_register_binding(sched)
        assert "registers" in binding.describe()


@settings(max_examples=25, deadline=None)
@given(random_dfgs)
def test_left_edge_legal_on_random_graphs(dfg):
    """Property: no register ever holds two overlapping lifetimes."""
    sched = asap_schedule(dfg)
    binding = left_edge_register_binding(sched)
    verify_register_binding(sched, binding)
