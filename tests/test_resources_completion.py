"""Unit tests for completion models."""

import random

import pytest

from repro.core.ops import ResourceClass
from repro.errors import SimulationError
from repro.resources.completion import (
    AllFastCompletion,
    AllSlowCompletion,
    AssignmentCompletion,
    BernoulliCompletion,
    OperandCompletion,
    TraceCompletion,
    expected_fast_probability,
)
from repro.resources.units import TelescopicUnit

TAU = TelescopicUnit("TM1", ResourceClass.MULTIPLIER)
RNG = random.Random(0)


class TestBernoulli:
    def test_bounds_checked(self):
        with pytest.raises(SimulationError, match="P must be"):
            BernoulliCompletion(1.5)

    def test_degenerate_probabilities(self):
        rng = random.Random(1)
        assert all(
            BernoulliCompletion(1.0).is_fast("o", TAU, None, rng)
            for _ in range(50)
        )
        assert not any(
            BernoulliCompletion(0.0).is_fast("o", TAU, None, rng)
            for _ in range(50)
        )

    def test_expected_probability_close(self):
        p = expected_fast_probability(BernoulliCompletion(0.7), TAU)
        assert abs(p - 0.7) < 0.02


class TestDeterministicModels:
    def test_all_fast(self):
        assert AllFastCompletion().is_fast("o", TAU, None, RNG)

    def test_all_slow(self):
        assert not AllSlowCompletion().is_fast("o", TAU, None, RNG)


class TestTrace:
    def test_replays_in_order(self):
        model = TraceCompletion({"o": [True, False, True]})
        seq = [model.is_fast("o", TAU, None, RNG) for _ in range(3)]
        assert seq == [True, False, True]

    def test_exhaustion_raises(self):
        model = TraceCompletion({"o": [True]})
        model.is_fast("o", TAU, None, RNG)
        with pytest.raises(SimulationError, match="exhausted"):
            model.is_fast("o", TAU, None, RNG)

    def test_missing_op_raises(self):
        with pytest.raises(SimulationError, match="no completion trace"):
            TraceCompletion({}).is_fast("o", TAU, None, RNG)

    def test_reset_restarts(self):
        model = TraceCompletion({"o": [True]})
        model.is_fast("o", TAU, None, RNG)
        model.reset()
        assert model.is_fast("o", TAU, None, RNG)


class TestAssignment:
    def test_lookup(self):
        model = AssignmentCompletion({"a": True, "b": False})
        assert model.is_fast("a", TAU, None, RNG)
        assert not model.is_fast("b", TAU, None, RNG)

    def test_missing_raises(self):
        with pytest.raises(SimulationError, match="no fast/slow"):
            AssignmentCompletion({}).is_fast("x", TAU, None, RNG)


class TestOperandCompletion:
    class _StubCsg:
        def is_fast(self, a, b):
            return a + b < 10

    def test_uses_operands(self):
        model = OperandCompletion({"TM1": self._StubCsg()})
        assert model.is_fast("o", TAU, (2, 3), RNG)
        assert not model.is_fast("o", TAU, (20, 3), RNG)

    def test_requires_operands(self):
        model = OperandCompletion({"TM1": self._StubCsg()})
        with pytest.raises(SimulationError, match="operand values"):
            model.is_fast("o", TAU, None, RNG)

    def test_requires_csg(self):
        model = OperandCompletion({})
        with pytest.raises(SimulationError, match="no completion-signal"):
            model.is_fast("o", TAU, (1, 2), RNG)
