"""Unit tests for the cycle-accurate simulator."""

import pytest

from repro.errors import SimulationError
from repro.resources import (
    AllFastCompletion,
    AllSlowCompletion,
    BernoulliCompletion,
    TraceCompletion,
)
from repro.sim.simulator import simulate


class TestLatency:
    def test_all_fast_equals_best_case(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        assert sim.cycles == fig3_result.latency_comparison().dist.best_cycles

    def test_all_slow_equals_worst_case(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllSlowCompletion(),
        )
        assert (
            sim.cycles == fig3_result.latency_comparison().dist.worst_cycles
        )

    def test_latency_ns_uses_clock(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        assert sim.latency_ns == sim.cycles * 15.0

    def test_finish_after_start(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            BernoulliCompletion(0.5),
            seed=3,
        )
        for op in fig3_result.dfg.op_names():
            assert sim.finish_cycles[op] > sim.start_cycles[op]

    def test_start_respects_dependencies(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            BernoulliCompletion(0.5),
            seed=9,
        )
        for op in fig3_result.dfg.op_names():
            for pred in fig3_result.dfg.predecessors(op):
                assert sim.start_cycles[op] >= sim.finish_cycles[pred]


class TestReproducibility:
    def test_same_seed_same_run(self, fig3_result):
        runs = [
            simulate(
                fig3_result.distributed_system(),
                fig3_result.bound,
                BernoulliCompletion(0.5),
                seed=11,
            ).cycles
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_fast_outcomes_recorded(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllSlowCompletion(),
        )
        for op in fig3_result.bound.telescopic_ops():
            assert sim.fast_outcomes[op][0] is False
        fixed = next(
            op.name
            for op in fig3_result.dfg
            if not fig3_result.bound.is_telescopic_op(op.name)
        )
        assert sim.fast_outcomes[fixed][0] is True


class TestTrace:
    def test_trace_recorded(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
            record_trace=True,
        )
        assert len(sim.trace) == sim.iteration_finish_cycles[0]
        text = sim.trace.render()
        assert "cycle" in text

    def test_trace_optional(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        assert sim.trace is None


class TestIterations:
    def test_multiple_iterations_monotone(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            BernoulliCompletion(0.7),
            iterations=4,
            seed=5,
        )
        finishes = sim.iteration_finish_cycles
        assert len(finishes) == 4
        assert list(finishes) == sorted(finishes)

    def test_throughput_needs_two_iterations(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        with pytest.raises(SimulationError, match="two simulated"):
            sim.throughput_cycles()

    def test_bad_iteration_count(self, fig3_result):
        with pytest.raises(SimulationError, match=">= 1"):
            simulate(
                fig3_result.distributed_system(),
                fig3_result.bound,
                AllFastCompletion(),
                iterations=0,
            )


class TestDeadlockDetection:
    def test_max_cycles_guards_against_hangs(self, fig3_result):
        with pytest.raises(SimulationError, match="deadlock"):
            simulate(
                fig3_result.distributed_system(),
                fig3_result.bound,
                AllSlowCompletion(),
                max_cycles=2,
            )


class TestDatapathIntegration:
    def test_results_verified_automatically(self, fig3_result):
        inputs = {n: i + 1 for i, n in enumerate(fig3_result.dfg.inputs)}
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            BernoulliCompletion(0.5),
            seed=2,
            inputs=inputs,
        )
        reference = fig3_result.dfg.evaluate(inputs)
        assert sim.datapath.output_values()["out"] == reference["out"]

    def test_trace_completion_model(self, fig3_result):
        tau_ops = fig3_result.bound.telescopic_ops()
        model = TraceCompletion({op: [False] * 4 for op in tau_ops})
        sim = simulate(
            fig3_result.distributed_system(), fig3_result.bound, model
        )
        worst = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllSlowCompletion(),
        )
        assert sim.cycles == worst.cycles
