"""CLI surface tests for the campaign fabric subcommands and flags."""

from __future__ import annotations

import json
import os

from repro.cli import main
from repro.fabric import STATUS_FILE, default_backup_path
from repro.runtime.journal import CheckpointJournal


class TestFabricFlagValidation:
    def test_fabric_requires_checkpoint_dir(self, capsys):
        rc = main(["table2", "--fabric"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "--fabric requires --checkpoint-dir" in captured.err

    def test_faults_fabric_requires_checkpoint_dir(self, capsys):
        rc = main(["faults", "fir3", "--fabric", "--trials", "2"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "--fabric requires --checkpoint-dir" in captured.err


class TestFabricWorker:
    def test_needs_join_or_connect(self, capsys):
        rc = main(["fabric", "worker"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "--join DIR or both --connect" in captured.err

    def test_connect_without_token(self, capsys):
        rc = main(["fabric", "worker", "--connect", "127.0.0.1:9"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "--token" in captured.err

    def test_malformed_connect_address(self, capsys):
        rc = main(
            ["fabric", "worker", "--connect", "noport", "--token", "t"]
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "HOST:PORT" in captured.err

    def test_join_without_coordinator(self, tmp_path, capsys):
        rc = main(["fabric", "worker", "--join", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "no joinable fabric coordinator" in captured.err

    def test_join_with_stale_status_file(self, tmp_path, capsys):
        # a coordinator address nobody is listening on: the worker
        # reports the connection failure instead of hanging
        (tmp_path / STATUS_FILE).write_text(
            json.dumps(
                {
                    "address": {"host": "127.0.0.1", "port": 9},
                    "token": "stale",
                }
            )
        )
        rc = main(["fabric", "worker", "--join", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "error: fabric worker" in captured.err


class TestFabricStatus:
    def test_missing_directory(self, tmp_path, capsys):
        rc = main(["fabric", "status", str(tmp_path / "nowhere")])
        captured = capsys.readouterr()
        assert rc == 0
        assert "coordinator: none active" in captured.out
        assert "(missing)" in captured.out

    def test_populated_journal_counts(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        journal = CheckpointJournal(str(ckpt))
        for shard in range(3):
            journal.put(journal.key("status-test", shard), shard)
        # one quarantined file and an empty backup directory
        (ckpt / "deadbeef.shard.pkl.corrupt").write_bytes(b"torn")
        os.makedirs(default_backup_path(str(ckpt)), exist_ok=True)
        rc = main(["fabric", "status", str(ckpt)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "coordinator: none active" in captured.out
        assert "3 shard(s), 1 quarantined" in captured.out
        assert "backup:" in captured.out

    def test_active_coordinator_announced(self, tmp_path, capsys):
        (tmp_path / STATUS_FILE).write_text(
            json.dumps(
                {
                    "address": {"host": "127.0.0.1", "port": 4242},
                    "token": "secret",
                    "pid": 1234,
                    "nodes": 2,
                    "run_key": "k",
                    "shards_total": 8,
                    "shards_missing": 5,
                }
            )
        )
        rc = main(["fabric", "status", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "coordinator: 127.0.0.1:4242" in captured.out
        assert "5/8 shard(s) outstanding" in captured.out
        assert "repro fabric worker --join" in captured.out
        # the session token is never printed
        assert "secret" not in captured.out


class TestResumeQuarantineNote:
    def test_resume_warns_about_quarantined_shards(
        self, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "manifest.json").write_text(
            json.dumps({"argv": ["benchmarks"]})
        )
        (ckpt / "feedface.shard.pkl.corrupt").write_bytes(b"torn")
        backup = default_backup_path(str(ckpt))
        os.makedirs(backup, exist_ok=True)
        with open(
            os.path.join(backup, "feedface.shard.pkl.corrupt"), "wb"
        ) as handle:
            handle.write(b"torn")
        rc = main(["resume", str(ckpt)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "resuming: repro benchmarks" in captured.err
        notes = [
            line
            for line in captured.err.splitlines()
            if "quarantined shard file(s)" in line
        ]
        assert len(notes) == 2  # one per journal copy
        assert "restored from a replica or recomputed" in notes[0]

    def test_resume_silent_without_quarantine(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "manifest.json").write_text(
            json.dumps({"argv": ["benchmarks"]})
        )
        rc = main(["resume", str(ckpt)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "quarantined" not in captured.err


class TestFabricEndToEnd:
    def test_faults_fabric_json_matches_serial(self, tmp_path, capsys):
        base = [
            "faults",
            "fir3",
            "--trials",
            "6",
            "--style",
            "dist",
        ]
        serial_json = tmp_path / "serial.json"
        rc = main(base + ["--json", str(serial_json)])
        assert rc == 0
        capsys.readouterr()

        fabric_json = tmp_path / "fabric.json"
        rc = main(
            base
            + [
                "--json",
                str(fabric_json),
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
                "--fabric",
                "--nodes",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert serial_json.read_bytes() == fabric_json.read_bytes()
        # the rendered coverage tables match too
        assert captured.out
