"""Unit tests for graph validation and schedule-arc checking."""

import pytest

from repro.core.builder import DFGBuilder
from repro.core.validate import (
    concurrent_pairs,
    validate_dfg,
    validate_extra_edges,
)
from repro.errors import GraphError


@pytest.fixture()
def dfg():
    b = DFGBuilder("v")
    x, y = b.inputs("x", "y")
    m1 = b.mul("m1", x, y)
    m2 = b.mul("m2", x, 2)
    s = b.add("s", m1, m2)
    b.output("out", s)
    return b.build()


class TestValidateDfg:
    def test_valid_graph_passes(self, dfg):
        validate_dfg(dfg)
        validate_dfg(dfg, require_outputs=True)

    def test_missing_outputs_flagged(self):
        b = DFGBuilder("noout")
        x = b.input("x")
        b.mul("m", x, x)
        dfg = b.build()
        with pytest.raises(GraphError, match="no primary outputs"):
            validate_dfg(dfg, require_outputs=True)


class TestValidateExtraEdges:
    def test_legal_arc(self, dfg):
        validate_extra_edges(dfg, (("m1", "m2"),))

    def test_self_loop_rejected(self, dfg):
        with pytest.raises(GraphError, match="self-loop"):
            validate_extra_edges(dfg, (("m1", "m1"),))

    def test_unknown_op_rejected(self, dfg):
        with pytest.raises(GraphError, match="unknown ops"):
            validate_extra_edges(dfg, (("m1", "nope"),))

    def test_cycle_through_data_edge_rejected(self, dfg):
        # s depends on m1; arc s->m1 closes a cycle.
        with pytest.raises(GraphError, match="cycle"):
            validate_extra_edges(dfg, (("s", "m1"),))

    def test_cycle_through_two_arcs_rejected(self, dfg):
        with pytest.raises(GraphError, match="cycle"):
            validate_extra_edges(dfg, (("m1", "m2"), ("m2", "m1")))


class TestConcurrentPairs:
    def test_independent_ops_concurrent(self, dfg):
        pairs = concurrent_pairs(dfg)
        assert frozenset(("m1", "m2")) in pairs

    def test_dependent_ops_not_concurrent(self, dfg):
        pairs = concurrent_pairs(dfg)
        assert frozenset(("m1", "s")) not in pairs
        assert frozenset(("m2", "s")) not in pairs
