"""Tests for the checkpoint journal (:mod:`repro.runtime.journal`)."""

from __future__ import annotations

import os

import pytest

from repro.errors import CheckpointInterrupted
from repro.runtime import CheckpointJournal, active_report, checkpointed_map
from repro.runtime.journal import (
    SHARD_SUFFIX,
    atomic_write_bytes,
    resolve_journal,
)


def _double(x: int) -> int:
    return 2 * x


class TestAtomicWrite:
    def test_roundtrip_leaves_no_temp_files(self, tmp_path):
        target = str(tmp_path / "blob.bin")
        atomic_write_bytes(target, b"hello")
        assert open(target, "rb").read() == b"hello"
        atomic_write_bytes(target, b"replaced")
        assert open(target, "rb").read() == b"replaced"
        assert os.listdir(str(tmp_path)) == ["blob.bin"]


class TestCheckpointJournal:
    def test_put_get_roundtrip(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "ck"))
        key = journal.key("run-a", 0)
        assert journal.get(key) == (False, None)
        journal.put(key, {"cycles": 11})
        assert journal.get(key) == (True, {"cycles": 11})
        assert journal.new_shards == 1 and journal.replayed == 1

    def test_keys_are_content_addressed(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "ck"))
        assert journal.key("run-a", 0) != journal.key("run-a", 1)
        assert journal.key("run-a", 0) != journal.key("run-b", 0)
        assert journal.key("run-a", 0) == CheckpointJournal.key("run-a", 0)

    def test_truncated_shard_quarantined_and_recomputed(self, tmp_path):
        path = str(tmp_path / "ck")
        journal = CheckpointJournal(path)
        key = journal.key("run-a", 3)
        journal.put(key, [1, 2, 3])
        shard = journal.shard_file(key)
        blob = open(shard, "rb").read()
        with open(shard, "wb") as handle:
            handle.write(blob[: len(blob) - 4])
        fresh = CheckpointJournal(path)
        with active_report() as report:
            assert fresh.get(key) == (False, None)
        assert fresh.quarantined == 1
        assert os.path.exists(shard + ".corrupt")
        assert report.count("journal-quarantine") == 1
        fresh.put(key, [1, 2, 3])
        assert fresh.get(key) == (True, [1, 2, 3])

    def test_garbage_header_quarantined(self, tmp_path):
        path = str(tmp_path / "ck")
        journal = CheckpointJournal(path)
        key = journal.key("run-a", 0)
        with open(journal.shard_file(key), "wb") as handle:
            handle.write(b"not a shard at all")
        assert journal.get(key) == (False, None)
        assert journal.quarantined == 1

    def test_max_new_shards_interrupts_deterministically(self, tmp_path):
        journal = CheckpointJournal(
            str(tmp_path / "ck"), max_new_shards=2
        )
        journal.put(journal.key("r", 0), 0)
        journal.put(journal.key("r", 1), 1)
        with pytest.raises(CheckpointInterrupted) as excinfo:
            journal.put(journal.key("r", 2), 2)
        assert excinfo.value.shards_written == 2

    def test_resolve_journal(self, tmp_path):
        assert resolve_journal(None) is None
        journal = CheckpointJournal(str(tmp_path / "ck"))
        assert resolve_journal(journal) is journal
        made = resolve_journal(str(tmp_path / "other"))
        assert isinstance(made, CheckpointJournal)


class TestCheckpointedMap:
    def test_without_journal_is_plain_map(self):
        assert checkpointed_map(
            _double, range(5), run_key="", checkpoint=None
        ) == [0, 2, 4, 6, 8]

    def test_shards_written_incrementally_and_replayed(self, tmp_path):
        path = str(tmp_path / "ck")
        out = checkpointed_map(
            _double, range(6), run_key="run", checkpoint=path
        )
        assert out == [0, 2, 4, 6, 8, 10]
        shards = [
            f for f in os.listdir(path) if f.endswith(SHARD_SUFFIX)
        ]
        assert len(shards) == 6
        replay = CheckpointJournal(path)
        again = checkpointed_map(
            _double, range(6), run_key="run", checkpoint=replay
        )
        assert again == out
        assert replay.replayed == 6 and replay.new_shards == 0

    def test_interrupted_run_resumes_byte_identically(self, tmp_path):
        path = str(tmp_path / "ck")
        limited = CheckpointJournal(path, max_new_shards=3)
        with pytest.raises(CheckpointInterrupted):
            checkpointed_map(
                _double, range(10), run_key="run", checkpoint=limited
            )
        assert limited.new_shards == 3
        resumed = checkpointed_map(
            _double, range(10), run_key="run",
            checkpoint=CheckpointJournal(path),
        )
        assert resumed == [_double(x) for x in range(10)]

    def test_run_keys_do_not_cross_replay(self, tmp_path):
        path = str(tmp_path / "ck")
        checkpointed_map(_double, range(3), run_key="a", checkpoint=path)
        fresh = CheckpointJournal(path)
        checkpointed_map(str, range(3), run_key="b", checkpoint=fresh)
        assert fresh.replayed == 0 and fresh.new_shards == 3

    def test_parallel_and_serial_share_a_journal(self, tmp_path):
        path = str(tmp_path / "ck")
        first = checkpointed_map(
            _double, range(8), run_key="run", checkpoint=path, workers=2
        )
        replay = CheckpointJournal(path)
        second = checkpointed_map(
            _double, range(8), run_key="run", checkpoint=replay, workers=1
        )
        assert first == second
        assert replay.replayed == 8
