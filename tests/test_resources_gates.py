"""Unit tests for the gate-level netlist and event-driven simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.resources.gates import Netlist, bus_values, read_bus


def make_xor_chain(length: int) -> Netlist:
    nl = Netlist("xors")
    nl.add_input("a")
    prev = "a"
    for i in range(length):
        nl.add_input(f"b{i}")
        prev = nl.add_gate("XOR", [prev, f"b{i}"], f"x{i}", delay_ns=1.0)
    nl.mark_output(prev)
    return nl


class TestConstruction:
    def test_duplicate_net_rejected(self):
        nl = Netlist("n")
        nl.add_input("a")
        with pytest.raises(LogicError, match="already exists"):
            nl.add_input("a")

    def test_gate_output_collision(self):
        nl = Netlist("n")
        nl.add_input("a")
        nl.add_gate("NOT", ["a"], "b")
        with pytest.raises(LogicError, match="already driven"):
            nl.add_gate("NOT", ["a"], "b")

    def test_unknown_gate_kind(self):
        nl = Netlist("n")
        nl.add_input("a")
        with pytest.raises(LogicError, match="unknown gate kind"):
            nl.add_gate("XNOR3", ["a"], "b")

    def test_topological_build_enforced(self):
        nl = Netlist("n")
        nl.add_input("a")
        with pytest.raises(LogicError, match="does not exist yet"):
            nl.add_gate("AND", ["a", "later"], "b")

    def test_mark_unknown_output(self):
        nl = Netlist("n")
        with pytest.raises(LogicError, match="unknown net"):
            nl.mark_output("zz")


class TestEvaluate:
    def test_basic_gates(self):
        nl = Netlist("g")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate("AND", ["a", "b"], "and_o")
        nl.add_gate("OR", ["a", "b"], "or_o")
        nl.add_gate("XOR", ["a", "b"], "xor_o")
        nl.add_gate("NAND", ["a", "b"], "nand_o")
        nl.add_gate("NOR", ["a", "b"], "nor_o")
        nl.add_gate("NOT", ["a"], "not_o")
        nl.add_gate("BUF", ["b"], "buf_o")
        v = nl.evaluate({"a": 1, "b": 0})
        assert (v["and_o"], v["or_o"], v["xor_o"]) == (0, 1, 1)
        assert (v["nand_o"], v["nor_o"]) == (1, 0)
        assert (v["not_o"], v["buf_o"]) == (0, 0)

    def test_missing_input_value(self):
        nl = make_xor_chain(2)
        with pytest.raises(LogicError, match="missing value"):
            nl.evaluate({"a": 1})


class TestSettle:
    def test_no_change_settles_at_zero(self):
        nl = make_xor_chain(3)
        zeros = {"a": 0, "b0": 0, "b1": 0, "b2": 0}
        values, settle = nl.settle(zeros, zeros)
        assert settle == 0.0

    def test_chain_depth_sets_settle_time(self):
        nl = make_xor_chain(4)
        stim = {"a": 1, "b0": 0, "b1": 0, "b2": 0, "b3": 0}
        values, settle = nl.settle(stim)
        assert settle == pytest.approx(4.0)
        assert values["x3"] == 1

    def test_cancelled_edge_does_not_stick(self):
        # Both XOR inputs flip together: output must stay 0.
        nl = Netlist("c")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate("XOR", ["a", "b"], "x", delay_ns=1.0)
        nl.mark_output("x")
        values, _ = nl.settle({"a": 1, "b": 1})
        assert values["x"] == 0

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_settle_matches_evaluate(self, a, b, prev):
        """Property: event-driven final values equal zero-delay evaluation."""
        nl = make_xor_chain(8)
        def stim(word):
            values = {"a": word & 1}
            values.update(
                {f"b{i}": (word >> i) & 1 for i in range(8)}
            )
            return values
        final, _ = nl.settle(stim(a ^ b), stim(prev))
        assert final == {**nl.evaluate(stim(a ^ b))}


class TestBusHelpers:
    def test_round_trip(self):
        values = bus_values("d", 8, 0xA5)
        assert read_bus(values, "d", 8) == 0xA5
