"""Unit tests for completion-signal-generator synthesis and verification."""

import pytest

from repro.errors import LogicError
from repro.resources.bitlevel import ArrayMultiplier, RippleCarryAdder
from repro.resources.csg import (
    AdderCSG,
    measure_fast_fraction,
    small_value_distribution,
    sparse_distribution,
    synthesize_adder_csg,
    synthesize_multiplier_csg,
    uniform_distribution,
    verify_csg_safety,
)


class TestAdderCsg:
    def test_synthesized_csg_is_safe_exhaustively(self):
        adder = RippleCarryAdder(width=7)
        sd = adder.base_delay_ns + 2.0 * adder.gate_delay_ns * 3
        csg = synthesize_adder_csg(adder, sd)
        assert csg.max_chain == 3
        checked = verify_csg_safety(csg, adder.delay_ns, csg.short_delay_ns, 7)
        assert checked == (1 << 7) ** 2

    def test_unsafe_csg_detected(self):
        adder = RippleCarryAdder(width=6)
        # Deliberately over-permissive chain bound for a tight SD.
        bogus = AdderCSG(adder=adder, max_chain=6)
        tight_sd = adder.base_delay_ns + 2.0 * adder.gate_delay_ns
        with pytest.raises(LogicError, match="unsafe CSG"):
            verify_csg_safety(bogus, adder.delay_ns, tight_sd, 6)

    def test_sd_below_base_rejected(self):
        adder = RippleCarryAdder(width=6)
        with pytest.raises(LogicError, match="below the adder"):
            synthesize_adder_csg(adder, 0.1)

    def test_coverage_improves_with_sd(self):
        adder = RippleCarryAdder(width=8)
        loose = synthesize_adder_csg(
            adder, adder.base_delay_ns + 2 * adder.gate_delay_ns * 6
        )
        tight = synthesize_adder_csg(
            adder, adder.base_delay_ns + 2 * adder.gate_delay_ns * 2
        )
        dist = uniform_distribution(8)
        assert measure_fast_fraction(
            loose, dist, samples=2000
        ) >= measure_fast_fraction(tight, dist, samples=2000)


class TestMultiplierCsg:
    def test_synthesized_csg_is_safe(self):
        mult = ArrayMultiplier(width=6)
        sd = mult.base_delay_ns + 0.5 * (
            mult.worst_delay_ns - mult.base_delay_ns
        )
        csg = synthesize_multiplier_csg(mult, sd)
        verify_csg_safety(csg, mult.delay_ns, csg.short_delay_ns, 6)

    def test_zero_operands_always_fast(self):
        mult = ArrayMultiplier(width=6)
        csg = synthesize_multiplier_csg(mult, mult.base_delay_ns + 0.1)
        assert csg.is_fast(0, 63)
        assert csg.is_fast(63, 0)

    def test_sd_below_base_rejected(self):
        mult = ArrayMultiplier(width=6)
        with pytest.raises(LogicError, match="below the multiplier"):
            synthesize_multiplier_csg(mult, 0.1)

    def test_guaranteed_sd_within_target(self):
        mult = ArrayMultiplier(width=8)
        target = mult.base_delay_ns + 0.6 * (
            mult.worst_delay_ns - mult.base_delay_ns
        )
        csg = synthesize_multiplier_csg(mult, target)
        assert csg.short_delay_ns <= target + 1e-9


class TestDistributions:
    def test_small_values_raise_p(self):
        mult = ArrayMultiplier(width=8)
        sd = mult.base_delay_ns + 0.6 * (
            mult.worst_delay_ns - mult.base_delay_ns
        )
        csg = synthesize_multiplier_csg(mult, sd)
        p_uniform = measure_fast_fraction(
            csg, uniform_distribution(8), samples=3000
        )
        p_small = measure_fast_fraction(
            csg, small_value_distribution(8, 4), samples=3000
        )
        assert p_small >= p_uniform

    def test_sparse_operands_fast_for_adder(self):
        adder = RippleCarryAdder(width=8)
        csg = synthesize_adder_csg(
            adder, adder.base_delay_ns + 2 * adder.gate_delay_ns * 3
        )
        p_sparse = measure_fast_fraction(
            csg, sparse_distribution(8, 1), samples=2000
        )
        assert p_sparse > 0.9

    def test_distribution_names(self):
        assert uniform_distribution(8).name == "uniform"
        assert small_value_distribution(8, 4).name == "small4"
        assert sparse_distribution(8, 2).name == "sparse2"

    def test_sampling_honours_width(self):
        import random

        dist = uniform_distribution(6)
        rng = random.Random(0)
        for _ in range(100):
            a, b = dist.sample(rng)
            assert 0 <= a < 64 and 0 <= b < 64
