"""Property-based tests over random DFGs: the full flow's invariants.

Each property synthesizes a random small DFG end-to-end and checks the
reproduction's core guarantees on it.  These are the tests most likely to
find interaction bugs between the scheduler, the binder, Algorithm 1 and
the simulator.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.latency import (
    DistLatencyEvaluator,
    sync_latency_cycles,
)
from repro.api import synthesize
from repro.resources.allocation import ResourceAllocation
from repro.sim.runner import simulate_assignment

from conftest import random_dfgs

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

allocations = st.sampled_from(
    ["mul:1T,add:1,sub:1", "mul:2T,add:1,sub:1", "mul:2T,add:2,sub:1"]
)


def _random_assignment(result, seed: int) -> dict[str, bool]:
    rng = random.Random(seed)
    return {
        op: rng.random() < 0.5 for op in result.bound.telescopic_ops()
    }


@SETTINGS
@given(random_dfgs, allocations, st.integers(0, 1000))
def test_simulator_matches_analytic_model(dfg, spec, seed):
    """Cycle-accurate distributed simulation == weighted longest path."""
    result = synthesize(dfg, spec)
    fast = _random_assignment(result, seed)
    sim = simulate_assignment(
        result.distributed_system(), result.bound, fast
    )
    assert sim.cycles == DistLatencyEvaluator(result.bound)(fast)


@SETTINGS
@given(random_dfgs, allocations, st.integers(0, 1000))
def test_dist_dominates_sync(dfg, spec, seed):
    """DIST latency <= CENT-SYNC latency on every sampled assignment."""
    result = synthesize(dfg, spec)
    fast = _random_assignment(result, seed)
    dist = DistLatencyEvaluator(result.bound)(fast)
    sync = sync_latency_cycles(result.taubm, fast)
    assert dist <= sync


@SETTINGS
@given(random_dfgs, allocations)
def test_latency_bounds(dfg, spec):
    """best = all-fast <= all-slow = worst, and worst <= best + #TAU ops."""
    result = synthesize(dfg, spec)
    evaluator = DistLatencyEvaluator(result.bound)
    tau_ops = result.bound.telescopic_ops()
    best = evaluator({op: True for op in tau_ops})
    worst = evaluator({op: False for op in tau_ops})
    assert best <= worst <= best + len(tau_ops)


@SETTINGS
@given(random_dfgs, allocations, st.integers(0, 1000))
def test_functional_correctness_under_random_control(dfg, spec, seed):
    """Any controller schedule computes the reference dataflow values."""
    result = synthesize(dfg, spec)
    fast = _random_assignment(result, seed)
    inputs = {name: (seed % 7) + i for i, name in enumerate(dfg.inputs)}
    sim = simulate_assignment(
        result.distributed_system(), result.bound, fast, inputs=inputs
    )
    reference = dfg.evaluate(inputs)
    assert sim.datapath.output_values()["y"] == reference["y"]


@SETTINGS
@given(random_dfgs, allocations)
def test_controllers_validate_and_cover_all_ops(dfg, spec):
    """Every generated FSM is deterministic/complete; ops covered once."""
    result = synthesize(dfg, spec)
    covered = []
    for fsm in result.distributed.controllers.values():
        fsm.validate()
        unit_ops = set()
        for t in fsm.transitions:
            unit_ops |= t.completes
        covered.extend(unit_ops)
    assert sorted(covered) == sorted(dfg.op_names())


@SETTINGS
@given(random_dfgs, allocations)
def test_sync_monotone_in_p(dfg, spec):
    """Expected synchronized latency is non-increasing in P."""
    result = synthesize(dfg, spec)
    values = [result.taubm.expected_cycles(p) for p in (0.1, 0.5, 0.9)]
    assert values == sorted(values, reverse=True)


@SETTINGS
@given(random_dfgs, allocations, st.integers(0, 500))
def test_slowing_one_op_never_helps(dfg, spec, seed):
    """Latency is monotone: flipping any op fast->slow cannot reduce it."""
    result = synthesize(dfg, spec)
    evaluator = DistLatencyEvaluator(result.bound)
    fast = _random_assignment(result, seed)
    base = evaluator(fast)
    for op in result.bound.telescopic_ops():
        if fast.get(op, True):
            slower = dict(fast)
            slower[op] = False
            assert evaluator(slower) >= base


@SETTINGS
@given(random_dfgs, st.integers(0, 2000))
def test_multilevel_simulator_matches_analytic(dfg, seed):
    """Multi-level property: simulator == longest path under random
    3-level assignments."""
    from repro.core.ops import ResourceClass
    from repro.resources import LevelAssignmentCompletion, ResourceAllocation
    from repro.sim import simulate

    allocation = ResourceAllocation.build(
        {
            ResourceClass.MULTIPLIER: 1,
            ResourceClass.ADDER: 1,
            ResourceClass.SUBTRACTOR: 1,
        },
        level_delays_ns=(15.0, 30.0, 45.0),
        fixed_delay_ns=15.0,
    )
    result = synthesize(dfg, allocation)
    rng = random.Random(seed)
    levels = {
        op: rng.randrange(3) for op in result.bound.telescopic_ops()
    }
    durations = {
        op: result.bound.duration_for_level(op, level)
        for op, level in levels.items()
    }
    sim = simulate(
        result.distributed_system(),
        result.bound,
        LevelAssignmentCompletion(levels),
    )
    evaluator = DistLatencyEvaluator(result.bound)
    assert sim.cycles == evaluator.for_durations(durations)


@SETTINGS
@given(random_dfgs, allocations)
def test_design_serialization_round_trip(dfg, spec):
    """Property: serialized controllers replay identical simulations."""
    from repro.resources import AllSlowCompletion
    from repro.serialize import fsm_from_dict, fsm_to_dict
    from repro.sim import simulate, system_from_bound

    result = synthesize(dfg, spec)
    clones = {
        unit: fsm_from_dict(fsm_to_dict(fsm))
        for unit, fsm in result.distributed.controllers.items()
    }
    original = simulate(
        result.distributed_system(), result.bound, AllSlowCompletion()
    )
    restored = simulate(
        system_from_bound(result.bound, clones),
        result.bound,
        AllSlowCompletion(),
    )
    assert restored.finish_cycles == original.finish_cycles


@SETTINGS
@given(random_dfgs, allocations)
def test_throughput_bound_is_lower_bound(dfg, spec):
    """Property: simulated pipelined throughput never beats λ*.

    λ* is asymptotic; a finite first-to-last window can average below it
    when the critical cycle spans t > 1 iterations (short and long
    inter-finish gaps interleave within one period, and the first finish
    lags the steady-state schedule by the pipeline fill).  The sound
    finite-horizon form is on absolute finishes: each traversal of the
    critical cycle (t iterations) costs its full duration d, so
    F(k) >= floor((k - 1) / t) * d + 1.
    """
    from repro.analysis import pipelined_throughput_bound
    from repro.resources import AllFastCompletion
    from repro.sim import pipelined_throughput

    iterations = 6
    result = synthesize(dfg, spec)
    bound = pipelined_throughput_bound(result.bound, fast=True)
    sim, throughput = pipelined_throughput(
        result.distributed_system(),
        result.bound,
        AllFastCompletion(),
        iterations=iterations,
    )
    lam = float(bound.cycles_per_iteration)
    cycle_cycles = sum(
        result.bound.duration_cycles(op, True) for op in bound.critical_cycle
    )
    tokens = max(1, round(cycle_cycles / lam))
    forced = ((iterations - 1) // tokens) * cycle_cycles + 1
    assert sim.iteration_finish_cycles[-1] >= forced
    # The windowed average still may not beat λ* by a full period.
    assert throughput >= lam - cycle_cycles / (iterations - 1) - 1e-9
