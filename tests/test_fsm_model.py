"""Unit tests for the FSM model."""

import pytest

from repro.errors import FSMError
from repro.fsm.model import (
    FSM,
    Transition,
    all_cube,
    make_transition,
    not_all_cubes,
)


def two_state_fsm() -> FSM:
    return FSM(
        name="toggle",
        states=("A", "B"),
        initial="A",
        inputs=("go",),
        outputs=("tick",),
        transitions=(
            make_transition("A", "B", {"go": True}, ("tick",)),
            make_transition("A", "A", {"go": False}),
            make_transition("B", "A", {}, ()),
        ),
    )


class TestTransition:
    def test_guard_sorted_and_deduped(self):
        t = make_transition("A", "B", {"z": True, "a": False})
        assert t.guard == (("a", False), ("z", True))

    def test_duplicate_guard_signal_rejected(self):
        with pytest.raises(FSMError, match="twice"):
            Transition(
                source="A",
                target="B",
                guard=(("x", True), ("x", False)),
            )

    def test_matches(self):
        t = make_transition("A", "B", {"x": True, "y": False})
        assert t.matches({"x": True, "y": False})
        assert not t.matches({"x": True, "y": True})

    def test_matches_requires_value(self):
        t = make_transition("A", "B", {"x": True})
        with pytest.raises(FSMError, match="missing"):
            t.matches({})

    def test_guard_str(self):
        t = make_transition("A", "B", {"x": True, "y": False})
        assert t.guard_str() == "x·y'"
        assert make_transition("A", "B").guard_str() == "1"


class TestFsmValidation:
    def test_valid_fsm(self):
        two_state_fsm().validate()

    def test_unknown_initial(self):
        with pytest.raises(FSMError, match="initial state"):
            FSM(
                name="bad",
                states=("A",),
                initial="Z",
                inputs=(),
                outputs=(),
                transitions=(make_transition("A", "A"),),
            )

    def test_undeclared_input_in_guard(self):
        with pytest.raises(FSMError, match="undeclared input"):
            FSM(
                name="bad",
                states=("A",),
                initial="A",
                inputs=(),
                outputs=(),
                transitions=(make_transition("A", "A", {"x": True}),),
            )

    def test_undeclared_output(self):
        with pytest.raises(FSMError, match="undeclared outputs"):
            FSM(
                name="bad",
                states=("A",),
                initial="A",
                inputs=(),
                outputs=(),
                transitions=(make_transition("A", "A", {}, ("zap",)),),
            )

    def test_incomplete_state_detected(self):
        fsm = FSM(
            name="inc",
            states=("A",),
            initial="A",
            inputs=("x",),
            outputs=(),
            transitions=(make_transition("A", "A", {"x": True}),),
        )
        with pytest.raises(FSMError, match="incomplete"):
            fsm.validate()

    def test_nondeterminism_detected(self):
        fsm = FSM(
            name="nd",
            states=("A",),
            initial="A",
            inputs=("x",),
            outputs=(),
            transitions=(
                make_transition("A", "A", {"x": True}),
                make_transition("A", "A", {}),
            ),
        )
        with pytest.raises(FSMError, match="nondeterministic"):
            fsm.validate()

    def test_stateless_state_detected(self):
        fsm = FSM(
            name="dead",
            states=("A", "B"),
            initial="A",
            inputs=(),
            outputs=(),
            transitions=(make_transition("A", "B"),),
        )
        with pytest.raises(FSMError, match="no transitions"):
            fsm.validate()


class TestFsmExecution:
    def test_step_selects_unique_transition(self):
        fsm = two_state_fsm()
        t = fsm.step("A", {"go": True})
        assert t.target == "B"
        assert t.outputs == {"tick"}

    def test_step_unmatched_raises(self):
        fsm = FSM(
            name="x",
            states=("A",),
            initial="A",
            inputs=("g",),
            outputs=(),
            transitions=(make_transition("A", "A", {"g": True}),),
        )
        with pytest.raises(FSMError, match="no transition"):
            fsm.step("A", {"g": False})

    def test_referenced_inputs(self):
        fsm = two_state_fsm()
        assert fsm.referenced_inputs("A") == ("go",)
        assert fsm.referenced_inputs("B") == ()


class TestHelpers:
    def test_not_all_cubes_cover_complement(self):
        import itertools

        signals = ("a", "b", "c")
        cubes = not_all_cubes(signals)
        for values in itertools.product((False, True), repeat=3):
            valuation = dict(zip(signals, values))
            matches = sum(
                all(valuation[k] == v for k, v in cube.items())
                for cube in cubes
            )
            if all(values):
                assert matches == 0
            else:
                assert matches == 1  # disjoint cover of the complement

    def test_all_cube(self):
        assert all_cube(("x", "y")) == {"x": True, "y": True}


class TestReporting:
    def test_logical_transitions_group_cubes(self):
        fsm = FSM(
            name="g",
            states=("A", "B"),
            initial="A",
            inputs=("x", "y"),
            outputs=(),
            transitions=(
                make_transition("A", "B", {"x": False}),
                make_transition("A", "B", {"x": True, "y": False}),
                make_transition("A", "A", {"x": True, "y": True}),
                make_transition("B", "A"),
            ),
        )
        groups = fsm.logical_transitions()
        ab = [g for g in groups if g[0] == "A" and g[1] == "B"]
        assert len(ab) == 1
        assert len(ab[0][3]) == 2  # two cubes merged into one logical edge

    def test_to_dot(self):
        dot = two_state_fsm().to_dot()
        assert "doublecircle" in dot  # initial state highlighted
        assert '"A" -> "B"' in dot

    def test_describe(self):
        assert "2 states" in two_state_fsm().describe()
