"""Unit tests for table/series rendering."""

from repro.analysis.tables import render_series, render_table


class TestRenderTable:
    def test_columns_aligned(self):
        text = render_table(
            ["name", "value"], [["a", "1"], ["long-name", "22"]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert all("|" in line for line in (lines[0], *lines[2:]))
        bars = [line.index("|") for line in (lines[0], *lines[2:])]
        assert len(set(bars)) == 1

    def test_separator_rule(self):
        text = render_table(["h"], [["x"]])
        assert set(text.splitlines()[1]) <= {"-", "+"}

    def test_numeric_cells_stringified(self):
        text = render_table(["n"], [[42]])
        assert "42" in text


class TestRenderSeries:
    def test_points_listed(self):
        text = render_series("title", [(0.5, 10.0), (1.0, 20.0)], unit="ns")
        assert text.startswith("title")
        assert "0.5" in text
        assert "20ns" in text
