"""Unit tests for the top-level synthesis API."""

import pytest

from repro import DFGBuilder, ResourceAllocation, synthesize
from repro.benchmarks import fir3
from repro.errors import AllocationError


class TestSynthesize:
    def test_accepts_spec_string(self):
        result = synthesize(fir3(), "mul:2T,add:1")
        assert result.allocation.count.__self__ is result.allocation
        assert result.bound.dfg.name == "fir3"

    def test_accepts_allocation_object(self):
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        result = synthesize(fir3(), alloc)
        assert result.allocation is alloc

    def test_insufficient_allocation_rejected(self):
        with pytest.raises(AllocationError, match="provides none"):
            synthesize(fir3(), "mul:2T")

    def test_deep_two_level_tau_supported(self):
        """A TAU whose LD spans 3 cycles gets a chained extension FSM."""
        alloc = ResourceAllocation.parse(
            "mul:2T,add:1",
            short_delay_ns=10.0,
            long_delay_ns=25.0,
            fixed_delay_ns=10.0,
        )
        with pytest.raises(AllocationError, match="two-level"):
            alloc.validate_two_level()  # not a paper-style TAU ...
        result = synthesize(fir3(), alloc)  # ... but synthesizable
        fsm = result.distributed.controller("TM1")
        assert any(s.startswith("SX3_") for s in fsm.states)

    def test_artifacts_consistent(self):
        result = synthesize(fir3(), "mul:2T,add:1")
        assert result.schedule.dfg is result.dfg
        assert result.order.dfg is result.dfg
        assert result.bound.order is result.order
        assert result.taubm.base is result.schedule
        assert result.distributed.bound is result.bound

    def test_cached_fsms_are_stable(self):
        result = synthesize(fir3(), "mul:2T,add:1")
        assert result.cent_sync_fsm is result.cent_sync_fsm
        assert result.cent_fsm is result.cent_fsm

    def test_systems_runnable(self):
        from repro.resources import AllFastCompletion
        from repro.sim import simulate

        result = synthesize(fir3(), "mul:2T,add:1")
        for system in (
            result.distributed_system(),
            result.cent_sync_system(),
            result.cent_system(),
        ):
            sim = simulate(system, result.bound, AllFastCompletion())
            assert sim.cycles >= 1

    def test_latency_comparison_kwargs(self):
        result = synthesize(fir3(), "mul:2T,add:1")
        comparison = result.latency_comparison(ps=(0.5,))
        assert list(comparison.dist.expected_cycles) == [0.5]

    def test_force_directed_scheduler_by_name(self):
        """Satellite: the force-directed scheduler is a first-class choice."""
        result = synthesize(fir3(), "mul:2T,add:1",
                            scheduler="force-directed")
        usage = result.schedule.resource_usage()
        for rc, count in usage.items():
            assert count <= result.allocation.count(rc)
        assert result.distributed.describe()

    def test_unknown_scheduler_rejected(self):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError, match="unknown scheduler"):
            synthesize(fir3(), "mul:2T,add:1", scheduler="bogus")

    def test_cache_kwarg(self, tmp_path):
        from repro.perf.cache import SynthesisCache

        cache = SynthesisCache(str(tmp_path / "cache"))
        first = synthesize(fir3(), "mul:2T,add:1", cache=cache)
        second = synthesize(fir3(), "mul:2T,add:1", cache=cache)
        assert cache.hits > 0
        from repro.serialize import design_to_dict, dumps

        assert dumps(design_to_dict(first)) == dumps(design_to_dict(second))


class TestPublicSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet(self):
        """The README/`__init__` docstring flow must keep working."""
        b = DFGBuilder("snippet")
        x, y = b.inputs("x", "y")
        m = b.mul("m", x, y)
        s = b.add("s", m, 1)
        b.output("out", s)
        result = synthesize(b.build(), "mul:1T,add:1")
        assert result.distributed.describe()
