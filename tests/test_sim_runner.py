"""Batch runners: Monte-Carlo statistics, scenario runs, throughput."""

import pytest

from repro.errors import SimulationError
from repro.resources import AllFastCompletion
from repro.sim import simulate
from repro.sim.runner import (
    monte_carlo_latency,
    pipelined_throughput,
    simulate_assignment,
)


class TestMonteCarloLatency:
    def test_deterministic_under_fixed_seed(self, fig3_result):
        a = monte_carlo_latency(
            fig3_result.distributed_system(),
            fig3_result.bound,
            p=0.7,
            trials=25,
            seed=3,
        )
        b = monte_carlo_latency(
            fig3_result.distributed_system(),
            fig3_result.bound,
            p=0.7,
            trials=25,
            seed=3,
        )
        assert a == b

    def test_statistics_are_consistent(self, fig3_result):
        stats = monte_carlo_latency(
            fig3_result.distributed_system(),
            fig3_result.bound,
            p=0.5,
            trials=30,
        )
        assert stats.trials == 30
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.std >= 0.0
        clock = fig3_result.bound.allocation.clock_period_ns()
        assert stats.mean_ns(clock) == pytest.approx(stats.mean * clock)

    def test_degenerate_p_collapses_the_spread(self, fig3_result):
        stats = monte_carlo_latency(
            fig3_result.distributed_system(),
            fig3_result.bound,
            p=1.0,
            trials=10,
        )
        assert stats.minimum == stats.maximum
        assert stats.std == 0.0


class TestSimulateAssignment:
    def test_empty_override_means_all_fast(self, fig3_result):
        assigned = simulate_assignment(
            fig3_result.distributed_system(), fig3_result.bound, fast={}
        )
        all_fast = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        assert assigned.cycles == all_fast.cycles

    def test_override_forces_named_op_slow(self, fig3_result):
        telescopic = sorted(
            op
            for op in fig3_result.distributed_system().all_ops()
            if fig3_result.bound.unit_of(op).is_telescopic
        )
        victim = telescopic[0]
        result = simulate_assignment(
            fig3_result.distributed_system(),
            fig3_result.bound,
            fast={victim: False},
        )
        assert result.fast_outcomes[victim][0] is False
        baseline = simulate_assignment(
            fig3_result.distributed_system(), fig3_result.bound, fast={}
        )
        assert result.cycles >= baseline.cycles


class TestPipelinedThroughput:
    def test_runs_requested_iterations(self, fig3_result):
        result, throughput = pipelined_throughput(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
            iterations=4,
        )
        assert len(result.iteration_finish_cycles) == 4
        assert throughput > 0

    def test_overlap_beats_or_matches_latency(self, fig3_result):
        """Wrap-around controllers overlap iterations: steady-state cycles
        per iteration never exceed the first-iteration latency."""
        result, throughput = pipelined_throughput(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
            iterations=6,
        )
        assert throughput <= result.cycles

    def test_needs_at_least_two_iterations(self, fig3_result):
        with pytest.raises(SimulationError, match="two simulated"):
            pipelined_throughput(
                fig3_result.distributed_system(),
                fig3_result.bound,
                AllFastCompletion(),
                iterations=1,
            )
