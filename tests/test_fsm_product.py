"""Unit tests for the CENT-FSM product construction (Fig. 4(a))."""

import pytest

from repro.benchmarks import fig4_pathological_dfg
from repro.api import synthesize
from repro.errors import FSMError
from repro.fsm.product import build_cent_fsm, build_product_fsm


class TestProductStructure:
    def test_validates(self, fig2_result):
        fig2_result.cent_fsm.validate()

    def test_inputs_are_tau_completions(self, fig2_result):
        cent = fig2_result.cent_fsm
        tau_names = {
            f"C_{u.name}"
            for u in fig2_result.allocation.telescopic_units()
        }
        assert set(cent.inputs) <= tau_names

    def test_more_states_than_any_component(self, fig3_result):
        cent = fig3_result.cent_fsm
        for fsm in fig3_result.distributed.controllers.values():
            assert cent.num_states > fsm.num_states

    def test_state_count_grows_with_tau_count(self):
        counts = []
        for n in (1, 2, 3):
            result = synthesize(fig4_pathological_dfg(n), f"mul:{n}T,add:1")
            counts.append(result.cent_fsm.num_states)
        assert counts[0] < counts[1] < counts[2]
        # Exponential blowup: the growth itself accelerates (Fig. 4(a)).
        assert counts[2] - counts[1] > counts[1] - counts[0]

    def test_max_states_guard(self, fig3_result):
        from repro.fsm.algorithm1 import derive_all_unit_controllers
        from repro.sim.controllers import system_from_bound

        system = system_from_bound(
            fig3_result.bound,
            derive_all_unit_controllers(fig3_result.bound),
        )
        with pytest.raises(FSMError, match="exceeds"):
            build_product_fsm(system, max_states=3)


class TestProductBehaviour:
    def test_outputs_union_of_components(self, fig2_result):
        cent = fig2_result.cent_fsm
        component_outputs = set()
        for fsm in fig2_result.distributed.controllers.values():
            component_outputs |= set(fsm.outputs)
        # Completion signals become internal; OF/RE survive.
        external = {
            s for s in component_outputs if not s.startswith("CC_")
        }
        assert external <= set(cent.outputs)

    def test_initial_starts_union(self, fig2_result):
        cent = fig2_result.cent_fsm
        union = set()
        for fsm in fig2_result.distributed.controllers.values():
            union |= fsm.initial_starts
        assert cent.initial_starts == union
