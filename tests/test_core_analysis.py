"""Unit tests for ASAP/ALAP/mobility/critical-path analyses."""

import pytest
from hypothesis import given, settings

from repro.core.analysis import (
    alap_start_times,
    asap_start_times,
    critical_path,
    finish_times,
    mobility,
    profile,
    schedule_length,
    uniform_durations,
)
from repro.core.builder import DFGBuilder
from repro.errors import GraphError

from conftest import random_dfgs


@pytest.fixture()
def diamond():
    b = DFGBuilder("diamond")
    x = b.input("x")
    top = b.mul("top", x, 2)
    left = b.add("left", top, 1)
    right = b.mul("right", top, 3)
    bottom = b.add("bottom", left, right)
    b.output("y", bottom)
    return b.build()


class TestAsap:
    def test_levels(self, diamond):
        start = asap_start_times(diamond)
        assert start == {"top": 0, "left": 1, "right": 1, "bottom": 2}

    def test_durations_weighting(self, diamond):
        start = asap_start_times(
            diamond, {"top": 2, "left": 1, "right": 3, "bottom": 1}
        )
        assert start["bottom"] == 5  # top(2) + right(3)

    def test_extra_edges_serialize(self, diamond):
        start = asap_start_times(diamond, extra_edges=(("left", "right"),))
        assert start["right"] == 2
        assert start["bottom"] == 3

    def test_backward_pointing_extra_edge(self, diamond):
        # right is inserted after left; an arc right->left must still work.
        start = asap_start_times(diamond, extra_edges=(("right", "left"),))
        assert start["left"] == 2

    def test_bad_duration_rejected(self, diamond):
        with pytest.raises(GraphError, match="must be >= 1"):
            asap_start_times(diamond, {**uniform_durations(diamond), "top": 0})

    def test_missing_duration_rejected(self, diamond):
        with pytest.raises(GraphError, match="no duration"):
            asap_start_times(diamond, {"top": 1})


class TestAlapAndMobility:
    def test_alap_at_critical_horizon(self, diamond):
        alap = alap_start_times(diamond)
        assert alap == {"top": 0, "left": 1, "right": 1, "bottom": 2}

    def test_alap_with_slack(self, diamond):
        alap = alap_start_times(diamond, horizon=5)
        assert alap["bottom"] == 4
        assert alap["top"] == 2

    def test_mobility_zero_on_critical_path(self, diamond):
        slack = mobility(diamond)
        assert slack == {"top": 0, "left": 0, "right": 0, "bottom": 0}

    def test_short_horizon_rejected(self, diamond):
        with pytest.raises(GraphError, match="shorter than the critical"):
            alap_start_times(diamond, horizon=2)


class TestCriticalPath:
    def test_path_endpoints(self, diamond):
        path = critical_path(diamond)
        assert path[0] == "top"
        assert path[-1] == "bottom"
        assert len(path) == 3

    def test_weighted_path_prefers_long_branch(self, diamond):
        path = critical_path(
            diamond, {"top": 1, "left": 5, "right": 1, "bottom": 1}
        )
        assert "left" in path

    def test_schedule_length(self, diamond):
        assert schedule_length(diamond) == 3


class TestFinishTimes:
    def test_finish(self, diamond):
        start = asap_start_times(diamond)
        finish = finish_times(start, uniform_durations(diamond))
        assert finish["bottom"] == 3


class TestProfile:
    def test_profile_fields(self, diamond):
        prof = profile(diamond)
        assert prof.num_ops == 4
        assert prof.depth == 3
        assert prof.width == 2
        assert dict(prof.ops_by_class) == {"mul": 2, "add": 2}
        assert "diamond" in str(prof)


@settings(max_examples=30, deadline=None)
@given(random_dfgs)
def test_asap_respects_dependencies(dfg):
    """Property: every op starts after all its predecessors finish."""
    start = asap_start_times(dfg)
    for op in dfg:
        for pred in dfg.predecessors(op.name):
            assert start[op.name] >= start[pred] + 1


@settings(max_examples=30, deadline=None)
@given(random_dfgs)
def test_alap_not_before_asap(dfg):
    """Property: mobility is non-negative everywhere."""
    slack = mobility(dfg)
    assert all(v >= 0 for v in slack.values())
