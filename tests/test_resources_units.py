"""Unit tests for arithmetic-unit models."""

import pytest

from repro.core.ops import ResourceClass
from repro.errors import AllocationError
from repro.resources.units import FixedDelayUnit, TelescopicUnit, make_unit


class TestFixedDelayUnit:
    def test_cycles_at_matching_clock(self):
        unit = FixedDelayUnit("A1", ResourceClass.ADDER, delay_ns=15.0)
        assert unit.cycles(15.0) == 1

    def test_cycles_at_fast_clock(self):
        unit = FixedDelayUnit("A1", ResourceClass.ADDER, delay_ns=20.0)
        assert unit.cycles(15.0) == 2

    def test_not_telescopic(self):
        unit = FixedDelayUnit("A1", ResourceClass.ADDER)
        assert not unit.is_telescopic
        assert unit.worst_delay_ns == 15.0

    def test_bad_delay(self):
        with pytest.raises(AllocationError, match="positive"):
            FixedDelayUnit("A1", ResourceClass.ADDER, delay_ns=0)


class TestTelescopicUnit:
    def test_paper_timing(self):
        tau = TelescopicUnit(
            "TM1",
            ResourceClass.MULTIPLIER,
            short_delay_ns=15.0,
            long_delay_ns=20.0,
        )
        assert tau.is_telescopic
        assert tau.fast_cycles(15.0) == 1
        assert tau.slow_cycles(15.0) == 2
        assert tau.worst_delay_ns == 20.0

    def test_deep_telescope(self):
        tau = TelescopicUnit(
            "TM1",
            ResourceClass.MULTIPLIER,
            short_delay_ns=10.0,
            long_delay_ns=35.0,
        )
        assert tau.slow_cycles(10.0) == 4

    def test_degenerate_rejected(self):
        with pytest.raises(AllocationError, match="must exceed"):
            TelescopicUnit(
                "TM1",
                ResourceClass.MULTIPLIER,
                short_delay_ns=15.0,
                long_delay_ns=15.0,
            )

    def test_completion_signal_name(self):
        tau = TelescopicUnit("TM1", ResourceClass.MULTIPLIER)
        assert tau.completion_signal_name() == "C_TM1"


class TestMakeUnit:
    def test_makes_telescopic(self):
        unit = make_unit("T1", ResourceClass.MULTIPLIER, telescopic=True)
        assert isinstance(unit, TelescopicUnit)

    def test_makes_fixed(self):
        unit = make_unit(
            "A1", ResourceClass.ADDER, telescopic=False, fixed_delay_ns=12.0
        )
        assert isinstance(unit, FixedDelayUnit)
        assert unit.delay_ns == 12.0
