"""Unit tests for resource allocations."""

import pytest

from repro.benchmarks import differential_equation
from repro.core.ops import ResourceClass
from repro.errors import AllocationError
from repro.resources.allocation import ResourceAllocation
from repro.resources.units import TelescopicUnit


class TestParse:
    def test_paper_allocation(self):
        alloc = ResourceAllocation.parse("mul:2T,add:1,sub:1")
        assert alloc.count(ResourceClass.MULTIPLIER) == 2
        assert alloc.count(ResourceClass.ADDER) == 1
        assert alloc.count(ResourceClass.SUBTRACTOR) == 1
        assert len(alloc.telescopic_units()) == 2

    def test_unit_names(self):
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        assert [u.name for u in alloc] == ["TM1", "TM2", "A1"]

    def test_non_telescopic_multipliers(self):
        alloc = ResourceAllocation.parse("mul:2,add:1")
        assert not alloc.telescopic_units()
        assert [u.name for u in alloc] == ["M1", "M2", "A1"]

    def test_bad_token(self):
        with pytest.raises(AllocationError, match="bad allocation token"):
            ResourceAllocation.parse("mul=2")

    def test_zero_count(self):
        with pytest.raises(AllocationError, match=">= 1"):
            ResourceAllocation.parse("mul:0T")

    def test_custom_timing(self):
        alloc = ResourceAllocation.parse(
            "mul:1T", short_delay_ns=10.0, long_delay_ns=18.0
        )
        tau = alloc.telescopic_units()[0]
        assert tau.short_delay_ns == 10.0
        assert tau.long_delay_ns == 18.0


class TestClocks:
    def test_clock_is_short_delay(self):
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        assert alloc.clock_period_ns() == 15.0

    def test_original_clock_is_worst_delay(self):
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        assert alloc.original_clock_period_ns() == 20.0

    def test_slow_fixed_unit_stretches_clock(self):
        alloc = ResourceAllocation.parse("mul:1T,add:1", fixed_delay_ns=18.0)
        assert alloc.clock_period_ns() == 18.0

    def test_cycles_for(self):
        alloc = ResourceAllocation.parse("mul:1T,add:1")
        assert alloc.cycles_for("TM1", fast=True) == 1
        assert alloc.cycles_for("TM1", fast=False) == 2
        assert alloc.cycles_for("A1", fast=True) == 1

    def test_two_level_validation_passes(self):
        ResourceAllocation.parse("mul:1T,add:1").validate_two_level()

    def test_two_level_validation_fails_on_deep_tau(self):
        alloc = ResourceAllocation.parse(
            "mul:1T", short_delay_ns=10.0, long_delay_ns=25.0
        )
        with pytest.raises(AllocationError, match="two-level"):
            alloc.validate_two_level()


class TestValidation:
    def test_unknown_unit(self):
        alloc = ResourceAllocation.parse("mul:1T")
        with pytest.raises(AllocationError, match="no unit named"):
            alloc.unit("A9")

    def test_duplicate_names_rejected(self):
        unit = TelescopicUnit("X", ResourceClass.MULTIPLIER)
        with pytest.raises(AllocationError, match="duplicate"):
            ResourceAllocation(units=(unit, unit))

    def test_validate_for_covers_graph(self):
        dfg = differential_equation()
        ResourceAllocation.parse("mul:2T,add:1,sub:1").validate_for(dfg)

    def test_validate_for_missing_class(self):
        dfg = differential_equation()
        with pytest.raises(AllocationError, match="provides none"):
            ResourceAllocation.parse("mul:2T,add:1").validate_for(dfg)

    def test_empty_allocation_rejected(self):
        with pytest.raises(AllocationError, match="no units"):
            ResourceAllocation(units=())


class TestBuildAndDefaults:
    def test_paper_default(self):
        alloc = ResourceAllocation.paper_default(
            multipliers=3, adders=2, subtractors=1
        )
        assert alloc.count(ResourceClass.MULTIPLIER) == 3
        assert alloc.count(ResourceClass.ADDER) == 2
        assert alloc.count(ResourceClass.SUBTRACTOR) == 1
        assert all(
            u.is_telescopic
            for u in alloc.units_of_class(ResourceClass.MULTIPLIER)
        )

    def test_describe(self):
        text = ResourceAllocation.parse("mul:1T,add:1").describe()
        assert "TM1" in text and "A1" in text and "15" in text
