"""Tests for the supervised process pool (:mod:`repro.runtime`)."""

from __future__ import annotations

import os
from functools import partial

import pytest

from repro.errors import SimulationError, SupervisionError
from repro.perf.engine import derive_seed, parallel_map
from repro.resources.completion import BernoulliCompletion
from repro.runtime import (
    ChaosConfig,
    RunPolicy,
    RunReport,
    active_report,
)
from repro.sim.simulator import simulate


def _square(x: int) -> int:
    return x * x


def _crashy_latency_trial(
    system, bound, sentinel_dir: str, crash_trial: int, trial: int
) -> int:
    """Monte-Carlo trial that kills its worker once on ``crash_trial``.

    The first worker to reach the chosen trial claims a sentinel file
    (O_EXCL, so exactly one claim ever succeeds) and dies with
    ``os._exit(1)`` — indistinguishable from an OOM kill or a segfault.
    Every later attempt finds the sentinel and computes normally.
    """
    if trial == crash_trial:
        marker = os.path.join(sentinel_dir, f"crash-{trial}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
            os._exit(1)
        except FileExistsError:
            pass
    return simulate(
        system, bound, BernoulliCompletion(0.7),
        seed=derive_seed(0, trial),
    ).cycles


class TestRunPolicy:
    def test_rejects_unknown_on_failure(self):
        with pytest.raises(SimulationError):
            RunPolicy(on_failure="explode")

    def test_rejects_negative_knobs(self):
        with pytest.raises(SimulationError):
            RunPolicy(max_retries=-1)
        with pytest.raises(SimulationError):
            RunPolicy(timeout_s=0)
        with pytest.raises(SimulationError):
            RunPolicy(backoff_s=-0.1)

    def test_retry_budget(self):
        assert RunPolicy(max_retries=2).retry_budget() == 3
        assert RunPolicy(on_failure="raise", max_retries=9).retry_budget() == 1

    def test_backoff_is_deterministic_and_jittered(self):
        policy = RunPolicy(backoff_s=0.1)
        first = policy.backoff_delay(3, 1)
        assert first == policy.backoff_delay(3, 1)
        assert first != policy.backoff_delay(4, 1)
        # exponential growth with jitter in [0.5, 1.5)
        assert 0.05 <= first < 0.15
        assert 0.1 <= policy.backoff_delay(3, 2) < 0.3
        assert RunPolicy(backoff_s=0.0).backoff_delay(3, 1) == 0.0


class TestRunReport:
    def test_rejects_unknown_kind(self):
        with pytest.raises(SimulationError):
            RunReport().record("made-up", "detail")

    def test_counts_and_render(self):
        report = RunReport()
        assert "clean" in report.render()
        report.record("retry", "once", item=3, attempt=1)
        report.record("retry", "twice", item=3, attempt=2)
        report.record("skip", "gone", item=3)
        assert report.recoveries == 3
        assert report.counts() == {"retry": 2, "skip": 1}
        assert report.to_dict()["events"][0]["item"] == 3
        assert "item 3" in report.render()

    def test_ambient_nesting_innermost_wins(self):
        from repro.runtime.policy import current_report, record_event

        assert current_report() is None
        with active_report() as outer:
            with active_report() as inner:
                record_event(None, "skip", "x")
            assert inner.recoveries == 1
            assert outer.recoveries == 0
        assert current_report() is None


class TestSupervisedMap:
    def test_clean_run_matches_serial(self):
        report = RunReport()
        out = parallel_map(
            _square, range(23), workers=3,
            policy=RunPolicy(), report=report,
        )
        assert out == [x * x for x in range(23)]
        assert report.recoveries == 0

    def test_worker_crash_recovered(self, tmp_path):
        report = RunReport()
        policy = RunPolicy(
            chaos=ChaosConfig(
                crash_items=(5,), sentinel_dir=str(tmp_path)
            ),
        )
        out = parallel_map(
            _square, range(12), workers=2, policy=policy, report=report,
        )
        assert out == [x * x for x in range(12)]
        assert report.count("worker-crash") >= 1
        assert report.count("pool-restart") >= 1

    def test_injected_failure_retried(self, tmp_path):
        report = RunReport()
        policy = RunPolicy(
            backoff_s=0.0,
            chaos=ChaosConfig(
                fail_items=(4,), sentinel_dir=str(tmp_path)
            ),
        )
        out = parallel_map(
            _square, range(8), workers=2, policy=policy, report=report,
        )
        assert out == [x * x for x in range(8)]
        assert report.count("retry") == 1

    def test_skip_leaves_a_none_hole(self, tmp_path):
        report = RunReport()
        policy = RunPolicy(
            on_failure="skip", max_retries=1, backoff_s=0.0,
            chaos=ChaosConfig(
                fail_items=(3,), once=False, sentinel_dir=str(tmp_path)
            ),
        )
        out = parallel_map(
            _square, range(8), workers=2, policy=policy, report=report,
        )
        assert out[3] is None
        assert [v for i, v in enumerate(out) if i != 3] == [
            x * x for x in range(8) if x != 3
        ]
        assert report.count("skip") == 1

    def test_raise_fails_fast(self, tmp_path):
        policy = RunPolicy(
            on_failure="raise",
            chaos=ChaosConfig(
                fail_items=(2,), once=False, sentinel_dir=str(tmp_path)
            ),
        )
        with pytest.raises(SupervisionError) as excinfo:
            parallel_map(_square, range(8), workers=2, policy=policy)
        assert excinfo.value.item == 2
        assert excinfo.value.attempts == 1

    def test_serial_degrade_final_attempt(self, tmp_path):
        report = RunReport()
        policy = RunPolicy(
            on_failure="serial", max_retries=1, backoff_s=0.0,
            chaos=ChaosConfig(
                fail_items=(6,), once=False, sentinel_dir=str(tmp_path)
            ),
        )
        out = parallel_map(
            _square, range(8), workers=2, policy=policy, report=report,
        )
        # chaos is worker-only, so the in-process last attempt succeeds
        assert out == [x * x for x in range(8)]
        assert report.count("serial-degrade") == 1

    def test_hung_chunk_degrades_after_timeout(self, tmp_path):
        report = RunReport()
        policy = RunPolicy(
            timeout_s=0.2,
            chaos=ChaosConfig(
                hang_items=(1,), hang_s=3.0, sentinel_dir=str(tmp_path)
            ),
        )
        out = parallel_map(
            _square, range(4), workers=2, chunksize=1,
            policy=policy, report=report,
        )
        assert out == [0, 1, 4, 9]
        assert report.count("timeout") >= 1
        assert report.count("timeout-degrade") >= 1

    def test_ambient_report_collects_without_explicit_param(self, tmp_path):
        policy = RunPolicy(
            backoff_s=0.0,
            chaos=ChaosConfig(
                fail_items=(0,), sentinel_dir=str(tmp_path)
            ),
        )
        with active_report() as report:
            parallel_map(_square, range(4), workers=2, policy=policy)
        assert report.count("retry") == 1


class TestCrashRecoveryAcrossStyles:
    """A mid-campaign worker kill never changes the computed results.

    For every controller style the paper compares, a supervised
    Monte-Carlo sweep whose worker deterministically dies on one chosen
    trial returns exactly the list the serial loop produces.
    """

    @pytest.mark.parametrize("style", ["dist", "cent-sync", "cent"])
    def test_parallel_with_crash_equals_serial(
        self, style, fig2_result, tmp_path
    ):
        system = fig2_result.system(style)
        bound = fig2_result.bound
        trials = 8
        crash_trial = 5
        serial = [
            simulate(
                system, bound, BernoulliCompletion(0.7),
                seed=derive_seed(0, trial),
            ).cycles
            for trial in range(trials)
        ]
        report = RunReport()
        supervised = parallel_map(
            partial(
                _crashy_latency_trial, system, bound,
                str(tmp_path), crash_trial,
            ),
            range(trials),
            workers=2,
            policy=RunPolicy(on_failure="retry"),
            report=report,
        )
        assert supervised == serial
        assert report.count("worker-crash") >= 1
        assert os.path.exists(
            os.path.join(str(tmp_path), f"crash-{crash_trial}")
        )
