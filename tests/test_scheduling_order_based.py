"""Unit tests for order-based scheduling (paper §3)."""

import pytest
from hypothesis import given, settings

from repro.benchmarks import ar_lattice, fir5, paper_fig3_dfg
from repro.core.ops import ResourceClass
from repro.core.validate import validate_extra_edges
from repro.resources.allocation import ResourceAllocation
from repro.scheduling.order_based import (
    concurrency_width,
    minimum_units_required,
    order_based_schedule,
)

from conftest import random_dfgs


class TestConcurrencyWidth:
    def test_fig3_multiplications_need_three_units(self):
        """The paper's Fig. 3(b) claim: minimal clique count is three."""
        dfg = paper_fig3_dfg()
        assert minimum_units_required(dfg, ResourceClass.MULTIPLIER) == 3

    def test_chain_has_width_one(self, chain_dfg):
        assert (
            minimum_units_required(chain_dfg, ResourceClass.MULTIPLIER) == 1
        )

    def test_arcs_reduce_width(self):
        dfg = paper_fig3_dfg()
        ops = dfg.ops_of_class(ResourceClass.MULTIPLIER)
        before = concurrency_width(dfg, ops)
        after = concurrency_width(dfg, ops, (("o1", "o4"),))
        assert after <= before

    def test_empty_ops(self):
        dfg = paper_fig3_dfg()
        assert concurrency_width(dfg, ()) == 0


class TestOrderBasedSchedule:
    def test_width_fits_allocation(self):
        dfg = paper_fig3_dfg()
        alloc = ResourceAllocation.parse("mul:2T,add:2")
        order = order_based_schedule(dfg, alloc)
        for rc in dfg.resource_classes():
            ops = dfg.ops_of_class(rc)
            width = concurrency_width(dfg, ops, order.schedule_arcs)
            assert width <= alloc.count(rc)

    def test_arcs_keep_graph_acyclic(self):
        dfg = ar_lattice()
        alloc = ResourceAllocation.parse("mul:4T,add:2")
        order = order_based_schedule(dfg, alloc)
        validate_extra_edges(dfg, order.schedule_arcs)

    def test_no_arcs_with_abundant_units(self):
        dfg = paper_fig3_dfg()
        alloc = ResourceAllocation.parse("mul:5T,add:4")
        order = order_based_schedule(dfg, alloc)
        # Every op can get its own unit: chains are singletons.
        assert all(
            len(chain) <= 1
            for chains in order.chains.values()
            for chain in chains
        )
        assert order.schedule_arcs == ()

    def test_single_unit_gives_total_order(self):
        dfg = fir5()
        alloc = ResourceAllocation.parse("mul:1T,add:1")
        order = order_based_schedule(dfg, alloc)
        mult_chain = order.chains[ResourceClass.MULTIPLIER][0]
        assert set(mult_chain) == set(
            dfg.ops_of_class(ResourceClass.MULTIPLIER)
        )

    def test_chains_respect_existing_dependencies(self):
        """An op never precedes its own (transitive) predecessor in a chain."""
        from repro.core.dfg import transitive_dependency

        dfg = ar_lattice()
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        order = order_based_schedule(dfg, alloc)
        deps = transitive_dependency(dfg)
        for _, chain in order.all_chains():
            for i, earlier in enumerate(chain):
                for later in chain[i + 1 :]:
                    assert earlier not in deps.get(later, ()) or True
                    assert later not in deps[earlier]

    def test_describe(self, fig3_result):
        text = fig3_result.order.describe()
        assert "schedule arcs" in text


@settings(max_examples=25, deadline=None)
@given(random_dfgs)
def test_order_schedule_invariants_on_random_graphs(dfg):
    """Property: arcs acyclic and per-class width fits the allocation."""
    alloc = ResourceAllocation.parse("mul:1T,add:1,sub:1")
    order = order_based_schedule(dfg, alloc)
    validate_extra_edges(dfg, order.schedule_arcs)
    for rc in dfg.resource_classes():
        ops = dfg.ops_of_class(rc)
        assert (
            concurrency_width(dfg, ops, order.schedule_arcs)
            <= alloc.count(rc)
        )


class TestObjectives:
    def test_unknown_objective_rejected(self):
        from repro.errors import SchedulingError
        from repro.resources.allocation import ResourceAllocation

        dfg = paper_fig3_dfg()
        with pytest.raises(SchedulingError, match="unknown objective"):
            order_based_schedule(
                dfg,
                ResourceAllocation.parse("mul:2T,add:2"),
                objective="magic",
            )

    def test_communication_objective_valid(self):
        from repro.benchmarks import fdct
        from repro.core.validate import validate_extra_edges
        from repro.resources.allocation import ResourceAllocation

        dfg = fdct()
        alloc = ResourceAllocation.parse("mul:2T,add:2,sub:2")
        order = order_based_schedule(dfg, alloc, objective="communication")
        validate_extra_edges(dfg, order.schedule_arcs)
        for rc in dfg.resource_classes():
            ops = dfg.ops_of_class(rc)
            assert (
                concurrency_width(dfg, ops, order.schedule_arcs)
                <= alloc.count(rc)
            )

    def test_communication_never_more_latches(self):
        from repro.api import synthesize
        from repro.benchmarks import fdct

        latency = synthesize(fdct(), "mul:2T,add:2,sub:2")
        comm = synthesize(
            fdct(), "mul:2T,add:2,sub:2", objective="communication"
        )
        assert (
            comm.distributed.num_latches
            <= latency.distributed.num_latches
        )

    def test_communication_objective_still_correct(self):
        from repro.api import synthesize
        from repro.benchmarks import fdct
        from repro.resources import BernoulliCompletion
        from repro.sim import simulate

        result = synthesize(
            fdct(), "mul:2T,add:2,sub:2", objective="communication"
        )
        inputs = {f"x{i}": i + 1 for i in range(8)}
        sim = simulate(
            result.distributed_system(),
            result.bound,
            BernoulliCompletion(0.6),
            seed=4,
            inputs=inputs,
        )
        reference = result.dfg.evaluate(inputs)
        for out_name in result.dfg.outputs:
            assert sim.datapath.output_values()[out_name] == reference[
                out_name
            ]
