"""Unit tests for the static verification rules (repro.verify).

Pins the rule catalogue, each rule family's trigger conditions, and —
critically — the fault-class cross-check: every fault kind the dynamic
injectors of :mod:`repro.faults` model must have a structural shadow
that trips a named lint rule.
"""

import pytest

import repro.verify.liveness as liveness_mod
from repro.analysis.marked_graph import token_free_cycle
from repro.benchmarks import paper_fig2_dfg
from repro.errors import VerificationError
from repro.fsm.model import FSM, make_transition
from repro.verify import (
    RULES,
    LintTarget,
    covered_fault_kinds,
    injector_fault_kinds,
    lint_fsm,
    lint_target,
    rule,
    rule_table,
    run_selftest,
)
from repro.verify.fsm_checks import check_fsms
from repro.verify.liveness import check_liveness
from repro.verify.rtl import check_rtl, fsm_comb_dependencies, parse_verilog
from repro.verify.rules import diag
from repro.verify.schedule_checks import check_schedule
from repro.verify.selftest import STRUCTURAL_FAULTS, _raw_schedule


@pytest.fixture(scope="module")
def fig2_target(fig2_result) -> LintTarget:
    return LintTarget.from_result(fig2_result, name="fig2")


def rules_of(findings) -> set:
    return {d.rule for d in findings}


# ----------------------------------------------------------------------
# The rule registry
# ----------------------------------------------------------------------
class TestRuleRegistry:
    def test_ids_unique(self):
        ids = [r.rule_id for r in RULES]
        assert len(ids) == len(set(ids))

    def test_severities_valid(self):
        assert {r.severity for r in RULES} <= {"error", "warning", "info"}

    def test_every_rule_documented(self):
        table = rule_table()
        for r in RULES:
            assert r.rule_id in table

    def test_unknown_rule_rejected(self):
        with pytest.raises(VerificationError, match="unknown rule"):
            rule("NOPE999")

    def test_diag_takes_severity_from_registry(self):
        d = diag("LIVE001", "distributed", "x", "msg")
        assert d.severity == "error"


# ----------------------------------------------------------------------
# LIVE: controller liveness
# ----------------------------------------------------------------------
class TestLivenessRules:
    def test_clean_design_has_no_live_findings(self, fig2_target):
        assert check_liveness(fig2_target) == []

    def test_token_free_cycle_detected(self):
        edges = [("a", "b", 0), ("b", "c", 0), ("c", "a", 0)]
        cycle = token_free_cycle(edges)
        assert cycle is not None
        assert set(cycle) == {"a", "b", "c"}

    def test_wrap_token_breaks_cycle(self):
        edges = [("a", "b", 0), ("b", "c", 0), ("c", "a", 1)]
        assert token_free_cycle(edges) is None

    def test_live001_names_starved_net(self, fig2_target, monkeypatch):
        ops = list(fig2_target.bound.binding)[:2]
        monkeypatch.setattr(
            liveness_mod,
            "handshake_edges",
            lambda bound: ((ops[0], ops[1], 0), (ops[1], ops[0], 0)),
        )
        findings = check_liveness(fig2_target)
        live001 = [d for d in findings if d.rule == "LIVE001"]
        assert len(live001) == 1
        assert "token-free cycle" in live001[0].message
        assert "CC_" in live001[0].message

    def test_live002_missing_producer(self, fig2_target):
        fault = next(
            f for f in STRUCTURAL_FAULTS if f.kind == "dropped-pulse"
        )
        findings = check_liveness(fault.mutate(fig2_target))
        assert "LIVE002" in rules_of(findings)

    def test_live004_duplicate_producer(self, fig2_target):
        fault = next(
            f for f in STRUCTURAL_FAULTS if f.kind == "spurious-pulse"
        )
        findings = check_liveness(fault.mutate(fig2_target))
        assert "LIVE004" in rules_of(findings)


# ----------------------------------------------------------------------
# FSM: per-controller structure
# ----------------------------------------------------------------------
def fsm_of(transitions, states=("A", "B"), inputs=("go",),
           outputs=("tick",), initial="A") -> FSM:
    return FSM(
        name="t",
        states=tuple(states),
        initial=initial,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        transitions=tuple(transitions),
    )


class TestFsmRules:
    def test_clean_controllers(self, fig2_target):
        assert check_fsms(fig2_target) == []

    def test_fsm001_unreachable_state(self):
        fsm = fsm_of(
            [
                make_transition("A", "A", {}, ("tick",)),
                make_transition("B", "A", {}),
            ]
        )
        findings = lint_fsm(fsm)
        assert "FSM001" in rules_of(findings)

    def test_fsm002_incomplete_guards(self):
        fsm = fsm_of(
            [
                make_transition("A", "B", {"go": True}, ("tick",)),
                make_transition("B", "A", {}),
            ]
        )
        findings = lint_fsm(fsm)
        wedged = [d for d in findings if d.rule == "FSM002"]
        assert len(wedged) == 1
        assert "go'" in wedged[0].message

    def test_fsm002_no_outgoing(self):
        fsm = fsm_of([make_transition("A", "B", {})])
        findings = lint_fsm(fsm)
        assert any(
            d.rule == "FSM002" and "no outgoing" in d.message
            for d in findings
        )

    def test_fsm003_overlapping_guards(self):
        fsm = fsm_of(
            [
                make_transition("A", "B", {"go": True}, ("tick",)),
                make_transition("A", "A", {}),
                make_transition("B", "A", {}),
            ]
        )
        findings = lint_fsm(fsm)
        overlap = [d for d in findings if d.rule == "FSM003"]
        assert len(overlap) == 1
        assert "ambiguous" in overlap[0].message

    def test_fsm004_dead_completion_guard(self):
        fsm = fsm_of(
            [
                make_transition("A", "B", {"CC_x": True}, ("tick",)),
                make_transition("A", "A", {"CC_x": False}),
                make_transition("B", "A", {}),
            ],
            inputs=("CC_x",),
        )
        assert "FSM004" in rules_of(lint_fsm(fsm, available=set()))
        assert "FSM004" not in rules_of(lint_fsm(fsm, available={"CC_x"}))
        # standalone lint (no design context) skips the rule
        assert "FSM004" not in rules_of(lint_fsm(fsm))

    def test_fsm005_output_never_asserted(self):
        fsm = fsm_of(
            [
                make_transition("A", "B", {}),
                make_transition("B", "A", {}),
            ],
            outputs=("tick",),
        )
        assert "FSM005" in rules_of(lint_fsm(fsm))

    def test_fsm006_input_never_referenced(self):
        fsm = fsm_of(
            [
                make_transition("A", "B", {}, ("tick",)),
                make_transition("B", "A", {}),
            ]
        )
        assert "FSM006" in rules_of(lint_fsm(fsm))


# ----------------------------------------------------------------------
# SCH: schedule / binding / TAUBM consistency
# ----------------------------------------------------------------------
class TestScheduleRules:
    def test_clean_design(self, fig2_target):
        assert check_schedule(fig2_target) == []

    def test_sch001_precedence_violation(self, fig2_target):
        from dataclasses import replace

        u, v = next(iter(fig2_target.dfg.edges()))
        start = dict(fig2_target.schedule.start)
        start[v] = start[u]
        corrupted = replace(
            fig2_target,
            schedule=_raw_schedule(fig2_target.dfg, start),
        )
        findings = check_schedule(corrupted)
        assert "SCH001" in rules_of(findings)

    def test_sch002_step_over_subscription(self, fig2_target):
        from dataclasses import replace

        # cram every operation into step 0
        start = {op: 0 for op in fig2_target.schedule.start}
        corrupted = replace(
            fig2_target,
            schedule=_raw_schedule(fig2_target.dfg, start),
        )
        findings = check_schedule(corrupted)
        assert "SCH002" in rules_of(findings)

    def test_sch004_unit_slot_conflict(self, fig2_target):
        fault = next(
            f for f in STRUCTURAL_FAULTS if f.kind == "intermittent-slow"
        )
        findings = check_schedule(fault.mutate(fig2_target))
        assert "SCH004" in rules_of(findings)

    def test_sch005_chain_order_inversion(self, fig2_target):
        from dataclasses import replace

        for _, chain in fig2_target.order.all_chains():
            if len(chain) >= 2:
                u, v = chain[0], chain[1]
                break
        start = dict(fig2_target.schedule.start)
        start[u], start[v] = start[v] + 1, start[u]
        corrupted = replace(
            fig2_target,
            schedule=_raw_schedule(fig2_target.dfg, start),
        )
        assert "SCH005" in rules_of(check_schedule(corrupted))

    def test_sch006_missing_tau_extension(self, fig2_target):
        fault = next(
            f
            for f in STRUCTURAL_FAULTS
            if f.kind == "delayed-completion"
        )
        findings = check_schedule(fault.mutate(fig2_target))
        sch006 = [d for d in findings if d.rule == "SCH006"]
        assert sch006
        assert any("extension" in d.message for d in sch006)

    def test_sch006_partition_gap(self, fig2_target):
        from dataclasses import replace

        from repro.scheduling.schedule import TaubmSchedule

        taubm = fig2_target.taubm
        corrupted = replace(
            fig2_target,
            taubm=TaubmSchedule(base=taubm.base, steps=taubm.steps[:-1]),
        )
        findings = check_schedule(corrupted)
        assert any(
            d.rule == "SCH006" and "partition" in d.location
            for d in findings
        )


# ----------------------------------------------------------------------
# RTL: generated Verilog lint
# ----------------------------------------------------------------------
TOP_TEMPLATE = """\
module leaf (
    input  wire clk,
    input  wire rst_n,
    input  wire a,
    output wire y
);
  wire y = a;
endmodule

module control_top (
    input  wire clk,
    input  wire rst_n,
    input  wire a,
    output wire z
);
{body}
endmodule
"""


def top_with(body: str) -> str:
    return TOP_TEMPLATE.format(body=body)


class TestRtlRules:
    def test_clean_design_no_errors(self, fig2_target):
        findings = check_rtl(fig2_target)
        assert all(
            rule(d.rule).severity != "error" for d in findings
        )

    def test_parser_roundtrip(self, fig2_target):
        modules = parse_verilog(fig2_target.rtl())
        names = [m.name for m in modules]
        assert "control_top" in names
        top = next(m for m in modules if m.name == "control_top")
        assert top.instances
        assert top.port_direction("clk") == "input"

    def _lint_text(self, fig2_target, text):
        target = fig2_target.with_controllers(fig2_target.controllers)
        target._rtl_cache["top"] = text
        return check_rtl(target)

    def test_rtl001_multiple_drivers(self, fig2_target):
        text = top_with(
            "  wire n = a;\n  wire z = n;\n  leaf u0 (\n"
            "    .clk(clk),\n    .rst_n(rst_n),\n    .a(a),\n"
            "    .y(n)\n  );"
        )
        findings = self._lint_text(fig2_target, text)
        assert "RTL001" in rules_of(findings)

    def test_rtl002_read_but_undriven(self, fig2_target):
        text = top_with("  wire n;\n  wire z = n & a;")
        findings = self._lint_text(fig2_target, text)
        assert "RTL002" in rules_of(findings)

    def test_rtl003_driven_but_unread(self, fig2_target):
        text = top_with("  wire n = a;\n  wire z = a;")
        findings = self._lint_text(fig2_target, text)
        assert "RTL003" in rules_of(findings)

    def test_rtl004_duplicate_declaration(self, fig2_target):
        text = top_with("  wire n = a;\n  wire n = a;\n  wire z = n;")
        findings = self._lint_text(fig2_target, text)
        assert "RTL004" in rules_of(findings)

    def test_rtl005_comb_loop_via_assigns(self, fig2_target):
        text = top_with(
            "  wire p = q | a;\n  wire q = p;\n  wire z = p;"
        )
        findings = self._lint_text(fig2_target, text)
        loops = [d for d in findings if d.rule == "RTL005"]
        assert loops
        assert "combinational cycle" in loops[0].message

    def test_rtl000_generation_failure(self, fig2_target, monkeypatch):
        target = fig2_target.with_controllers(fig2_target.controllers)
        monkeypatch.setattr(
            LintTarget,
            "rtl",
            lambda self: (_ for _ in ()).throw(KeyError("CC_boom")),
        )
        findings = check_rtl(target)
        assert rules_of(findings) == {"RTL000"}

    def test_fsm_comb_dependencies(self, fig2_result):
        fsm = fig2_result.distributed.controller("TM1")
        deps = fsm_comb_dependencies(fsm)
        assert deps
        # the CSG completion input feeds some Mealy output
        assert any(src.startswith("C_") for src, _ in deps)

    def test_no_multiple_drivers_inside_one_always(self, fig2_target):
        # several branch assignments to one reg in one block: one driver
        text = top_with(
            "  reg r;\n"
            "  always @(posedge clk or negedge rst_n) begin\n"
            "    if (!rst_n) r <= 1'b0;\n"
            "    else if (a) r <= 1'b1;\n"
            "    else r <= a;\n"
            "  end\n"
            "  wire z = r;"
        )
        findings = self._lint_text(fig2_target, text)
        assert "RTL001" not in rules_of(findings)


# ----------------------------------------------------------------------
# The fault-class cross-check (pinned coverage map)
# ----------------------------------------------------------------------
class TestFaultCoverage:
    def test_every_injector_kind_is_covered(self):
        assert injector_fault_kinds() == covered_fault_kinds()

    def test_pinned_kind_rule_map(self):
        pinned = {f.kind: f.rule_id for f in STRUCTURAL_FAULTS}
        assert pinned == {
            "stuck-completion": "FSM002",
            "delayed-completion": "SCH006",
            "dropped-pulse": "LIVE002",
            "spurious-pulse": "LIVE004",
            "state-flip": "FSM001",
            "intermittent-slow": "SCH004",
        }

    def test_selftest_detects_every_fault(self, fig2_target):
        outcomes = run_selftest(fig2_target)
        assert {o.kind for o in outcomes} == covered_fault_kinds()
        for outcome in outcomes:
            assert outcome.detected, (
                f"structural fault {outcome.kind!r} escaped rule "
                f"{outcome.rule_id}:\n{outcome.report.render()}"
            )

    def test_selftest_rejects_dirty_target(self, fig2_target):
        # stuck-completion yields FSM002, an error-severity finding
        fault = next(
            f for f in STRUCTURAL_FAULTS if f.kind == "stuck-completion"
        )
        with pytest.raises(VerificationError, match="not clean"):
            run_selftest(fault.mutate(fig2_target))


# ----------------------------------------------------------------------
# Whole-design smoke
# ----------------------------------------------------------------------
class TestWholeDesign:
    def test_fig2_report_error_free(self, fig2_target):
        report = lint_target(fig2_target)
        assert report.design == "fig2"
        assert not report.has_errors

    def test_report_is_deterministic(self, fig2_target):
        dfg = paper_fig2_dfg()
        from repro.api import synthesize

        from_scratch = LintTarget.from_result(
            synthesize(dfg, "mul:2T,add:1"), name="fig2"
        )
        assert (
            lint_target(fig2_target).to_json()
            == lint_target(from_scratch).to_json()
        )
