"""Tests for the table experiments and ablation drivers."""

import pytest

from repro.experiments import (
    run_csg_sweep,
    run_opdist,
    run_pipeline,
    run_psweep,
    run_sdld_sweep,
    run_table1,
    run_table2,
)
from repro.benchmarks import benchmark


class TestTable1:
    @pytest.fixture(scope="class")
    def table1(self, diffeq_result=None):
        return run_table1("diffeq")

    def test_paper_shape_holds(self, table1):
        table1.check_shape()

    def test_component_rows_present(self, table1):
        names = {r.name for r in table1.dist_components}
        assert names == {"D-FSM-TM1", "D-FSM-TM2", "D-FSM-A1", "D-FSM-S1"}

    def test_dist_aggregates_components(self, table1):
        assert table1.dist.num_states == sum(
            r.num_states for r in table1.dist_components
        )
        assert table1.dist.num_flip_flops > sum(
            r.num_flip_flops for r in table1.dist_components
        )  # + completion latches

    def test_render_has_paper_columns(self, table1):
        text = table1.render()
        assert "Area(Com./Seq.)" in text
        assert "CENT-SYNC-FSM" in text
        assert "DIST-FSM" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def table2(self):
        # The two smallest rows keep the test fast; the full table runs in
        # the benchmark harness.
        entries = [benchmark("fir3"), benchmark("diffeq")]
        return run_table2(entries=entries)

    def test_shape_holds(self, table2):
        table2.check_shape()

    def test_paper_clock_and_bounds(self, table2):
        fir3_row = table2.comparisons[0]
        assert fir3_row.benchmark == "3rd FIR"
        # 3 taps on 2 TAU multipliers: best = 3 cycles = 45 ns (paper).
        assert fir3_row.dist.best_ns == 45.0
        assert fir3_row.sync.best_ns == 45.0
        # Worst synchronized case: two TAU steps extend: 5 cycles = 75 ns.
        assert fir3_row.sync.worst_ns == 75.0

    def test_enhancement_small_for_fir3(self, table2):
        """The paper's 3rd FIR row improves least (0.4-2.9%)."""
        fir3_row = table2.comparisons[0]
        for p in table2.ps:
            assert 0.0 <= fir3_row.enhancement(p) < 0.10

    def test_render(self, table2):
        text = table2.render()
        assert "LT_TAU" in text and "LT_DIST" in text


class TestPsweep:
    def test_monotone_and_dominated(self):
        result = run_psweep("fir3", ps=(0.2, 0.6, 1.0))
        assert list(result.dist_ns) == sorted(result.dist_ns, reverse=True)
        for d, s in zip(result.dist_ns, result.sync_ns):
            assert d <= s + 1e-9

    def test_p1_equals_best_case(self):
        result = run_psweep("fir3", ps=(1.0,))
        assert result.dist_ns[0] == result.sync_ns[0]

    def test_crossover_reported(self):
        result = run_psweep("fir5", ps=(0.1, 0.9))
        # At very low P the TAU design loses to the fixed design.
        assert result.crossover_p() == 0.1


class TestSdLd:
    def test_latency_scales_with_sd(self):
        result = run_sdld_sweep(
            "fir3", short_delays_ns=(11.0, 15.0, 19.0)
        )
        assert list(result.dist_ns) == sorted(result.dist_ns)

    def test_rejects_non_two_level_sd(self):
        with pytest.raises(ValueError, match="two-level"):
            run_sdld_sweep("fir3", short_delays_ns=(5.0,))


class TestOpDist:
    def test_more_controllers_more_sequential_area(self):
        result = run_opdist("diffeq")
        assert result.num_ops > result.num_units
        assert result.opdist_seq > result.dist_seq
        assert result.opdist_latches > result.dist_latches


class TestPipeline:
    def test_dist_overlaps_iterations(self):
        result = run_pipeline("fir3", p=0.9, iterations=6)
        assert result.dist_throughput_cycles <= (
            result.sync_throughput_cycles + 1e-9
        )

    def test_render(self):
        assert "throughput" in run_pipeline("fir3", iterations=4).render()


class TestCsgSweep:
    def test_rows_cover_distributions(self):
        result = run_csg_sweep(width=7)
        names = [name for name, _ in result.rows]
        assert "uniform" in names
        assert all(0.0 <= p <= 1.0 for _, p in result.rows)


class TestMultiLevelExperiment:
    def test_exact_matches_simulation(self):
        from repro.experiments import run_multilevel

        result = run_multilevel("fir3", trials=150)
        assert result.dist_expected_cycles <= result.sync_expected_cycles
        assert (
            abs(
                result.dist_simulated_mean_cycles
                - result.dist_expected_cycles
            )
            < 0.3
        )
        assert "X6" in result.render()


class TestActivityExperiment:
    def test_speed_for_energy_trade(self):
        from repro.experiments import run_activity

        result = run_activity("fir3", iterations=6)
        assert (
            result.dist_cycles_per_iteration
            < result.sync_cycles_per_iteration
        )
        assert (
            result.dist_toggles_per_iteration
            >= result.sync_toggles_per_iteration
        )


class TestCommunicationExperiment:
    def test_fdct_saves_latches(self):
        from repro.experiments import run_communication_binding

        result = run_communication_binding("fdct")
        rows = {obj: (w, l, c, s) for obj, w, l, c, s in result.rows}
        assert rows["communication"][1] < rows["latency"][1]
        assert rows["communication"][2] == pytest.approx(
            rows["latency"][2]
        )


class TestEncodingExperiment:
    def test_orderings(self):
        from repro.experiments import run_encoding_ablation

        result = run_encoding_ablation("fig3")
        rows = {
            style: (comb, seq, ffs)
            for style, comb, seq, ffs in result.rows
        }
        assert rows["one-hot"][2] > rows["binary"][2]


class TestPhysicalExperiment:
    def test_measured_p_reasonable(self):
        from repro.experiments import run_physical

        result = run_physical("diffeq", trials=30, small_bits=4)
        assert 0.9 <= result.measured_p <= 1.0
        assert result.simulated_mean_cycles >= 4.0
