"""Unit tests for the Quine–McCluskey minimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.quine_mccluskey import (
    minimize,
    prime_implicants,
    verify_cover,
)
from repro.logic.terms import BooleanFunction, Cube


def fn(width, ones, dc=()):
    return BooleanFunction(
        width=width, ones=frozenset(ones), dont_cares=frozenset(dc)
    )


class TestPrimeImplicants:
    def test_classic_example(self):
        # f(a,b,c,d) with minterms 4,8,10,11,12,15 and dc 9,14
        # (the textbook Quine-McCluskey example).
        f = fn(4, {4, 8, 10, 11, 12, 15}, {9, 14})
        primes = prime_implicants(f)
        strings = {p.to_string() for p in primes}
        # Known primes (our cube text is LSB-first): -100, 1--0, 1-1-, 10--
        assert strings == {"001-", "0--1", "-1-1", "--01"}

    def test_full_cube(self):
        f = fn(2, {0, 1, 2, 3})
        primes = prime_implicants(f)
        assert {p.to_string() for p in primes} == {"--"}

    def test_single_minterm(self):
        f = fn(3, {5})
        primes = prime_implicants(f)
        assert {p.to_string() for p in primes} == {"101"}


class TestMinimize:
    def test_constant_zero(self):
        assert minimize(fn(3, ())) == ()

    def test_constant_one(self):
        cover = minimize(fn(2, {0, 1, 2, 3}))
        assert len(cover) == 1
        assert cover[0].num_literals == 0

    def test_xor_needs_two_terms(self):
        cover = minimize(fn(2, {0b01, 0b10}))
        assert len(cover) == 2
        assert all(c.num_literals == 2 for c in cover)

    def test_dont_cares_shrink_cover(self):
        without_dc = minimize(fn(3, {0b111}))
        with_dc = minimize(
            fn(3, {0b111}, {0b011, 0b101, 0b110, 0b001, 0b010, 0b100, 0b000})
        )
        literals = lambda cover: sum(c.num_literals for c in cover)
        assert literals(with_dc) < literals(without_dc)

    def test_cover_verified(self):
        f = fn(4, {0, 2, 5, 7, 8, 10, 13, 15})
        verify_cover(f, minimize(f))

    def test_deterministic(self):
        f = fn(4, {1, 3, 7, 11, 15})
        assert minimize(f) == minimize(f)


class TestVerifyCover:
    def test_uncovered_detected(self):
        f = fn(2, {0, 3})
        with pytest.raises(AssertionError, match="uncovered"):
            verify_cover(f, (Cube.minterm(2, 0),))

    def test_wrongly_covered_detected(self):
        f = fn(2, {0})
        with pytest.raises(AssertionError, match="wrongly covered"):
            verify_cover(f, (Cube(width=2, care=0, value=0),))


@settings(max_examples=60, deadline=None)
@given(
    st.sets(st.integers(0, 31), max_size=20),
    st.sets(st.integers(0, 31), max_size=8),
)
def test_minimize_always_correct(ones, dc):
    """Property: minimized covers are functionally exact on 5-var inputs."""
    dc = dc - ones
    f = fn(5, ones, dc)
    cover = minimize(f)
    verify_cover(f, cover)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(0, 15), min_size=1, max_size=12))
def test_minimize_never_worse_than_minterms(ones):
    """Property: the cover never has more terms than raw minterms."""
    f = fn(4, ones)
    assert len(minimize(f)) <= len(ones)
