"""Unit tests for the analytic latency engine."""

import pytest

from repro.analysis.latency import (
    DistLatencyEvaluator,
    LatencyComparison,
    compare_latencies,
    dist_latency_cycles,
    exact_expected_latency,
    expected_latency,
    monte_carlo_expected_latency,
    scheme_latency,
    sync_latency_cycles,
)
from repro.errors import SimulationError


class TestDistLatency:
    def test_all_fast_is_critical_path(self, fig3_result):
        cycles = dist_latency_cycles(
            fig3_result.bound,
            {op: True for op in fig3_result.dfg.op_names()},
        )
        assert cycles == 4

    def test_all_slow_adds_tau_cycles_on_path(self, fig3_result):
        cycles = dist_latency_cycles(
            fig3_result.bound,
            {op: False for op in fig3_result.dfg.op_names()},
        )
        assert cycles == 6

    def test_evaluator_matches_reference(self, fig3_result):
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        import itertools

        tau_ops = fig3_result.bound.telescopic_ops()
        for values in itertools.product((False, True), repeat=len(tau_ops)):
            fast = dict(zip(tau_ops, values))
            assert evaluator(fast) == dist_latency_cycles(
                fig3_result.bound, fast
            )

    def test_monotone_in_slowness(self, fig3_result):
        """Making one op slower never decreases latency."""
        tau_ops = fig3_result.bound.telescopic_ops()
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        base = {op: True for op in tau_ops}
        for op in tau_ops:
            slower = dict(base)
            slower[op] = False
            assert evaluator(slower) >= evaluator(base)


class TestSyncLatency:
    def test_matches_schedule_model(self, fig3_result):
        taubm = fig3_result.taubm
        tau_ops = fig3_result.bound.telescopic_ops()
        assert (
            sync_latency_cycles(taubm, {op: True for op in tau_ops})
            == taubm.min_cycles()
        )
        assert (
            sync_latency_cycles(taubm, {op: False for op in tau_ops})
            == taubm.max_cycles()
        )


class TestExpectation:
    def test_exact_matches_closed_form_for_sync(self, fig3_result):
        """Enumeration must reproduce the 2 - P^n closed form."""
        taubm = fig3_result.taubm
        tau_ops = fig3_result.bound.telescopic_ops()
        for p in (0.9, 0.5, 0.25):
            exact = exact_expected_latency(
                lambda fast: sync_latency_cycles(taubm, fast), tau_ops, p
            )
            assert exact == pytest.approx(taubm.expected_cycles(p))

    def test_exact_limit_enforced(self):
        with pytest.raises(SimulationError, match="exceed"):
            exact_expected_latency(lambda fast: 1, ["o"] * 25, 0.5)

    def test_bad_p(self):
        with pytest.raises(SimulationError, match="P must be"):
            exact_expected_latency(lambda fast: 1, ["a"], 1.5)

    def test_monte_carlo_converges(self, fig3_result):
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        tau_ops = fig3_result.bound.telescopic_ops()
        exact = exact_expected_latency(evaluator, tau_ops, 0.7)
        mc = monte_carlo_expected_latency(
            evaluator, tau_ops, 0.7, trials=3000, seed=1
        )
        assert abs(mc - exact) < 0.1

    def test_expected_latency_dispatch(self, fig3_result):
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        tau_ops = fig3_result.bound.telescopic_ops()
        exact = expected_latency(evaluator, tau_ops, 0.7)
        forced_mc = expected_latency(
            evaluator, tau_ops, 0.7, exact_limit=1, trials=3000
        )
        assert abs(exact - forced_mc) < 0.1

    def test_degenerate_p_values(self, fig3_result):
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        tau_ops = fig3_result.bound.telescopic_ops()
        assert exact_expected_latency(evaluator, tau_ops, 1.0) == evaluator(
            {op: True for op in tau_ops}
        )
        assert exact_expected_latency(evaluator, tau_ops, 0.0) == evaluator(
            {op: False for op in tau_ops}
        )


class TestComparison:
    def test_bracket_format(self, fig3_result):
        comparison = fig3_result.latency_comparison()
        text = comparison.dist.bracket_ns()
        assert text.startswith("[60]")
        assert text.endswith("[90]")

    def test_enhancement_positive(self, fig3_result):
        comparison = fig3_result.latency_comparison()
        for p in (0.9, 0.7, 0.5):
            assert comparison.enhancement(p) >= 0

    def test_enhancement_column(self, fig3_result):
        column = fig3_result.latency_comparison().enhancement_column()
        assert column.count("%") == 3

    def test_fixed_design_baseline(self, fig3_result):
        comparison = fig3_result.latency_comparison()
        assert comparison.fixed_design_ns == (
            fig3_result.schedule.num_steps * 20.0
        )

    def test_resource_string(self, fig3_result):
        comparison = fig3_result.latency_comparison()
        assert comparison.resources == "*:2, +:2"


class TestSchemeLatency:
    def test_bounds_ordering(self, fig3_result):
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        tau_ops = fig3_result.bound.telescopic_ops()
        scheme = scheme_latency(
            "DIST", evaluator, tau_ops, 15.0, ps=(0.9, 0.5)
        )
        assert scheme.best_cycles <= scheme.expected_cycles[0.9]
        assert scheme.expected_cycles[0.9] <= scheme.expected_cycles[0.5]
        assert scheme.expected_cycles[0.5] <= scheme.worst_cycles
