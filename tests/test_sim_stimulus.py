"""Tests for stimulus generation."""

import random

from repro.benchmarks import fir3
from repro.sim.stimulus import (
    constant_streams,
    input_streams,
    small_values,
    sparse_values,
    uniform_values,
)


class TestValueDistributions:
    def test_uniform_range(self):
        rng = random.Random(0)
        dist = uniform_values(6)
        assert all(0 <= dist.sample(rng) < 64 for _ in range(200))

    def test_small_values_bounded(self):
        rng = random.Random(0)
        dist = small_values(8, 3)
        assert all(dist.sample(rng) < 8 for _ in range(200))

    def test_sparse_popcount(self):
        rng = random.Random(0)
        dist = sparse_values(8, 2)
        for _ in range(200):
            assert bin(dist.sample(rng)).count("1") <= 2

    def test_names(self):
        assert uniform_values(8).name == "uniform8"
        assert small_values(8, 3).name == "small3of8"
        assert sparse_values(8, 2).name == "sparse2of8"


class TestStreams:
    def test_covers_all_inputs(self):
        dfg = fir3()
        streams = input_streams(dfg, uniform_values(8), iterations=4)
        assert set(streams) == set(dfg.inputs)
        assert all(len(v) == 4 for v in streams.values())

    def test_seeded_reproducibility(self):
        dfg = fir3()
        a = input_streams(dfg, uniform_values(8), iterations=3, seed=5)
        b = input_streams(dfg, uniform_values(8), iterations=3, seed=5)
        assert a == b

    def test_constant_streams(self):
        dfg = fir3()
        values = {name: 7 for name in dfg.inputs}
        streams = constant_streams(dfg, values)
        assert all(v == [7] for v in streams.values())

    def test_streams_drive_simulation(self, fig3_result):
        from repro.resources import BernoulliCompletion
        from repro.sim import simulate

        streams = input_streams(
            fig3_result.dfg, small_values(8, 4), iterations=2, seed=1
        )
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            BernoulliCompletion(0.8),
            iterations=2,
            inputs=streams,
        )
        assert len(sim.iteration_finish_cycles) == 2
