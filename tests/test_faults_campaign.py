"""Campaign-level tests: classification, reproducibility, reporting."""

import pytest

from repro.errors import InjectedFaultEscape
from repro.faults import (
    FaultCampaignReport,
    FaultTrialRecord,
    run_benchmark_campaign,
    run_campaign,
)


@pytest.fixture(scope="module")
def small_campaign(request) -> FaultCampaignReport:
    fig2 = request.getfixturevalue("fig2_result")
    return run_campaign(fig2, trials=8, seed=1, benchmark="fig2")


class TestClassification:
    def test_every_trial_is_classified(self, small_campaign):
        report = small_campaign
        assert report.styles() == ("dist", "cent-sync")
        for style in report.styles():
            records = report.for_style(style)
            assert len(records) == report.trials
            for record in records:
                assert record.outcome in ("detected", "tolerated", "silent")

    def test_detected_trials_name_a_monitor(self, small_campaign):
        for record in small_campaign.records:
            if record.outcome == "detected":
                assert record.detector
                assert record.diagnostic
            if record.outcome == "tolerated":
                assert record.detector is None
                assert record.latency_delta is not None

    def test_no_silent_corruption_on_paper_designs(self, small_campaign):
        """The headline robustness claim: every injected control fault is
        either detected by a monitor or absorbed bit-correct."""
        assert small_campaign.escapes() == ()
        small_campaign.check_no_escapes()  # must not raise

    def test_summary_counts_are_consistent(self, small_campaign):
        for style in small_campaign.styles():
            summary = small_campaign.summary(style)
            assert sum(summary["totals"].values()) == summary["trials"]
            per_kind = {
                outcome: sum(
                    row[outcome] for row in summary["by_kind"].values()
                )
                for outcome in ("detected", "tolerated", "silent")
            }
            assert per_kind == summary["totals"]


class TestReproducibility:
    def test_same_seed_same_json(self, fig2_result):
        a = run_campaign(fig2_result, trials=5, seed=7, benchmark="fig2")
        b = run_campaign(fig2_result, trials=5, seed=7, benchmark="fig2")
        assert a.to_json() == b.to_json()

    def test_different_seed_different_faults(self, fig2_result):
        a = run_campaign(fig2_result, trials=5, seed=7, benchmark="fig2")
        b = run_campaign(fig2_result, trials=5, seed=8, benchmark="fig2")
        assert [r.fault for r in a.records] != [r.fault for r in b.records]


class TestReporting:
    def test_render_compares_styles(self, small_campaign):
        text = small_campaign.render()
        assert "vulnerability comparison" in text
        assert "[dist]" in text
        assert "[cent-sync]" in text
        assert "monitors fired" in text

    def test_json_round_trip_structure(self, small_campaign):
        import json

        data = json.loads(small_campaign.to_json())
        assert data["benchmark"] == "fig2"
        assert set(data["styles"]) == {"dist", "cent-sync"}
        for style_data in data["styles"].values():
            assert len(style_data["records"]) == data["trials"]

    def test_check_no_escapes_raises_on_silent_record(self, small_campaign):
        poisoned = FaultCampaignReport(
            benchmark=small_campaign.benchmark,
            trials=small_campaign.trials,
            seed=small_campaign.seed,
            p=small_campaign.p,
            records=small_campaign.records
            + (
                FaultTrialRecord(
                    trial=99,
                    style="dist",
                    fault_kind="stuck-completion",
                    fault="synthetic escape",
                    target={"kind": "stuck-completion"},
                    outcome="silent",
                    detector=None,
                    diagnostic="wrong value",
                    cycles=12,
                    latency_delta=0,
                ),
            ),
        )
        with pytest.raises(InjectedFaultEscape, match="silent corruption"):
            poisoned.check_no_escapes()


class TestEntryPoints:
    def test_benchmark_campaign_single_style(self):
        report = run_benchmark_campaign(
            "fig3", trials=3, seed=0, styles=("dist",)
        )
        assert report.benchmark == "fig3"
        assert report.styles() == ("dist",)
        assert len(report.records) == 3

    def test_api_fault_campaign_method(self, fig3_result):
        report = fig3_result.fault_campaign(trials=3, seed=2, styles=("dist",))
        assert len(report.records) == 3
        assert report.escapes() == ()
