"""Unit tests for encodings, the FSM area model and FSM optimizations."""

import pytest

from repro.errors import FSMError
from repro.fsm.area import fsm_area, fsm_logic_block, latch_area
from repro.fsm.encode import (
    binary_encoding,
    encode,
    gray_encoding,
    one_hot_encoding,
)
from repro.fsm.model import FSM, make_transition
from repro.fsm.optimize import (
    merge_equivalent_states,
    prune_outputs,
    remove_unreachable_states,
)


def toggle_fsm(extra_unreachable: bool = False) -> FSM:
    states = ["A", "B"]
    transitions = [
        make_transition("A", "B", {"go": True}, ("tick",)),
        make_transition("A", "A", {"go": False}),
        make_transition("B", "A", {}, ("tock",)),
    ]
    if extra_unreachable:
        states.append("Z")
        transitions.append(make_transition("Z", "A", {}, ("tick",)))
    return FSM(
        name="toggle",
        states=tuple(states),
        initial="A",
        inputs=("go",),
        outputs=("tick", "tock"),
        transitions=tuple(transitions),
    )


class TestEncodings:
    def test_binary_width(self, fig3_result):
        fsm = fig3_result.distributed.controller("TM1")
        enc = binary_encoding(fsm)
        assert 2 ** enc.width >= fsm.num_states
        assert len(set(enc.codes.values())) == fsm.num_states

    def test_one_hot(self):
        enc = one_hot_encoding(toggle_fsm())
        assert enc.width == 2
        assert sorted(enc.codes.values()) == [1, 2]

    def test_gray_adjacent_codes(self):
        enc = gray_encoding(toggle_fsm())
        codes = list(enc.codes.values())
        assert bin(codes[0] ^ codes[1]).count("1") == 1

    def test_unknown_style(self):
        with pytest.raises(FSMError, match="unknown encoding style"):
            encode(toggle_fsm(), "johnson")

    def test_unknown_state_code(self):
        enc = binary_encoding(toggle_fsm())
        with pytest.raises(FSMError, match="no code"):
            enc.code_of("missing")


class TestFsmArea:
    def test_report_columns(self):
        report = fsm_area(toggle_fsm())
        assert report.io_column() == "1/2"
        assert report.num_states == 2
        assert report.num_flip_flops == 1
        assert report.method == "exact"
        assert "/" in report.area_column()

    def test_exact_toggle_area(self):
        """Hand-checked: ns0 = A&go... with don't-cares the minimized
        next-state function is go&!s; outputs tick=!s&go, tock=s."""
        report = fsm_area(toggle_fsm())
        # ns0: one 2-literal term; tick: one 2-literal term; tock: 1 literal.
        assert report.combinational_area == pytest.approx(5.0)
        assert report.sequential_area == pytest.approx(11.0)

    def test_one_hot_uses_structural(self):
        report = fsm_area(toggle_fsm(), "one-hot")
        assert report.method == "structural"
        assert report.num_flip_flops == 2

    def test_structural_area_positive(self, fig3_result):
        fsm = fig3_result.distributed.controller("TM1")
        report = fsm_area(fsm, "one-hot")
        assert report.combinational_area > 0

    def test_logic_block_function_count(self):
        block = fsm_logic_block(toggle_fsm())
        # 1 next-state bit + 2 outputs.
        assert len(block.functions) == 3

    def test_latch_area(self):
        comb, seq = latch_area(3)
        assert seq == 33.0
        assert comb > 0


class TestOptimize:
    def test_unreachable_removed(self):
        fsm = toggle_fsm(extra_unreachable=True)
        pruned = remove_unreachable_states(fsm)
        assert pruned.num_states == 2
        assert "Z" not in pruned.states
        pruned.validate()

    def test_reachable_untouched(self):
        fsm = toggle_fsm()
        assert remove_unreachable_states(fsm) is fsm

    def test_prune_outputs(self):
        fsm = toggle_fsm()
        pruned = prune_outputs(fsm, ["tick"])
        assert pruned.outputs == ("tick",)
        assert all("tock" not in t.outputs for t in pruned.transitions)
        pruned.validate()

    def test_prune_keeps_metadata(self, fig3_result):
        fsm = fig3_result.distributed.controller("TM1")
        pruned = prune_outputs(fsm, [s for s in fsm.outputs][:2])
        originals = {
            (t.source, t.guard): (t.starts, t.completes)
            for t in fsm.transitions
        }
        for t in pruned.transitions:
            assert originals[(t.source, t.guard)] == (t.starts, t.completes)

    def test_prune_unknown_output_rejected(self):
        with pytest.raises(FSMError, match="undeclared"):
            prune_outputs(toggle_fsm(), ["zap"])

    def test_merge_equivalent_states(self):
        # B and C are behaviourally identical.
        fsm = FSM(
            name="dup",
            states=("A", "B", "C"),
            initial="A",
            inputs=("x",),
            outputs=("o",),
            transitions=(
                make_transition("A", "B", {"x": True}),
                make_transition("A", "C", {"x": False}),
                make_transition("B", "A", {}, ("o",)),
                make_transition("C", "A", {}, ("o",)),
            ),
        )
        merged = merge_equivalent_states(fsm)
        assert merged.num_states == 2
        merged.validate()

    def test_algorithm1_controllers_already_minimal(self, fig3_result):
        for fsm in fig3_result.distributed.controllers.values():
            assert merge_equivalent_states(fsm).num_states == fsm.num_states


class TestOptimizeLintCommutation:
    """Optimize-then-lint must agree with lint-then-optimize.

    The static rules of :mod:`repro.verify` and the optimizations here
    describe the same structure: optimizing away a defect must remove
    exactly the findings the lint attributed to it, and optimizing an
    already-clean machine must not change any verdict.
    """

    def waiting_fsm(self) -> FSM:
        """Telescopic-style wait loop: self-loop until C_M1, then CC."""
        return FSM(
            name="wait",
            states=("S", "R"),
            initial="S",
            inputs=("C_M1",),
            outputs=("CC_p",),
            transitions=(
                make_transition("S", "S", {"C_M1": False}),
                make_transition("S", "R", {"C_M1": True}, ("CC_p",)),
                make_transition("R", "S", {}),
            ),
        )

    def test_self_loops_survive_optimization(self):
        fsm = self.waiting_fsm()
        optimized = merge_equivalent_states(
            remove_unreachable_states(fsm)
        )
        assert optimized.num_states == fsm.num_states
        assert any(
            t.source == t.target for t in optimized.transitions
        )

    def test_completion_branches_survive_optimization(self):
        from repro.verify import lint_fsm

        fsm = self.waiting_fsm()
        optimized = merge_equivalent_states(
            remove_unreachable_states(fsm)
        )
        assert "C_M1" in optimized.inputs
        assert lint_fsm(optimized, available={"C_M1"}) == []

    def test_duplicate_output_states_merge_cleanly(self):
        from repro.verify import lint_fsm

        fsm = FSM(
            name="dup",
            states=("W", "X", "Y"),
            initial="W",
            inputs=("go",),
            outputs=("o",),
            transitions=(
                make_transition("W", "X", {"go": True}),
                make_transition("W", "Y", {"go": False}),
                make_transition("X", "W", {}, ("o",)),
                make_transition("Y", "W", {}, ("o",)),
            ),
        )
        before = {d.rule for d in lint_fsm(fsm)}
        merged = merge_equivalent_states(fsm)
        assert merged.num_states == 2
        after = {d.rule for d in lint_fsm(merged)}
        assert before == after == set()

    def test_removing_unreachable_resolves_fsm001_only(self):
        from repro.verify import lint_fsm

        fsm = toggle_fsm(extra_unreachable=True)
        before = lint_fsm(fsm)
        assert {d.rule for d in before} == {"FSM001"}
        after = lint_fsm(remove_unreachable_states(fsm))
        assert after == []

    def test_whole_design_verdicts_commute(self, fig2_result):
        from repro.verify import LintTarget, lint_target

        target = LintTarget.from_result(fig2_result, name="fig2")
        optimized = {
            unit: merge_equivalent_states(
                remove_unreachable_states(fsm)
            )
            for unit, fsm in target.controllers.items()
        }
        before = lint_target(target)
        after = lint_target(target.with_controllers(optimized))
        assert before.to_json() == after.to_json()
