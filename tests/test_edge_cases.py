"""End-to-end edge cases: degenerate graphs through the full flow."""

import pytest

from repro.api import synthesize
from repro.analysis.latency import DistLatencyEvaluator
from repro.core.builder import DFGBuilder
from repro.resources import (
    AllFastCompletion,
    AllSlowCompletion,
    BernoulliCompletion,
)
from repro.sim import simulate, simulate_assignment


def _run_all_styles(result, inputs):
    reference = result.dfg.evaluate(inputs)
    for system in (
        result.distributed_system(),
        result.cent_sync_system(),
        result.cent_system(),
    ):
        sim = simulate(
            system, result.bound, AllSlowCompletion(), inputs=inputs
        )
        for out_name in result.dfg.outputs:
            assert sim.datapath.output_values()[out_name] == reference[
                out_name
            ]
    return reference


class TestSingleOperation:
    def test_single_mult(self):
        b = DFGBuilder("one")
        x = b.input("x")
        m = b.mul("m", x, 7)
        b.output("y", m)
        result = synthesize(b.build(), "mul:1T,add:1")
        _run_all_styles(result, {"x": 6})
        fast = simulate(
            result.distributed_system(), result.bound, AllFastCompletion()
        )
        slow = simulate(
            result.distributed_system(), result.bound, AllSlowCompletion()
        )
        assert fast.cycles == 1
        assert slow.cycles == 2

    def test_single_fixed_op(self):
        b = DFGBuilder("oneadd")
        x = b.input("x")
        a = b.add("a", x, 1)
        b.output("y", a)
        result = synthesize(b.build(), "mul:1T,add:1")
        sim = simulate(
            result.distributed_system(), result.bound, AllFastCompletion()
        )
        assert sim.cycles == 1


class TestDegenerateShapes:
    def test_deep_serial_chain(self):
        b = DFGBuilder("deep")
        node = b.input("x")
        for i in range(20):
            node = (
                b.mul(f"m{i}", node, 3)
                if i % 2 == 0
                else b.add(f"a{i}", node, 1)
            )
        b.output("y", node)
        result = synthesize(b.build(), "mul:1T,add:1")
        # Zero concurrency: DIST == SYNC on every assignment.
        evaluator = DistLatencyEvaluator(result.bound)
        for value in (True, False):
            fast = {op: value for op in result.bound.telescopic_ops()}
            assert evaluator(fast) == result.taubm.cycles_for(fast)

    def test_wide_parallel_graph(self):
        b = DFGBuilder("wide")
        products = [
            b.mul(f"m{i}", b.input(f"x{i}"), i + 2) for i in range(10)
        ]
        acc = products[0]
        for i, p in enumerate(products[1:], 1):
            acc = b.add(f"a{i}", acc, p)
        b.output("y", acc)
        result = synthesize(b.build(), "mul:2T,add:1")
        sim = simulate(
            result.distributed_system(),
            result.bound,
            BernoulliCompletion(0.5),
            seed=1,
            inputs={f"x{i}": i + 1 for i in range(10)},
        )
        assert sim.cycles == DistLatencyEvaluator(result.bound)(
            {
                op: sim.fast_outcomes[op][0]
                for op in result.bound.telescopic_ops()
            }
        )

    def test_op_feeding_many_consumers(self):
        """One producer fanning out to several consumers on one unit —
        the per-edge token regression case."""
        b = DFGBuilder("fanout")
        x = b.input("x")
        root = b.mul("root", x, 2)
        sinks = [b.mul(f"s{i}", root, i + 3) for i in range(4)]
        acc = sinks[0]
        for i, s in enumerate(sinks[1:], 1):
            acc = b.add(f"a{i}", acc, s)
        b.output("y", acc)
        result = synthesize(b.build(), "mul:1T,add:1")
        _run_all_styles(result, {"x": 5})

    def test_squaring_same_producer_both_ports(self):
        b = DFGBuilder("square")
        x = b.input("x")
        m = b.mul("m", x, x)
        sq = b.mul("sq", m, m)
        b.output("y", sq)
        result = synthesize(b.build(), "mul:1T,add:1")
        reference = _run_all_styles(result, {"x": 3})
        assert reference["y"] == 81

    def test_all_outputs_from_one_op(self):
        b = DFGBuilder("multiout")
        x = b.input("x")
        m = b.mul("m", x, 5)
        b.output("a", m)
        b.output("b", m)
        result = synthesize(b.build(), "mul:1T,add:1")
        sim = simulate(
            result.distributed_system(),
            result.bound,
            AllFastCompletion(),
            inputs={"x": 4},
        )
        assert sim.datapath.output_values() == {"a": 20, "b": 20}


class TestExtremeAssignments:
    def test_alternating_assignment_exhaustive_small(self, fig2_result):
        import itertools

        tau_ops = fig2_result.bound.telescopic_ops()
        evaluator = DistLatencyEvaluator(fig2_result.bound)
        for values in itertools.product((False, True), repeat=len(tau_ops)):
            fast = dict(zip(tau_ops, values))
            sim = simulate_assignment(
                fig2_result.distributed_system(), fig2_result.bound, fast
            )
            assert sim.cycles == evaluator(fast)

    def test_many_iterations_stay_consistent(self, fig2_result):
        sim = simulate(
            fig2_result.distributed_system(),
            fig2_result.bound,
            BernoulliCompletion(0.5),
            iterations=16,
            seed=9,
            inputs={n: 2 for n in fig2_result.dfg.inputs},
        )
        assert len(sim.iteration_finish_cycles) == 16
        finishes = sim.iteration_finish_cycles
        assert all(b > a for a, b in zip(finishes, finishes[1:]))
