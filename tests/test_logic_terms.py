"""Unit tests for cube algebra and boolean functions."""

import pytest

from repro.errors import LogicError
from repro.logic.terms import BooleanFunction, Cube


class TestCubeConstruction:
    def test_from_string_round_trip(self):
        for text in ("1-0", "---", "111", "0-1"):
            assert Cube.from_string(text).to_string() == text

    def test_bad_character(self):
        with pytest.raises(LogicError, match="bad cube character"):
            Cube.from_string("1x0")

    def test_minterm(self):
        cube = Cube.minterm(3, 5)
        assert cube.to_string() == "101"

    def test_minterm_out_of_range(self):
        with pytest.raises(LogicError, match="out of range"):
            Cube.minterm(3, 8)

    def test_value_outside_care_rejected(self):
        with pytest.raises(LogicError, match="outside the care mask"):
            Cube(width=3, care=0b001, value=0b010)


class TestCubeAlgebra:
    def test_num_literals(self):
        assert Cube.from_string("1-0").num_literals == 2
        assert Cube.from_string("---").num_literals == 0

    def test_contains(self):
        cube = Cube.from_string("1-")  # var0=1, var1 free
        assert cube.contains(0b01)
        assert cube.contains(0b11)
        assert not cube.contains(0b00)

    def test_covers(self):
        general = Cube.from_string("1--")
        specific = Cube.from_string("1-0")
        assert general.covers(specific)
        assert not specific.covers(general)

    def test_intersects(self):
        assert Cube.from_string("1-").intersects(Cube.from_string("-0"))
        assert not Cube.from_string("1-").intersects(Cube.from_string("0-"))

    def test_merge_distance_one(self):
        a = Cube.from_string("10")
        b = Cube.from_string("11")
        merged = a.merge_distance_one(b)
        assert merged is not None
        assert merged.to_string() == "1-"

    def test_merge_rejects_distance_two(self):
        a = Cube.from_string("00")
        b = Cube.from_string("11")
        assert a.merge_distance_one(b) is None

    def test_merge_rejects_different_masks(self):
        a = Cube.from_string("1-")
        b = Cube.from_string("11")
        assert a.merge_distance_one(b) is None

    def test_expand(self):
        cube = Cube.from_string("1-")
        assert sorted(cube.expand()) == [0b01, 0b11]

    def test_width_mismatch(self):
        with pytest.raises(LogicError, match="width mismatch"):
            Cube.from_string("1-").covers(Cube.from_string("1--"))


class TestBooleanFunction:
    def test_values(self):
        f = BooleanFunction(
            width=2, ones=frozenset({0b11}), dont_cares=frozenset({0b01})
        )
        assert f.value_at(0b11) is True
        assert f.value_at(0b01) is None
        assert f.value_at(0b00) is False

    def test_constants(self):
        zero = BooleanFunction(width=2, ones=frozenset())
        assert zero.is_constant_zero
        one = BooleanFunction(width=1, ones=frozenset({0, 1}))
        assert one.is_constant_one

    def test_overlap_rejected(self):
        with pytest.raises(LogicError, match="both one and don't-care"):
            BooleanFunction(
                width=1, ones=frozenset({0}), dont_cares=frozenset({0})
            )

    def test_out_of_range_rejected(self):
        with pytest.raises(LogicError, match="out of range"):
            BooleanFunction(width=1, ones=frozenset({5}))
