"""Unit tests for the exact (branch-and-bound) scheduler."""

import pytest
from hypothesis import given, settings

from repro.benchmarks import (
    differential_equation,
    fir3,
    iir2,
    paper_fig3_dfg,
)
from repro.core.analysis import schedule_length
from repro.errors import SchedulingError
from repro.resources import ResourceAllocation
from repro.scheduling import exact_schedule, list_schedule

from conftest import random_dfgs


class TestExactSchedule:
    def test_valid_and_resource_legal(self):
        dfg = differential_equation()
        alloc = ResourceAllocation.parse("mul:2T,add:1,sub:1")
        sched = exact_schedule(dfg, alloc)
        for rc, used in sched.resource_usage().items():
            assert used <= alloc.count(rc)

    def test_never_worse_than_list(self):
        for dfg, spec in [
            (fir3(), "mul:2T,add:1"),
            (iir2(), "mul:2T,add:1"),
            (paper_fig3_dfg(), "mul:2T,add:2"),
        ]:
            alloc = ResourceAllocation.parse(spec)
            assert (
                exact_schedule(dfg, alloc).num_steps
                <= list_schedule(dfg, alloc).num_steps
            )

    def test_beats_list_on_iir2(self):
        """The known case where the heuristic loses one step."""
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        assert exact_schedule(iir2(), alloc).num_steps == 5
        assert list_schedule(iir2(), alloc).num_steps == 6

    def test_matches_critical_path_when_unconstrained(self):
        dfg = differential_equation()
        alloc = ResourceAllocation.parse("mul:6T,add:2,sub:3")
        assert exact_schedule(dfg, alloc).num_steps == schedule_length(dfg)

    def test_visited_limit(self):
        from repro.benchmarks import ar_lattice

        alloc = ResourceAllocation.parse("mul:4T,add:2")
        with pytest.raises(SchedulingError, match="exceeded"):
            exact_schedule(ar_lattice(), alloc, max_visited=5)

    def test_synthesize_scheduler_option(self):
        from repro.api import synthesize

        exact = synthesize(iir2(), "mul:2T,add:1", scheduler="exact")
        heuristic = synthesize(iir2(), "mul:2T,add:1", scheduler="list")
        assert exact.schedule.num_steps < heuristic.schedule.num_steps

    def test_unknown_scheduler_rejected(self):
        from repro.api import synthesize

        with pytest.raises(SchedulingError, match="unknown scheduler"):
            synthesize(fir3(), "mul:2T,add:1", scheduler="magic")


@settings(max_examples=20, deadline=None)
@given(random_dfgs)
def test_exact_lower_bounds_list_on_random_graphs(dfg):
    """Property: the exact schedule is a certified lower bound."""
    alloc = ResourceAllocation.parse("mul:1T,add:1,sub:1")
    exact = exact_schedule(dfg, alloc)
    heuristic = list_schedule(dfg, alloc)
    assert schedule_length(dfg) <= exact.num_steps <= heuristic.num_steps
