"""Byte-identity of the vectorized batch Monte-Carlo engine.

The batch engine replays the scalar trial loop in lockstep across all
trials at once; its contract is *byte-identical statistics* — same
per-trial seeds, same draw order, same samples — not statistical
agreement.  Every test here therefore compares ``==``, never approx.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.perf.engine import derive_seed
from repro.sim.batch import (
    BatchSimulator,
    batch_monte_carlo_latency,
    batch_supported,
    numpy_available,
    shared_engine,
)
from repro.sim.runner import monte_carlo_latency

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="batch engine requires numpy"
)

STYLES = ("dist", "cent-sync", "cent")


class TestMtStreams:
    def test_matches_cpython_random(self):
        """Vectorized MT19937 == random.Random, stream for stream."""
        from repro.sim.batch import mt_streams

        seeds = [derive_seed(7, trial) for trial in range(40)]
        draws = 25
        matrix = mt_streams(seeds, draws)
        for row, seed in enumerate(seeds):
            rng = random.Random(seed)
            expected = [rng.random() for _ in range(draws)]
            assert matrix[row].tolist() == expected

    def test_chunked_generation_identical(self):
        from repro.sim.batch import mt_streams

        seeds = [derive_seed(3, t) for t in range(10)]
        assert (
            mt_streams(seeds, 12, chunk=3).tolist()
            == mt_streams(seeds, 12).tolist()
        )


class TestByteIdentity:
    @pytest.mark.parametrize("style", STYLES)
    def test_statistics_identical_to_scalar(self, fig3_result, style):
        system = fig3_result.system(style)
        scalar = monte_carlo_latency(
            system, fig3_result.bound, 0.7, trials=60, seed=5,
            engine="scalar",
        )
        batched = batch_monte_carlo_latency(
            system, fig3_result.bound, 0.7, trials=60, seed=5
        )
        assert batched == scalar

    @pytest.mark.parametrize("p", [0.0, 0.35, 1.0])
    def test_identical_across_p(self, diffeq_result, p):
        system = diffeq_result.distributed_system()
        scalar = monte_carlo_latency(
            system, diffeq_result.bound, p, trials=40, seed=9,
            engine="scalar",
        )
        batched = batch_monte_carlo_latency(
            system, diffeq_result.bound, p, trials=40, seed=9
        )
        assert batched == scalar

    def test_auto_engine_dispatches_to_batch(self, fig3_result):
        """engine='auto' returns the same bytes and records the event."""
        from repro.runtime.policy import RunReport

        system = fig3_result.distributed_system()
        report = RunReport()
        auto = monte_carlo_latency(
            system, fig3_result.bound, 0.7, trials=30, seed=2,
            report=report,
        )
        scalar = monte_carlo_latency(
            system, fig3_result.bound, 0.7, trials=30, seed=2,
            engine="scalar",
        )
        assert auto == scalar
        assert report.count("batch-engine") == 1


class TestEngineReuse:
    def test_memo_persists_across_runs(self, fig3_result):
        engine = BatchSimulator(
            fig3_result.distributed_system(), fig3_result.bound
        )
        first = engine.statistics(0.7, 30, 1)
        size_after_first = engine.memo_size
        second = engine.statistics(0.7, 30, 1)
        assert first == second
        assert engine.memo_size == size_after_first

    def test_shared_engine_cached_per_system(self, fig3_result):
        system = fig3_result.distributed_system()
        a = shared_engine(system, fig3_result.bound)
        b = shared_engine(system, fig3_result.bound)
        assert a is b


class TestGating:
    def test_batch_supported(self, fig3_result):
        assert batch_supported(
            fig3_result.distributed_system(), fig3_result.bound
        )

    def test_invalid_engine_rejected(self, fig3_result):
        with pytest.raises(SimulationError, match="engine must be"):
            monte_carlo_latency(
                fig3_result.distributed_system(),
                fig3_result.bound,
                0.7,
                trials=5,
                engine="turbo",
            )

    def test_batch_incompatible_with_supervision(self, fig3_result, tmp_path):
        with pytest.raises(SimulationError, match="incompatible"):
            monte_carlo_latency(
                fig3_result.distributed_system(),
                fig3_result.bound,
                0.7,
                trials=5,
                engine="batch",
                checkpoint=str(tmp_path / "ck"),
            )

    def test_supervised_auto_stays_scalar(self, fig3_result, tmp_path):
        """Checkpointed runs keep the journaled scalar path — and stay
        byte-identical to the unsupervised batch run."""
        system = fig3_result.distributed_system()
        checkpointed = monte_carlo_latency(
            system, fig3_result.bound, 0.7, trials=20, seed=4,
            checkpoint=str(tmp_path / "ck"),
        )
        batched = monte_carlo_latency(
            system, fig3_result.bound, 0.7, trials=20, seed=4
        )
        assert checkpointed == batched
