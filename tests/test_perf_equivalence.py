"""Parallel-vs-serial equivalence: the engine must not change results.

The contract of :mod:`repro.perf` is that any worker count produces the
byte-identical result of the serial loop.  These tests pin that contract
for every consumer wired through the engine: Monte-Carlo latency across
all three controller styles, the fault-injection campaign, and the
parallelized experiment drivers.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import run_fig4
from repro.experiments.table2 import run_table2
from repro.faults.campaign import run_campaign


@pytest.mark.parametrize("style", ["dist", "cent-sync", "cent"])
def test_monte_carlo_parallel_matches_serial(fig2_result, style):
    serial = fig2_result.monte_carlo_latency(
        p=0.7, trials=30, seed=5, style=style, workers=1
    )
    parallel = fig2_result.monte_carlo_latency(
        p=0.7, trials=30, seed=5, style=style, workers=3
    )
    assert parallel == serial


def test_monte_carlo_auto_workers_matches_serial(fig3_result):
    serial = fig3_result.monte_carlo_latency(trials=20, workers=1)
    auto = fig3_result.monte_carlo_latency(trials=20, workers=0)
    assert auto == serial


def test_fault_campaign_parallel_is_byte_identical(fig2_result):
    serial = run_campaign(fig2_result, trials=8, seed=1, workers=1)
    parallel = run_campaign(fig2_result, trials=8, seed=1, workers=2)
    assert parallel.to_json() == serial.to_json()


def test_fault_campaign_api_passthrough(fig2_result):
    serial = fig2_result.fault_campaign(trials=5, seed=2, workers=1)
    parallel = fig2_result.fault_campaign(trials=5, seed=2, workers=2)
    assert parallel.to_json() == serial.to_json()


def test_table2_rows_identical_under_workers():
    from repro.benchmarks.registry import table2_benchmarks

    entries = list(table2_benchmarks())[:2]
    serial = run_table2(entries, trials=50, workers=1)
    parallel = run_table2(entries, trials=50, workers=2)
    assert parallel.render() == serial.render()


def test_fig4_points_identical_under_workers():
    serial = run_fig4((1, 2), workers=1)
    parallel = run_fig4((1, 2), workers=2)
    assert parallel == serial
