"""Interrupt/resume determinism for long drivers and the CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro import cli
from repro.errors import CheckpointInterrupted
from repro.faults.campaign import run_campaign
from repro.runtime import CheckpointJournal
from repro.sim.runner import monte_carlo_latency


class TestCampaignResume:
    def test_killed_campaign_resumes_byte_identically(
        self, fig2_result, tmp_path
    ):
        path = str(tmp_path / "ck")
        clean = run_campaign(
            fig2_result, trials=4, benchmark="fig2"
        ).to_json()
        # interrupt deterministically after 3 persisted trials — the
        # journal-level stand-in for kill -9 mid-campaign
        with pytest.raises(CheckpointInterrupted):
            run_campaign(
                fig2_result,
                trials=4,
                benchmark="fig2",
                checkpoint=CheckpointJournal(path, max_new_shards=3),
            )
        resumed = run_campaign(
            fig2_result, trials=4, benchmark="fig2", checkpoint=path
        )
        assert resumed.to_json() == clean
        replay = CheckpointJournal(path)
        again = run_campaign(
            fig2_result, trials=4, benchmark="fig2", checkpoint=replay
        )
        assert again.to_json() == clean
        assert replay.new_shards == 0  # fully replayed, nothing re-run

    def test_monte_carlo_resume_matches_uninterrupted(
        self, fig2_result, tmp_path
    ):
        path = str(tmp_path / "ck")
        system = fig2_result.distributed_system()
        clean = monte_carlo_latency(
            system, fig2_result.bound, p=0.7, trials=10, seed=1
        )
        with pytest.raises(CheckpointInterrupted):
            monte_carlo_latency(
                system, fig2_result.bound, p=0.7, trials=10, seed=1,
                checkpoint=CheckpointJournal(path, max_new_shards=4),
            )
        resumed = monte_carlo_latency(
            system, fig2_result.bound, p=0.7, trials=10, seed=1,
            checkpoint=path,
        )
        assert resumed == clean

    def test_campaign_run_key_excludes_workers(
        self, fig2_result, tmp_path
    ):
        path = str(tmp_path / "ck")
        parallel = run_campaign(
            fig2_result, trials=3, benchmark="fig2",
            workers=2, checkpoint=path,
        )
        replay = CheckpointJournal(path)
        serial = run_campaign(
            fig2_result, trials=3, benchmark="fig2",
            workers=1, checkpoint=replay,
        )
        assert serial.to_json() == parallel.to_json()
        assert replay.new_shards == 0


class TestCliResume:
    FAULT_ARGS = [
        "faults", "fig2", "--trials", "2", "--seed", "0",
        "--style", "dist",
    ]

    def test_checkpoint_run_plus_resume_byte_identical(
        self, tmp_path, capsys
    ):
        ck = str(tmp_path / "ck")
        clean_json = str(tmp_path / "clean.json")
        ck_json = str(tmp_path / "ck.json")
        assert cli.main(self.FAULT_ARGS + ["--json", clean_json]) == 0
        assert (
            cli.main(
                self.FAULT_ARGS
                + ["--json", ck_json, "--checkpoint-dir", ck]
            )
            == 0
        )
        assert open(ck_json).read() == open(clean_json).read()
        manifest = json.load(open(os.path.join(ck, "manifest.json")))
        assert manifest["argv"] == (
            self.FAULT_ARGS + ["--json", ck_json, "--checkpoint-dir", ck]
        )
        os.unlink(ck_json)
        capsys.readouterr()
        assert cli.main(["resume", ck]) == 0
        err = capsys.readouterr().err
        assert "resuming: repro faults fig2" in err
        assert open(ck_json).read() == open(clean_json).read()

    def test_resume_rejects_missing_manifest(self, tmp_path, capsys):
        assert cli.main(["resume", str(tmp_path)]) == 1
        assert "cannot read resume manifest" in capsys.readouterr().err

    def test_resume_rejects_malformed_manifest(self, tmp_path, capsys):
        with open(os.path.join(str(tmp_path), "manifest.json"), "w") as f:
            json.dump({"schema": 1, "argv": "faults"}, f)
        assert cli.main(["resume", str(tmp_path)]) == 1
        assert "resumable" in capsys.readouterr().err


def test_fig2_benchmark_exists():
    """The CLI tests above lean on a registered 'fig2' benchmark."""
    from repro.benchmarks.registry import benchmark

    assert benchmark("fig2").dfg().name
