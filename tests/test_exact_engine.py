"""The exact latency engine against the exhaustive enumerator.

The frontier DP and the step-convolution model must reproduce the
``2**k`` enumeration *exactly* — same support, same probabilities —
wherever the enumeration is feasible.  These tests pin that equivalence
on random DFGs and exercise the structured failure mode (the
correlation-cut limit) that replaces the old silent fallback.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.distribution import exact_latency_distribution
from repro.analysis.exact_engine import (
    analyze_dist_latency,
    analyze_sync_latency,
    graph_latency_pmf,
)
from repro.analysis.latency import (
    DistLatencyEvaluator,
    SyncLatencyEvaluator,
    exact_expected_latency,
    expected_latency,
)
from repro.api import synthesize
from repro.errors import ExactAnalysisError, SimulationError

from conftest import random_dfgs

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

allocations = st.sampled_from(
    ["mul:1T,add:1,sub:1", "mul:2T,add:1,sub:1", "mul:2T,add:2,sub:1"]
)

ps = st.sampled_from([0.0, 0.25, 0.5, 0.7, 1.0])


def _enumerated_pmf(scheme, latency_fn, tau_ops, p, clock_ns):
    """Legacy ``2**k`` enumeration, forced via an opaque wrapper."""
    return exact_latency_distribution(
        scheme, lambda fast: latency_fn(fast), tau_ops, p, clock_ns
    ).pmf


def _assert_pmf_equal(engine_pmf, enum_pmf):
    assert [c for c, _ in engine_pmf] == [c for c, _ in enum_pmf]
    for (_, a), (_, b) in zip(engine_pmf, enum_pmf):
        assert a == pytest.approx(b, abs=1e-12)


@SETTINGS
@given(random_dfgs, allocations, ps)
def test_dist_engine_matches_enumeration(dfg, spec, p):
    """Frontier-DP PMF == exhaustive enumeration on random DFGs."""
    result = synthesize(dfg, spec)
    evaluator = DistLatencyEvaluator(result.bound)
    tau_ops = result.bound.telescopic_ops()
    assert len(tau_ops) <= 12  # the enumerator stays feasible
    analysis = analyze_dist_latency(evaluator, tau_ops, p)
    _assert_pmf_equal(
        analysis.distribution.pmf,
        _enumerated_pmf("DIST", evaluator, tau_ops, p, 1.0),
    )


@SETTINGS
@given(random_dfgs, allocations, ps)
def test_sync_engine_matches_enumeration(dfg, spec, p):
    """Step-convolution PMF == exhaustive enumeration on random DFGs."""
    result = synthesize(dfg, spec)
    evaluator = SyncLatencyEvaluator(result.taubm)
    tau_ops = result.bound.telescopic_ops()
    analysis = analyze_sync_latency(result.taubm, tau_ops, p)
    _assert_pmf_equal(
        analysis.distribution.pmf,
        _enumerated_pmf("CENT-SYNC", evaluator, tau_ops, p, 1.0),
    )


@SETTINGS
@given(random_dfgs, allocations, ps)
def test_engine_expectation_matches_enumeration(dfg, spec, p):
    """Expectation through the dispatching API == opaque enumeration."""
    result = synthesize(dfg, spec)
    evaluator = DistLatencyEvaluator(result.bound)
    tau_ops = result.bound.telescopic_ops()
    via_engine = exact_expected_latency(evaluator, tau_ops, p)
    via_enum = exact_expected_latency(
        lambda fast: evaluator(fast), tau_ops, p
    )
    assert via_engine == pytest.approx(via_enum, abs=1e-9)


class TestEngineDiagnostics:
    def test_reports_method_and_cut_width(self, fig3_result):
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        tau_ops = fig3_result.bound.telescopic_ops()
        analysis = analyze_dist_latency(evaluator, tau_ops, 0.7)
        assert analysis.method == "frontier-dp"
        assert analysis.cut_width >= 1
        assert analysis.states >= 1
        assert analysis.components >= 1

    def test_quantile_and_moments_delegate(self, fig3_result):
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        tau_ops = fig3_result.bound.telescopic_ops()
        analysis = analyze_dist_latency(evaluator, tau_ops, 0.7)
        dist = analysis.distribution
        assert analysis.expectation == pytest.approx(dist.mean())
        assert analysis.variance == pytest.approx(dist.variance())
        assert analysis.quantile(0.99) == dist.quantile(0.99)

    def test_p_validated(self, fig3_result):
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        with pytest.raises(SimulationError, match="P must"):
            analyze_dist_latency(
                evaluator, fig3_result.bound.telescopic_ops(), 1.5
            )


class TestCutLimit:
    def test_structured_error_when_cut_exceeded(self, fig3_result):
        """A too-small cut limit raises the structured error eagerly."""
        evaluator = DistLatencyEvaluator(fig3_result.bound)
        tau_ops = fig3_result.bound.telescopic_ops()
        with pytest.raises(ExactAnalysisError) as info:
            analyze_dist_latency(evaluator, tau_ops, 0.7, cut_limit=0)
        assert info.value.cut_width is not None
        assert info.value.cut_width > 0
        assert info.value.limit == 0
        assert info.value.context() == {
            "cut_width": info.value.cut_width,
            "limit": 0,
            "reason": None,
        }

    def test_expected_latency_refuses_silent_fallback(self):
        """allow_monte_carlo=False raises instead of sampling."""
        with pytest.raises(ExactAnalysisError, match="allow_monte_carlo"):
            expected_latency(
                lambda fast: 1,
                [f"op{i}" for i in range(30)],
                0.5,
                allow_monte_carlo=False,
            )

    def test_expected_latency_samples_when_allowed(self):
        value = expected_latency(
            lambda fast: 1, [f"op{i}" for i in range(30)], 0.5
        )
        assert value == pytest.approx(1.0)


class TestGraphPmf:
    def test_empty_graph(self):
        pmf, width, peak, parts = graph_latency_pmf((), ())
        assert pmf == {0: 1.0}
        assert (width, parts) == (0, 0)
        assert peak >= 1

    def test_independent_nodes_join_by_cdf_product(self):
        """Two independent coin-flip nodes: max of independent maxima."""
        spec = ((1, 0.5), (2, 0.5))
        pmf, width, _, parts = graph_latency_pmf((spec, spec), ((), ()))
        assert parts == 2
        assert width == 0  # sinks fold into the running max, no frontier
        assert pmf[1] == pytest.approx(0.25)
        assert pmf[2] == pytest.approx(0.75)

    def test_chain_convolves(self):
        """A two-node chain adds durations."""
        spec = ((1, 0.5), (2, 0.5))
        pmf, _, _, _ = graph_latency_pmf((spec, spec), ((), (0,)))
        assert pmf[2] == pytest.approx(0.25)
        assert pmf[3] == pytest.approx(0.5)
        assert pmf[4] == pytest.approx(0.25)
