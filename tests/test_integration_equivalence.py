"""Integration tests: the library's central equivalence claims.

These are the load-bearing checks of the reproduction (DESIGN.md §6):

1. the cycle-accurate FSM simulator agrees with the analytic longest-path
   model on *every* fast/slow assignment,
2. CENT-FSM (the product machine) is cycle-for-cycle equivalent to the
   distributed control unit,
3. CENT-SYNC agrees with the synchronized step model,
4. every controller style computes bit-identical datapath results,
5. DIST dominates CENT-SYNC on every assignment (never slower).
"""

import itertools

import pytest

from repro.analysis.latency import (
    DistLatencyEvaluator,
    sync_latency_cycles,
)
from repro.sim.runner import simulate_assignment


def _assignments(tau_ops):
    for values in itertools.product((False, True), repeat=len(tau_ops)):
        yield dict(zip(tau_ops, values))


@pytest.fixture(
    scope="module", params=["fig2", "fig3", "diffeq"]
)
def design(request):
    from repro.experiments import synthesize_benchmark

    return synthesize_benchmark(request.param)


class TestSimulatorVsAnalytic:
    def test_distributed_matches_longest_path_exhaustively(self, design):
        evaluator = DistLatencyEvaluator(design.bound)
        system = design.distributed_system()
        for fast in _assignments(design.bound.telescopic_ops()):
            sim = simulate_assignment(system, design.bound, fast)
            assert sim.cycles == evaluator(fast), fast

    def test_sync_matches_step_model_exhaustively(self, design):
        system = design.cent_sync_system()
        for fast in _assignments(design.bound.telescopic_ops()):
            sim = simulate_assignment(system, design.bound, fast)
            assert sim.cycles == sync_latency_cycles(design.taubm, fast)


class TestCentEqualsDist:
    def test_cycle_for_cycle_equivalence(self, design):
        cent = design.cent_system()
        dist = design.distributed_system()
        for fast in _assignments(design.bound.telescopic_ops()):
            cent_sim = simulate_assignment(cent, design.bound, fast)
            dist_sim = simulate_assignment(dist, design.bound, fast)
            assert cent_sim.cycles == dist_sim.cycles, fast
            assert cent_sim.finish_cycles == dist_sim.finish_cycles, fast


class TestDominance:
    def test_dist_never_slower_than_sync(self, design):
        evaluator = DistLatencyEvaluator(design.bound)
        for fast in _assignments(design.bound.telescopic_ops()):
            assert evaluator(fast) <= sync_latency_cycles(
                design.taubm, fast
            ), fast


class TestFunctionalEquivalence:
    def test_all_styles_compute_reference_values(self, design):
        inputs = {
            name: 2 * i + 3 for i, name in enumerate(design.dfg.inputs)
        }
        reference = design.dfg.evaluate(inputs)
        outputs = set(design.dfg.outputs)
        systems = [
            design.distributed_system(),
            design.cent_sync_system(),
            design.cent_system(),
        ]
        tau_ops = design.bound.telescopic_ops()
        # Mixed assignment: alternate fast/slow.
        fast = {op: bool(i % 2) for i, op in enumerate(tau_ops)}
        for system in systems:
            sim = simulate_assignment(
                system, design.bound, fast, inputs=inputs
            )
            for out_name in outputs:
                assert (
                    sim.datapath.output_values()[out_name]
                    == reference[out_name]
                )


class TestUnitOccupancy:
    def test_one_op_per_unit_per_cycle(self, design):
        """Unit exclusivity: execution intervals on a unit never overlap."""
        system = design.distributed_system()
        for fast in _assignments(design.bound.telescopic_ops()):
            sim = simulate_assignment(system, design.bound, fast)
            by_unit: dict[str, list[tuple[int, int]]] = {}
            for op in design.dfg.op_names():
                unit = design.bound.binding[op]
                by_unit.setdefault(unit, []).append(
                    (sim.start_cycles[op], sim.finish_cycles[op])
                )
            for intervals in by_unit.values():
                intervals.sort()
                for (_, f1), (s2, _) in zip(intervals, intervals[1:]):
                    assert f1 <= s2, (intervals, fast)
