"""Unit tests for Algorithm 1 (per-unit controller derivation)."""

import pytest

from repro.errors import FSMError
from repro.fsm.algorithm1 import (
    derive_all_unit_controllers,
    derive_unit_controller,
)
from repro.fsm.signals import (
    op_completion,
    operand_fetch,
    register_enable,
    state_exec,
    state_extend,
    state_ready,
    unit_completion,
)


class TestTauController:
    """Structure checks against the paper's Fig. 6 description."""

    def test_states_per_operation(self, fig3_result):
        bound = fig3_result.bound
        for unit in bound.allocation.telescopic_units():
            ops = bound.ops_on_unit(unit.name)
            fsm = derive_unit_controller(bound, unit.name)
            for op in ops:
                assert state_exec(op) in fsm.states
                assert state_extend(op) in fsm.states
                has_preds = bool(bound.cross_unit_predecessors(op))
                assert (state_ready(op) in fsm.states) == has_preds

    def test_extension_transition_holds_operands_only(self, fig3_result):
        """[S_i -> S_i'] : C_T' / OF_i (paper step 3, first transition)."""
        bound = fig3_result.bound
        unit = bound.allocation.telescopic_units()[0]
        fsm = derive_unit_controller(bound, unit.name)
        c_t = unit_completion(unit.name)
        for op in bound.ops_on_unit(unit.name):
            [t] = [
                t
                for t in fsm.transitions_from(state_exec(op))
                if t.target == state_extend(op)
            ]
            assert t.guard == ((c_t, False),)
            assert t.outputs == {operand_fetch(op)}
            assert not t.completes

    def test_completing_transitions_assert_of_re_cc(self, fig3_result):
        bound = fig3_result.bound
        unit = bound.allocation.telescopic_units()[0]
        fsm = derive_unit_controller(bound, unit.name)
        for op in bound.ops_on_unit(unit.name):
            completing = [
                t for t in fsm.transitions if op in t.completes
            ]
            assert completing
            for t in completing:
                assert operand_fetch(op) in t.outputs
                assert register_enable(op) in t.outputs
                assert op_completion(op) in t.outputs

    def test_second_cycle_ignores_unit_completion(self, fig3_result):
        """Transitions out of S_i' never reference C_T (two delay levels)."""
        bound = fig3_result.bound
        unit = bound.allocation.telescopic_units()[0]
        fsm = derive_unit_controller(bound, unit.name)
        c_t = unit_completion(unit.name)
        for op in bound.ops_on_unit(unit.name):
            for t in fsm.transitions_from(state_extend(op)):
                assert c_t not in dict(t.guard)

    def test_ready_state_waits_for_predecessors(self, fig3_result):
        bound = fig3_result.bound
        for unit in bound.used_units():
            fsm = derive_unit_controller(bound, unit.name)
            for op in bound.ops_on_unit(unit.name):
                preds = bound.cross_unit_predecessors(op)
                if not preds:
                    continue
                release = [
                    t
                    for t in fsm.transitions_from(state_ready(op))
                    if t.target == state_exec(op)
                ]
                assert len(release) == 1
                guard = dict(release[0].guard)
                for p in preds:
                    assert guard[op_completion(p)] is True
                assert release[0].starts == {op}

    def test_wraps_to_first_operation(self, fig3_result):
        """S_{n+1} is S_0 (paper step 3's footnote)."""
        bound = fig3_result.bound
        unit = bound.allocation.telescopic_units()[0]
        ops = bound.ops_on_unit(unit.name)
        fsm = derive_unit_controller(bound, unit.name)
        last = ops[-1]
        first = ops[0]
        targets = {
            t.target for t in fsm.transitions if last in t.completes
        }
        expected = (
            state_ready(first)
            if bound.cross_unit_predecessors(first)
            else state_exec(first)
        )
        assert expected in targets

    def test_validates(self, fig3_result):
        for unit in fig3_result.bound.used_units():
            derive_unit_controller(fig3_result.bound, unit.name).validate()


class TestFixedController:
    def test_no_extension_states(self, fig3_result):
        bound = fig3_result.bound
        fixed_units = [
            u for u in bound.used_units() if not u.is_telescopic
        ]
        assert fixed_units
        for unit in fixed_units:
            fsm = derive_unit_controller(bound, unit.name)
            assert not any(s.startswith("SX_") for s in fsm.states)
            assert unit_completion(unit.name) not in fsm.inputs

    def test_single_cycle_completion(self, fig3_result):
        bound = fig3_result.bound
        unit = [u for u in bound.used_units() if not u.is_telescopic][0]
        fsm = derive_unit_controller(bound, unit.name)
        for op in bound.ops_on_unit(unit.name):
            for t in fsm.transitions_from(state_exec(op)):
                assert op in t.completes


class TestInitialState:
    def test_source_chain_starts_executing(self, fig3_result):
        bound = fig3_result.bound
        for unit in bound.used_units():
            ops = bound.ops_on_unit(unit.name)
            fsm = derive_unit_controller(bound, unit.name)
            if bound.cross_unit_predecessors(ops[0]):
                assert fsm.initial == state_ready(ops[0])
                assert fsm.initial_starts == frozenset()
            else:
                assert fsm.initial == state_exec(ops[0])
                assert fsm.initial_starts == {ops[0]}


class TestErrors:
    def test_empty_unit_rejected(self):
        from repro.api import synthesize
        from repro.benchmarks import paper_fig2_dfg

        # Five TAU multipliers for a 4-multiplication graph: one stays idle.
        result = synthesize(paper_fig2_dfg(), "mul:5T,add:1")
        idle = [
            u.name
            for u in result.allocation
            if not result.bound.ops_on_unit(u.name)
        ]
        assert idle
        with pytest.raises(FSMError, match="no bound operations"):
            derive_unit_controller(result.bound, idle[0])


def test_derive_all_controllers_cover_used_units(fig3_result):
    controllers = derive_all_unit_controllers(fig3_result.bound)
    assert set(controllers) == {
        u.name for u in fig3_result.bound.used_units()
    }


def test_fig6_shape(fig3_result):
    """The Fig. 6 machine: a TAU with ops (O_a, O_b) where O_b has one
    cross-unit predecessor has 5 states and 10 cube transitions."""
    bound = fig3_result.bound
    # Find a telescopic unit whose second op has exactly one predecessor.
    for unit in bound.allocation.telescopic_units():
        ops = bound.ops_on_unit(unit.name)
        if len(ops) >= 2 and len(bound.cross_unit_predecessors(ops[1])) == 1:
            fsm = derive_unit_controller(bound, unit.name)
            per_op_states = sum(
                2 + bool(bound.cross_unit_predecessors(op)) for op in ops
            )
            assert fsm.num_states == per_op_states
            return
    pytest.skip("binding produced no Fig.6-shaped unit")
