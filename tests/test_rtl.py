"""Tests for datapath and system RTL generation."""

import re

import pytest

from repro.fsm.signals import operand_fetch, register_enable
from repro.rtl import (
    datapath_statistics,
    datapath_to_verilog,
    system_to_verilog,
)


@pytest.fixture()
def datapath_text(fig3_result) -> str:
    return datapath_to_verilog(fig3_result.bound, width=12)


class TestDatapathStatistics:
    def test_one_register_per_op(self, fig3_result):
        stats = datapath_statistics(fig3_result.bound)
        assert stats.num_registers == len(fig3_result.dfg)

    def test_units_counted(self, fig3_result):
        stats = datapath_statistics(fig3_result.bound)
        assert stats.num_units == len(fig3_result.bound.used_units())

    def test_shared_units_need_muxes(self, fig3_result):
        stats = datapath_statistics(fig3_result.bound)
        multi_op_units = [
            u.name
            for u in fig3_result.bound.used_units()
            if len(fig3_result.bound.ops_on_unit(u.name)) > 1
        ]
        muxed = {
            unit for unit, a, b in stats.mux_inputs_by_unit if a > 1 or b > 1
        }
        assert set(multi_op_units) <= muxed

    def test_render(self, fig3_result):
        text = datapath_statistics(fig3_result.bound).render()
        assert "result registers" in text


class TestDatapathVerilog:
    def test_module_and_ports(self, datapath_text, fig3_result):
        assert "module datapath (" in datapath_text
        for name in fig3_result.dfg.inputs:
            assert re.search(rf"\[11:0\] {name}\b", datapath_text)
        for out_name in fig3_result.dfg.outputs:
            assert f"out_{out_name}" in datapath_text

    def test_strobe_ports_per_op(self, datapath_text, fig3_result):
        for op in fig3_result.dfg.op_names():
            assert operand_fetch(op) in datapath_text
            assert register_enable(op) in datapath_text

    def test_one_register_per_op(self, datapath_text, fig3_result):
        for op in fig3_result.dfg.op_names():
            assert f"reg signed [11:0] r_{op};" in datapath_text

    def test_writeback_under_re(self, datapath_text, fig3_result):
        op = fig3_result.dfg.op_names()[0]
        unit = fig3_result.bound.unit_of(op).name
        assert f"if (RE_{op}) r_{op} <= {unit}_out;" in datapath_text

    def test_unit_expressions(self, datapath_text):
        assert re.search(r"TM1_out =\s*TM1_in0 \* TM1_in1", datapath_text)
        assert re.search(r"A1_out =\s*A1_in0 \+ A1_in1", datapath_text)

    def test_csg_black_box_ports(self, datapath_text, fig3_result):
        for unit in fig3_result.allocation.telescopic_units():
            assert f"csg_{unit.name}_done" in datapath_text
            assert f"assign C_{unit.name}" in datapath_text

    def test_mux_selected_by_of(self, datapath_text):
        assert re.search(r"\{12\{OF_\w+\}\}", datapath_text)

    def test_constants_inlined(self, diffeq_result):
        text = datapath_to_verilog(diffeq_result.bound, width=12)
        assert "12'd3" in text  # the literal 3 of 3*x


class TestSystemVerilog:
    def test_three_module_groups(self, fig3_result):
        text = system_to_verilog(fig3_result.distributed)
        modules = re.findall(r"^module\s+(\w+)", text, re.MULTILINE)
        assert "fig3_control" in modules
        assert "fig3_datapath" in modules
        assert "system_top" in modules

    def test_internal_strobes_wired(self, fig3_result):
        text = system_to_verilog(fig3_result.distributed)
        top = text.split("module system_top")[1]
        assert re.search(r"\.OF_o0\(OF_o0\)", top)
        assert re.search(r"\.C_TM1\(C_TM1\)", top)

    def test_top_exposes_only_dataflow_and_csg(self, fig3_result):
        text = system_to_verilog(fig3_result.distributed)
        header = text.split("module system_top")[1].split(");")[0]
        assert "csg_TM1_done" in header
        assert "OF_" not in header  # strobes are internal


class TestSystemArea:
    def test_rollup_consistent(self, fig3_result):
        from repro.rtl import system_area_report

        report = system_area_report(fig3_result.distributed, width=12)
        controller = fig3_result.distributed.total_area()
        assert report.controller_combinational == pytest.approx(
            controller.combinational_area
        )
        assert report.controller_sequential == pytest.approx(
            controller.sequential_area
        )
        assert 0.0 < report.controller_fraction < 1.0

    def test_register_area_scales_with_width(self, fig3_result):
        from repro.rtl import system_area_report

        narrow = system_area_report(fig3_result.distributed, width=8)
        wide = system_area_report(fig3_result.distributed, width=32)
        assert (
            wide.datapath_register_sequential
            == 4 * narrow.datapath_register_sequential
        )
        assert wide.controller_fraction < narrow.controller_fraction

    def test_render(self, fig3_result):
        from repro.rtl import system_area_report

        text = system_area_report(fig3_result.distributed).render()
        assert "controller share" in text
