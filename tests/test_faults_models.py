"""Unit tests for the deterministic fault injectors in repro.faults.

Each injector gets one headline test: inject the fault, assert the
matching safety net fires (or, for latency-only faults, that the run
completes bit-correct at a measurable latency cost).  The parameters are
fixed — a failing test here means detection behavior changed, not that a
random draw got unlucky.
"""

import pytest

from repro.errors import DeadlockError, ProtocolError, SimulationError
from repro.faults import (
    DelayedCompletionFault,
    DroppedPulseFault,
    FaultyControllerSystem,
    IntermittentCompletion,
    SpuriousPulseFault,
    StateFlipFault,
    StuckCompletionFault,
    inject,
)
from repro.fsm.signals import unit_of_completion
from repro.resources import AllFastCompletion, AllSlowCompletion
from repro.sim import simulate


def _producers(result):
    edges = result.distributed_system().dependence_edges()
    return sorted({producer for (_, _, producer) in edges})


def _units(result):
    system = result.distributed_system()
    return sorted(
        unit_of_completion(s) for s in system.unit_completion_inputs()
    )


class TestStuckCompletion:
    def test_stuck_at_1_caught_by_timing_monitor(self, fig3_result):
        """CSG lies fast while the telescope sampled slow: the controller
        completes the op before its level's delay is covered."""
        unit = _units(fig3_result)[0]
        system = inject(
            fig3_result.distributed_system(),
            StuckCompletionFault(unit=unit, value=True),
        )
        with pytest.raises(ProtocolError, match="completion signal lied") as e:
            simulate(system, fig3_result.bound, AllSlowCompletion())
        assert e.value.kind == "timing"
        assert e.value.unit == unit

    def test_stuck_at_0_degrades_to_worst_case(self, fig3_result):
        """CSG lies slow: two-level controllers fall back to the worst-case
        delay — the paper's fail-safe property.  Functionally correct, only
        latency is lost."""
        clean = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        unit = _units(fig3_result)[0]
        system = inject(
            fig3_result.distributed_system(),
            StuckCompletionFault(unit=unit, value=False),
        )
        faulty = simulate(system, fig3_result.bound, AllFastCompletion())
        assert faulty.cycles > clean.cycles

    def test_window_bounds_respected(self, fig3_result):
        """A stuck window entirely after the run is a no-op."""
        clean = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        unit = _units(fig3_result)[0]
        system = inject(
            fig3_result.distributed_system(),
            StuckCompletionFault(
                unit=unit,
                value=True,
                first_cycle=clean.cycles + 100,
                last_cycle=clean.cycles + 200,
            ),
        )
        faulty = simulate(system, fig3_result.bound, AllFastCompletion())
        assert faulty.cycles == clean.cycles


class TestDelayedCompletion:
    def test_costs_latency_only(self, fig3_result):
        clean = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        unit = _units(fig3_result)[0]
        system = inject(
            fig3_result.distributed_system(),
            DelayedCompletionFault(unit=unit, delay=2),
        )
        faulty = simulate(system, fig3_result.bound, AllFastCompletion())
        assert faulty.cycles > clean.cycles

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(SimulationError):
            DelayedCompletionFault(unit="TM1", delay=0)


class TestDroppedPulse:
    def test_feedback_graph_deadlocks_and_names_the_net(self, fig2_result):
        """On the Fig. 2 feedback structure a single lost token is fatal;
        the watchdog's diagnostic names the starved net."""
        victim = _producers(fig2_result)[0]
        system = inject(
            fig2_result.distributed_system(),
            DroppedPulseFault(producer_op=victim),
        )
        with pytest.raises(DeadlockError) as excinfo:
            simulate(system, fig2_result.bound, AllFastCompletion())
        starved_nets = {
            producer for (_, _, producer) in excinfo.value.starved_edges
        }
        assert victim in starved_nets
        assert f"CC_{victim}" in str(excinfo.value)

    def test_feedforward_graph_self_heals_at_latency_cost(self, fig3_result):
        """On a feed-forward graph the producer's wrap-around re-execution
        re-emits the pulse: the starved consumer revives one iteration
        late and the run completes bit-correct."""
        clean = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        victim = _producers(fig3_result)[0]
        system = inject(
            fig3_result.distributed_system(),
            DroppedPulseFault(producer_op=victim),
        )
        healed = simulate(system, fig3_result.bound, AllFastCompletion())
        assert healed.cycles > clean.cycles

    def test_permanent_cut_always_deadlocks(self, fig3_result):
        """occurrence=None cuts the net for good — no wrap-around pulse can
        ever revive the consumer, even on a feed-forward graph."""
        victim = _producers(fig3_result)[0]
        system = inject(
            fig3_result.distributed_system(),
            DroppedPulseFault(producer_op=victim, occurrence=None),
        )
        with pytest.raises(DeadlockError):
            simulate(system, fig3_result.bound, AllFastCompletion())


class TestSpuriousPulse:
    def test_unearned_token_causes_premature_start(self, fig3_result):
        victim = _producers(fig3_result)[0]
        system = inject(
            fig3_result.distributed_system(),
            SpuriousPulseFault(producer_op=victim, cycle=0),
        )
        inputs = {n: i + 1 for i, n in enumerate(fig3_result.dfg.inputs)}
        with pytest.raises(ProtocolError, match="control bug") as excinfo:
            simulate(
                system,
                fig3_result.bound,
                AllSlowCompletion(),
                inputs=inputs,
            )
        assert excinfo.value.kind == "premature-start"


class TestStateFlip:
    def test_seu_detected_by_protocol_monitors(self, fig3_result):
        inputs = {n: i + 1 for i, n in enumerate(fig3_result.dfg.inputs)}
        system = inject(
            fig3_result.distributed_system(),
            StateFlipFault(controller="TM1", cycle=0, pick=0),
        )
        with pytest.raises((ProtocolError, DeadlockError)):
            simulate(
                system,
                fig3_result.bound,
                AllFastCompletion(),
                inputs=inputs,
            )

    def test_unknown_controller_rejected(self, fig3_result):
        system = inject(
            fig3_result.distributed_system(),
            StateFlipFault(controller="nope", cycle=0),
        )
        with pytest.raises(SimulationError, match="not a"):
            simulate(system, fig3_result.bound, AllFastCompletion())


class TestIntermittentCompletion:
    def test_slow_drift_is_tolerated(self, fig3_result):
        """Ground truth and report stay consistent — the control unit must
        absorb the slow execution with latency only."""
        clean = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        ops = sorted(
            op
            for op in fig3_result.distributed_system().all_ops()
            if fig3_result.bound.unit_of(op).is_telescopic
        )
        op = ops[0]
        model = IntermittentCompletion(
            inner=AllFastCompletion(), op=op, executions=(0,)
        )
        faulty = simulate(
            fig3_result.distributed_system(), fig3_result.bound, model
        )
        worst = fig3_result.bound.unit_of(op).num_levels - 1
        assert faulty.level_outcomes[op][0] == worst
        assert faulty.cycles >= clean.cycles


class TestInjectorPlumbing:
    def test_inject_requires_at_least_one_fault(self, fig3_result):
        with pytest.raises(SimulationError):
            inject(fig3_result.distributed_system())

    def test_fault_horizon_is_max_over_injectors(self, fig3_result):
        system = inject(
            fig3_result.distributed_system(),
            SpuriousPulseFault(producer_op="o1", cycle=3),
            StateFlipFault(controller="TM1", cycle=9),
            DroppedPulseFault(producer_op="o1"),  # reactive: horizon -1
        )
        assert isinstance(system, FaultyControllerSystem)
        assert system.fault_horizon == 9

    def test_describe_and_target_name_the_fault_site(self):
        faults = [
            StuckCompletionFault(unit="TM1", value=True),
            DelayedCompletionFault(unit="TM2", delay=2),
            DroppedPulseFault(producer_op="o3"),
            SpuriousPulseFault(producer_op="o4", cycle=5),
            StateFlipFault(controller="A1", cycle=1),
        ]
        sites = ["TM1", "TM2", "o3", "o4", "A1"]
        for fault, site in zip(faults, sites):
            assert site in fault.describe()
            assert fault.kind in fault.target()["kind"]
            assert site in str(fault.target().values())
