"""Tests for the explicit-state model checker (repro.verify.modelcheck).

Covers the three rule families end to end: clean proofs on the shipped
benchmarks (with pinned state counts — the exploration itself is
deterministic), budget enforcement, and the soundness contract that
every counterexample replays in the cycle-accurate simulator as the
matching runtime error.
"""

import json
from dataclasses import replace

import pytest

from repro.api import synthesize
from repro.benchmarks.registry import benchmark
from repro.cli import main
from repro.errors import (
    DeadlockError,
    ModelCheckBudgetExceeded,
    ProtocolError,
    VerificationError,
)
from repro.fsm.signals import is_unit_completion
from repro.pipeline.manager import run_synthesis_pipeline
from repro.sim.stimulus import CounterexampleStimulus
from repro.verify import LintTarget, run_selftest
from repro.verify.modelcheck import (
    check_benchmark,
    check_result,
    check_target,
)
from repro.verify.selftest import STRUCTURAL_FAULTS

#: the committed generated-family designs (full canonical names).
GEN_DESIGNS = (
    "gen:ops=20,depth=5,fanout=2,mix=2-2-1,pressure=3,seed=2",
    "gen:ops=14,depth=4,fanout=3,mix=2-2-1,pressure=3,seed=5",
)


@pytest.fixture(scope="module")
def fir5_result():
    entry = benchmark("fir5")
    return synthesize(entry.factory(), entry.allocation())


@pytest.fixture(scope="module")
def fir5_target(fir5_result) -> LintTarget:
    return LintTarget.from_result(fir5_result, name="fir5")


# ----------------------------------------------------------------------
# Clean designs
# ----------------------------------------------------------------------
class TestCleanDesigns:
    @pytest.mark.parametrize(
        ("name", "states"),
        [("fig2", 19), ("fir3", 19), ("fir5", 59), ("diffeq", 62)],
    )
    def test_core_benchmark_clean(self, name, states):
        result = check_benchmark(name)
        assert result.clean
        assert result.states == states
        assert result.accepting > 0
        assert result.transitions >= result.states - result.accepting
        assert result.counterexamples == ()

    @pytest.mark.parametrize("name", GEN_DESIGNS)
    def test_generated_design_clean(self, name):
        result = check_benchmark(name)
        assert result.clean
        assert result.accepting > 0

    def test_check_result_matches_check_benchmark(self, fir5_result):
        via_result = check_result(fir5_result, name="fir5")
        via_name = check_benchmark("fir5")
        assert via_result.report.to_json() == via_name.report.to_json()
        assert via_result.states == via_name.states

    def test_render_summarizes_exploration(self, fir5_target):
        text = check_target(fir5_target).render()
        assert "check fir5:" in text
        assert "states" in text and "accepting" in text

    def test_exploration_deterministic(self, fir5_target):
        first = check_target(fir5_target)
        second = check_target(fir5_target)
        assert first.report.to_json() == second.report.to_json()
        assert (first.states, first.transitions, first.max_depth) == (
            second.states,
            second.transitions,
            second.max_depth,
        )


# ----------------------------------------------------------------------
# Exploration budgets
# ----------------------------------------------------------------------
class TestBudgets:
    def test_state_budget_exceeded(self):
        with pytest.raises(ModelCheckBudgetExceeded) as excinfo:
            check_benchmark("fir5", max_states=10)
        assert excinfo.value.reason == "states"
        assert excinfo.value.limit == 10
        assert excinfo.value.states == 10

    def test_frontier_budget_exceeded(self):
        with pytest.raises(ModelCheckBudgetExceeded) as excinfo:
            check_benchmark("fir5", max_frontier=3)
        assert excinfo.value.reason == "frontier"
        assert excinfo.value.limit == 3
        assert excinfo.value.frontier is not None

    def test_budget_error_context(self):
        with pytest.raises(ModelCheckBudgetExceeded) as excinfo:
            check_benchmark("fir5", max_states=10)
        context = excinfo.value.context()
        assert context["reason"] == "states"
        assert context["limit"] == 10

    def test_generous_budget_unaffected(self, fir5_target):
        result = check_target(
            fir5_target, max_states=1000, max_frontier=1000
        )
        assert result.clean


# ----------------------------------------------------------------------
# Seeded mutations: each rule family fires with a replayable witness
# ----------------------------------------------------------------------
def _noisy_impostor(target: LintTarget) -> LintTarget:
    """A second controller pulses a live CC net on *every* transition."""
    for net in target.distributed.live_nets():
        for unit, fsm in target.controllers.items():
            if unit == net.producer_unit or net.signal in fsm.outputs:
                continue
            mutated = replace(
                fsm,
                outputs=(*fsm.outputs, net.signal),
                transitions=tuple(
                    replace(
                        tr, outputs=frozenset(tr.outputs | {net.signal})
                    )
                    for tr in fsm.transitions
                ),
            )
            controllers = dict(target.controllers)
            controllers[unit] = mutated
            return target.with_controllers(controllers)
    raise AssertionError("design unsuitable: needs two controllers")


def _complete_early(target: LintTarget) -> LintTarget:
    """A telescopic controller completes without waiting for its CSG."""
    for unit, fsm in target.controllers.items():
        if not target.bound.allocation.unit(unit).is_telescopic:
            continue
        for tr in fsm.transitions:
            if tr.completes and any(
                is_unit_completion(name) and required
                for name, required in tr.guard
            ):
                keep = [
                    other
                    for other in fsm.transitions
                    if other.source != tr.source
                ]
                unconditional = tuple(
                    (name, required)
                    for name, required in tr.guard
                    if not is_unit_completion(name)
                )
                keep.append(replace(tr, guard=unconditional))
                controllers = dict(target.controllers)
                controllers[unit] = replace(
                    fsm, transitions=tuple(keep)
                )
                return target.with_controllers(controllers)
    raise AssertionError("design unsuitable: no telescopic completer")


class TestMutationWitnesses:
    def test_dropped_pulse_deadlocks(self, fir5_target):
        fault = next(
            f for f in STRUCTURAL_FAULTS if f.kind == "dropped-pulse"
        )
        bad = fault.mutate(fir5_target)
        result = check_target(bad)
        assert "MC-DEAD" in result.report.rules_fired()
        cex = result.counterexample_for("MC-DEAD")
        assert cex is not None
        assert cex.expects == "deadlock"
        error = cex.replay(bad.distributed.system(), bad.bound)
        assert isinstance(error, DeadlockError)

    def test_spurious_pulses_race(self, fir5_target):
        bad = _noisy_impostor(fir5_target)
        result = check_target(bad)
        assert "MC-RACE" in result.report.rules_fired()
        cex = result.counterexample_for("MC-RACE")
        assert cex is not None
        assert cex.expects == "protocol"
        error = cex.replay(bad.distributed.system(), bad.bound)
        assert isinstance(error, ProtocolError)

    def test_early_completion_breaks_refinement(self, fir5_target):
        bad = _complete_early(fir5_target)
        result = check_target(bad)
        assert "MC-REF" in result.report.rules_fired()
        cex = result.counterexample_for("MC-REF")
        assert cex is not None
        assert cex.expects == "protocol"
        # the violation only exists on a slow-level trajectory
        assert any(level > 0 for _, level in cex.levels)
        error = cex.replay(bad.distributed.system(), bad.bound)
        assert isinstance(error, ProtocolError)

    def test_counterexamples_align_with_diagnostics(self, fir5_target):
        fault = next(
            f for f in STRUCTURAL_FAULTS if f.kind == "dropped-pulse"
        )
        result = check_target(fault.mutate(fir5_target))
        assert len(result.counterexamples) == len(
            result.report.diagnostics
        )
        for d, cex in zip(
            result.report.diagnostics, result.counterexamples
        ):
            assert d.rule == cex.rule_id

    def test_replay_on_clean_design_refuses(self, fir5_target):
        cex = CounterexampleStimulus(
            design="fir5",
            rule_id="MC-DEAD",
            expects="deadlock",
            levels=tuple(
                (op, 0)
                for op in sorted(fir5_target.bound.telescopic_ops())
            ),
        )
        with pytest.raises(VerificationError, match="did not reproduce"):
            cex.replay(
                fir5_target.distributed.system(), fir5_target.bound
            )


# ----------------------------------------------------------------------
# Counterexample serialization
# ----------------------------------------------------------------------
class TestCounterexampleStimulus:
    def test_round_trip(self):
        cex = CounterexampleStimulus(
            design="fir5",
            rule_id="MC-RACE",
            expects="protocol",
            levels=(("m0", 1), ("m1", 0)),
            depth=4,
            description="race on CC_m0",
            handshake=True,
        )
        assert CounterexampleStimulus.from_dict(cex.to_dict()) == cex

    def test_dict_is_json_serializable(self):
        cex = CounterexampleStimulus(
            design="d",
            rule_id="MC-DEAD",
            expects="deadlock",
            levels=(("a", 0),),
        )
        payload = json.loads(json.dumps(cex.to_dict()))
        assert CounterexampleStimulus.from_dict(payload) == cex

    def test_invalid_expects_rejected(self):
        with pytest.raises(VerificationError, match="choose"):
            CounterexampleStimulus(
                design="d",
                rule_id="MC-DEAD",
                expects="explosion",
                levels=(),
            )

    def test_completion_model_carries_levels(self):
        cex = CounterexampleStimulus(
            design="d",
            rule_id="MC-REF",
            expects="protocol",
            levels=(("m0", 2),),
        )
        assert cex.completion_model().levels == {"m0": 2}


# ----------------------------------------------------------------------
# Selftest integration: behavioral fault kinds carry MC pins
# ----------------------------------------------------------------------
class TestSelftestIntegration:
    def test_mc_pins_fire(self, fir5_target):
        outcomes = run_selftest(fir5_target, model_check=True)
        by_kind = {o.kind: o for o in outcomes}
        assert by_kind["stuck-completion"].mc_detected is True
        assert by_kind["dropped-pulse"].mc_detected is True
        assert by_kind["spurious-pulse"].mc_detected is True
        # artifact-level corruptions stay the lint rules' job
        assert by_kind["delayed-completion"].mc_detected is None
        assert by_kind["state-flip"].mc_detected is None
        assert by_kind["intermittent-slow"].mc_detected is None

    def test_without_model_check_no_mc_outcomes(self, fir5_target):
        outcomes = run_selftest(fir5_target)
        assert all(o.mc_detected is None for o in outcomes)

    @pytest.mark.parametrize("name", GEN_DESIGNS)
    def test_generated_designs_selftest(self, name):
        entry = benchmark(name)
        result = synthesize(entry.factory(), entry.allocation())
        target = LintTarget.from_result(result, name=name)
        outcomes = run_selftest(target, model_check=True)
        assert all(o.detected for o in outcomes)
        assert all(
            o.mc_detected
            for o in outcomes
            if o.mc_detected is not None
        )


# ----------------------------------------------------------------------
# Pipeline integration
# ----------------------------------------------------------------------
class TestPipelinePass:
    def test_full_run_includes_model_check(self):
        entry = benchmark("fir3")
        store, manifest = run_synthesis_pipeline(
            entry.factory(), entry.allocation(), upto=None
        )
        record = manifest.record_for("model-check")
        assert tuple(record.diagnostics) == ()

    def test_strict_mode_rejects_corrupt_network(self, fir5_target):
        from repro.errors import PipelineError
        from repro.pipeline.passes import MODEL_CHECK

        fault = next(
            f for f in STRUCTURAL_FAULTS if f.kind == "dropped-pulse"
        )
        bad = fault.mutate(fir5_target)

        class _Store:
            def get(self, key):
                return getattr(bad, key)

        options = MODEL_CHECK.resolve_options({"strict": True})
        with pytest.raises(PipelineError, match="model-check"):
            MODEL_CHECK.run(_Store(), options, [])

    def test_pass_is_cacheable(self):
        from repro.pipeline.passes import MODEL_CHECK

        assert MODEL_CHECK.cacheable


# ----------------------------------------------------------------------
# The repro check CLI
# ----------------------------------------------------------------------
class TestCheckCli:
    def test_single_benchmark_text(self, tmp_path, capsys):
        code = main(
            ["check", "fig2", "--baseline-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "check fig2:" in out
        assert "gate fig2:" in out

    def test_json_output_file(self, tmp_path):
        out_file = tmp_path / "check.json"
        code = main(
            [
                "check",
                "fig2",
                "--baseline-dir",
                str(tmp_path),
                "--format",
                "json",
                "-o",
                str(out_file),
            ]
        )
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["format"] == 1
        report = payload["reports"][0]
        assert report["design"] == "fig2"
        assert report["states"] == 19
        assert report["counterexamples"] == []

    def test_write_then_check_baseline(self, tmp_path):
        args = ["check", "fig2", "--baseline-dir", str(tmp_path)]
        assert main([*args, "--write-baseline"]) == 0
        assert main([*args, "--check-baseline"]) == 0
        baseline = tmp_path / "fig2.json"
        baseline.write_text(baseline.read_text() + "\n")
        assert main([*args, "--check-baseline"]) == 1

    def test_jobs_output_byte_identical(self, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        base = [
            "check",
            "fig2",
            "fir3",
            "--baseline-dir",
            str(tmp_path),
            "--format",
            "json",
        ]
        assert main([*base, "-o", str(serial)]) == 0
        assert main([*base, "-o", str(parallel), "--jobs", "2"]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_budget_flag_fails_cleanly(self, tmp_path, capsys):
        code = main(
            [
                "check",
                "fir5",
                "--baseline-dir",
                str(tmp_path),
                "--max-states",
                "10",
            ]
        )
        assert code == 1
        assert "state budget" in capsys.readouterr().err

    def test_allocation_requires_single_benchmark(self, tmp_path):
        code = main(
            [
                "check",
                "fig2",
                "fig3",
                "--allocation",
                "mul:2T,add:1",
                "--baseline-dir",
                str(tmp_path),
            ]
        )
        assert code == 2


class TestLintJobs:
    def test_jobs_output_byte_identical(self, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        base = [
            "lint",
            "fig2",
            "fir3",
            "--baseline-dir",
            str(tmp_path),
            "--format",
            "json",
            "--fail-on",
            "never",
        ]
        assert main([*base, "-o", str(serial)]) == 0
        assert main([*base, "-o", str(parallel), "--jobs", "2"]) == 0
        assert serial.read_bytes() == parallel.read_bytes()
