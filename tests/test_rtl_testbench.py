"""Tests for self-checking testbench generation."""

import re

import pytest

from repro.errors import SimulationError
from repro.resources import AllSlowCompletion
from repro.rtl import testbench_to_verilog as make_testbench
from repro.sim import simulate


@pytest.fixture()
def scenario(fig3_result):
    inputs = {n: i + 1 for i, n in enumerate(fig3_result.dfg.inputs)}
    sim = simulate(
        fig3_result.distributed_system(),
        fig3_result.bound,
        AllSlowCompletion(),
        inputs=inputs,
        record_trace=True,
    )
    return inputs, sim


class TestTestbench:
    def test_module_and_dut(self, fig3_result, scenario):
        inputs, sim = scenario
        text = make_testbench(fig3_result, sim, inputs)
        assert "module tb_fig3;" in text
        assert "system_top dut (" in text
        assert "$finish" in text

    def test_inputs_driven_with_scenario_values(self, fig3_result, scenario):
        inputs, sim = scenario
        text = make_testbench(fig3_result, sim, inputs)
        for name, value in inputs.items():
            assert re.search(rf"{name} =\s*16'sd{value};", text)

    def test_csg_replay_matches_trace(self, fig3_result, scenario):
        inputs, sim = scenario
        text = make_testbench(fig3_result, sim, inputs)
        # All-slow: the first cycle presents 0 on every CSG input.
        assert "csg_TM1_done = 1'b0;" in text
        # One negedge wait per recorded cycle.
        assert text.count("@(negedge clk);") >= len(sim.trace.records)

    def test_golden_outputs_checked(self, fig3_result, scenario):
        inputs, sim = scenario
        text = make_testbench(fig3_result, sim, inputs)
        golden = sim.datapath.output_values()
        for value in golden.values():
            magnitude = -value if value < 0 else value
            assert f"16'sd{magnitude}" in text
        assert '$display("PASS")' in text

    def test_requires_trace(self, fig3_result):
        inputs = {n: 1 for n in fig3_result.dfg.inputs}
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllSlowCompletion(),
            inputs=inputs,
        )
        with pytest.raises(SimulationError, match="trace"):
            make_testbench(fig3_result, sim, inputs)

    def test_requires_datapath(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllSlowCompletion(),
            record_trace=True,
        )
        with pytest.raises(SimulationError, match="golden"):
            make_testbench(
                fig3_result, sim, {n: 1 for n in fig3_result.dfg.inputs}
            )
