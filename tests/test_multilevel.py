"""Tests for the multi-level VCAU generalization (paper §6 future work)."""

import itertools

import pytest

from repro.analysis.latency import (
    DistLatencyEvaluator,
    duration_table,
    exact_expected_latency_categorical,
)
from repro.api import synthesize
from repro.benchmarks import fir3, paper_fig3_dfg
from repro.core.ops import ResourceClass
from repro.errors import AllocationError, SimulationError
from repro.resources import (
    CategoricalCompletion,
    LevelAssignmentCompletion,
    MultiLevelTelescopicUnit,
    ResourceAllocation,
)
from repro.sim import simulate


def three_level_allocation(mults=2, adders=1):
    return ResourceAllocation.build(
        {ResourceClass.MULTIPLIER: mults, ResourceClass.ADDER: adders},
        level_delays_ns=(15.0, 30.0, 45.0),
        fixed_delay_ns=15.0,
    )


@pytest.fixture(scope="module")
def ml_result():
    return synthesize(fir3(), three_level_allocation())


class TestUnitModel:
    def test_level_delays(self):
        unit = MultiLevelTelescopicUnit(
            "TM1", ResourceClass.MULTIPLIER, delays_ns=(10.0, 20.0, 35.0)
        )
        assert unit.num_levels == 3
        assert unit.worst_delay_ns == 35.0
        assert unit.level_cycles(10.0, 0) == 1
        assert unit.level_cycles(10.0, 1) == 2
        assert unit.level_cycles(10.0, 2) == 4

    def test_levels_must_ascend(self):
        with pytest.raises(AllocationError, match="ascending"):
            MultiLevelTelescopicUnit(
                "TM1", ResourceClass.MULTIPLIER, delays_ns=(20.0, 10.0)
            )

    def test_needs_two_levels(self):
        with pytest.raises(AllocationError, match="at least two"):
            MultiLevelTelescopicUnit(
                "TM1", ResourceClass.MULTIPLIER, delays_ns=(20.0,)
            )

    def test_two_level_unit_exposes_levels(self):
        alloc = ResourceAllocation.parse("mul:1T,add:1")
        tau = alloc.telescopic_units()[0]
        assert tau.level_delays_ns == (15.0, 20.0)
        assert tau.num_levels == 2

    def test_fixed_unit_single_level(self):
        alloc = ResourceAllocation.parse("mul:1T,add:1")
        adder = alloc.unit("A1")
        assert adder.num_levels == 1

    def test_allocation_clock_uses_first_level(self):
        assert three_level_allocation().clock_period_ns() == 15.0


class TestCompletionModels:
    def test_categorical_probabilities_checked(self):
        with pytest.raises(SimulationError, match="sum to 1"):
            CategoricalCompletion((0.5, 0.2))

    def test_categorical_level_count_checked(self, ml_result):
        import random

        unit = ml_result.allocation.telescopic_units()[0]
        model = CategoricalCompletion((0.5, 0.5))
        with pytest.raises(SimulationError, match="levels"):
            model.sample_level("m0", unit, None, random.Random(0))

    def test_categorical_distribution(self, ml_result):
        import random

        unit = ml_result.allocation.telescopic_units()[0]
        model = CategoricalCompletion((0.6, 0.3, 0.1))
        rng = random.Random(0)
        counts = [0, 0, 0]
        for _ in range(3000):
            counts[model.sample_level("m0", unit, None, rng)] += 1
        assert abs(counts[0] / 3000 - 0.6) < 0.05
        assert abs(counts[2] / 3000 - 0.1) < 0.03

    def test_level_assignment(self, ml_result):
        import random

        unit = ml_result.allocation.telescopic_units()[0]
        model = LevelAssignmentCompletion({"m0": 2})
        assert model.sample_level("m0", unit, None, random.Random(0)) == 2
        with pytest.raises(SimulationError, match="no level"):
            model.sample_level("zz", unit, None, random.Random(0))


class TestAlgorithm1MultiLevel:
    def test_extension_chain_depth(self, ml_result):
        """45 ns at a 15 ns clock → 3 cycles → S, SX, SX3 per op."""
        fsm = ml_result.distributed.controller("TM1")
        ops = ml_result.bound.ops_on_unit("TM1")
        for op in ops:
            assert f"SX_{op}" in fsm.states
            assert f"SX3_{op}" in fsm.states
        fsm.validate()

    def test_sync_fsm_extension_chain(self, ml_result):
        fsm = ml_result.cent_sync_fsm
        assert any("_3" in s for s in fsm.states)
        fsm.validate()


class TestSemantics:
    def test_simulator_matches_exact_enumeration(self, ml_result):
        """Exhaustive: every level assignment, simulator == longest path."""
        evaluator = DistLatencyEvaluator(ml_result.bound)
        system = ml_result.distributed_system()
        tau_ops = ml_result.bound.telescopic_ops()
        for levels in itertools.product(range(3), repeat=len(tau_ops)):
            assignment = dict(zip(tau_ops, levels))
            durations = {
                op: ml_result.bound.duration_for_level(op, level)
                for op, level in assignment.items()
            }
            sim = simulate(
                system,
                ml_result.bound,
                LevelAssignmentCompletion(assignment),
            )
            assert sim.cycles == evaluator.for_durations(durations), levels

    def test_sync_matches_step_model(self, ml_result):
        system = ml_result.cent_sync_system()
        tau_ops = ml_result.bound.telescopic_ops()
        for levels in itertools.product(range(3), repeat=len(tau_ops)):
            assignment = dict(zip(tau_ops, levels))
            durations = {
                op: ml_result.bound.duration_for_level(op, level)
                for op, level in assignment.items()
            }
            sim = simulate(
                system,
                ml_result.bound,
                LevelAssignmentCompletion(assignment),
            )
            expected = ml_result.taubm.cycles_for_durations(durations)
            assert sim.cycles == expected, levels

    def test_dist_dominates_sync_on_levels(self, ml_result):
        evaluator = DistLatencyEvaluator(ml_result.bound)
        tau_ops = ml_result.bound.telescopic_ops()
        for levels in itertools.product(range(3), repeat=len(tau_ops)):
            durations = {
                op: ml_result.bound.duration_for_level(op, level)
                for op, level in zip(tau_ops, levels)
            }
            assert evaluator.for_durations(
                durations
            ) <= ml_result.taubm.cycles_for_durations(durations)

    def test_datapath_correct_under_levels(self, ml_result):
        inputs = {f"x{i}": i + 2 for i in range(3)}
        sim = simulate(
            ml_result.distributed_system(),
            ml_result.bound,
            CategoricalCompletion((0.3, 0.4, 0.3)),
            seed=7,
            inputs=inputs,
        )
        reference = ml_result.dfg.evaluate(inputs)
        assert sim.datapath.output_values()["y"] == reference["y"]

    def test_level_outcomes_recorded(self, ml_result):
        sim = simulate(
            ml_result.distributed_system(),
            ml_result.bound,
            LevelAssignmentCompletion(
                {op: 1 for op in ml_result.bound.telescopic_ops()}
            ),
        )
        for op in ml_result.bound.telescopic_ops():
            assert sim.level_outcomes[op][0] == 1
            assert sim.fast_outcomes[op][0] is False


class TestDurationTable:
    def test_quantized_levels_merge(self):
        """Levels mapping to the same cycle count merge probabilities."""
        alloc = ResourceAllocation.build(
            {ResourceClass.MULTIPLIER: 2, ResourceClass.ADDER: 1},
            level_delays_ns=(15.0, 20.0, 30.0),  # cycles 1, 2, 2
            fixed_delay_ns=15.0,
        )
        result = synthesize(fir3(), alloc)
        table = duration_table(result.bound, (0.5, 0.3, 0.2))
        for rows in table.values():
            assert rows == ((1, 0.5), (2, 0.5))

    def test_expectation_interpolates(self, ml_result):
        evaluator = DistLatencyEvaluator(ml_result.bound)
        all_fast = duration_table(ml_result.bound, (1.0, 0.0, 0.0))
        all_slow = duration_table(ml_result.bound, (0.0, 0.0, 1.0))
        mixed = duration_table(ml_result.bound, (0.5, 0.3, 0.2))
        best = exact_expected_latency_categorical(
            evaluator.for_durations, all_fast
        )
        worst = exact_expected_latency_categorical(
            evaluator.for_durations, all_slow
        )
        middle = exact_expected_latency_categorical(
            evaluator.for_durations, mixed
        )
        assert best <= middle <= worst

    def test_enumeration_limit(self, ml_result):
        table = duration_table(ml_result.bound, (0.5, 0.3, 0.2))
        with pytest.raises(SimulationError, match="enumeration limit"):
            exact_expected_latency_categorical(
                lambda d: 1, table, limit_assignments=2
            )


def test_product_fsm_multilevel(ml_result):
    """CENT product still equals DIST cycle counts under levels."""
    cent = ml_result.cent_system()
    dist = ml_result.distributed_system()
    tau_ops = ml_result.bound.telescopic_ops()
    for levels in itertools.product(range(3), repeat=len(tau_ops)):
        model = LevelAssignmentCompletion(dict(zip(tau_ops, levels)))
        cent_sim = simulate(cent, ml_result.bound, model)
        dist_sim = simulate(dist, ml_result.bound, model)
        assert cent_sim.cycles == dist_sim.cycles, levels


class TestMultiLevelBackends:
    def test_verilog_emits_extension_chain(self, ml_result):
        from repro.fsm.verilog import fsm_to_verilog

        fsm = ml_result.distributed.controller("TM1")
        text = fsm_to_verilog(fsm)
        assert "ST_SX3_" in text  # third-cycle states present
        assert "endmodule" in text

    def test_vcd_handles_multilevel_trace(self, ml_result):
        from repro.resources import CategoricalCompletion
        from repro.sim import simulate, trace_to_vcd

        sim = simulate(
            ml_result.distributed_system(),
            ml_result.bound,
            CategoricalCompletion((0.2, 0.3, 0.5)),
            seed=3,
            record_trace=True,
        )
        text = trace_to_vcd(sim)
        assert "$enddefinitions" in text

    def test_serialization_round_trip_multilevel(self, ml_result):
        from repro.serialize import fsm_from_dict, fsm_to_dict

        for fsm in ml_result.distributed.controllers.values():
            clone = fsm_from_dict(fsm_to_dict(fsm))
            assert clone.states == fsm.states

    def test_area_model_handles_extension_chains(self, ml_result):
        from repro.fsm import fsm_area

        report = fsm_area(ml_result.distributed.controller("TM1"))
        # TM1 holds two ops at 3 states each (S, SX, SX3).
        assert report.num_states == 3 * len(
            ml_result.bound.ops_on_unit("TM1")
        )
        assert report.combinational_area > 0
