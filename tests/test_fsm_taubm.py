"""Unit tests for the synchronized centralized TAUBM FSM (Fig. 2(c)/4(b))."""

import pytest

from repro.fsm.model import FSM
from repro.fsm.signals import operand_fetch, register_enable, unit_completion
from repro.fsm.taubm import derive_cent_sync_fsm


@pytest.fixture()
def sync_fsm(fig2_result) -> FSM:
    return fig2_result.cent_sync_fsm


class TestStructure:
    def test_states_match_fig2c(self, fig2_result, sync_fsm):
        """Fig. 2(c): one state per step plus one per TAU step."""
        taubm = fig2_result.taubm
        expected = len(taubm.steps) + sum(
            s.has_extension for s in taubm.steps
        )
        assert sync_fsm.num_states == expected == 6

    def test_initial_is_first_step(self, sync_fsm):
        assert sync_fsm.initial == "T0"

    def test_inputs_are_unit_completions(self, fig2_result, sync_fsm):
        tau_units = {
            unit_completion(u.name)
            for u in fig2_result.allocation.telescopic_units()
        }
        assert set(sync_fsm.inputs) <= tau_units

    def test_guard_is_conjunction_of_all_step_units(
        self, fig2_result, sync_fsm
    ):
        """Fig. 4(b): the completing guard ANDs every TAU in the step."""
        taubm = fig2_result.taubm
        bound = fig2_result.bound
        for step in taubm.steps:
            if not step.has_extension:
                continue
            completing = [
                t
                for t in sync_fsm.transitions_from(f"T{step.index}")
                if t.target != f"TX{step.index}"
            ]
            assert len(completing) == 1
            guard = dict(completing[0].guard)
            for op in step.tau_ops:
                assert guard[unit_completion(bound.unit_of(op).name)]

    def test_extension_transition_unconditional(self, sync_fsm):
        for state in sync_fsm.states:
            if state.startswith("TX"):
                [t] = sync_fsm.transitions_from(state)
                assert t.guard == ()

    def test_register_enable_at_step_end_only(self, fig2_result, sync_fsm):
        taubm = fig2_result.taubm
        for step in taubm.steps:
            if not step.has_extension:
                continue
            to_extension = [
                t
                for t in sync_fsm.transitions_from(f"T{step.index}")
                if t.target == f"TX{step.index}"
            ]
            for t in to_extension:
                for op in step.ops:
                    assert operand_fetch(op) in t.outputs
                    assert register_enable(op) not in t.outputs

    def test_validates(self, sync_fsm):
        sync_fsm.validate()


class TestSemantics:
    def test_synchronization_penalty(self, fig3_result):
        """A fast op in a step with a slow sibling still waits (the §2.3
        lost-concurrency problem, observable in the FSM semantics)."""
        fsm = fig3_result.cent_sync_fsm
        taubm = fig3_result.taubm
        step = next(s for s in taubm.steps if len(s.tau_ops) >= 2)
        bound = fig3_result.bound
        units = [bound.unit_of(op).name for op in step.tau_ops]
        state = f"T{step.index}"
        # One unit fast, the other slow: must take the extension.
        inputs = {unit_completion(u): False for u in units}
        inputs[unit_completion(units[0])] = True
        for signal in fsm.inputs:
            inputs.setdefault(signal, False)
        t = fsm.step(state, inputs)
        assert t.target == f"TX{step.index}"

    def test_no_extension_without_taus(self, fig2_result):
        fsm = fig2_result.cent_sync_fsm
        taubm = fig2_result.taubm
        plain = [s for s in taubm.steps if not s.has_extension]
        assert plain
        for step in plain:
            [t] = fsm.transitions_from(f"T{step.index}")
            assert t.guard == ()
            assert set(step.ops) <= t.completes


class TestErrors:
    def test_shared_unit_in_step_rejected(self, fig3_result):
        """Two TAU ops of one step on the same unit is infeasible."""
        from repro.scheduling.schedule import TaubmSchedule, TaubmStep
        from repro.errors import FSMError

        bound = fig3_result.bound
        tau_ops = bound.telescopic_ops()
        same_unit = [
            op
            for op in tau_ops
            if bound.unit_of(op).name == bound.unit_of(tau_ops[0]).name
        ]
        if len(same_unit) < 2:
            pytest.skip("no two ops share a unit")
        step = TaubmStep(
            index=0, ops=tuple(same_unit[:2]), tau_ops=tuple(same_unit[:2])
        )
        broken = TaubmSchedule(base=fig3_result.schedule, steps=(step,))
        with pytest.raises(FSMError, match="share unit"):
            derive_cent_sync_fsm(broken, bound)
