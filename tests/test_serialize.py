"""Tests for JSON serialization of graphs, FSMs and designs."""

import pytest
from hypothesis import given, settings

from repro.errors import ReproError
from repro.serialize import (
    design_to_dict,
    dfg_from_dict,
    dfg_to_dict,
    dumps,
    fsm_from_dict,
    fsm_to_dict,
    loads,
)

from conftest import random_dfgs


class TestDfgRoundTrip:
    def test_paper_benchmarks_round_trip(self):
        from repro.benchmarks import all_benchmarks

        for entry in all_benchmarks():
            dfg = entry.dfg()
            clone = dfg_from_dict(loads(dumps(dfg_to_dict(dfg))))
            assert clone.name == dfg.name
            assert clone.inputs == dfg.inputs
            assert clone.op_names() == dfg.op_names()
            assert clone.outputs == dfg.outputs
            inputs = {n: i + 1 for i, n in enumerate(dfg.inputs)}
            assert clone.evaluate(inputs) == dfg.evaluate(inputs)

    def test_bad_format_rejected(self):
        with pytest.raises(ReproError, match="unsupported DFG format"):
            dfg_from_dict({"format": 99})

    def test_bad_op_type_rejected(self, simple_dfg):
        data = dfg_to_dict(simple_dfg)
        data["operations"][0]["type"] = "FROBNICATE"
        with pytest.raises(ReproError, match="unknown operation type"):
            dfg_from_dict(data)

    def test_bad_operand_kind_rejected(self, simple_dfg):
        data = dfg_to_dict(simple_dfg)
        data["operations"][0]["operands"][0] = {"kind": "???"}
        with pytest.raises(ReproError, match="unknown operand kind"):
            dfg_from_dict(data)

    @settings(max_examples=25, deadline=None)
    @given(random_dfgs)
    def test_random_graphs_round_trip(self, dfg):
        clone = dfg_from_dict(dfg_to_dict(dfg))
        inputs = {n: 2 * i + 1 for i, n in enumerate(dfg.inputs)}
        assert clone.evaluate(inputs) == dfg.evaluate(inputs)


class TestFsmRoundTrip:
    def test_controllers_round_trip(self, fig3_result):
        for fsm in fig3_result.distributed.controllers.values():
            clone = fsm_from_dict(loads(dumps(fsm_to_dict(fsm))))
            assert clone.states == fsm.states
            assert clone.initial == fsm.initial
            assert clone.inputs == fsm.inputs
            assert clone.outputs == fsm.outputs
            assert clone.initial_starts == fsm.initial_starts
            assert set(clone.transitions) == set(fsm.transitions)

    def test_deserialized_fsm_simulates_identically(self, fig3_result):
        from repro.resources import AllSlowCompletion
        from repro.sim import simulate, system_from_bound

        clones = {
            unit: fsm_from_dict(fsm_to_dict(fsm))
            for unit, fsm in fig3_result.distributed.controllers.items()
        }
        system = system_from_bound(fig3_result.bound, clones)
        original = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllSlowCompletion(),
        )
        restored = simulate(system, fig3_result.bound, AllSlowCompletion())
        assert restored.cycles == original.cycles
        assert restored.finish_cycles == original.finish_cycles

    def test_validation_on_load(self, fig3_result):
        fsm = fig3_result.distributed.controller("TM1")
        data = fsm_to_dict(fsm)
        data["transitions"] = data["transitions"][:2]
        from repro.errors import FSMError

        with pytest.raises(FSMError):
            fsm_from_dict(data)


class TestPipelineArtifactRoundTrip:
    """Every pipeline artifact survives a JSON round-trip byte-for-byte."""

    def test_schedule(self, fig3_result):
        from repro.serialize import schedule_from_dict, schedule_to_dict

        schedule = fig3_result.schedule
        clone = schedule_from_dict(
            loads(dumps(schedule_to_dict(schedule))), fig3_result.dfg
        )
        assert clone == schedule
        assert dumps(schedule_to_dict(clone)) == dumps(
            schedule_to_dict(schedule)
        )

    def test_order(self, fig3_result):
        from repro.serialize import order_from_dict, order_to_dict

        order = fig3_result.order
        clone = order_from_dict(
            loads(dumps(order_to_dict(order))), fig3_result.dfg
        )
        assert clone == order
        assert dumps(order_to_dict(clone)) == dumps(order_to_dict(order))

    def test_bound(self, fig3_result):
        from repro.perf.cache import artifact_fingerprint
        from repro.serialize import bound_from_dict, bound_to_dict

        bound = fig3_result.bound
        clone = bound_from_dict(
            loads(dumps(bound_to_dict(bound))),
            fig3_result.dfg,
            fig3_result.allocation,
        )
        assert clone.binding == bound.binding
        assert artifact_fingerprint(clone) == artifact_fingerprint(bound)

    def test_taubm(self, fig3_result):
        from repro.perf.cache import artifact_fingerprint
        from repro.serialize import taubm_from_dict, taubm_to_dict

        taubm = fig3_result.taubm
        clone = taubm_from_dict(
            loads(dumps(taubm_to_dict(taubm))), fig3_result.dfg
        )
        assert artifact_fingerprint(clone) == artifact_fingerprint(taubm)

    def test_distributed(self, fig3_result):
        from repro.perf.cache import artifact_fingerprint
        from repro.serialize import (
            distributed_from_dict,
            distributed_to_dict,
        )

        distributed = fig3_result.distributed
        clone = distributed_from_dict(
            loads(dumps(distributed_to_dict(distributed))),
            fig3_result.bound,
        )
        assert clone.unit_names == distributed.unit_names
        assert clone.pruned_signals == distributed.pruned_signals
        assert artifact_fingerprint(clone) == artifact_fingerprint(
            distributed
        )

    def test_distributed_clone_simulates_identically(self, fig3_result):
        from repro.resources import AllSlowCompletion
        from repro.serialize import (
            distributed_from_dict,
            distributed_to_dict,
        )
        from repro.sim import simulate, system_from_bound

        clone = distributed_from_dict(
            distributed_to_dict(fig3_result.distributed), fig3_result.bound
        )
        original = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllSlowCompletion(),
        )
        restored = simulate(
            system_from_bound(fig3_result.bound, dict(clone.controllers)),
            fig3_result.bound,
            AllSlowCompletion(),
        )
        assert restored.cycles == original.cycles
        assert restored.finish_cycles == original.finish_cycles

    def test_bad_formats_rejected(self, fig3_result):
        from repro.serialize import (
            bound_from_dict,
            distributed_from_dict,
            order_from_dict,
            schedule_from_dict,
            taubm_from_dict,
        )

        cases = [
            (schedule_from_dict, (fig3_result.dfg,)),
            (order_from_dict, (fig3_result.dfg,)),
            (bound_from_dict, (fig3_result.dfg, fig3_result.allocation)),
            (taubm_from_dict, (fig3_result.dfg,)),
            (distributed_from_dict, (fig3_result.bound,)),
        ]
        for loader, context in cases:
            with pytest.raises(ReproError, match="unsupported"):
                loader({"format": 99}, *context)


class TestDesignRecord:
    def test_design_record_fields(self, fig3_result):
        record = design_to_dict(fig3_result)
        assert record["clock_ns"] == 15.0
        assert record["binding"]["o0"] == "TM1"
        assert record["schedule"]["o0"] == 0
        assert set(record["controllers"]) == set(
            fig3_result.distributed.unit_names
        )
        assert "CC_o5" in record["pruned_signals"]

    def test_design_record_json_stable(self, fig3_result):
        a = dumps(design_to_dict(fig3_result))
        b = dumps(design_to_dict(fig3_result))
        assert a == b

    def test_multilevel_allocation_recorded(self):
        from repro.api import synthesize
        from repro.benchmarks import fir3
        from repro.core.ops import ResourceClass
        from repro.resources import ResourceAllocation

        alloc = ResourceAllocation.build(
            {ResourceClass.MULTIPLIER: 2, ResourceClass.ADDER: 1},
            level_delays_ns=(15.0, 30.0, 45.0),
        )
        record = design_to_dict(synthesize(fir3(), alloc))
        tau = next(
            u for u in record["allocation"] if u["name"] == "TM1"
        )
        assert tau["level_delays_ns"] == [15.0, 30.0, 45.0]
