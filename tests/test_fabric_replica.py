"""Tests for primary/backup journal replication and torn shards.

Covers :mod:`repro.fabric.replica` plus the satellite requirement that
shard files torn *mid-campaign* (truncated or bit-flipped after
commit) are quarantined to ``*.corrupt``, recomputed or repaired, and
the final output stays byte-identical — parametrized over the primary
and the backup journal copies.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.errors import CheckpointError, CheckpointInterrupted
from repro.fabric.replica import (
    BACKUP_SUFFIX,
    ReplicatedJournal,
    default_backup_path,
)
from repro.runtime.journal import (
    CheckpointJournal,
    checkpointed_map,
)
from repro.runtime.policy import RunReport

RUN_KEY = "replica-test|v1"


def _replicated(tmp_path, report=None) -> ReplicatedJournal:
    return ReplicatedJournal(
        CheckpointJournal(str(tmp_path / "primary")),
        CheckpointJournal(str(tmp_path / "backup")),
        report=report,
    )


def _shard_bytes(journal: CheckpointJournal, key: str) -> bytes:
    with open(journal.shard_file(key), "rb") as handle:
        return handle.read()


def _truncate(path: str) -> None:
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(size // 2, 1))


def _bit_flip(path: str) -> None:
    with open(path, "r+b") as handle:
        blob = bytearray(handle.read())
        blob[-1] ^= 0xFF
        handle.seek(0)
        handle.write(blob)


CORRUPTIONS = {"truncate": _truncate, "bit-flip": _bit_flip}


class TestReplicatedJournal:
    def test_put_commits_byte_identical_copies(self, tmp_path):
        journal = _replicated(tmp_path)
        key = journal.key(RUN_KEY, 0)
        journal.put(key, {"row": [1, 2, 3]})
        assert _shard_bytes(journal.primary, key) == _shard_bytes(
            journal.backup, key
        )
        assert journal.get(key) == (True, {"row": [1, 2, 3]})
        assert journal.repaired == 0

    def test_same_directory_twice_rejected(self, tmp_path):
        path = str(tmp_path / "journal")
        with pytest.raises(CheckpointError, match="distinct"):
            ReplicatedJournal(
                CheckpointJournal(path), CheckpointJournal(path)
            )

    def test_default_backup_path(self):
        assert default_backup_path("/runs/ckpt") == (
            "/runs/ckpt" + BACKUP_SUFFIX
        )
        assert default_backup_path("/runs/ckpt/") == (
            "/runs/ckpt" + BACKUP_SUFFIX
        )

    def test_adopts_plain_serial_checkpoint(self, tmp_path):
        # a pre-fabric single-directory checkpoint: backup starts
        # empty and is populated by repair on first read
        primary = CheckpointJournal(str(tmp_path / "primary"))
        key = primary.key(RUN_KEY, 0)
        primary.put(key, 41)
        report = RunReport()
        journal = ReplicatedJournal(
            primary,
            CheckpointJournal(str(tmp_path / "backup")),
            report=report,
        )
        assert journal.get(key) == (True, 41)
        assert journal.repaired == 1
        assert report.count("journal-repair") == 1
        assert _shard_bytes(journal.backup, key) == _shard_bytes(
            primary, key
        )

    @pytest.mark.parametrize("copy", ["primary", "backup"])
    @pytest.mark.parametrize("tear", sorted(CORRUPTIONS))
    def test_torn_copy_quarantined_and_repaired(
        self, tmp_path, copy, tear
    ):
        report = RunReport()
        journal = _replicated(tmp_path, report=report)
        key = journal.key(RUN_KEY, 3)
        journal.put(key, ("value", 3))
        torn = getattr(journal, copy)
        twin = journal.backup if copy == "primary" else journal.primary
        good_bytes = _shard_bytes(twin, key)
        CORRUPTIONS[tear](torn.shard_file(key))

        assert journal.get(key) == (True, ("value", 3))
        # the torn file was quarantined aside, then the slot repaired
        assert torn.quarantined == 1
        assert os.path.exists(torn.shard_file(key) + ".corrupt")
        assert torn.corrupt_files() == [
            torn.shard_file(key) + ".corrupt"
        ]
        assert _shard_bytes(torn, key) == good_bytes
        assert report.count("journal-quarantine") == 1
        assert report.count("journal-repair") == 1
        # the repaired copy now verifies on its own
        assert torn.get(key) == (True, ("value", 3))

    @pytest.mark.parametrize("tear", sorted(CORRUPTIONS))
    def test_both_copies_torn_reports_missing(self, tmp_path, tear):
        report = RunReport()
        journal = _replicated(tmp_path, report=report)
        key = journal.key(RUN_KEY, 0)
        journal.put(key, 99)
        CORRUPTIONS[tear](journal.primary.shard_file(key))
        CORRUPTIONS[tear](journal.backup.shard_file(key))
        assert journal.get(key) == (False, None)
        assert journal.primary.quarantined == 1
        assert journal.backup.quarantined == 1
        assert report.count("journal-quarantine") == 2
        assert report.count("journal-repair") == 0

    def test_unpicklable_shard_quarantined(self, tmp_path):
        import hashlib

        journal = _replicated(tmp_path)
        key = journal.key(RUN_KEY, 0)
        journal.put(key, 7)
        # valid checksum over garbage that cannot unpickle
        payload = b"not a pickle"
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        with open(journal.primary.shard_file(key), "wb") as handle:
            handle.write(digest + b"\n" + payload)
        assert journal.get(key) == (True, 7)
        assert journal.primary.quarantined == 1
        assert journal.repaired == 1

    def test_counters_shape(self, tmp_path):
        journal = _replicated(tmp_path)
        key = journal.key(RUN_KEY, 0)
        journal.put(key, 1)
        journal.get(key)
        counters = journal.counters()
        assert counters["primary"]["new_shards"] == 1
        assert counters["primary"]["replayed"] == 1
        assert counters["backup"]["new_shards"] == 1
        assert counters["repaired"] == 0
        assert counters["primary"]["path"] == journal.primary.path


class TestTornShardMidCampaign:
    """Interrupt a campaign, tear a committed shard, resume."""

    @pytest.mark.parametrize("tear", sorted(CORRUPTIONS))
    def test_resume_recomputes_torn_shard(self, tmp_path, tear):
        path = str(tmp_path / "ckpt")
        items = list(range(6))
        baseline = [item * item for item in items]

        with pytest.raises(CheckpointInterrupted):
            checkpointed_map(
                lambda item: item * item,
                items,
                run_key=RUN_KEY,
                checkpoint=CheckpointJournal(path, max_new_shards=3),
            )
        shards = sorted(
            name
            for name in os.listdir(path)
            if name.endswith(".shard.pkl")
        )
        assert len(shards) == 3
        CORRUPTIONS[tear](os.path.join(path, shards[0]))

        report = RunReport()
        resumed = checkpointed_map(
            lambda item: item * item,
            items,
            run_key=RUN_KEY,
            checkpoint=path,
            report=report,
        )
        assert resumed == baseline
        assert report.count("journal-quarantine") == 1
        assert os.path.exists(
            os.path.join(path, shards[0] + ".corrupt")
        )
        # the recomputed shard re-verifies: a third pass is pure replay
        replay_journal = CheckpointJournal(path)
        assert (
            checkpointed_map(
                lambda item: item * item,
                items,
                run_key=RUN_KEY,
                checkpoint=replay_journal,
            )
            == baseline
        )
        assert replay_journal.replayed == len(items)
        assert replay_journal.new_shards == 0

    def test_recomputed_shard_bytes_match_original(self, tmp_path):
        # content-addressed + deterministic pickle: the recomputed
        # shard file is byte-identical to the one that was torn
        journal = CheckpointJournal(str(tmp_path / "ckpt"))
        key = journal.key(RUN_KEY, 0)
        journal.put(key, {"stats": (1.5, 2.5)})
        original = _shard_bytes(journal, key)
        _bit_flip(journal.shard_file(key))
        assert journal.get(key) == (False, None)
        journal.put(key, {"stats": (1.5, 2.5)})
        assert _shard_bytes(journal, key) == original

    def test_shard_payload_is_checksummed_pickle(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "ckpt"))
        key = journal.key(RUN_KEY, 0)
        journal.put(key, [1, 2])
        blob = _shard_bytes(journal, key)
        digest, payload = blob.split(b"\n", 1)
        assert len(digest) == 64
        assert pickle.loads(payload) == [1, 2]
