"""Tests for the pass-based synthesis pipeline."""

import json

import pytest

from repro.benchmarks import differential_equation, fir3
from repro.errors import (
    PipelineError,
    SchedulingError,
    SchedulingFallbackWarning,
)
from repro.perf.cache import SynthesisCache, artifact_fingerprint
from repro.pipeline import (
    ARTIFACT_TYPES,
    ArtifactStore,
    BINDERS,
    CONTROLLER_BACKENDS,
    ORDER_OBJECTIVES,
    PassManager,
    Registry,
    SCHEDULERS,
    run_synthesis_pipeline,
    set_default_synthesis_cache,
    synthesis_passes,
    synthesize_design,
)
from repro.pipeline.passes import Pass
from repro.resources.allocation import ResourceAllocation


class TestArtifactStore:
    def test_put_get_round_trip(self):
        store = ArtifactStore(dfg=fir3())
        assert store.get("dfg").name == "fir3"
        assert "dfg" in store and "schedule" not in store

    def test_unknown_name_rejected(self):
        with pytest.raises(PipelineError, match="unknown artifact name"):
            ArtifactStore().put("frobnicate", fir3())

    def test_wrong_type_rejected(self):
        with pytest.raises(PipelineError, match="must be DataflowGraph"):
            ArtifactStore().put("dfg", "not a graph")

    def test_missing_artifact_reported(self):
        with pytest.raises(PipelineError, match="not been produced"):
            ArtifactStore().get("schedule")

    def test_names_cover_declared_types(self):
        store = ArtifactStore(
            dfg=fir3(), allocation=ResourceAllocation.parse("mul:2T,add:1")
        )
        assert store.names() == ("dfg", "allocation")
        assert set(ARTIFACT_TYPES) >= set(store.names())


class TestRegistries:
    def test_scheduler_names(self):
        assert SCHEDULERS.names() == (
            "alap", "asap", "exact", "force-directed", "list",
        )

    def test_other_registries(self):
        assert ORDER_OBJECTIVES.names() == ("communication", "latency")
        assert BINDERS.names() == ("chain",)
        assert CONTROLLER_BACKENDS.names() == ("cent", "cent-sync", "dist")

    def test_unknown_scheduler_lists_choices(self):
        with pytest.raises(SchedulingError, match="'force-directed'"):
            SCHEDULERS.get("bogus")

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("x", lambda: None)
        with pytest.raises(PipelineError, match="already registered"):
            registry.register("x", lambda: None)

    def test_registration_extends_synthesize(self):
        """A registered scheduler is reachable by name, then removable."""
        from repro import synthesize

        @SCHEDULERS.register("test-only", summary="list in disguise")
        def _test_only(dfg, allocation, *, diagnostics, **options):
            from repro.scheduling.list_scheduler import list_schedule

            return list_schedule(dfg, allocation)

        try:
            result = synthesize(fir3(), "mul:2T,add:1",
                                scheduler="test-only")
            assert result.schedule.num_steps >= 1
        finally:
            SCHEDULERS._entries.pop("test-only")


class TestPassManager:
    def test_pass_names_in_order(self):
        assert PassManager().pass_names() == (
            "validate", "schedule", "order", "bind", "taubm",
            "distributed", "verify-artifacts", "model-check",
            "cent-fsms",
        )

    def test_unknown_upto_rejected(self):
        store = ArtifactStore(
            dfg=fir3(), allocation=ResourceAllocation.parse("mul:2T,add:1")
        )
        with pytest.raises(PipelineError, match="unknown pass"):
            PassManager().run(store, upto="frobnicate")

    def test_unknown_options_pass_rejected(self):
        store = ArtifactStore(
            dfg=fir3(), allocation=ResourceAllocation.parse("mul:2T,add:1")
        )
        with pytest.raises(PipelineError, match="unknown pass"):
            PassManager().run(store, options={"frobnicate": {}})

    def test_upto_stops_early(self):
        store, manifest = run_synthesis_pipeline(
            fir3(), "mul:2T,add:1", upto="order"
        )
        assert manifest.pass_names() == ("validate", "schedule", "order")
        assert "order" in store and "bound" not in store

    def test_full_run_provides_cent_fsms(self):
        store, manifest = run_synthesis_pipeline(
            fir3(), "mul:2T,add:1", upto=None
        )
        assert "cent_sync_fsm" in store and "cent_fsm" in store
        assert manifest.pass_names()[-1] == "cent-fsms"

    def test_misordered_passes_rejected(self):
        passes = synthesis_passes()
        with pytest.raises(PipelineError, match="requires"):
            PassManager((passes[3], passes[1]))

    def test_lying_pass_rejected(self):
        lying = Pass(
            name="liar",
            requires=("dfg",),
            provides=("schedule",),
            run=lambda store, options, diagnostics: {},
        )
        store = ArtifactStore(
            dfg=fir3(), allocation=ResourceAllocation.parse("mul:2T,add:1")
        )
        with pytest.raises(PipelineError, match="declares"):
            PassManager((lying,)).run(store)

    def test_custom_pass_runs(self):
        """The docs' "build your own pass" recipe works end to end."""
        seen = []

        def _audit(store, options, diagnostics):
            seen.append(store.get("schedule").num_steps)
            diagnostics.append({"event": "audited"})
            return {}

        audit = Pass(
            name="audit",
            requires=("schedule",),
            provides=(),
            run=_audit,
            summary="records the schedule length",
        )
        passes = synthesis_passes()[:2] + (audit,)
        store = ArtifactStore(
            dfg=fir3(), allocation=ResourceAllocation.parse("mul:2T,add:1")
        )
        manifest = PassManager(passes).run(store)
        assert seen == [store.get("schedule").num_steps]
        assert manifest.record_for("audit").diagnostics[0]["event"] == (
            "audited"
        )

    def test_non_json_option_rejected(self):
        with pytest.raises(PipelineError, match="JSON-stable"):
            run_synthesis_pipeline(
                fir3(), "mul:2T,add:1",
                options={"schedule": {"bad": object()}},
            )


class TestManifest:
    def test_byte_stable_across_fresh_runs(self):
        _, m1 = run_synthesis_pipeline(
            differential_equation(), "mul:2T,add:1,sub:1"
        )
        _, m2 = run_synthesis_pipeline(
            differential_equation(), "mul:2T,add:1,sub:1"
        )
        assert m1.to_json() == m2.to_json()
        assert m1.to_json().encode() == m2.to_json().encode()

    def test_manifest_records_fingerprints(self):
        store, manifest = run_synthesis_pipeline(fir3(), "mul:2T,add:1")
        record = manifest.record_for("bind")
        assert record.outputs["bound"] == artifact_fingerprint(
            store.get("bound")
        )
        assert record.inputs["order"] == artifact_fingerprint(
            store.get("order")
        )

    def test_timing_is_opt_in(self):
        _, manifest = run_synthesis_pipeline(fir3(), "mul:2T,add:1")
        assert "wall_time_s" not in manifest.to_json()
        assert "wall_time_s" in manifest.to_json(timing=True)

    def test_render_lists_every_pass(self):
        _, manifest = run_synthesis_pipeline(fir3(), "mul:2T,add:1")
        text = manifest.render()
        for name in manifest.pass_names():
            assert name in text

    def test_json_round_trips_as_json(self):
        _, manifest = run_synthesis_pipeline(fir3(), "mul:2T,add:1")
        data = json.loads(manifest.to_json())
        assert data["format"] == 1
        assert [p["pass"] for p in data["passes"]] == list(
            manifest.pass_names()
        )


class TestCaching:
    def test_second_run_all_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_synthesis_pipeline(
            fir3(), "mul:2T,add:1", cache=SynthesisCache(cache_dir)
        )
        cache = SynthesisCache(cache_dir)
        _, manifest = run_synthesis_pipeline(
            fir3(), "mul:2T,add:1", cache=cache
        )
        assert manifest.all_cached()
        assert cache.hits == 5 and cache.misses == 0

    def test_cached_artifacts_identical(self, tmp_path):
        from repro.serialize import design_to_dict, dumps

        cache = SynthesisCache(str(tmp_path / "cache"))
        fresh = synthesize_design(fir3(), "mul:2T,add:1", cache=cache)
        cached = synthesize_design(fir3(), "mul:2T,add:1", cache=cache)
        assert dumps(design_to_dict(fresh)) == dumps(design_to_dict(cached))

    def test_option_change_misses(self):
        cache = SynthesisCache()
        run_synthesis_pipeline(fir3(), "mul:2T,add:1", cache=cache)
        _, manifest = run_synthesis_pipeline(
            fir3(), "mul:2T,add:1", objective="communication", cache=cache
        )
        record = manifest.record_for("order")
        assert record.status == "computed"
        # schedule has identical inputs and options: still a hit
        assert manifest.record_for("schedule").status == "cached"

    def test_prefix_reuse_across_designs(self):
        """Caching is content-addressed, not run-addressed.

        Changing the order objective recomputes ``order`` (its options
        changed) but every pass whose *inputs* are byte-identical still
        hits — including ``bind``, because on fir3 both objectives
        produce the same order artifact.
        """
        cache = SynthesisCache()
        s1, _ = run_synthesis_pipeline(fir3(), "mul:2T,add:1", cache=cache)
        s2, manifest = run_synthesis_pipeline(
            fir3(), "mul:2T,add:1", objective="communication", cache=cache
        )
        statuses = {
            r.name: r.status for r in manifest.records if r.cacheable
        }
        assert statuses["schedule"] == "cached"
        assert statuses["taubm"] == "cached"
        assert statuses["order"] == "computed"
        assert artifact_fingerprint(s1.get("order")) == artifact_fingerprint(
            s2.get("order")
        )
        assert statuses["bind"] == "cached"

    def test_validate_not_cacheable(self):
        _, manifest = run_synthesis_pipeline(
            fir3(), "mul:2T,add:1", cache=SynthesisCache()
        )
        assert manifest.record_for("validate").cache_key is None

    def test_default_cache_is_used(self):
        cache = SynthesisCache()
        previous = set_default_synthesis_cache(cache)
        try:
            synthesize_design(fir3(), "mul:2T,add:1")
            synthesize_design(fir3(), "mul:2T,add:1")
        finally:
            set_default_synthesis_cache(previous)
        assert cache.hits == 5

    def test_cent_fsms_cached(self, tmp_path):
        from repro.serialize import dumps, fsm_to_dict

        cache = SynthesisCache(str(tmp_path / "cache"))
        s1, _ = run_synthesis_pipeline(
            fir3(), "mul:2T,add:1", upto="cent-fsms", cache=cache
        )
        s2, manifest = run_synthesis_pipeline(
            fir3(), "mul:2T,add:1", upto="cent-fsms", cache=cache
        )
        assert manifest.record_for("cent-fsms").status == "cached"
        for name in ("cent_sync_fsm", "cent_fsm"):
            assert dumps(fsm_to_dict(s1.get(name))) == dumps(
                fsm_to_dict(s2.get(name))
            )


class TestSchedulerRegistryEntries:
    def test_force_directed_through_synthesize(self):
        """Satellite: the orphaned scheduler is reachable by name."""
        from repro import synthesize

        result = synthesize(
            differential_equation(), "mul:2T,add:1,sub:1",
            scheduler="force-directed",
        )
        # A valid resource-constrained schedule on the paper's diffeq DFG:
        # respects the allocation and the 4-step critical path.
        assert result.schedule.num_steps == 4
        usage = result.schedule.resource_usage()
        for rc, count in usage.items():
            assert count <= result.allocation.count(rc)
        # and the full flow downstream of it is intact
        assert result.distributed.describe()

    def test_force_directed_extends_horizon_for_tight_allocation(self):
        store, manifest = run_synthesis_pipeline(
            fir3(), "mul:1T,add:1", scheduler="force-directed"
        )
        (diag,) = manifest.record_for("schedule").diagnostics
        assert diag["event"] == "horizon-extended"
        assert diag["from"] == 3 and diag["to"] == 5
        assert store.get("schedule").num_steps == 5

    def test_exact_fallback_warns_and_records(self):
        """Satellite: the silent exact→list fallback is now loud."""
        with pytest.warns(SchedulingFallbackWarning, match="fell back"):
            _, manifest = run_synthesis_pipeline(
                differential_equation(), "mul:2T,add:1,sub:1",
                scheduler="exact",
                options={"schedule": {"max_visited": 0}},
            )
        (diag,) = manifest.record_for("schedule").diagnostics
        assert diag["event"] == "scheduler-fallback"
        assert diag["requested"] == "exact" and diag["used"] == "list"
        assert "exceeded 0 states" in diag["reason"]

    def test_exact_success_records_no_fallback(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", SchedulingFallbackWarning)
            _, manifest = run_synthesis_pipeline(
                differential_equation(), "mul:2T,add:1,sub:1",
                scheduler="exact",
            )
        assert manifest.record_for("schedule").diagnostics == ()

    def test_asap_rejected_when_allocation_too_small(self):
        with pytest.raises(SchedulingError, match="exceeds the allocation"):
            run_synthesis_pipeline(
                differential_equation(), "mul:2T,add:1,sub:1",
                scheduler="asap",
            )

    def test_asap_accepted_when_allocation_fits(self):
        store, _ = run_synthesis_pipeline(
            differential_equation(), "mul:4T,add:1,sub:2", scheduler="asap"
        )
        assert store.get("schedule").num_steps == 4
