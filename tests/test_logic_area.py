"""Unit tests for the two-level area model."""

from repro.logic.area import (
    AREA_PER_FLIP_FLOP,
    FunctionArea,
    LogicBlockArea,
    cover_area,
    function_area,
)
from repro.logic.terms import BooleanFunction, Cube


class TestFunctionArea:
    def test_single_term_no_or_cost(self):
        area = FunctionArea(name="f", num_terms=1, num_literals=3)
        assert area.combinational_area == 3.0

    def test_multi_term_adds_or_inputs(self):
        area = FunctionArea(name="f", num_terms=2, num_literals=4)
        assert area.combinational_area == 6.0

    def test_constant_zero(self):
        f = BooleanFunction(width=2, ones=frozenset())
        assert function_area("z", f).combinational_area == 0.0

    def test_xor_area(self):
        f = BooleanFunction(width=2, ones=frozenset({0b01, 0b10}))
        area = function_area("xor", f)
        assert area.num_terms == 2
        assert area.num_literals == 4
        assert area.combinational_area == 6.0

    def test_cover_area_counts_literals(self):
        cover = (Cube.from_string("1-0"), Cube.from_string("01-"))
        area = cover_area("c", cover)
        assert area.num_literals == 4


class TestLogicBlockArea:
    def test_sequential_area_per_ff(self):
        block = LogicBlockArea(name="b", functions=(), num_flip_flops=6)
        assert block.sequential_area == 6 * AREA_PER_FLIP_FLOP

    def test_total_is_sum(self):
        f = FunctionArea(name="f", num_terms=1, num_literals=5)
        block = LogicBlockArea(name="b", functions=(f,), num_flip_flops=2)
        assert block.total_area == 5.0 + 2 * AREA_PER_FLIP_FLOP

    def test_merge(self):
        f = FunctionArea(name="f", num_terms=1, num_literals=5)
        a = LogicBlockArea(name="a", functions=(f,), num_flip_flops=1)
        b = LogicBlockArea(name="b", functions=(f,), num_flip_flops=2)
        merged = a.merged_with(b, "ab")
        assert merged.num_flip_flops == 3
        assert merged.combinational_area == 10.0

    def test_describe(self):
        block = LogicBlockArea(name="b", functions=(), num_flip_flops=1)
        assert "1 FFs" in block.describe()
