"""Unit tests for DOT export."""

from repro.benchmarks import paper_fig3_dfg
from repro.core.dot import dfg_to_dot


class TestDfgToDot:
    def test_contains_all_ops(self):
        dfg = paper_fig3_dfg()
        dot = dfg_to_dot(dfg)
        for op in dfg:
            assert f'"{op.name}"' in dot

    def test_schedule_arcs_dashed(self):
        dfg = paper_fig3_dfg()
        dot = dfg_to_dot(dfg, schedule_arcs=(("o1", "o8"),))
        assert '"o1" -> "o8" [style=dashed' in dot

    def test_ranks_from_start_times(self):
        dfg = paper_fig3_dfg()
        dot = dfg_to_dot(dfg, start_times={op.name: 0 for op in dfg})
        assert "rank=same" in dot

    def test_binding_annotation(self):
        dfg = paper_fig3_dfg()
        dot = dfg_to_dot(dfg, binding={"o0": "TM1"})
        assert "TM1" in dot

    def test_io_nodes_optional(self):
        dfg = paper_fig3_dfg()
        with_io = dfg_to_dot(dfg, include_io=True)
        without_io = dfg_to_dot(dfg, include_io=False)
        assert "in_a" in with_io
        assert "in_a" not in without_io

    def test_well_formed(self):
        dot = dfg_to_dot(paper_fig3_dfg())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
