"""Unit tests for repro.core.ops."""

import pytest

from repro.core.ops import (
    DEFAULT_TELESCOPIC_CLASSES,
    OpType,
    ResourceClass,
    op_type_from_symbol,
)


class TestOpType:
    def test_mul_evaluates(self):
        assert OpType.MUL.evaluate(6, 7) == 42

    def test_add_evaluates(self):
        assert OpType.ADD.evaluate(6, 7) == 13

    def test_sub_evaluates(self):
        assert OpType.SUB.evaluate(6, 7) == -1

    def test_lt_evaluates_true(self):
        assert OpType.LT.evaluate(1, 2) == 1

    def test_lt_evaluates_false(self):
        assert OpType.LT.evaluate(2, 1) == 0

    def test_neg_is_unary(self):
        assert OpType.NEG.arity == 1
        assert OpType.NEG.evaluate(5) == -5

    def test_shifts(self):
        assert OpType.SHL.evaluate(1, 3) == 8
        assert OpType.SHR.evaluate(8, 3) == 1

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError, match="expects 2 operands"):
            OpType.MUL.evaluate(1)

    def test_commutativity_flags(self):
        assert OpType.MUL.commutative
        assert OpType.ADD.commutative
        assert not OpType.SUB.commutative

    def test_resource_classes(self):
        assert OpType.MUL.resource_class is ResourceClass.MULTIPLIER
        assert OpType.ADD.resource_class is ResourceClass.ADDER
        assert OpType.SUB.resource_class is ResourceClass.SUBTRACTOR

    def test_comparison_uses_subtractor_class(self):
        assert OpType.LT.resource_class is ResourceClass.SUBTRACTOR


class TestSymbolLookup:
    def test_round_trip(self):
        for op in OpType:
            assert op_type_from_symbol(op.symbol) is op

    def test_unknown_symbol(self):
        with pytest.raises(ValueError, match="unknown operation symbol"):
            op_type_from_symbol("%")


def test_default_telescopic_classes():
    assert ResourceClass.MULTIPLIER in DEFAULT_TELESCOPIC_CLASSES
    assert ResourceClass.ADDER not in DEFAULT_TELESCOPIC_CLASSES
