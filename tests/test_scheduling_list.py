"""Unit tests for the resource-constrained list scheduler."""

import pytest
from hypothesis import given, settings

from repro.benchmarks import ar_lattice, differential_equation, fir5
from repro.core.analysis import schedule_length
from repro.core.ops import ResourceClass
from repro.resources.allocation import ResourceAllocation
from repro.scheduling.list_scheduler import list_schedule

from conftest import random_dfgs


class TestListSchedule:
    def test_respects_resource_limits(self):
        dfg = fir5()
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        sched = list_schedule(dfg, alloc)
        usage = sched.resource_usage()
        assert usage[ResourceClass.MULTIPLIER] <= 2
        assert usage[ResourceClass.ADDER] <= 1

    def test_not_shorter_than_critical_path(self):
        dfg = fir5()
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        sched = list_schedule(dfg, alloc)
        assert sched.num_steps >= schedule_length(dfg)

    def test_unconstrained_equals_asap_length(self):
        dfg = differential_equation()
        alloc = ResourceAllocation.parse("mul:6T,add:2,sub:3")
        sched = list_schedule(dfg, alloc)
        assert sched.num_steps == schedule_length(dfg)

    def test_single_unit_serializes(self):
        dfg = fir5()
        alloc = ResourceAllocation.parse("mul:1T,add:1")
        sched = list_schedule(dfg, alloc)
        mult_steps = [
            sched.start[n]
            for n in dfg.ops_of_class(ResourceClass.MULTIPLIER)
        ]
        assert len(set(mult_steps)) == len(mult_steps)

    def test_deterministic(self):
        dfg = ar_lattice()
        alloc = ResourceAllocation.parse("mul:4T,add:2")
        assert (
            list_schedule(dfg, alloc).start
            == list_schedule(dfg, alloc).start
        )

    def test_missing_class_rejected(self):
        dfg = differential_equation()
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        with pytest.raises(Exception, match="provides none"):
            list_schedule(dfg, alloc)


@settings(max_examples=30, deadline=None)
@given(random_dfgs)
def test_list_schedule_valid_on_random_graphs(dfg):
    """Property: schedule is dependency-consistent and resource-legal."""
    spec = "mul:1T,add:1,sub:1"
    alloc = ResourceAllocation.parse(spec)
    sched = list_schedule(dfg, alloc)
    for op in dfg:
        for pred in dfg.predecessors(op.name):
            assert sched.start[pred] < sched.start[op.name]
    for rc, used in sched.resource_usage().items():
        assert used <= alloc.count(rc)
