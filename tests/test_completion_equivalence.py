"""Property tests: the spec contract holds across every engine.

Pins the two load-bearing equivalences of the completion-spec refactor:

* the vectorized batch engine reproduces the scalar simulator's
  statistics **byte-identically** under heterogeneous (``per-unit``)
  and temporally correlated (``markov``) completion models, for every
  controller style — exactly as it always did for Bernoulli;
* the exact analytical engine's PMF equals brute-force ``2**k``
  enumeration under heterogeneous per-unit probabilities, for both the
  distributed scheme and the synchronized baseline.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.exact_engine import (
    analyze_dist_latency,
    analyze_sync_latency,
)
from repro.analysis.latency import (
    DistLatencyEvaluator,
    SyncLatencyEvaluator,
    enumerate_assignments,
)
from repro.resources.spec import MarkovSpec, PerUnitSpec
from repro.sim.runner import monte_carlo_latency

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

STYLES = ("dist", "cent-sync", "cent")

# probabilities drawn on a coarse grid: the equivalences are exact, so
# densely sampled floats only slow the suite down without adding power
probs = st.integers(0, 10).map(lambda n: n / 10)
stickiness = st.integers(0, 9).map(lambda n: n / 10)


def _assert_batch_matches_scalar(result, spec, seed):
    for style in STYLES:
        system = result.system(style)
        scalar = monte_carlo_latency(
            system,
            result.bound,
            p=spec,
            trials=50,
            seed=seed,
            engine="scalar",
        )
        batch = monte_carlo_latency(
            system,
            result.bound,
            p=spec,
            trials=50,
            seed=seed,
            engine="batch",
        )
        assert batch == scalar, f"{style} diverged under {spec.encode()}"


@SETTINGS
@given(probs, probs, st.integers(0, 1000))
def test_batch_matches_scalar_per_unit(fig3_result, p_mul, p_rest, seed):
    spec = PerUnitSpec({"mul": p_mul, "*": p_rest})
    _assert_batch_matches_scalar(fig3_result, spec, seed)


@SETTINGS
@given(probs, stickiness, st.integers(0, 1000))
def test_batch_matches_scalar_markov(fig3_result, p_fast, stick, seed):
    spec = MarkovSpec(p_fast=p_fast, stickiness=stick)
    _assert_batch_matches_scalar(fig3_result, spec, seed)


# ----------------------------------------------------------------------
# Exact engine vs brute-force enumeration under per-unit p
# ----------------------------------------------------------------------
def _enumerated_pmf(latency_fn, tau_ops, p_by_op):
    mass = {}
    for values in enumerate_assignments(tau_ops):
        fast = dict(zip(tau_ops, values))
        weight = 1.0
        for op, is_fast in fast.items():
            weight *= p_by_op[op] if is_fast else 1.0 - p_by_op[op]
        if weight == 0.0:
            continue
        cycles = latency_fn(fast)
        mass[cycles] = mass.get(cycles, 0.0) + weight
    return dict(sorted(mass.items()))


@SETTINGS
@given(probs, probs)
def test_exact_dist_matches_enumeration_per_unit(
    fig2_result, p_mul, p_rest
):
    bound = fig2_result.bound
    tau_ops = bound.telescopic_ops()
    spec = PerUnitSpec({"mul": p_mul, "*": p_rest})
    p_by_op = spec.op_probabilities(bound, tau_ops)
    evaluator = DistLatencyEvaluator(bound)
    analysis = analyze_dist_latency(evaluator, tau_ops, p_by_op)
    expected = _enumerated_pmf(evaluator, tau_ops, p_by_op)
    got = {c: p for c, p in analysis.distribution.pmf}
    assert set(got) == set(expected)
    for cycles in expected:
        assert abs(got[cycles] - expected[cycles]) < 1e-12


@SETTINGS
@given(probs, probs)
def test_exact_sync_matches_enumeration_per_unit(
    fig2_result, p_mul, p_rest
):
    bound = fig2_result.bound
    tau_ops = bound.telescopic_ops()
    spec = PerUnitSpec({"mul": p_mul, "*": p_rest})
    p_by_op = spec.op_probabilities(bound, tau_ops)
    evaluator = SyncLatencyEvaluator(fig2_result.taubm)
    analysis = analyze_sync_latency(fig2_result.taubm, tau_ops, p_by_op)
    expected = _enumerated_pmf(evaluator, tau_ops, p_by_op)
    got = {c: p for c, p in analysis.distribution.pmf}
    assert set(got) == set(expected)
    for cycles in expected:
        assert abs(got[cycles] - expected[cycles]) < 1e-12
