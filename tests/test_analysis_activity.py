"""Unit tests for switching-activity analysis."""

import pytest

from repro.analysis import activity_report, compare_activity
from repro.errors import SimulationError
from repro.resources import AllFastCompletion, AllSlowCompletion
from repro.sim import simulate


class TestActivityReport:
    def test_requires_trace(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
        )
        with pytest.raises(SimulationError, match="trace"):
            activity_report(sim)

    def test_register_writes_cover_all_ops(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
            record_trace=True,
        )
        report = activity_report(sim)
        # Every op pulses RE at least once in its first iteration.
        assert report.register_writes >= len(fig3_result.dfg)

    def test_toggle_counts_are_even_or_terminal(self, fig3_result):
        """Each signal that rises must fall unless the run ends high;
        totals are therefore bounded by 2x assertions."""
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllSlowCompletion(),
            record_trace=True,
        )
        report = activity_report(sim)
        assert report.total_toggles > 0
        assert report.fetch_toggles > 0
        assert report.enable_toggles > 0

    def test_slow_run_toggles_more_fetches_than_fast(self, fig3_result):
        fast = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
            record_trace=True,
        )
        slow = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllSlowCompletion(),
            record_trace=True,
        )
        # Slow ops hold OF across two cycles: at most as many toggles
        # over a longer window; the comparison must at least run.
        assert activity_report(slow).cycles > activity_report(fast).cycles

    def test_compare_labels(self, fig3_result):
        dist = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
            record_trace=True,
        )
        sync = simulate(
            fig3_result.cent_sync_system(),
            fig3_result.bound,
            AllFastCompletion(),
            record_trace=True,
        )
        d, s = compare_activity(dist, sync)
        assert d.scheme == "DIST" and s.scheme == "CENT-SYNC"
        assert "toggles" in d.render()

    def test_sync_has_no_completion_toggles(self, fig3_result):
        sync = simulate(
            fig3_result.cent_sync_system(),
            fig3_result.bound,
            AllSlowCompletion(),
            record_trace=True,
        )
        assert activity_report(sync).completion_toggles == 0
