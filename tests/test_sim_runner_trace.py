"""Unit tests for batch runners and trace utilities."""

import pytest

from repro.resources import AllFastCompletion, BernoulliCompletion
from repro.sim.runner import (
    monte_carlo_latency,
    pipelined_throughput,
    simulate_assignment,
)
from repro.sim.trace import gantt


class TestMonteCarloLatency:
    def test_statistics_bounds(self, fig3_result):
        comparison = fig3_result.latency_comparison()
        stats = monte_carlo_latency(
            fig3_result.distributed_system(),
            fig3_result.bound,
            p=0.7,
            trials=60,
        )
        assert comparison.dist.best_cycles <= stats.minimum
        assert stats.maximum <= comparison.dist.worst_cycles
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.trials == 60

    def test_mean_tracks_exact_expectation(self, fig3_result):
        comparison = fig3_result.latency_comparison(ps=(0.7,))
        stats = monte_carlo_latency(
            fig3_result.distributed_system(),
            fig3_result.bound,
            p=0.7,
            trials=400,
        )
        exact = comparison.dist.expected_cycles[0.7]
        assert abs(stats.mean - exact) < 0.35

    def test_mean_ns(self, fig3_result):
        stats = monte_carlo_latency(
            fig3_result.distributed_system(),
            fig3_result.bound,
            p=1.0,
            trials=5,
        )
        assert stats.mean_ns(15.0) == stats.mean * 15.0


class TestSimulateAssignment:
    def test_partial_assignment_defaults_fast(self, fig3_result):
        tau_ops = fig3_result.bound.telescopic_ops()
        sim = simulate_assignment(
            fig3_result.distributed_system(),
            fig3_result.bound,
            {tau_ops[0]: False},
        )
        for op in tau_ops[1:]:
            assert sim.fast_outcomes[op][0] is True
        assert sim.fast_outcomes[tau_ops[0]][0] is False


class TestPipelinedThroughput:
    def test_throughput_not_worse_than_latency(self, fig3_result):
        result, throughput = pipelined_throughput(
            fig3_result.distributed_system(),
            fig3_result.bound,
            AllFastCompletion(),
            iterations=6,
        )
        assert throughput <= result.cycles + 1e-9

    def test_overlap_beats_sync(self, fig3_result):
        __, dist_tp = pipelined_throughput(
            fig3_result.distributed_system(),
            fig3_result.bound,
            BernoulliCompletion(0.8),
            iterations=6,
            seed=4,
        )
        __, sync_tp = pipelined_throughput(
            fig3_result.cent_sync_system(),
            fig3_result.bound,
            BernoulliCompletion(0.8),
            iterations=6,
            seed=4,
        )
        assert dist_tp <= sync_tp + 1e-9


class TestGantt:
    def test_render(self):
        text = gantt(
            start_cycles={"a": 0, "b": 2},
            finish_cycles={"a": 2, "b": 3},
            unit_of={"a": "TM1", "b": "TM1"},
        )
        assert "TM1" in text
        assert "#" in text

    def test_overlap_marked(self):
        text = gantt(
            start_cycles={"a": 0, "b": 0},
            finish_cycles={"a": 1, "b": 1},
            unit_of={"a": "TM1", "b": "TM1"},
        )
        assert "!" in text
