"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.api import SynthesisResult, synthesize
from repro.benchmarks import (
    differential_equation,
    paper_fig2_dfg,
    paper_fig3_dfg,
)
from repro.core.builder import DFGBuilder
from repro.core.dfg import DataflowGraph
from repro.core.ops import OpType


# ----------------------------------------------------------------------
# Cached synthesis results (session scope: artifacts are immutable).
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def fig2_result() -> SynthesisResult:
    return synthesize(paper_fig2_dfg(), "mul:2T,add:1")


@pytest.fixture(scope="session")
def fig3_result() -> SynthesisResult:
    return synthesize(paper_fig3_dfg(), "mul:2T,add:2")


@pytest.fixture(scope="session")
def diffeq_result() -> SynthesisResult:
    return synthesize(differential_equation(), "mul:2T,add:1,sub:1")


@pytest.fixture()
def simple_dfg() -> DataflowGraph:
    """y = (a*b) + (c*d): two concurrent mults feeding one add."""
    b = DFGBuilder("simple")
    a, bb, c, d = b.inputs("a", "b", "c", "d")
    p1 = b.mul("p1", a, bb)
    p2 = b.mul("p2", c, d)
    s = b.add("s", p1, p2)
    b.output("y", s)
    return b.build()


@pytest.fixture()
def chain_dfg() -> DataflowGraph:
    """Serial chain: mul -> add -> mul -> add (zero concurrency)."""
    b = DFGBuilder("chain")
    x = b.input("x")
    m1 = b.mul("m1", x, 3)
    a1 = b.add("a1", m1, 1)
    m2 = b.mul("m2", a1, 5)
    a2 = b.add("a2", m2, 2)
    b.output("y", a2)
    return b.build()


# ----------------------------------------------------------------------
# Hypothesis strategy: small random DFGs.
# ----------------------------------------------------------------------
def build_random_dfg(
    op_kinds: list[int], operand_picks: list[int]
) -> DataflowGraph:
    """Deterministically build a DFG from drawn integers.

    ``op_kinds[i]`` selects the i-th operation's type; ``operand_picks``
    supplies indices used (mod the number of available sources) to pick
    each operand from {inputs, earlier ops}.
    """
    kinds = (OpType.MUL, OpType.ADD, OpType.SUB)
    b = DFGBuilder("random")
    num_inputs = 3
    sources: list = [b.input(f"in{i}") for i in range(num_inputs)]
    picks = iter(operand_picks)
    for i, kind_index in enumerate(op_kinds):
        op_type = kinds[kind_index % len(kinds)]
        operands = [
            sources[next(picks) % len(sources)]
            for _ in range(op_type.arity)
        ]
        sources.append(b.op(f"op{i}", op_type, *operands))
    # Make the last op an output so the graph has a declared interface.
    b.output("y", f"op{len(op_kinds) - 1}")
    return b.build()


random_dfgs = st.builds(
    build_random_dfg,
    st.lists(st.integers(0, 2), min_size=3, max_size=10),
    st.lists(st.integers(0, 1000), min_size=20, max_size=20),
)
