"""Unit tests for VCD waveform export."""

import re

import pytest

from repro.errors import SimulationError
from repro.resources import AllSlowCompletion, BernoulliCompletion
from repro.sim import simulate, trace_to_vcd
from repro.sim.vcd import _identifier


@pytest.fixture()
def vcd_text(fig3_result) -> str:
    sim = simulate(
        fig3_result.distributed_system(),
        fig3_result.bound,
        AllSlowCompletion(),
        record_trace=True,
    )
    return trace_to_vcd(sim, design_name="fig3")


class TestIdentifiers:
    def test_unique_and_printable(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500
        assert all(all(33 <= ord(c) <= 126 for c in s) for s in ids)


class TestVcdStructure:
    def test_header_sections(self, vcd_text):
        for token in (
            "$timescale",
            "$scope module fig3",
            "$enddefinitions",
            "$dumpvars",
        ):
            assert token in vcd_text

    def test_clock_declared(self, vcd_text):
        assert re.search(r"\$var wire 1 \S+ clk \$end", vcd_text)

    def test_controller_states_declared(self, vcd_text, fig3_result):
        for key in fig3_result.distributed.unit_names:
            assert re.search(
                rf"\$var wire \d+ \S+ state_{key} \$end", vcd_text
            )

    def test_state_mapping_comment(self, vcd_text):
        assert "$comment state_TM1:" in vcd_text

    def test_output_signals_declared(self, vcd_text):
        assert re.search(r"\$var wire 1 \S+ OF_o0 \$end", vcd_text)
        assert re.search(r"\$var wire 1 \S+ RE_o0 \$end", vcd_text)

    def test_time_advances_monotonically(self, vcd_text):
        times = [int(m) for m in re.findall(r"^#(\d+)$", vcd_text, re.M)]
        assert times == sorted(times)
        assert times[0] == 0

    def test_two_edges_per_cycle(self, vcd_text, fig3_result):
        sim_cycles = 6  # all-slow fig3 latency
        times = set(re.findall(r"^#(\d+)$", vcd_text, re.M))
        # clock rises at 0, 15, 30, ... and falls in between
        assert str(15 * (sim_cycles - 1)) in times

    def test_requires_trace(self, fig3_result):
        sim = simulate(
            fig3_result.distributed_system(),
            fig3_result.bound,
            BernoulliCompletion(0.5),
        )
        with pytest.raises(SimulationError, match="no trace"):
            trace_to_vcd(sim)

    def test_deterministic(self, fig3_result):
        def render():
            sim = simulate(
                fig3_result.distributed_system(),
                fig3_result.bound,
                BernoulliCompletion(0.5),
                seed=3,
                record_trace=True,
            )
            return trace_to_vcd(sim)

        assert render() == render()
