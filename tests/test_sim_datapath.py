"""Unit tests for the value-computing datapath."""

import pytest

from repro.benchmarks import differential_equation, paper_fig2_dfg
from repro.errors import SimulationError
from repro.sim.datapath import Datapath


@pytest.fixture()
def datapath():
    return Datapath(
        paper_fig2_dfg(), {"a": 2, "c": 3, "d": 4, "g": 5, "j": 6}
    )


class TestConstruction:
    def test_missing_input_rejected(self):
        with pytest.raises(SimulationError, match="no value"):
            Datapath(paper_fig2_dfg(), {"a": 1})

    def test_empty_stream_rejected(self):
        with pytest.raises(SimulationError, match="empty stream"):
            Datapath(
                paper_fig2_dfg(),
                {"a": [], "c": 3, "d": 4, "g": 5, "j": 6},
            )


class TestExecution:
    def test_topological_run_matches_reference(self, datapath):
        dfg = paper_fig2_dfg()
        for op in dfg:
            datapath.start(op.name)
        reference = dfg.evaluate({"a": 2, "c": 3, "d": 4, "g": 5, "j": 6})
        for op in dfg:
            assert datapath.result(op.name) == reference[op.name]
        datapath.verify_iteration(0)

    def test_premature_start_is_control_bug(self, datapath):
        with pytest.raises(SimulationError, match="control bug"):
            datapath.start("o1")  # o0 has not produced yet

    def test_result_before_execution_rejected(self, datapath):
        with pytest.raises(SimulationError, match="has not executed"):
            datapath.result("o0")

    def test_operand_values_preview(self, datapath):
        assert datapath.operand_values("o0") == (2, 3)
        assert datapath.executions("o0") == 0

    def test_start_returns_operands(self, datapath):
        assert datapath.start("o0") == (2, 3)
        assert datapath.executions("o0") == 1


class TestStreams:
    def test_streaming_iterations(self):
        dfg = paper_fig2_dfg()
        dp = Datapath(
            dfg,
            {"a": [2, 20], "c": [3, 30], "d": 4, "g": 5, "j": 6},
        )
        for _ in range(2):
            for op in dfg:
                dp.start(op.name)
        dp.verify_iteration(0)
        dp.verify_iteration(1)
        assert dp.result("o0", 0) == 6
        assert dp.result("o0", 1) == 600

    def test_stream_clamps_to_last_value(self):
        dfg = paper_fig2_dfg()
        dp = Datapath(dfg, {"a": [2], "c": 3, "d": 4, "g": 5, "j": 6})
        assert dp.iteration_inputs(5)["a"] == 2

    def test_output_values(self):
        dfg = differential_equation()
        inputs = {"x": 1, "y": 2, "u": 3, "dx": 4, "a": 100}
        dp = Datapath(dfg, inputs)
        for op in dfg:
            dp.start(op.name)
        reference = dfg.evaluate(inputs)
        outputs = dp.output_values()
        assert outputs == {
            k: reference[k] for k in ("x1", "y1", "u1", "c")
        }

    def test_verify_detects_mismatch(self, datapath, monkeypatch):
        dfg = paper_fig2_dfg()
        for op in dfg:
            datapath.start(op.name)
        datapath._results["o5"][0] += 1  # corrupt a result
        with pytest.raises(SimulationError, match="datapath mismatch"):
            datapath.verify_iteration(0)
