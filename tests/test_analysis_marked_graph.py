"""Unit tests for the marked-graph throughput bound."""

from fractions import Fraction

import pytest

from repro.analysis import (
    pipelined_throughput_bound,
    resource_bound_cycles,
)
from repro.experiments import synthesize_benchmark
from repro.resources import AllFastCompletion, AllSlowCompletion
from repro.sim import pipelined_throughput


class TestBoundStructure:
    def test_exact_rational(self, fig3_result):
        bound = pipelined_throughput_bound(fig3_result.bound, fast=True)
        assert isinstance(bound.cycles_per_iteration, Fraction)
        assert bound.cycles_per_iteration >= 1

    def test_critical_cycle_is_closed(self, fig3_result):
        bound = pipelined_throughput_bound(fig3_result.bound, fast=False)
        edges = set(fig3_result.bound.execution_edges())
        for _, chain in fig3_result.order.all_chains():
            if chain:
                edges.add((chain[-1], chain[0]))
        cycle = bound.critical_cycle
        for i, node in enumerate(cycle):
            assert (node, cycle[(i + 1) % len(cycle)]) in edges

    def test_slow_bound_not_below_fast(self, fig3_result):
        fast = pipelined_throughput_bound(fig3_result.bound, fast=True)
        slow = pipelined_throughput_bound(fig3_result.bound, fast=False)
        assert slow.cycles_per_iteration >= fast.cycles_per_iteration

    def test_at_least_resource_bound(self, fig3_result):
        """λ* can never beat the busiest unit's work per iteration."""
        bound = pipelined_throughput_bound(fig3_result.bound, fast=True)
        busiest = max(
            resource_bound_cycles(fig3_result.bound, fast=True).values()
        )
        assert bound.cycles_per_iteration >= busiest

    def test_render(self, fig3_result):
        text = pipelined_throughput_bound(fig3_result.bound).render()
        assert "cycles/iteration" in text and "->" in text

    def test_explicit_durations(self, fig3_result):
        heavy = {op: 3 for op in fig3_result.dfg.op_names()}
        bound = pipelined_throughput_bound(
            fig3_result.bound, durations=heavy
        )
        assert bound.cycles_per_iteration >= 6  # 2-op chain of weight 3

    def test_bad_duration_rejected(self, fig3_result):
        from repro.errors import SimulationError

        zero = {op: 0 for op in fig3_result.dfg.op_names()}
        with pytest.raises(SimulationError, match=">= 1"):
            pipelined_throughput_bound(fig3_result.bound, durations=zero)


class TestAgainstSimulator:
    @pytest.mark.parametrize("name", ["fir3", "fir5", "fig3"])
    @pytest.mark.parametrize("fast", [True, False])
    def test_simulator_achieves_bound(self, name, fast):
        """With fixed durations the simulator hits λ* exactly on these
        benchmarks (no token overrun distortion)."""
        result = synthesize_benchmark(name)
        model = AllFastCompletion() if fast else AllSlowCompletion()
        bound = pipelined_throughput_bound(result.bound, fast=fast)
        __, throughput = pipelined_throughput(
            result.distributed_system(),
            result.bound,
            model,
            iterations=12,
        )
        assert throughput == pytest.approx(float(bound.cycles_per_iteration))

    def test_simulated_never_beats_bound(self):
        """λ* is a true lower bound on cycles/iteration."""
        result = synthesize_benchmark("diffeq")
        bound = pipelined_throughput_bound(result.bound, fast=True)
        __, throughput = pipelined_throughput(
            result.distributed_system(),
            result.bound,
            AllFastCompletion(),
            iterations=12,
        )
        assert throughput >= float(bound.cycles_per_iteration) - 1e-9
