"""Unit tests for TAUBM schedule derivation (paper §2.2, Fig. 2(b))."""

from repro.benchmarks import paper_fig2_dfg
from repro.resources.allocation import ResourceAllocation
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.taubm import (
    derive_taubm_schedule,
    tau_bound_ops,
    telescopic_classes,
)
from repro.core.ops import ResourceClass


class TestDeriveTaubm:
    def setup_method(self):
        self.dfg = paper_fig2_dfg()
        self.alloc = ResourceAllocation.parse("mul:2T,add:1")
        self.sched = list_schedule(self.dfg, self.alloc)
        self.taubm = derive_taubm_schedule(self.sched, self.alloc)

    def test_steps_with_multiplications_split(self):
        """Fig. 2(b): only TAU steps get T' extensions."""
        for step in self.taubm.steps:
            has_mult = any(
                self.dfg.op(n).resource_class is ResourceClass.MULTIPLIER
                for n in step.ops
            )
            assert step.has_extension == has_mult

    def test_fig2_extension_pattern(self):
        flags = [s.has_extension for s in self.taubm.steps]
        assert flags == [True, False, True, False]

    def test_tau_ops_are_multiplications(self):
        for step in self.taubm.steps:
            for op in step.tau_ops:
                assert (
                    self.dfg.op(op).resource_class
                    is ResourceClass.MULTIPLIER
                )

    def test_all_ops_covered_once(self):
        seen = [op for step in self.taubm.steps for op in step.ops]
        assert sorted(seen) == sorted(self.dfg.op_names())

    def test_describe_marks_extensions(self):
        text = self.taubm.describe()
        assert "+ T'" in text


class TestHelpers:
    def test_telescopic_classes(self):
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        assert telescopic_classes(alloc) == {ResourceClass.MULTIPLIER}

    def test_no_telescopic_classes(self):
        alloc = ResourceAllocation.parse("mul:2,add:1")
        assert telescopic_classes(alloc) == frozenset()

    def test_tau_bound_ops(self):
        dfg = paper_fig2_dfg()
        alloc = ResourceAllocation.parse("mul:2T,add:1")
        sched = list_schedule(dfg, alloc)
        ops = tau_bound_ops(sched, alloc)
        assert set(ops) == {"o0", "o2", "o3", "o4"}

    def test_no_extensions_without_taus(self):
        dfg = paper_fig2_dfg()
        alloc = ResourceAllocation.parse("mul:2,add:1")
        sched = list_schedule(dfg, alloc)
        taubm = derive_taubm_schedule(sched, alloc)
        assert taubm.min_cycles() == taubm.max_cycles()
