"""Unit tests for schedule data models."""

import pytest

from repro.benchmarks import paper_fig2_dfg, paper_fig3_dfg
from repro.core.ops import ResourceClass
from repro.errors import SchedulingError
from repro.resources.allocation import ResourceAllocation
from repro.scheduling.asap_alap import asap_schedule
from repro.scheduling.schedule import (
    OrderSchedule,
    TaubmSchedule,
    TaubmStep,
    TimeStepSchedule,
)
from repro.scheduling.taubm import derive_taubm_schedule


class TestTimeStepSchedule:
    def test_valid_schedule(self):
        dfg = paper_fig2_dfg()
        sched = asap_schedule(dfg)
        assert sched.num_steps == 4
        assert sched.ops_in_step(0) == ("o0", "o3")

    def test_dependency_violation_rejected(self):
        dfg = paper_fig2_dfg()
        start = {op.name: 0 for op in dfg}
        with pytest.raises(SchedulingError, match="dependency violated"):
            TimeStepSchedule(dfg=dfg, start=start)

    def test_missing_op_rejected(self):
        dfg = paper_fig2_dfg()
        with pytest.raises(SchedulingError, match="not scheduled"):
            TimeStepSchedule(dfg=dfg, start={"o0": 0})

    def test_negative_step_rejected(self):
        dfg = paper_fig2_dfg()
        start = dict(asap_schedule(dfg).start)
        start["o0"] = -1
        with pytest.raises(SchedulingError, match="negative"):
            TimeStepSchedule(dfg=dfg, start=start)

    def test_resource_usage(self):
        sched = asap_schedule(paper_fig2_dfg())
        usage = sched.resource_usage()
        assert usage[ResourceClass.MULTIPLIER] == 2
        assert usage[ResourceClass.ADDER] == 1

    def test_describe_lists_steps(self):
        text = asap_schedule(paper_fig2_dfg()).describe()
        assert "T0" in text and "o0" in text


class TestOrderSchedule:
    def test_chain_class_mismatch_rejected(self):
        dfg = paper_fig2_dfg()
        with pytest.raises(SchedulingError, match="has class"):
            OrderSchedule(
                dfg=dfg,
                chains={
                    ResourceClass.MULTIPLIER: (("o0", "o1"),),
                    ResourceClass.ADDER: (("o3", "o2", "o4", "o5"),),
                },
                schedule_arcs=(),
            )

    def test_double_assignment_rejected(self):
        dfg = paper_fig2_dfg()
        with pytest.raises(SchedulingError, match="two chains"):
            OrderSchedule(
                dfg=dfg,
                chains={
                    ResourceClass.MULTIPLIER: (
                        ("o0", "o2"),
                        ("o3", "o4", "o0"),
                    ),
                    ResourceClass.ADDER: (("o1", "o5"),),
                },
                schedule_arcs=(),
            )

    def test_unassigned_rejected(self):
        dfg = paper_fig2_dfg()
        with pytest.raises(SchedulingError, match="not assigned"):
            OrderSchedule(
                dfg=dfg,
                chains={ResourceClass.MULTIPLIER: (("o0",),)},
                schedule_arcs=(),
            )

    def test_chain_of(self, fig3_result):
        from repro.errors import ReproError

        order = fig3_result.order
        assert "o0" in order.chain_of("o0")
        with pytest.raises(ReproError):
            order.chain_of("nonexistent")

    def test_execution_edges_superset_of_data_edges(self, fig3_result):
        edges = set(fig3_result.order.execution_edges())
        assert set(fig3_result.dfg.edges()) <= edges

    def test_num_units_required(self, fig3_result):
        required = fig3_result.order.num_units_required()
        assert required[ResourceClass.MULTIPLIER] == 2
        assert required[ResourceClass.ADDER] == 2


class TestTaubmSchedule:
    def test_min_max_cycles(self, fig2_result):
        taubm = fig2_result.taubm
        assert taubm.min_cycles() == 4
        assert taubm.max_cycles() == 6

    def test_cycles_for_assignment(self, fig2_result):
        taubm = fig2_result.taubm
        tau_ops = [op for s in taubm.steps for op in s.tau_ops]
        all_fast = {op: True for op in tau_ops}
        assert taubm.cycles_for(all_fast) == 4
        one_slow = dict(all_fast)
        one_slow[tau_ops[0]] = False
        assert taubm.cycles_for(one_slow) == 5

    def test_expected_cycles_formula(self, fig2_result):
        taubm = fig2_result.taubm
        p = 0.7
        expected = taubm.expected_cycles(p)
        manual = 0.0
        for step in taubm.steps:
            manual += 1.0
            if step.has_extension:
                manual += 1.0 - p ** len(step.tau_ops)
        assert expected == pytest.approx(manual)

    def test_expected_cycles_bounds(self, fig2_result):
        taubm = fig2_result.taubm
        assert taubm.expected_cycles(1.0) == taubm.min_cycles()
        assert taubm.expected_cycles(0.0) == taubm.max_cycles()

    def test_step_fixed_ops(self):
        step = TaubmStep(index=0, ops=("a", "b", "c"), tau_ops=("b",))
        assert step.fixed_ops == ("a", "c")
        assert step.has_extension
