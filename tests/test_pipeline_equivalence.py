"""Acceptance tests: the pipeline reproduces ``synthesize()`` byte-for-byte.

These pin the ISSUE's hard criteria:

* for every bundled example DFG, driving the pass pipeline produces
  artifacts byte-identical to the pre-refactor monolithic flow (which
  ``synthesize()`` now *is* — so the comparison runs the passes by hand
  against the public API),
* a second run against the same ``--cache-dir`` satisfies every pass
  from cache and yields the same artifacts,
* the provenance manifest is byte-stable across fresh runs.
"""

import pytest

from repro.benchmarks import all_benchmarks
from repro.perf.cache import SynthesisCache, artifact_fingerprint
from repro.pipeline import run_synthesis_pipeline, synthesize_design
from repro.serialize import design_to_dict, dumps

BENCHMARKS = [entry.name for entry in all_benchmarks()]


def _manual_flow(dfg, allocation):
    """The pre-pipeline synthesis flow, spelled out step by step."""
    from repro.binding.binder import bind
    from repro.control.distributed import build_distributed_control_unit
    from repro.core.validate import validate_dfg
    from repro.resources.allocation import ResourceAllocation
    from repro.scheduling.list_scheduler import list_schedule
    from repro.scheduling.order_based import order_based_schedule
    from repro.scheduling.taubm import derive_taubm_schedule

    if isinstance(allocation, str):
        allocation = ResourceAllocation.parse(allocation)
    validate_dfg(dfg)
    allocation.validate_for(dfg)
    schedule = list_schedule(dfg, allocation)
    order = order_based_schedule(dfg, allocation, objective="latency")
    bound = bind(dfg, allocation, order)
    taubm = derive_taubm_schedule(schedule, allocation)
    distributed = build_distributed_control_unit(bound)
    return schedule, order, bound, taubm, distributed


@pytest.mark.parametrize("name", BENCHMARKS)
def test_pipeline_matches_manual_flow(name):
    from repro.benchmarks.registry import benchmark

    entry = benchmark(name)
    dfg = entry.dfg()
    schedule, order, bound, taubm, distributed = _manual_flow(
        dfg, entry.allocation()
    )
    store, _ = run_synthesis_pipeline(dfg, entry.allocation())
    assert store.get("schedule") == schedule
    assert store.get("order") == order
    assert artifact_fingerprint(store.get("bound")) == artifact_fingerprint(
        bound
    )
    assert artifact_fingerprint(store.get("taubm")) == artifact_fingerprint(
        taubm
    )
    assert artifact_fingerprint(
        store.get("distributed")
    ) == artifact_fingerprint(distributed)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_synthesize_is_the_pipeline(name):
    """The public API and the pipeline return byte-identical designs."""
    from repro.api import synthesize
    from repro.benchmarks.registry import benchmark

    entry = benchmark(name)
    via_api = synthesize(entry.dfg(), entry.allocation())
    via_pipeline = synthesize_design(entry.dfg(), entry.allocation())
    assert dumps(design_to_dict(via_api)) == dumps(
        design_to_dict(via_pipeline)
    )


@pytest.mark.parametrize("name", BENCHMARKS)
def test_warm_cache_run_is_all_hits_and_identical(name, tmp_path):
    from repro.benchmarks.registry import benchmark

    entry = benchmark(name)
    cache_dir = str(tmp_path / "cache")
    _, cold = run_synthesis_pipeline(
        entry.dfg(), entry.allocation(), cache=SynthesisCache(cache_dir)
    )
    assert not cold.all_cached()
    # a *fresh* SynthesisCache proves the hits come from the directory,
    # not the in-memory layer
    warm_cache = SynthesisCache(cache_dir)
    store, warm = run_synthesis_pipeline(
        entry.dfg(), entry.allocation(), cache=warm_cache
    )
    assert warm.all_cached()
    assert warm_cache.misses == 0
    for record in warm.records:
        fresh = cold.record_for(record.name)
        assert record.inputs == fresh.inputs
        assert record.outputs == fresh.outputs
        assert record.cache_key == fresh.cache_key
    # and the rehydrated design serializes identically to a fresh one
    cached_result = synthesize_design(
        entry.dfg(), entry.allocation(), cache=warm_cache
    )
    fresh_result = synthesize_design(entry.dfg(), entry.allocation())
    assert dumps(design_to_dict(cached_result)) == dumps(
        design_to_dict(fresh_result)
    )


def test_manifest_byte_stable_for_every_benchmark():
    for entry in all_benchmarks():
        _, m1 = run_synthesis_pipeline(entry.dfg(), entry.allocation())
        _, m2 = run_synthesis_pipeline(entry.dfg(), entry.allocation())
        assert m1.to_json() == m2.to_json(), entry.name
