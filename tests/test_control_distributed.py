"""Unit tests for the distributed control unit integration (Fig. 7)."""

import pytest

from repro.control.distributed import build_distributed_control_unit
from repro.control.netlist import completion_netlist
from repro.fsm.algorithm1 import derive_all_unit_controllers
from repro.fsm.signals import is_op_completion, op_completion


class TestIntegration:
    def test_one_controller_per_used_unit(self, fig3_result):
        dcu = fig3_result.distributed
        assert set(dcu.unit_names) == {
            u.name for u in fig3_result.bound.used_units()
        }

    def test_unconsumed_completions_pruned(self, fig3_result):
        """The paper's example: CC of ops nobody listens to is removed."""
        dcu = fig3_result.distributed
        consumed = {
            s
            for fsm in dcu.controllers.values()
            for s in fsm.inputs
            if is_op_completion(s)
        }
        for fsm in dcu.controllers.values():
            for signal in fsm.outputs:
                if is_op_completion(signal):
                    assert signal in consumed

    def test_pruned_signals_reported(self, fig3_result):
        dcu = fig3_result.distributed
        assert dcu.pruned_signals
        for signal in dcu.pruned_signals:
            assert is_op_completion(signal)

    def test_sink_op_completion_always_pruned(self, fig3_result):
        """The DFG's sink op has no consumers: its CC must be gone."""
        sink = fig3_result.dfg.sink_ops()[0]
        assert op_completion(sink) in fig3_result.distributed.pruned_signals

    def test_live_nets_match_cross_unit_edges(self, fig3_result):
        dcu = fig3_result.distributed
        bound = fig3_result.bound
        expected_producers = set()
        for op in bound.dfg:
            expected_producers.update(
                bound.cross_unit_predecessors(op.name)
            )
        assert {
            n.producer_op for n in dcu.live_nets()
        } == expected_producers

    def test_latch_count_matches_cc_inputs(self, fig3_result):
        dcu = fig3_result.distributed
        expected = sum(
            sum(1 for s in fsm.inputs if is_op_completion(s))
            for fsm in dcu.controllers.values()
        )
        assert dcu.num_latches == expected

    def test_describe_mentions_pruning(self, fig3_result):
        text = fig3_result.distributed.describe()
        assert "pruned" in text
        assert "latches" in text


class TestAreaAggregation:
    def test_total_includes_latches(self, fig3_result):
        dcu = fig3_result.distributed
        with_latches = dcu.total_area(include_latches=True)
        without = dcu.total_area(include_latches=False)
        assert (
            with_latches.num_flip_flops
            == without.num_flip_flops + dcu.num_latches
        )
        assert with_latches.sequential_area > without.sequential_area

    def test_component_rows(self, fig3_result):
        rows = fig3_result.distributed.component_areas()
        assert len(rows) == len(fig3_result.distributed.unit_names)
        assert all(r.name.startswith("D-FSM-") for r in rows)

    def test_external_io_excludes_internal_wires(self, fig3_result):
        total = fig3_result.distributed.total_area()
        # External inputs: only the TAU completion signals.
        assert total.num_inputs == len(
            fig3_result.allocation.telescopic_units()
        )


class TestNetlist:
    def test_dead_nets_have_zero_fanout(self, fig3_result):
        raw = derive_all_unit_controllers(fig3_result.bound)
        nets = completion_netlist(fig3_result.bound, raw)
        sink = fig3_result.dfg.sink_ops()[0]
        [sink_net] = [n for n in nets if n.producer_op == sink]
        assert sink_net.fanout == 0

    def test_net_str(self, fig3_result):
        net = fig3_result.distributed.live_nets()[0]
        assert "->" in str(net)

    def test_every_op_has_a_net(self, fig3_result):
        raw = derive_all_unit_controllers(fig3_result.bound)
        nets = completion_netlist(fig3_result.bound, raw)
        assert {n.producer_op for n in nets} == set(
            fig3_result.dfg.op_names()
        )


class TestExecutability:
    def test_system_simulates(self, fig3_result):
        from repro.resources import AllFastCompletion
        from repro.sim import simulate

        dcu = build_distributed_control_unit(fig3_result.bound)
        sim = simulate(dcu.system(), fig3_result.bound, AllFastCompletion())
        assert sim.cycles > 0
