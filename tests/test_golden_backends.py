"""Golden-file regression tests for the text backends.

The Verilog and DOT writers are deterministic; these tests pin their
output for a fixed design (the Fig. 2 example's first TAU controller) so
any change to emission — intentional or not — shows up as a readable
diff.  To regenerate after an intentional change::

    python -c "
    from repro.api import synthesize
    from repro.benchmarks import paper_fig2_dfg
    from repro.fsm.verilog import fsm_to_verilog
    from repro.core.dot import dfg_to_dot
    r = synthesize(paper_fig2_dfg(), 'mul:2T,add:1')
    fsm = r.distributed.controller('TM1')
    open('tests/golden/fig2_tm1_controller.v','w').write(fsm_to_verilog(fsm))
    open('tests/golden/fig2_tm1_controller.dot','w').write(fsm.to_dot())
    open('tests/golden/fig2_dfg.dot','w').write(dfg_to_dot(
        r.dfg, schedule_arcs=r.order.schedule_arcs, binding=r.bound.binding))
    "
"""

from pathlib import Path

import pytest

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def fig2_artifacts():
    from repro.api import synthesize
    from repro.benchmarks import paper_fig2_dfg
    from repro.core.dot import dfg_to_dot
    from repro.fsm.verilog import fsm_to_verilog

    result = synthesize(paper_fig2_dfg(), "mul:2T,add:1")
    fsm = result.distributed.controller("TM1")
    return {
        "fig2_tm1_controller.v": fsm_to_verilog(fsm),
        "fig2_tm1_controller.dot": fsm.to_dot(),
        "fig2_dfg.dot": dfg_to_dot(
            result.dfg,
            schedule_arcs=result.order.schedule_arcs,
            binding=result.bound.binding,
        ),
    }


@pytest.mark.parametrize(
    "filename",
    [
        "fig2_tm1_controller.v",
        "fig2_tm1_controller.dot",
        "fig2_dfg.dot",
    ],
)
def test_backend_output_matches_golden(fig2_artifacts, filename):
    expected = (GOLDEN / filename).read_text()
    actual = fig2_artifacts[filename]
    assert actual == expected, (
        f"{filename} changed; regenerate the golden file if intentional "
        f"(see this module's docstring)"
    )


def test_golden_files_nonempty():
    for path in GOLDEN.iterdir():
        assert path.read_text().strip(), path
