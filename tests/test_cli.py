"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestBenchmarksCommand:
    def test_lists_registry(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "diffeq" in out
        assert "ar_lattice" in out


class TestSynthesizeCommand:
    def test_prints_artifacts(self, capsys):
        assert main(["synthesize", "fir3"]) == 0
        out = capsys.readouterr().out
        assert "schedule" in out
        assert "DIST" in out and "CENT-SYNC" in out

    def test_custom_allocation(self, capsys):
        assert (
            main(["synthesize", "fir3", "--allocation", "mul:3T,add:2"]) == 0
        )
        out = capsys.readouterr().out
        assert "TM3" in out

    def test_writes_verilog_and_dot(self, tmp_path, capsys):
        verilog = tmp_path / "out.v"
        dot = tmp_path / "out.dot"
        assert (
            main(
                [
                    "synthesize",
                    "fig3",
                    "--verilog",
                    str(verilog),
                    "--dot",
                    str(dot),
                ]
            )
            == 0
        )
        assert "module" in verilog.read_text()
        assert "digraph" in dot.read_text()

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        assert main(["synthesize", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_allocation_fails_cleanly(self, capsys):
        assert main(["synthesize", "fir3", "--allocation", "bogus"]) == 1
        assert "error:" in capsys.readouterr().err


class TestPipelineCommand:
    def test_list_shows_passes_and_registries(self, capsys):
        assert main(["pipeline", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("validate", "schedule", "order", "bind", "taubm",
                     "distributed", "cent-fsms"):
            assert name in out
        assert "force-directed" in out
        assert "cent-sync" in out

    def test_run_renders_manifest(self, capsys):
        assert main(["pipeline", "fir3"]) == 0
        out = capsys.readouterr().out
        assert "distributed" in out
        assert "computed" in out
        assert "cache:" in out

    def test_upto_stops_early(self, capsys):
        assert main(["pipeline", "fir3", "--to", "order"]) == 0
        out = capsys.readouterr().out
        assert "order" in out and "bind" not in out

    def test_manifest_file_written(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "manifest.json"
        assert main(["pipeline", "fir3", "--manifest", str(manifest)]) == 0
        data = json.loads(manifest.read_text())
        assert [p["pass"] for p in data["passes"]] == [
            "validate", "schedule", "order", "bind", "taubm", "distributed",
        ]
        assert all("wall_time_s" in p for p in data["passes"])

    def test_assert_all_cached_cold_then_warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        # cold run: nothing cached yet, the assertion fails
        assert main(
            ["pipeline", "fir3", "--cache-dir", cache_dir,
             "--assert-all-cached"]
        ) == 1
        assert "error:" in capsys.readouterr().err
        # warm run: every pass replays from the cache directory
        assert main(
            ["pipeline", "fir3", "--cache-dir", cache_dir,
             "--assert-all-cached"]
        ) == 0
        assert "cached" in capsys.readouterr().out

    def test_missing_benchmark_rejected(self, capsys):
        assert main(["pipeline"]) == 2
        assert "benchmark" in capsys.readouterr().err

    def test_scheduler_and_objective_flags(self, capsys):
        assert main(
            ["pipeline", "diffeq", "--scheduler", "force-directed",
             "--objective", "communication", "--to", "bind"]
        ) == 0
        assert "bind" in capsys.readouterr().out


class TestSchedulerFlag:
    def test_synthesize_force_directed(self, capsys):
        assert main(
            ["synthesize", "fir3", "--scheduler", "force-directed"]
        ) == 0
        assert "schedule" in capsys.readouterr().out


class TestSimulateCommand:
    def test_reports_latency(self, capsys):
        assert main(["simulate", "fir3", "--p", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "3 cycles = 45 ns" in out

    def test_trace_output(self, capsys):
        assert main(["simulate", "fir3", "--trace"]) == 0
        assert "cycle" in capsys.readouterr().out

    def test_writes_vcd(self, tmp_path, capsys):
        vcd = tmp_path / "wave.vcd"
        assert main(["simulate", "fir3", "--vcd", str(vcd)]) == 0
        assert "$enddefinitions" in vcd.read_text()

    def test_pipelined_run(self, capsys):
        assert main(["simulate", "fir3", "--iterations", "4"]) == 0
        assert "throughput" in capsys.readouterr().out


class TestAnalysisCommands:
    def test_table1(self, capsys):
        assert main(["table1", "fig3"]) == 0
        assert "Area(Com./Seq.)" in capsys.readouterr().out

    def test_distribution(self, capsys):
        assert main(["distribution", "fir3", "--p", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "P99 budget" in out

    def test_exact_scheduler_flag(self, capsys):
        assert main(["simulate", "iir2", "--scheduler", "exact", "--p", "1.0"]) == 0
        assert "5 cycles" in capsys.readouterr().out


class TestUtilizationFlag:
    def test_simulate_prints_utilization(self, capsys):
        assert main(["simulate", "fir3", "--utilization"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out and "TM1" in out


class TestExperimentsCommand:
    def test_runs_named_driver(self, capsys):
        assert main(["experiments", "pipeline"]) == 0
        assert "X4" in capsys.readouterr().out

    def test_workers_flag(self, capsys):
        assert main(["experiments", "fig4", "-j", "2"]) == 0
        assert "CENT" in capsys.readouterr().out

    def test_unknown_driver_fails_cleanly(self, capsys):
        assert main(["experiments", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_cache_dir_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(
            ["experiments", "pipeline", "--cache-dir", str(cache_dir)]
        ) == 0
        assert list(cache_dir.glob("*.syn.json"))


class TestBenchCommand:
    def test_quick_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        assert (
            main(
                ["bench", "fig3", "--quick", "--trials", "8", "-j", "2",
                 "-o", str(out)]
            )
            == 0
        )
        assert "repro bench" in capsys.readouterr().out
        assert "fig3" in out.read_text()

    def test_cache_dir_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        out = tmp_path / "BENCH.json"
        assert (
            main(
                ["bench", "fig3", "--quick", "--trials", "8", "-j", "2",
                 "--cache-dir", str(cache_dir), "-o", str(out)]
            )
            == 0
        )
        assert list(cache_dir.glob("*.syn.json"))


class TestFaultsWorkersFlag:
    def test_parallel_campaign_runs(self, capsys):
        assert main(["faults", "fig2", "--trials", "4", "-j", "2"]) == 0
        assert "fault campaign" in capsys.readouterr().out


class TestReportCommand:
    def test_quick_report_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "--quick", "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# Reproduction report" in text
        assert "Table 2" in text
        assert "X12" in text
