"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestBenchmarksCommand:
    def test_lists_registry(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "diffeq" in out
        assert "ar_lattice" in out


class TestSynthesizeCommand:
    def test_prints_artifacts(self, capsys):
        assert main(["synthesize", "fir3"]) == 0
        out = capsys.readouterr().out
        assert "schedule" in out
        assert "DIST" in out and "CENT-SYNC" in out

    def test_custom_allocation(self, capsys):
        assert (
            main(["synthesize", "fir3", "--allocation", "mul:3T,add:2"]) == 0
        )
        out = capsys.readouterr().out
        assert "TM3" in out

    def test_writes_verilog_and_dot(self, tmp_path, capsys):
        verilog = tmp_path / "out.v"
        dot = tmp_path / "out.dot"
        assert (
            main(
                [
                    "synthesize",
                    "fig3",
                    "--verilog",
                    str(verilog),
                    "--dot",
                    str(dot),
                ]
            )
            == 0
        )
        assert "module" in verilog.read_text()
        assert "digraph" in dot.read_text()

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        assert main(["synthesize", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_allocation_fails_cleanly(self, capsys):
        assert main(["synthesize", "fir3", "--allocation", "bogus"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSimulateCommand:
    def test_reports_latency(self, capsys):
        assert main(["simulate", "fir3", "--p", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "3 cycles = 45 ns" in out

    def test_trace_output(self, capsys):
        assert main(["simulate", "fir3", "--trace"]) == 0
        assert "cycle" in capsys.readouterr().out

    def test_writes_vcd(self, tmp_path, capsys):
        vcd = tmp_path / "wave.vcd"
        assert main(["simulate", "fir3", "--vcd", str(vcd)]) == 0
        assert "$enddefinitions" in vcd.read_text()

    def test_pipelined_run(self, capsys):
        assert main(["simulate", "fir3", "--iterations", "4"]) == 0
        assert "throughput" in capsys.readouterr().out


class TestAnalysisCommands:
    def test_table1(self, capsys):
        assert main(["table1", "fig3"]) == 0
        assert "Area(Com./Seq.)" in capsys.readouterr().out

    def test_distribution(self, capsys):
        assert main(["distribution", "fir3", "--p", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "P99 budget" in out

    def test_exact_scheduler_flag(self, capsys):
        assert main(["simulate", "iir2", "--scheduler", "exact", "--p", "1.0"]) == 0
        assert "5 cycles" in capsys.readouterr().out


class TestUtilizationFlag:
    def test_simulate_prints_utilization(self, capsys):
        assert main(["simulate", "fir3", "--utilization"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out and "TM1" in out


class TestExperimentsCommand:
    def test_runs_named_driver(self, capsys):
        assert main(["experiments", "pipeline"]) == 0
        assert "X4" in capsys.readouterr().out

    def test_workers_flag(self, capsys):
        assert main(["experiments", "fig4", "-j", "2"]) == 0
        assert "CENT" in capsys.readouterr().out

    def test_unknown_driver_fails_cleanly(self, capsys):
        assert main(["experiments", "nope"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBenchCommand:
    def test_quick_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        assert (
            main(
                ["bench", "fig3", "--quick", "--trials", "8", "-j", "2",
                 "-o", str(out)]
            )
            == 0
        )
        assert "repro bench" in capsys.readouterr().out
        assert "fig3" in out.read_text()


class TestFaultsWorkersFlag:
    def test_parallel_campaign_runs(self, capsys):
        assert main(["faults", "fig2", "--trials", "4", "-j", "2"]) == 0
        assert "fault campaign" in capsys.readouterr().out


class TestReportCommand:
    def test_quick_report_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "--quick", "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# Reproduction report" in text
        assert "Table 2" in text
        assert "X12" in text
