"""Unit tests for the benchmark DFG suite."""

import pytest

from repro.benchmarks import (
    all_benchmarks,
    ar_lattice,
    benchmark,
    differential_equation,
    elliptic_wave_filter,
    fig4_pathological_dfg,
    fir3,
    fir5,
    fir_filter,
    iir2,
    iir3,
    iir_filter,
    paper_fig2_dfg,
    paper_fig3_dfg,
    table2_benchmarks,
)
from repro.core.analysis import profile, schedule_length
from repro.core.ops import ResourceClass
from repro.core.validate import validate_dfg
from repro.errors import GraphError, ReproError


class TestOperationMixes:
    """The op counts the paper's rows imply."""

    def test_diffeq_mix(self):
        prof = profile(differential_equation())
        mix = dict(prof.ops_by_class)
        assert mix["mul"] == 6
        assert mix["add"] == 2
        assert mix["sub"] == 3  # 2 subtractions + 1 comparison

    def test_fir3_mix(self):
        mix = dict(profile(fir3()).ops_by_class)
        assert mix == {"mul": 3, "add": 2}

    def test_fir5_mix(self):
        mix = dict(profile(fir5()).ops_by_class)
        assert mix == {"mul": 5, "add": 4}

    def test_iir_mix(self):
        assert dict(profile(iir2()).ops_by_class) == {"mul": 5, "add": 4}
        assert dict(profile(iir3()).ops_by_class) == {"mul": 7, "add": 6}

    def test_ar_lattice_mix(self):
        mix = dict(profile(ar_lattice()).ops_by_class)
        assert mix == {"mul": 16, "add": 12}

    def test_ewf_mix(self):
        mix = dict(profile(elliptic_wave_filter()).ops_by_class)
        assert mix == {"mul": 8, "add": 26}


class TestStructure:
    def test_all_benchmarks_validate(self):
        for entry in all_benchmarks():
            validate_dfg(entry.dfg(), require_outputs=True)

    def test_fig2_depth(self):
        assert schedule_length(paper_fig2_dfg()) == 4

    def test_fig3_depth(self):
        assert schedule_length(paper_fig3_dfg()) == 4

    def test_fir_evaluates_correctly(self):
        dfg = fir_filter(4, coefficients=(1, 2, 3, 4))
        values = dfg.evaluate({"x0": 1, "x1": 1, "x2": 1, "x3": 1})
        assert values["y"] == 10

    def test_fir_serial_variant(self):
        tree = fir_filter(6)
        serial = fir_filter(6, name="serial", tree_adds=False)
        inputs = {f"x{i}": i + 1 for i in range(6)}
        assert tree.evaluate(inputs)["y"] == serial.evaluate(inputs)["y"]
        assert schedule_length(serial) > schedule_length(tree)

    def test_iir_uses_signed_coefficient_form(self):
        dfg = iir_filter(2)
        assert not dfg.ops_of_class(ResourceClass.SUBTRACTOR)

    def test_fir_too_small(self):
        with pytest.raises(GraphError, match="at least two taps"):
            fir_filter(1)

    def test_iir_bad_order(self):
        with pytest.raises(GraphError, match="order"):
            iir_filter(0)

    def test_fig4_pathological_width(self):
        from repro.scheduling.order_based import minimum_units_required

        dfg = fig4_pathological_dfg(4)
        assert (
            minimum_units_required(dfg, ResourceClass.MULTIPLIER) == 4
        )

    def test_fig4_needs_positive_taus(self):
        with pytest.raises(ValueError):
            fig4_pathological_dfg(0)


class TestRegistry:
    def test_table2_rows_in_paper_order(self):
        titles = [e.title for e in table2_benchmarks()]
        assert titles == [
            "3rd FIR",
            "5th FIR",
            "2nd IIR",
            "3rd IIR",
            "Diff.",
            "AR-lattice",
        ]

    def test_allocations_parse(self):
        for entry in all_benchmarks():
            allocation = entry.allocation()
            allocation.validate_for(entry.dfg())
            allocation.validate_two_level()

    def test_unknown_benchmark(self):
        with pytest.raises(ReproError, match="unknown benchmark"):
            benchmark("nope")

    def test_diffeq_allocation_matches_paper(self):
        entry = benchmark("diffeq")
        alloc = entry.allocation()
        assert alloc.count(ResourceClass.MULTIPLIER) == 2
        assert alloc.count(ResourceClass.ADDER) == 1
        assert alloc.count(ResourceClass.SUBTRACTOR) == 1
        assert len(alloc.telescopic_units()) == 2


class TestFig3PaperClaims:
    def test_multiplication_dependency_cliques(self):
        """Fig. 3(b): dependent pairs (o0,o1) and (o6,o8); o4 alone."""
        from repro.core.dfg import transitive_dependency

        dfg = paper_fig3_dfg()
        deps = transitive_dependency(dfg)
        assert "o0" in deps["o1"]
        assert "o6" in deps["o8"]
        mults = {"o0", "o1", "o6", "o8"}
        assert not (deps["o4"] & mults)
        assert all("o4" not in deps[m] for m in mults)

    def test_fig2_lost_concurrency_example(self):
        """§2.3: o1 depends on o0 only, not on o3."""
        dfg = paper_fig2_dfg()
        assert dfg.predecessors("o1") == ("o0",)
