"""Tests for the seeded parametric DFG-family generator (``gen:``)."""

import pytest

from repro.api import synthesize
from repro.benchmarks.generate import (
    FamilySpec,
    family_allocation_spec,
    generate_dfg,
    parse_family,
)
from repro.benchmarks.registry import benchmark, core_benchmark_names
from repro.errors import ReproError
from repro.serialize import dfg_to_dict

CANONICAL = "gen:ops=12,depth=4,fanout=2,mix=2-2-1,pressure=3,seed=0"


# ----------------------------------------------------------------------
# Name grammar
# ----------------------------------------------------------------------
def test_defaults_and_canonical_name():
    assert FamilySpec().name == CANONICAL
    assert parse_family("gen:").name == CANONICAL


def test_parse_any_key_order_canonicalizes():
    spec = parse_family("gen:seed=3,ops=20,depth=5")
    assert spec.name == (
        "gen:ops=20,depth=5,fanout=2,mix=2-2-1,pressure=3,seed=3"
    )


@pytest.mark.parametrize(
    "name",
    [
        "gen",  # missing colon
        "gen:bogus=1",  # unknown key
        "gen:ops",  # missing '='
        "gen:ops=x",  # non-integer
        "gen:ops=1",  # below minimum
        "gen:ops=64",  # beyond the batch engine's 63-op mask
        "gen:depth=0",
        "gen:ops=4,depth=5",  # depth > ops
        "gen:fanout=0",
        "gen:pressure=0",
        "gen:mix=0-0-0",  # no positive weight
        "gen:mix=1-2",  # wrong arity
        "gen:mix=a-b-c",
    ],
)
def test_parse_rejects_invalid(name):
    with pytest.raises(ReproError):
        parse_family(name)


# ----------------------------------------------------------------------
# Determinism and shape
# ----------------------------------------------------------------------
def test_generation_is_deterministic():
    spec = parse_family("gen:ops=20,depth=5,seed=2,fanout=3")
    assert dfg_to_dict(generate_dfg(spec)) == dfg_to_dict(
        generate_dfg(spec)
    )


def test_different_seeds_differ():
    a = dfg_to_dict(generate_dfg(parse_family("gen:seed=0")))
    b = dfg_to_dict(generate_dfg(parse_family("gen:seed=1")))
    assert a != b


def test_op_count_matches_spec():
    for name in ("gen:", "gen:ops=7,depth=3", "gen:ops=30,depth=6,seed=5"):
        spec = parse_family(name)
        dfg = generate_dfg(spec)
        assert len(list(dfg)) == spec.ops


def test_fanout_budget_respected():
    spec = parse_family("gen:ops=24,depth=6,fanout=1,seed=3")
    dfg = generate_dfg(spec)
    consumers: dict[str, int] = {}
    for op in dfg:
        for operand in op.operands:
            producer = getattr(operand, "op", None)
            if producer is not None:
                consumers[producer] = consumers.get(producer, 0) + 1
    assert consumers and max(consumers.values()) <= spec.fanout


def test_allocation_spec_tracks_pressure():
    spec = parse_family("gen:seed=1")
    allocation = family_allocation_spec(spec)
    assert "T" in allocation  # multipliers stay telescopic
    # higher pressure never yields more units
    relaxed = family_allocation_spec(parse_family("gen:seed=1,pressure=1"))

    def units(text):
        return sum(
            int("".join(ch for ch in part.split(":")[1] if ch.isdigit()))
            for part in text.split(",")
        )

    assert units(allocation) <= units(relaxed)


# ----------------------------------------------------------------------
# Registry integration
# ----------------------------------------------------------------------
def test_registry_materializes_and_canonicalizes():
    entry = benchmark("gen:seed=1")
    assert entry.name.startswith("gen:ops=")
    assert entry.generated
    assert benchmark(entry.name) is entry  # registered once, reused


def test_generated_families_stay_out_of_core_list():
    benchmark("gen:seed=9")
    assert not any(
        name.startswith("gen:") for name in core_benchmark_names()
    )
    from repro.perf.bench import CORE_BENCHMARKS

    assert CORE_BENCHMARKS == core_benchmark_names()


def test_unknown_fixed_benchmark_mentions_families():
    with pytest.raises(ReproError, match="gen:"):
        benchmark("nope")


# ----------------------------------------------------------------------
# End-to-end: synthesize, simulate, lint — zero special-casing
# ----------------------------------------------------------------------
def test_generated_family_synthesizes_and_simulates():
    entry = benchmark("gen:ops=14,depth=4,seed=7")
    result = synthesize(entry.dfg(), entry.allocation())
    stats = result.monte_carlo_latency(
        p="per-unit:mul=0.9,*=0.5", trials=30, seed=0
    )
    assert stats.mean > 0


def test_generated_family_passes_lint_gate():
    from repro.verify import gate_report, lint_benchmark

    report = lint_benchmark("gen:ops=14,depth=4,seed=7")
    gate = gate_report(report, None)
    assert gate.passed, gate.render()
