"""End-to-end tests for the distributed campaign fabric runtime.

These spawn real worker-node subprocesses (``python -m repro fabric
worker``) against an in-process coordinator, so they exercise the wire
protocol, lease failover and the replicated write-ahead journal the
same way a production campaign does.  Work functions must be picklable
*and importable from the worker's PYTHONPATH*: module-level helpers in
this file work because the failover tests extend PYTHONPATH with the
tests directory.
"""

from __future__ import annotations

import os
import time
from functools import partial

import pytest

from repro.errors import (
    CheckpointError,
    CheckpointInterrupted,
    SerialFallbackWarning,
    SimulationError,
)
from repro.fabric import (
    STATUS_FILE,
    FabricConfig,
    default_backup_path,
    fabric_map,
)
from repro.perf.engine import derive_seed
from repro.runtime.chaos import ChaosConfig
from repro.runtime.journal import CheckpointJournal, checkpointed_map
from repro.runtime.policy import RunPolicy, RunReport

RUN_KEY = "fabric-runtime-test|v1"

#: tight failure detection so the failover tests stay fast
FAST = {"heartbeat_s": 0.1, "lease_timeout_s": 20.0}


def _config(**overrides) -> FabricConfig:
    return FabricConfig(**{**FAST, **overrides})


def _shards_on_disk(path: str) -> int:
    return sum(
        name.endswith(".shard.pkl") for name in os.listdir(path)
    )


def _sleepy_seed(item: int) -> int:
    """Slow enough that leases outlive chaos-detection windows."""
    time.sleep(0.4)
    return derive_seed(7, item)


def _very_sleepy_seed(item: int) -> int:
    """Outlasts the heartbeat-miss window of a slowed node."""
    time.sleep(0.8)
    return derive_seed(7, item)


@pytest.fixture
def workers_can_import_tests(monkeypatch):
    """Let worker subprocesses unpickle this module's helpers."""
    monkeypatch.setenv(
        "PYTHONPATH", os.path.dirname(os.path.abspath(__file__))
    )


class TestFabricConfig:
    def test_rejects_zero_nodes(self):
        with pytest.raises(SimulationError, match="at least one"):
            FabricConfig(nodes=0)

    def test_rejects_nonpositive_timing(self):
        with pytest.raises(SimulationError, match="positive"):
            FabricConfig(heartbeat_s=0.0)
        with pytest.raises(SimulationError, match="positive"):
            FabricConfig(lease_timeout_s=-1.0)

    def test_rejects_negative_restart_budget(self):
        with pytest.raises(SimulationError, match="max_node_restarts"):
            FabricConfig(max_node_restarts=-1)

    def test_restart_budget_defaults_to_twice_nodes(self):
        assert FabricConfig(nodes=3).restart_budget() == 6
        assert (
            FabricConfig(nodes=3, max_node_restarts=0).restart_budget()
            == 0
        )


class TestFabricMap:
    def test_requires_checkpoint_directory(self):
        with pytest.raises(CheckpointError, match="write-ahead"):
            fabric_map(
                partial(derive_seed, 7),
                range(4),
                run_key=RUN_KEY,
                checkpoint=None,
            )

    def test_matches_serial_and_replicates(self, tmp_path):
        items = list(range(8))
        fn = partial(derive_seed, 7)
        expected = [fn(item) for item in items]
        ckpt = str(tmp_path / "ckpt")
        report = RunReport()
        got = fabric_map(
            fn,
            items,
            run_key=RUN_KEY,
            checkpoint=ckpt,
            config=_config(),
            report=report,
        )
        assert got == expected
        # write-ahead commits landed in both journal copies
        assert _shards_on_disk(ckpt) == len(items)
        assert _shards_on_disk(default_backup_path(ckpt)) == len(items)
        # the coordinator-address file is removed on completion
        assert not os.path.exists(os.path.join(ckpt, STATUS_FILE))
        # a clean run records no recoveries
        assert report.counts() == {}

    def test_replays_a_previous_serial_run(self, tmp_path):
        items = list(range(8))
        fn = partial(derive_seed, 7)
        ckpt = str(tmp_path / "ckpt")
        serial = checkpointed_map(
            fn, items, run_key=RUN_KEY, checkpoint=ckpt
        )
        report = RunReport()
        got = fabric_map(
            fn,
            items,
            run_key=RUN_KEY,
            checkpoint=ckpt,
            config=_config(),
            report=report,
        )
        assert got == serial
        # pure replay: every shard repaired into the empty backup,
        # no worker nodes were ever needed
        assert report.count("journal-repair") == len(items)
        assert _shards_on_disk(default_backup_path(ckpt)) == len(items)

    def test_unpicklable_fn_degrades_to_in_process(self, tmp_path):
        items = list(range(5))
        offset = 3
        ckpt = str(tmp_path / "ckpt")
        report = RunReport()
        with pytest.warns(SerialFallbackWarning):
            got = fabric_map(
                lambda item: item + offset,  # closures cannot cross the wire
                items,
                run_key=RUN_KEY,
                checkpoint=ckpt,
                config=_config(),
                report=report,
            )
        assert got == [item + offset for item in items]
        assert report.count("serial-fallback") == 1
        assert _shards_on_disk(ckpt) == len(items)
        assert _shards_on_disk(default_backup_path(ckpt)) == len(items)

    def test_checkpointed_map_routes_through_fabric(self, tmp_path):
        items = list(range(6))
        fn = partial(derive_seed, 11)
        ckpt = str(tmp_path / "ckpt")
        got = checkpointed_map(
            fn,
            items,
            run_key=RUN_KEY,
            checkpoint=ckpt,
            fabric=_config(),
        )
        assert got == [fn(item) for item in items]
        assert os.path.isdir(default_backup_path(ckpt))

    def test_explicit_backup_dir_honoured(self, tmp_path):
        items = list(range(4))
        fn = partial(derive_seed, 7)
        ckpt = str(tmp_path / "ckpt")
        backup = str(tmp_path / "elsewhere")
        fabric_map(
            fn,
            items,
            run_key=RUN_KEY,
            checkpoint=ckpt,
            config=_config(backup_dir=backup),
        )
        assert _shards_on_disk(backup) == len(items)
        assert not os.path.exists(default_backup_path(ckpt))


class TestFailover:
    def test_worker_sigkill_revokes_and_respawns(
        self, tmp_path, workers_can_import_tests
    ):
        items = list(range(6))
        expected = [derive_seed(7, item) for item in items]
        chaos = ChaosConfig(
            node_kill_items=(1,),
            sentinel_dir=str(tmp_path / "sentinels"),
        )
        os.makedirs(chaos.sentinel_dir, exist_ok=True)
        report = RunReport()
        got = fabric_map(
            _sleepy_seed,
            items,
            run_key=RUN_KEY,
            checkpoint=str(tmp_path / "ckpt"),
            config=_config(),
            policy=RunPolicy(chaos=chaos),
            report=report,
        )
        assert got == expected
        assert report.count("node-loss") >= 1
        assert report.count("lease-revoke") >= 1
        assert report.count("node-restart") >= 1

    def test_partition_after_compute_is_recomputed(
        self, tmp_path, workers_can_import_tests
    ):
        items = list(range(6))
        expected = [derive_seed(7, item) for item in items]
        chaos = ChaosConfig(
            partition_items=(2,),
            sentinel_dir=str(tmp_path / "sentinels"),
        )
        os.makedirs(chaos.sentinel_dir, exist_ok=True)
        report = RunReport()
        got = fabric_map(
            _sleepy_seed,
            items,
            run_key=RUN_KEY,
            checkpoint=str(tmp_path / "ckpt"),
            config=_config(),
            policy=RunPolicy(chaos=chaos),
            report=report,
        )
        # the partitioned shard was computed but never reported; it
        # must be recomputed elsewhere with an identical result
        assert got == expected
        assert report.count("node-loss") >= 1
        assert report.count("lease-revoke") >= 1

    def test_slow_heartbeat_node_declared_lost_late_commit_ok(
        self, tmp_path, workers_can_import_tests
    ):
        items = list(range(6))
        expected = [derive_seed(7, item) for item in items]
        chaos = ChaosConfig(
            slow_heartbeat_nodes=(0,),
            heartbeat_slowdown=50.0,
            sentinel_dir=str(tmp_path / "sentinels"),
        )
        os.makedirs(chaos.sentinel_dir, exist_ok=True)
        report = RunReport()
        got = fabric_map(
            _very_sleepy_seed,
            items,
            run_key=RUN_KEY,
            checkpoint=str(tmp_path / "ckpt"),
            config=_config(),
            policy=RunPolicy(chaos=chaos),
            report=report,
        )
        # node 0 is alive but silent: the coordinator revokes its
        # leases, reassigns them, and tolerates its late duplicate
        # commits idempotently — the run still completes correctly
        assert got == expected
        assert report.count("node-loss") >= 1
        assert report.count("lease-revoke") >= 1

    def test_coordinator_restart_resumes_byte_identically(
        self, tmp_path
    ):
        items = list(range(6))
        fn = partial(derive_seed, 7)
        expected = [fn(item) for item in items]
        ckpt = str(tmp_path / "ckpt")
        with pytest.raises(CheckpointInterrupted):
            fabric_map(
                fn,
                items,
                run_key=RUN_KEY,
                checkpoint=CheckpointJournal(ckpt, max_new_shards=2),
                config=_config(),
            )
        # the interrupt left a valid partial journal and no stale
        # coordinator-address file
        assert _shards_on_disk(ckpt) == 2
        assert not os.path.exists(os.path.join(ckpt, STATUS_FILE))
        resumed = fabric_map(
            fn,
            items,
            run_key=RUN_KEY,
            checkpoint=ckpt,
            config=_config(),
        )
        assert resumed == expected


class TestDriversOnFabric:
    def test_run_table2_fabric_matches_serial(self, tmp_path):
        from repro.benchmarks.registry import table2_benchmarks
        from repro.experiments.table2 import run_table2

        entries = list(table2_benchmarks())[:2]
        serial = run_table2(entries=entries).render()
        fabric = run_table2(
            entries=entries,
            checkpoint=str(tmp_path / "ckpt"),
            fabric=_config(),
        ).render()
        assert fabric == serial
