#!/usr/bin/env python3
"""Domain example: the three controller styles on one design, side by side.

Reproduces the paper's §5 discussion on the differential-equation
benchmark: derive CENT-FSM, CENT-SYNC-FSM and DIST-FSM for the same bound
dataflow graph, then show that

* all three compute identical results,
* CENT and DIST have identical cycle-accurate latency on every scenario,
* CENT-SYNC loses cycles whenever TAU operations are slow,
* the area ranking is CENT-SYNC < DIST << CENT.

Run:  python examples/controller_comparison.py
"""

import random

from repro.analysis import render_table
from repro.benchmarks import differential_equation
from repro.experiments import run_table1, synthesize_benchmark
from repro.resources import AssignmentCompletion
from repro.sim import simulate


def main() -> None:
    result = synthesize_benchmark("diffeq")
    print(result.bound.describe())
    print()

    systems = {
        "DIST": result.distributed_system(),
        "CENT": result.cent_system(),
        "CENT-SYNC": result.cent_sync_system(),
    }
    inputs = {"x": 3, "y": 4, "u": 5, "dx": 2, "a": 100}
    reference = differential_equation().evaluate(inputs)

    rng = random.Random(2003)
    tau_ops = result.bound.telescopic_ops()
    rows = []
    for scenario in range(6):
        fast = {op: rng.random() < 0.6 for op in tau_ops}
        model = AssignmentCompletion(
            {op.name: fast.get(op.name, True) for op in result.dfg}
        )
        cycles = {}
        for name, system in systems.items():
            sim = simulate(system, result.bound, model, inputs=inputs)
            cycles[name] = sim.cycles
            outputs = sim.datapath.output_values()
            for out_name, value in outputs.items():
                assert value == reference[out_name], (name, out_name)
        slow = sorted(op for op, is_fast in fast.items() if not is_fast)
        rows.append(
            [
                f"#{scenario}",
                ",".join(slow) or "(none slow)",
                str(cycles["DIST"]),
                str(cycles["CENT"]),
                str(cycles["CENT-SYNC"]),
            ]
        )
        assert cycles["DIST"] == cycles["CENT"]
        assert cycles["CENT-SYNC"] >= cycles["DIST"]
    print(
        render_table(
            ["scenario", "slow TAU ops", "DIST", "CENT", "CENT-SYNC"], rows
        )
    )
    print("\nAll controllers produced bit-identical datapath results.")
    print()

    table1 = run_table1(result=result)
    print(table1.render())
    table1.check_shape()


if __name__ == "__main__":
    main()
