#!/usr/bin/env python3
"""Export a synthesized distributed control unit as Verilog.

Derives the distributed controllers for the paper's Fig. 3 example and
writes (a) one module per arithmetic-unit controller, (b) the top-level
module wiring completion pulses through arrival latches, and (c) DOT
renderings of the scheduled DFG and each controller FSM.

Run:  python examples/verilog_export.py [output-dir]
"""

import sys
from pathlib import Path

from repro import synthesize
from repro.benchmarks import paper_fig3_dfg
from repro.control import distributed_to_verilog
from repro.core import dfg_to_dot


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "verilog_out")
    out_dir.mkdir(parents=True, exist_ok=True)

    result = synthesize(paper_fig3_dfg(), "mul:2T,add:2")
    dcu = result.distributed

    verilog = distributed_to_verilog(dcu, top_name="fig3_control")
    (out_dir / "fig3_control.v").write_text(verilog)
    print(f"wrote {out_dir / 'fig3_control.v'} "
          f"({len(verilog.splitlines())} lines)")

    dot = dfg_to_dot(
        result.dfg,
        schedule_arcs=result.order.schedule_arcs,
        binding=result.bound.binding,
    )
    (out_dir / "fig3_dfg.dot").write_text(dot)
    print(f"wrote {out_dir / 'fig3_dfg.dot'}")

    for unit_name, fsm in dcu.controllers.items():
        path = out_dir / f"fsm_{unit_name}.dot"
        path.write_text(fsm.to_dot())
        print(f"wrote {path} ({fsm.num_states} states)")

    print("\ntop-level interface:")
    for line in verilog.splitlines():
        if line.strip().startswith(("input", "output")):
            print(f"  {line.strip()}")
        if line.startswith("endmodule"):
            break


if __name__ == "__main__":
    main()
