#!/usr/bin/env python3
"""Extension example: multi-level variable-computation-time units.

The paper's §6 claims the method applies "to other kinds of synchronous
VCAUs without special modification".  This script demonstrates it: three-
level telescopic multipliers (15/30/45 ns — one, two or three clock cycles
per multiply) drive the same flow.  Algorithm 1 chains extension states
(S, S', S''), the synchronized baseline keeps extending a step until every
unit reports done, and the distributed advantage persists.

Run:  python examples/multilevel_vcau.py
"""

from repro import synthesize
from repro.analysis import (
    DistLatencyEvaluator,
    duration_table,
    exact_expected_latency_categorical,
    render_table,
)
from repro.benchmarks import fir5
from repro.core.ops import ResourceClass
from repro.resources import CategoricalCompletion, ResourceAllocation
from repro.sim import simulate


def main() -> None:
    allocation = ResourceAllocation.build(
        {ResourceClass.MULTIPLIER: 2, ResourceClass.ADDER: 1},
        level_delays_ns=(15.0, 30.0, 45.0),
        fixed_delay_ns=15.0,
    )
    print(allocation.describe())

    result = synthesize(fir5(), allocation)
    fsm = result.distributed.controller("TM1")
    chain = [s for s in fsm.states if s.startswith(("S_m0", "SX"))]
    print(f"\nAlgorithm-1 extension chain for TM1: {chain[:6]} ...")

    # Exact expected latency for several level distributions.
    rows = []
    for probs in ((0.8, 0.15, 0.05), (0.5, 0.3, 0.2), (0.2, 0.3, 0.5)):
        table = duration_table(result.bound, probs)
        evaluator = DistLatencyEvaluator(result.bound)
        dist = exact_expected_latency_categorical(
            evaluator.for_durations, table
        )
        sync = exact_expected_latency_categorical(
            result.taubm.cycles_for_durations, table
        )
        rows.append(
            [
                str(list(probs)),
                f"{dist:.3f}",
                f"{sync:.3f}",
                f"{100 * (sync - dist) / sync:.1f}%",
            ]
        )
    print()
    print(
        render_table(
            ["level probabilities", "DIST", "CENT-SYNC", "enhancement"],
            rows,
        )
    )

    # Cycle-accurate run with categorical level sampling + datapath check.
    sim = simulate(
        result.distributed_system(),
        result.bound,
        CategoricalCompletion((0.5, 0.3, 0.2)),
        seed=11,
        inputs={f"x{i}": i + 1 for i in range(5)},
        record_trace=True,
    )
    print(
        f"\none sampled run: {sim.cycles} cycles; per-op levels: "
        + ", ".join(
            f"{op}:{sim.level_outcomes[op][0]}"
            for op in result.bound.telescopic_ops()
        )
    )
    print(f"filter output y = {sim.datapath.output_values()['y']} (verified)")


if __name__ == "__main__":
    main()
