#!/usr/bin/env python3
"""Domain example: building a telescopic unit from the gate level up.

Shows the physics the whole paper rests on (its Fig. 1):

1. a ripple-carry adder's settle time depends on the operands' carry
   chains — demonstrated on the event-driven gate-level netlist,
2. a safe completion-signal generator (CSG) is synthesized for a target
   short delay and verified exhaustively,
3. the fast-group probability P the CSG achieves depends on the operand
   distribution — the measured P is then fed into a full controller
   synthesis run, closing the loop from gates to system-level latency.

Run:  python examples/telescopic_unit.py
"""

from repro import synthesize
from repro.analysis import render_table
from repro.benchmarks import fir5
from repro.resources import (
    ArrayMultiplier,
    RippleCarryAdder,
    carry_chain_length,
    measure_fast_fraction,
    small_value_distribution,
    synthesize_adder_csg,
    synthesize_multiplier_csg,
    uniform_distribution,
    verify_csg_safety,
)


def adder_settle_times() -> None:
    adder = RippleCarryAdder(width=8)
    print("8-bit ripple-carry adder, gate-level settle times:")
    cases = [(1, 2), (85, 85), (1, 255), (127, 1), (255, 255)]
    rows = []
    for a, b in cases:
        chain = carry_chain_length(a, b, 8)
        gate_ns = adder.gate_level_settle_ns(a, b)
        model_ns = adder.delay_ns(a, b)
        rows.append(
            [f"{a}+{b}", str(chain), f"{gate_ns:.2f}", f"{model_ns:.2f}"]
        )
    print(
        render_table(
            ["operands", "carry chain", "gate-level ns", "model ns"], rows
        )
    )


def synthesize_csgs() -> None:
    adder = RippleCarryAdder(width=8)
    target_sd = adder.base_delay_ns + 2.0 * adder.gate_delay_ns * 3
    csg = synthesize_adder_csg(adder, target_sd)
    checked = verify_csg_safety(csg, adder.delay_ns, csg.short_delay_ns, 8)
    print(
        f"\nadder CSG: chains <= {csg.max_chain} are fast "
        f"(SD={csg.short_delay_ns:.2f}ns, LD={adder.worst_delay_ns:.2f}ns); "
        f"safety verified on {checked} pairs"
    )

    mult = ArrayMultiplier(width=8)
    sd = mult.base_delay_ns + 0.6 * (mult.worst_delay_ns - mult.base_delay_ns)
    mcsg = synthesize_multiplier_csg(mult, sd)
    checked = verify_csg_safety(mcsg, mult.delay_ns, mcsg.short_delay_ns, 8)
    print(
        f"multiplier CSG: <= {mcsg.max_rows} active rows are fast "
        f"(SD={mcsg.short_delay_ns:.2f}ns, LD={mult.worst_delay_ns:.2f}ns); "
        f"safety verified on {checked} pairs"
    )
    return mcsg


def close_the_loop() -> None:
    mult = ArrayMultiplier(width=8)
    sd = mult.base_delay_ns + 0.6 * (mult.worst_delay_ns - mult.base_delay_ns)
    mcsg = synthesize_multiplier_csg(mult, sd)
    rows = []
    result = synthesize(fir5(), "mul:2T,add:1")
    tau_ops = result.bound.telescopic_ops()
    for dist in (uniform_distribution(8), small_value_distribution(8, 4)):
        p = measure_fast_fraction(mcsg, dist)
        comparison = result.latency_comparison(ps=(round(p, 3),))
        rows.append(
            [
                dist.name,
                f"{p:.3f}",
                f"{comparison.dist.expected_ns(round(p, 3)):.1f} ns",
                f"{comparison.sync.expected_ns(round(p, 3)):.1f} ns",
            ]
        )
    print("\nmeasured P -> system-level expected latency (5-tap FIR):")
    print(
        render_table(
            ["operand distribution", "P", "DIST", "CENT-SYNC"], rows
        )
    )


def main() -> None:
    adder_settle_times()
    synthesize_csgs()
    close_the_loop()


if __name__ == "__main__":
    main()
