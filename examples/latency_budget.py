#!/usr/bin/env python3
"""Extension example: designing against a latency budget, not a mean.

Table 2 compares expected latencies; a real-time designer asks a
different question: "with the deadline at N cycles, how often do I make
it?"  This script computes the *exact* latency distribution of both
controller schemes (exhaustive Bernoulli enumeration), verifies that the
distributed unit first-order stochastically dominates the synchronized
one, and sizes the P99 budget — then cross-checks the analytic PMF
against a Monte-Carlo of the cycle-accurate simulator.

Run:  python examples/latency_budget.py
"""

from collections import Counter

from repro.analysis import compare_distributions, render_table
from repro.experiments import synthesize_benchmark
from repro.resources import BernoulliCompletion
from repro.sim import simulate


def main() -> None:
    result = synthesize_benchmark("fir5", scheduler="exact")
    p = 0.7
    comparison = compare_distributions(result.bound, result.taubm, p=p)
    print(comparison.render())

    assert comparison.stochastic_dominance_holds()
    print("\nfirst-order stochastic dominance: DIST >= CENT-SYNC  [verified]")

    rows = []
    for q in (0.5, 0.9, 0.99):
        rows.append(
            [
                f"P{int(q * 100)}",
                f"{comparison.dist.quantile(q)} cycles",
                f"{comparison.sync.quantile(q)} cycles",
            ]
        )
    print()
    print(render_table(["budget", "DIST", "CENT-SYNC"], rows))

    # Monte-Carlo cross-check of the analytic PMF.
    trials = 4000
    counts: Counter[int] = Counter()
    system = result.distributed_system()
    for seed in range(trials):
        counts[simulate(
            system, result.bound, BernoulliCompletion(p), seed=seed
        ).cycles] += 1
    print(f"\nMonte-Carlo ({trials} runs) vs exact PMF:")
    for cycles, probability in comparison.dist.pmf:
        observed = counts.get(cycles, 0) / trials
        print(
            f"  {cycles} cycles: exact {probability:.4f}, "
            f"observed {observed:.4f}"
        )
        assert abs(observed - probability) < 0.03


if __name__ == "__main__":
    main()
