#!/usr/bin/env python3
"""Extension example: completion models beyond i.i.d. Bernoulli.

The paper models every telescopic unit with one shared fast
probability P.  Real datapaths are messier: multipliers may be far
more telescopic than adders (their carry-save trees saturate early),
and operand streams are temporally correlated — a loop feeding similar
magnitudes back produces *streaks* of fast completions, not coin
flips.  This script runs one design under all three completion-spec
kinds, shows that the batch engine's statistics stay byte-identical to
the scalar simulator under every one of them, and demonstrates where
the exact analytical engine correctly refuses (temporal correlation
has no per-assignment product measure).

Run:  python examples/completion_models.py
"""

from repro.errors import ExactAnalysisError
from repro.experiments import synthesize_benchmark
from repro.resources import as_completion_spec
from repro.sim.runner import monte_carlo_latency


def main() -> None:
    result = synthesize_benchmark("fig3")
    specs = [
        # the paper's model: one shared i.i.d. fast probability
        as_completion_spec(0.7),
        # heterogeneous: telescopic multipliers hit the fast group 90%
        # of the time, everything else falls back to the '*' default
        as_completion_spec("per-unit:mul=0.9,*=0.5"),
        # temporally correlated: sticky fast/slow streaks per unit,
        # stationary fast share still exactly 0.7
        as_completion_spec("markov:0.7,0.5"),
    ]
    trials = 2000

    print(f"{result.dfg.name}: mean DIST latency over {trials} trials\n")
    for spec in specs:
        system = result.distributed_system()
        scalar = monte_carlo_latency(
            system, result.bound, p=spec, trials=trials, engine="scalar"
        )
        batch = monte_carlo_latency(
            system, result.bound, p=spec, trials=trials, engine="batch"
        )
        assert batch == scalar, "batch engine must match scalar exactly"

        try:
            exact = f"{result.exact_latency_analysis(spec).expectation:.4f}"
        except ExactAnalysisError as error:
            exact = f"n/a ({error.context()['reason']})"
        print(
            f"  {spec.encode():<24} mc {scalar.mean:.4f} "
            f"(p95 {scalar.p95:.0f})   exact {exact}"
        )

    print(
        "\nbatch == scalar byte-identically under every spec  [verified]"
        "\nthe Markov row shows higher variance at the same mean fast"
        "\nshare — correlation is what the i.i.d. analysis cannot see."
    )


if __name__ == "__main__":
    main()
