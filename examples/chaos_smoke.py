"""CI chaos drill: crashes and corruption must never change results.

Runs a small fault campaign twice — once clean, once with deterministic
chaos injected (a worker killed mid-campaign, a trial failing once) and
a checkpoint journal underneath — and demands the chaotic run produce
byte-identical JSON while recording every recovery it performed.  Then
corrupts an on-disk simulation-cache entry and demands the cache
quarantine and recompute instead of raising.

Exit code 0 means the resilience layer held; any divergence, silent
recovery, or exception fails the drill.

Run with:  PYTHONPATH=src python examples/chaos_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.api import synthesize
from repro.benchmarks.registry import benchmark
from repro.faults.campaign import run_campaign
from repro.perf.cache import SimulationCache, simulate_cached
from repro.resources.completion import BernoulliCompletion
from repro.runtime import (
    ChaosConfig,
    RunPolicy,
    RunReport,
    active_report,
)


def main() -> int:
    entry = benchmark("fig2")
    result = synthesize(entry.dfg(), entry.allocation())

    clean = run_campaign(result, trials=6, benchmark=entry.name).to_json()

    report = RunReport()
    with tempfile.TemporaryDirectory() as scratch:
        sentinels = os.path.join(scratch, "sentinels")
        os.makedirs(sentinels)
        policy = RunPolicy(
            backoff_s=0.0,
            chaos=ChaosConfig(
                crash_items=(2,),
                fail_items=(7,),
                sentinel_dir=sentinels,
            ),
        )
        with active_report(report):
            chaotic = run_campaign(
                result,
                trials=6,
                benchmark=entry.name,
                workers=2,
                policy=policy,
                checkpoint=os.path.join(scratch, "ck"),
            ).to_json()
        assert chaotic == clean, "chaotic campaign diverged from clean run"
        assert report.recoveries > 0, "chaos injected but nothing recovered"
        assert report.count("worker-crash") > 0, "worker kill went unseen"

        cache_dir = os.path.join(scratch, "cache")
        cache = SimulationCache(cache_dir)
        system = result.distributed_system()
        model = BernoulliCompletion(0.7)
        first = simulate_cached(
            system, result.bound, model, cache=cache, seed=0
        )
        key = cache.key(
            system, result.bound, model, seed=0, iterations=1
        )
        with open(os.path.join(cache_dir, f"{key}.json"), "w") as handle:
            handle.write('{"truncated')  # torn mid-write
        healed = SimulationCache(cache_dir)
        with active_report(report):
            again = simulate_cached(
                system, result.bound, model, cache=healed, seed=0
            )
        assert again == first, "healed cache returned a different result"
        assert healed.quarantined == 1, "corrupt entry was not quarantined"
        assert report.count("cache-quarantine") == 1

    print(report.render())
    print("chaos smoke passed: results byte-identical under "
          f"{report.recoveries} recovery event(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
