#!/usr/bin/env python3
"""Fault campaign: attack a design and measure what the monitors catch.

Synthesizes the paper's differential-equation benchmark, injects two
hand-picked faults to show the failure modes up close, then sweeps a
seeded campaign over both controller styles and prints the coverage
report (detected / tolerated / silent per fault kind).

Run:  python examples/fault_campaign.py
"""

from repro.api import synthesize
from repro.benchmarks import benchmark
from repro.errors import DeadlockError, ProtocolError
from repro.faults import DroppedPulseFault, StuckCompletionFault, inject
from repro.resources import AllFastCompletion, AllSlowCompletion
from repro.sim import simulate


def main() -> None:
    entry = benchmark("diffeq")
    result = synthesize(entry.dfg(), entry.allocation())

    # 1. A lying CSG: the completion wire says "done" while the sampled
    #    telescope level still needs cycles.  The timing monitor fires.
    unit = result.bound.used_units()[0].name
    faulty = inject(
        result.distributed_system(),
        StuckCompletionFault(unit=unit, value=True),
    )
    try:
        simulate(faulty, result.bound, AllSlowCompletion())
    except ProtocolError as error:
        print(f"stuck-at-1 on C_{unit} -> {error.kind} monitor:")
        print(f"  {error}")

    # 2. A lost handshake pulse on a feedback graph: the consumer starves
    #    and the quiescence watchdog proves the system stuck, naming the
    #    starved completion net.
    fig2 = synthesize(benchmark("fig2").dfg(), benchmark("fig2").allocation())
    edges = fig2.distributed_system().dependence_edges()
    victim = sorted({producer for (_, _, producer) in edges})[0]
    faulty = inject(
        fig2.distributed_system(), DroppedPulseFault(producer_op=victim)
    )
    try:
        simulate(faulty, fig2.bound, AllFastCompletion())
    except DeadlockError as error:
        print(f"\ndropped pulse on CC_{victim} -> deadlock watchdog:")
        print(f"  {error}")

    # 3. The full sweep: seeded faults against the distributed controllers
    #    and the synchronized centralized baseline.  Same seed, same JSON.
    report = result.fault_campaign(trials=40, seed=0)
    print()
    print(report.render())
    report.check_no_escapes()
    print("\nno silent corruption escaped the monitors.")


if __name__ == "__main__":
    main()
