#!/usr/bin/env python3
"""Domain example: synthesizing an FIR filter datapath with TAU multipliers.

The motivating workload of the paper's evaluation: a multiply-heavy DSP
kernel where telescopic multipliers win real cycles whenever sample data
keeps the partial products short.  This script:

1. builds FIR filters of increasing order,
2. synthesizes each under the paper's allocation (2 TAU multipliers,
   1 adder, SD=15ns / LD=20ns),
3. compares distributed vs synchronized latency across P,
4. streams actual samples through the simulated datapath and checks the
   filter output against direct evaluation.

Run:  python examples/fir_filter_synthesis.py
"""

from repro import synthesize
from repro.analysis import render_table
from repro.benchmarks import fir_filter
from repro.resources import BernoulliCompletion
from repro.sim import simulate


def latency_study() -> None:
    rows = []
    for taps in (3, 4, 5, 6, 8):
        result = synthesize(fir_filter(taps), "mul:2T,add:1")
        comparison = result.latency_comparison(ps=(0.9, 0.5))
        rows.append(
            [
                f"{taps}-tap FIR",
                comparison.sync.bracket_ns(),
                comparison.dist.bracket_ns(),
                comparison.enhancement_column(),
            ]
        )
    print(
        render_table(
            ["filter", "CENT-SYNC (ns)", "DIST (ns)", "enhancement"], rows
        )
    )


def stream_samples() -> None:
    taps = 5
    result = synthesize(fir_filter(taps), "mul:2T,add:1")
    # One iteration filters one window of samples; stream three windows
    # back-to-back through the pipelined distributed controllers.
    windows = [
        [10, 20, 30, 40, 50],
        [11, 21, 31, 41, 51],
        [12, 22, 32, 42, 52],
    ]
    inputs = {
        f"x{i}": [w[i] for w in windows] for i in range(taps)
    }
    sim = simulate(
        result.distributed_system(),
        result.bound,
        BernoulliCompletion(0.8),
        iterations=len(windows),
        seed=1,
        inputs=inputs,
    )
    print()
    print(f"{taps}-tap FIR, {len(windows)} windows:")
    for k in range(len(windows)):
        y = sim.datapath.output_values(k)["y"]
        reference = result.dfg.evaluate(
            {f"x{i}": windows[k][i] for i in range(taps)}
        )["y"]
        assert y == reference
        print(f"  window {k}: y = {y} (checked against reference)")
    print(
        f"  latency {sim.cycles} cycles; steady-state throughput "
        f"{sim.throughput_cycles():.2f} cycles/window"
    )


def main() -> None:
    latency_study()
    stream_samples()


if __name__ == "__main__":
    main()
