#!/usr/bin/env python3
"""Quickstart: synthesize distributed controllers for a small DFG.

Builds a tiny dataflow graph, allocates two telescopic multipliers and one
adder, runs the full flow (order-based scheduling, binding, Algorithm-1
controller derivation, integration), simulates it cycle-accurately with a
value-checking datapath, and prints every artifact along the way.

Run:  python examples/quickstart.py
"""

from repro import DFGBuilder, synthesize
from repro.resources import BernoulliCompletion
from repro.sim import simulate


def main() -> None:
    # 1. Describe the behaviour: y = (a*b) * (c*d) + (a*b)
    b = DFGBuilder("quickstart")
    a, bb, c, d = b.inputs("a", "b", "c", "d")
    p1 = b.mul("p1", a, bb)
    p2 = b.mul("p2", c, d)
    p3 = b.mul("p3", p1, p2)
    total = b.add("sum", p3, p1)
    b.output("y", total)
    dfg = b.build()
    print(dfg.summary())

    # 2. Synthesize under 2 telescopic multipliers + 1 adder.
    result = synthesize(dfg, "mul:2T,add:1")
    print()
    print(result.schedule.describe())
    print()
    print(result.bound.describe())
    print()
    print(result.distributed.describe())

    # 3. Simulate: 70% of operand pairs are "fast" (finish within SD).
    sim = simulate(
        result.distributed_system(),
        result.bound,
        BernoulliCompletion(0.7),
        seed=42,
        inputs={"a": 3, "b": 4, "c": 5, "d": 6},
        record_trace=True,
    )
    print()
    print(f"latency: {sim.cycles} cycles = {sim.latency_ns:.0f} ns")
    print(f"outputs: {sim.datapath.output_values()}")
    print()
    print(sim.trace.render())

    # 4. Compare against the synchronized centralized controller.
    comparison = result.latency_comparison()
    print()
    print(f"CENT-SYNC latency: {comparison.sync.bracket_ns()}")
    print(f"DIST      latency: {comparison.dist.bracket_ns()}")
    print(f"enhancement      : {comparison.enhancement_column()}")


if __name__ == "__main__":
    main()
