"""Bench X9 — end-to-end physical run: the CSG closes the loop.

Extension grounding the whole stack: a completion-signal generator is
synthesized for a bit-level array multiplier and verified safe; real
operand streams flow through the value-computing datapath; the CSG — not
a Bernoulli coin — decides fast/slow per execution.  The observed mean
latency is then compared against the analytic Bernoulli(P) prediction at
the *measured* fast fraction.  Expected shape: P falls as operands widen
(small4 ≈ 1.0 → uniform ≈ 0.7) and the prediction tracks the simulation
to within a few percent (residual gap: per-op outcomes are correlated
through shared operands, which the i.i.d. model ignores).
"""

from conftest import run_once

from repro.experiments import run_physical


def _run():
    return [
        run_physical("diffeq", trials=80, small_bits=bits)
        for bits in (4, 6, None)
    ]


def test_physical_loop(benchmark):
    rows = run_once(benchmark, _run)
    print()
    for row in rows:
        print(row.render())
    measured = [row.measured_p for row in rows]
    assert measured == sorted(measured, reverse=True)  # wider -> slower
    for row in rows:
        assert (
            abs(row.simulated_mean_cycles - row.predicted_mean_cycles)
            < 0.35
        )
