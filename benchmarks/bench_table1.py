"""Bench T1 — regenerate Table 1 (controller area on Diff.).

Paper reference (Table 1)::

    FSM            I/O    States  FFs  Area(Com./Seq.)
    CENT-FSM       4/22   28      10   1227 / 110
    CENT-SYNC-FSM  4/22   10      6    342 / 66
    DIST-FSM       4/22   22      20   518 / 220
    D-FSM-M1 ...   (per-unit rows)

Expected reproduced shape: CENT-SYNC < DIST in area; CENT combinationally
largest by a wide margin; DIST pays a few× CENT-SYNC sequential area
(replicated state registers + completion latches).  Absolute units differ
(two-level literal model vs the authors' synthesis flow).
"""

from conftest import run_once

from repro.experiments import run_table1


def test_table1_area_analysis(benchmark):
    result = run_once(benchmark, run_table1, "diffeq")
    print()
    print(result.render())
    result.check_shape()
    # Quantitative shape: CENT at least 5x DIST combinationally, and DIST
    # within ~2-6x of CENT-SYNC in total area (paper: ~3x).
    assert result.cent.combinational_area > 5 * result.dist.combinational_area
    ratio = result.dist.total_area / result.cent_sync.total_area
    assert 1.0 < ratio < 8.0
