"""Bench F2 — the TAUBM derivation chain (paper Fig. 2).

Original DFG -> TAUBM DFG (split steps) -> TAUBM FSM; the paper's example
FSM has six states (S0, S0', S1, S2, S2', S3) and a 4..6-cycle latency
range depending on the completion signals.
"""

from conftest import run_once

from repro.experiments import run_fig2


def test_fig2_taubm_derivation(benchmark):
    result = run_once(benchmark, run_fig2)
    print()
    print(result.render())
    assert result.min_cycles == 4
    assert result.max_cycles == 6
    assert result.fsm.num_states == 6
