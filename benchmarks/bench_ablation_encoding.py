"""Bench X10 — state-encoding styles for the distributed controllers.

Extension: the Table-1 areas depend on the state encoding.  Binary packs
states into ceil(log2 n) flip-flops, gray often shaves decode literals on
the counter-like Algorithm-1 chains, one-hot trades many more flip-flops
for simple per-state terms.  The qualitative Table-1 ordering
(CENT-SYNC < DIST << CENT) is encoding-independent; this bench quantifies
the per-style costs of the DIST controllers.
"""

from conftest import run_once

from repro.experiments import run_encoding_ablation


def test_encoding_ablation(benchmark):
    result = run_once(benchmark, run_encoding_ablation, "diffeq")
    print()
    print(result.render())
    rows = {style: (comb, seq, ffs) for style, comb, seq, ffs in result.rows}
    assert rows["one-hot"][2] > rows["binary"][2]  # many more FFs
    assert rows["gray"][2] == rows["binary"][2]  # same register width
