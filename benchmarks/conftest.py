"""Benchmark-harness configuration.

Every bench regenerates one paper table/figure (or an ablation), asserts
its qualitative shape, and reports the wall time of the regeneration via
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated tables/series inline; EXPERIMENTS.md records
a snapshot of this output next to the paper's numbers.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a driver with a single measured round.

    Experiment drivers are deterministic and some are expensive (exact
    QM minimization of the product FSM); one round keeps the harness
    usable while still producing a timing row per experiment.
    """
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
