"""Bench X1 — P sweep: when does telescoping pay off at all?

Extension beyond Table 2: expected latency vs the fast-operand probability
P for the distributed unit, the synchronized unit and the conventional
fixed-clock design.  Expected shape: both TAU designs approach the
best case as P -> 1; below some crossover P the fixed design (shorter
total cycle budget at the long clock) wins; DIST dominates SYNC
throughout.
"""

from conftest import run_once

from repro.experiments import run_psweep


def test_psweep_crossover(benchmark):
    result = run_once(
        benchmark, run_psweep, "fir5", (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
    )
    print()
    print(result.render())
    assert list(result.dist_ns) == sorted(result.dist_ns, reverse=True)
    for d, s in zip(result.dist_ns, result.sync_ns):
        assert d <= s + 1e-9
    # At P=1 the TAU design beats the fixed design; at P=0.1 it loses.
    assert result.dist_ns[-1] < result.fixed_ns
    assert result.dist_ns[0] > result.fixed_ns
