"""Bench F1 — the telescopic unit itself (paper Fig. 1).

Synthesizes completion-signal generators for a bit-level adder and array
multiplier, verifies safety exhaustively, and measures the fast-group
probability P per operand distribution (the paper's Fig. 1 plus the
empirical grounding of its P parameter).
"""

from conftest import run_once

from repro.experiments import run_fig1_adder, run_fig1_multiplier


def test_fig1_telescopic_multiplier(benchmark):
    result = run_once(benchmark, run_fig1_multiplier, 8)
    print()
    print(result.render())
    assert result.pairs_verified == 65536
    assert result.short_delay_ns < result.long_delay_ns
    assert result.achieved_p["small-operand"] >= result.achieved_p["uniform"]


def test_fig1_telescopic_adder(benchmark):
    result = run_once(benchmark, run_fig1_adder, 8)
    print()
    print(result.render())
    assert result.pairs_verified == 65536
    assert 0.0 < result.achieved_p["uniform"] < 1.0
