"""Bench F6 — the Algorithm-1 controller FSM (paper Fig. 6).

Derives the arithmetic-unit controller for the first TAU multiplier of the
Fig. 3 design and reports its state/transition structure and area.  The
paper's machine has S/S'/R states per bound operation and ten numbered
logical transitions for a two-op chain with one guarded successor.
"""

from conftest import run_once

from repro.experiments import run_fig6


def test_fig6_unit_controller(benchmark):
    result = run_once(benchmark, run_fig6)
    print()
    print(result.render())
    fsm = result.fsm
    assert any(s.startswith("S_") for s in fsm.states)
    assert any(s.startswith("SX_") for s in fsm.states)
    fsm.validate()
