"""Bench X8 — analytic throughput bound vs simulated pipeline.

Extension: the pipelined distributed control unit is a timed marked graph
whose steady-state iteration period equals its maximum cycle ratio λ*
(durations over initial tokens on each loop).  The bench computes λ*
exactly (parametric Bellman–Ford), names the critical cycle — the
resource chain or dependence loop that caps the pipeline — and shows the
cycle-accurate simulator achieving it.
"""

from conftest import run_once

from repro.analysis import pipelined_throughput_bound
from repro.experiments import synthesize_benchmark
from repro.resources import AllFastCompletion, AllSlowCompletion
from repro.sim import pipelined_throughput


def _run():
    rows = []
    for name in ("fir3", "fir5", "fig3", "diffeq"):
        result = synthesize_benchmark(name)
        for model, fast in (
            (AllFastCompletion(), True),
            (AllSlowCompletion(), False),
        ):
            bound = pipelined_throughput_bound(result.bound, fast=fast)
            __, simulated = pipelined_throughput(
                result.distributed_system(),
                result.bound,
                model,
                iterations=12,
            )
            rows.append((name, fast, bound, simulated))
    return rows


def test_throughput_bound(benchmark):
    rows = run_once(benchmark, _run)
    print()
    for name, fast, bound, simulated in rows:
        mode = "fast" if fast else "slow"
        print(
            f"  {name:8s} {mode}: λ* = {bound.cycles_per_iteration} "
            f"cycles/iter, simulated {simulated:.3f} "
            f"(cycle: {' -> '.join(bound.critical_cycle)})"
        )
        assert simulated >= float(bound.cycles_per_iteration) - 1e-9
    achieved = sum(
        1
        for _, _, bound, simulated in rows
        if abs(simulated - float(bound.cycles_per_iteration)) < 1e-6
    )
    assert achieved >= len(rows) - 1  # the bound is tight almost everywhere
