"""Core-engine performance benchmarks (multi-round timing).

Unlike the experiment benches (one measured regeneration each), these
measure the hot paths of the library itself with proper repetition:
end-to-end synthesis, cycle-accurate simulation, exact expectation and
logic minimization — the numbers a downstream user cares about when
scaling to bigger dataflow graphs.
"""

from repro.analysis.latency import DistLatencyEvaluator, exact_expected_latency
from repro.api import synthesize
from repro.benchmarks import ar_lattice, differential_equation, fir_filter
from repro.fsm.area import fsm_area
from repro.resources import BernoulliCompletion
from repro.sim import simulate


def test_synthesize_diffeq(benchmark):
    dfg = differential_equation()
    result = benchmark(synthesize, dfg, "mul:2T,add:1,sub:1")
    assert len(result.distributed.unit_names) == 4


def test_synthesize_large_fir(benchmark):
    dfg = fir_filter(10)
    result = benchmark(synthesize, dfg, "mul:3T,add:2")
    assert result.schedule.num_steps >= 4


def test_simulate_ar_lattice(benchmark):
    result = synthesize(ar_lattice(), "mul:4T,add:2")
    system = result.distributed_system()

    def run():
        return simulate(
            system, result.bound, BernoulliCompletion(0.7), seed=1
        )

    sim = benchmark(run)
    assert sim.cycles >= result.latency_comparison(ps=()).dist.best_cycles


def test_exact_expectation_ar_lattice(benchmark):
    """65536-assignment exhaustive expectation (Table 2's heaviest cell)."""
    result = synthesize(ar_lattice(), "mul:4T,add:2")
    evaluator = DistLatencyEvaluator(result.bound)
    tau_ops = result.bound.telescopic_ops()

    value = benchmark(exact_expected_latency, evaluator, tau_ops, 0.7)
    assert value > 0


def test_fsm_area_minimization(benchmark):
    result = synthesize(differential_equation(), "mul:2T,add:1,sub:1")
    fsm = result.distributed.controller("TM2")
    report = benchmark(fsm_area, fsm)
    assert report.method == "exact"
