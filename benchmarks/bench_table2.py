"""Bench T2 — regenerate Table 2 (latency comparison, all six rows).

Paper reference (Table 2, SD=15ns LD=20ns FD=15ns, P in {0.9, 0.7, 0.5})::

    DFG         Res.        LT_TAU                  LT_DIST                Enh.
    3rd FIR     *:2,+:1     [45][49.4,57.1,63.7][75]  [45][49.2,56.2,61.8][75]  [0.4,1.6,2.9]%
    5th FIR     *:2,+:1     [75][81.9,92.5,99.4][105] [75][77.9,82.7,86.3][90]  [4.9,10.6,13.2]%
    2nd IIR     *:2,+:1     [75][80.7,90.3,97.5][105] [75][77.9,82.7,86.3][90]  [3.5,8.4,11.5]%
    3rd IIR     *:3,+:2     [75][83.1,94.7,101.3][135][75][80.6,89.3,95.9][135] [3.0,5.7,5.3]%
    Diff.       *:2,+:1,-:1 [60][68.6,82.9,93.8][105] [60][68.1,80.7,90.6][105] [0.7,2.7,3.4]%
    AR-lattice  *:4,+:2     [120][140.6,...][180]     [120][134.2,...][165]     [4.6,8.9,9.1]%

Expected reproduced shape: DIST <= TAUBM-sync on every entry; enhancement
grows as P drops; FIR-3 and Diff. improve least (~0-3%), the concurrent
benchmarks (5th FIR / IIR / AR-lattice) improve most (5-15%); best cases
equal (concurrency only helps when telescoping stalls differ).
"""

from conftest import run_once

from repro.experiments import run_table2


def test_table2_latency_comparison(benchmark):
    result = run_once(benchmark, run_table2)
    print()
    print(result.render())
    result.check_shape()
    rows = {c.benchmark: c for c in result.comparisons}
    # The paper's headline: the little-concurrency rows improve least.
    assert rows["3rd FIR"].enhancement(0.5) < rows["5th FIR"].enhancement(0.5)
    assert rows["Diff."].enhancement(0.5) < rows["2nd IIR"].enhancement(0.5)
    # Every row's enhancement grows as P drops from 0.9 to 0.5.
    for comparison in result.comparisons:
        assert comparison.enhancement(0.5) >= comparison.enhancement(0.9) - 1e-9
