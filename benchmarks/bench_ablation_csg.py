"""Bench X5 — what P does a real CSG achieve?

Extension grounding the paper's Bernoulli(P) parameter: synthesize a safe
completion-signal generator for an 8-bit array multiplier and measure the
fast-group fraction on several operand distributions.  Expected shape:
uniform operands give a moderate P; DSP-like small/sparse operands push P
toward 1 — the regime where Table 2's 0.9 column applies.
"""

from conftest import run_once

from repro.experiments import run_csg_sweep


def test_csg_achieved_p(benchmark):
    result = run_once(benchmark, run_csg_sweep, 8)
    print()
    print(result.render())
    rows = dict(result.rows)
    assert rows["small4"] >= rows["uniform"]
    assert rows["sparse2"] >= rows["uniform"]
