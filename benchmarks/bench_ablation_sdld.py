"""Bench X2 — SD/LD ratio ablation.

Extension: sweep the short delay (= system clock) for a fixed long delay.
An aggressive SD buys cycles when operands are fast, but every slow
operand costs a full extra SD cycle; the sweep locates the SD below which
the telescopic design beats the fixed LD-clock design at a given P.
"""

from conftest import run_once

from repro.experiments import run_sdld_sweep


def test_sdld_ratio_sweep(benchmark):
    result = run_once(
        benchmark,
        run_sdld_sweep,
        "fir5",
        0.7,
        20.0,
        (11.0, 13.0, 15.0, 17.0, 19.0),
    )
    print()
    print(result.render())
    # Latency in ns grows with SD (same cycle counts, longer clock).
    assert list(result.dist_ns) == sorted(result.dist_ns)
    # Aggressive telescoping (SD=11) must beat the fixed design.
    assert result.dist_ns[0] < result.fixed_ns
