"""Bench F7 — the distributed control unit and its wiring (paper Fig. 7).

Integrates the per-unit controllers of the Fig. 3 design, wires the
completion signals, and applies the signal optimization the paper
describes ("C_CO(0) is removed since any other controllers do not receive
it") — here the unconsumed completion signals are pruned and reported.
"""

from conftest import run_once

from repro.experiments import run_fig7


def test_fig7_distributed_integration(benchmark):
    result = run_once(benchmark, run_fig7)
    print()
    print(result.render())
    assert result.live_wires >= 4
    assert len(result.pruned_signals) >= 2
