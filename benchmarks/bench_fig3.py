"""Bench F3 — order-based scheduling with schedule arcs (paper Fig. 3).

The paper's example: the multiplication dependency graph needs three
cliques (three TAU multipliers) without arcs; with two allocated
multipliers (and two adders) schedule arcs are inserted (the paper draws
four) and every operation lands in a per-unit execution chain.
"""

from conftest import run_once

from repro.experiments import run_fig3


def test_fig3_order_based_scheduling(benchmark):
    result = run_once(benchmark, run_fig3)
    print()
    print(result.render())
    assert result.min_multipliers_needed == 3
    assert 3 <= result.num_schedule_arcs <= 4
