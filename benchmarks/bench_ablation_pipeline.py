"""Bench X4 — overlapped-iteration throughput.

Extension: the Algorithm-1 controllers wrap around (S_{n+1} = S_0), so a
unit whose chain finished can start the next dataflow iteration while
other units still finish the current one.  The synchronized centralized
controller cannot overlap at all.  Reported: steady-state cycles per
iteration for both schemes plus the token-overrun count (where a real
design would need deeper buffering).
"""

from conftest import run_once

from repro.experiments import run_pipeline


def test_pipelined_throughput(benchmark):
    result = run_once(benchmark, run_pipeline, "fir5", 0.7, 8)
    print()
    print(result.render())
    assert result.dist_throughput_cycles <= result.sync_throughput_cycles
    # Overlap: steady-state cost per iteration below the one-shot latency.
    assert result.dist_throughput_cycles < result.dist_latency_cycles
