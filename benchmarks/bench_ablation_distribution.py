"""Bench X7 — exact latency distributions and stochastic dominance.

Extension: Table 2 compares expectations; real-time budgets care about
tails.  This bench computes the *exact* latency PMF of both controller
schemes (exhaustive Bernoulli enumeration) and verifies first-order
stochastic dominance — at every cycle budget the distributed unit meets
the deadline with at least the synchronized unit's probability — plus the
P99 budget gap.
"""

from conftest import run_once

from repro.analysis import compare_distributions
from repro.experiments import synthesize_benchmark


def _run(benchmark_name: str, p: float):
    result = synthesize_benchmark(benchmark_name, scheduler="exact")
    return compare_distributions(result.bound, result.taubm, p=p)


def test_latency_distribution_dominance(benchmark):
    comparison = run_once(benchmark, _run, "fir5", 0.7)
    print()
    print(comparison.render())
    assert comparison.stochastic_dominance_holds()
    assert comparison.dist.quantile(0.99) <= comparison.sync.quantile(0.99)
    assert comparison.dist.mean() <= comparison.sync.mean()
