"""Bench F4 — state explosion of the centralized FSM (paper Fig. 4).

One time step with n independent TAU multiplications: the centralized
non-synchronized machine (Fig. 4(a)) needs states for every combination of
per-unit progress (2**n branching), while the synchronized machine
(Fig. 4(b)) keeps one extension state regardless of n.
"""

from conftest import run_once

from repro.experiments import run_fig4


def test_fig4_state_explosion(benchmark):
    result = run_once(benchmark, run_fig4, (1, 2, 3, 4))
    print()
    print(result.render())
    growths = [
        b - a for a, b in zip(result.cent_states, result.cent_states[1:])
    ]
    assert all(g2 > g1 for g1, g2 in zip(growths, growths[1:]))
    assert max(result.sync_states) - min(result.sync_states) <= 3
