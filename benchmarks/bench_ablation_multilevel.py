"""Bench X6 — multi-level VCAUs (the paper's §6 generalization).

The paper claims the method "can be applied to other types of VCAUs
without special modification"; this bench demonstrates it: three-level
telescopic multipliers (15/30/45 ns → 1/2/3 cycles) drive the same flow —
Algorithm 1 chains extension states, the synchronized baseline extends
steps until every unit is done — and the distributed advantage persists.
"""

from conftest import run_once

from repro.experiments import run_multilevel


def test_multilevel_vcau(benchmark):
    result = run_once(benchmark, run_multilevel, "fir5")
    print()
    print(result.render())
    assert result.dist_expected_cycles <= result.sync_expected_cycles
    # The cycle-accurate simulator tracks the exact expectation closely.
    assert (
        abs(result.dist_simulated_mean_cycles - result.dist_expected_cycles)
        < 0.25
    )
    assert result.max_extension_states > 2  # chained SX states exist
