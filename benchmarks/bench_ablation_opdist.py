"""Bench X3 — controller granularity: per-operation vs per-unit.

Extension reproducing the paper's §1 argument against [3]: per-operation
controllers preserve concurrency exactly like the distributed per-unit
scheme (equal latency, checked in the test suite) but replicate state
registers and completion latches per *operation*, so sequential area grows
with the operation count instead of the unit count.
"""

from conftest import run_once

from repro.experiments import run_opdist


def test_opdist_granularity(benchmark):
    result = run_once(benchmark, run_opdist, "diffeq")
    print()
    print(result.render())
    assert result.num_ops > result.num_units
    assert result.opdist_seq > result.dist_seq
    assert result.opdist_latches > result.dist_latches
