"""Bench X12 — control switching activity (dynamic-energy proxy).

Extension: the telescopic-unit line of work is low-power research, so
the controller comparison should show the energy side too.  Counting
control-signal toggles per steady-state iteration (the first-order
dynamic-energy proxy): the distributed unit toggles *more* control
signals than the synchronized one — completion wires and independent
operand re-fetches are not free — but finishes each iteration in fewer
cycles.  The honest summary: DIST trades control energy (and area) for
time, exactly the overhead §5 of the paper concedes.
"""

from conftest import run_once

from repro.experiments import run_activity


def test_switching_activity(benchmark):
    results = run_once(
        benchmark, lambda: [run_activity(n) for n in ("diffeq", "fir5")]
    )
    print()
    for result in results:
        print(result.render())
    for result in results:
        # DIST is faster per iteration...
        assert (
            result.dist_cycles_per_iteration
            < result.sync_cycles_per_iteration
        )
        # ... and pays for it in control switching.
        assert (
            result.dist_toggles_per_iteration
            >= result.sync_toggles_per_iteration
        )
