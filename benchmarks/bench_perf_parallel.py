"""Benchmarks for the parallel execution engine (:mod:`repro.perf`).

Times the Monte-Carlo latency sweep serial vs. through the process pool,
and the content-addressed cache on a warm hit.  On multi-core machines
the parallel rows should beat serial roughly linearly in worker count;
on a single core they document the pool's overhead instead.  Either way
the statistics are asserted byte-identical — the engine's contract.
"""

from repro.api import synthesize
from repro.benchmarks import ar_lattice
from repro.perf import SimulationCache
from repro.sim.runner import monte_carlo_latency

TRIALS = 200


def _design():
    return synthesize(ar_lattice(), "mul:4T,add:2")


def test_monte_carlo_serial(benchmark):
    result = _design()
    system = result.distributed_system()
    stats = benchmark(
        monte_carlo_latency, system, result.bound,
        p=0.7, trials=TRIALS, seed=0, workers=1,
    )
    assert stats.trials == TRIALS


def test_monte_carlo_parallel_4_workers(benchmark):
    result = _design()
    system = result.distributed_system()
    serial = monte_carlo_latency(
        system, result.bound, p=0.7, trials=TRIALS, seed=0, workers=1
    )
    stats = benchmark(
        monte_carlo_latency, system, result.bound,
        p=0.7, trials=TRIALS, seed=0, workers=4,
    )
    assert stats == serial


def test_monte_carlo_cached_warm(benchmark):
    result = _design()
    system = result.distributed_system()
    cache = SimulationCache()
    cold = monte_carlo_latency(
        system, result.bound, p=0.7, trials=TRIALS, seed=0, cache=cache
    )
    warm = benchmark(
        monte_carlo_latency, system, result.bound,
        p=0.7, trials=TRIALS, seed=0, cache=cache,
    )
    assert warm == cold
    assert cache.hits >= TRIALS
