"""Bench X11 — chain-assignment objectives (the §5 wiring lever).

Extension: the paper names "communication signal overhead caused by the
distribution of a control unit" as DIST's cost.  Chain assignment is the
lever: pulling data-dependent operations onto one unit turns completion
wires (and their arrival latches) into implicit chain order.  The bench
compares the latency-first and communication-first assignments; on the
FDCT workload the communication objective removes arrival latches at
zero latency cost, while on the paper's small benchmarks the default
deal is already communication-optimal.
"""

from conftest import run_once

from repro.experiments import run_communication_binding


def test_communication_binding(benchmark):
    results = run_once(
        benchmark,
        lambda: [
            run_communication_binding(name)
            for name in ("diffeq", "ar_lattice", "fdct")
        ],
    )
    print()
    for result in results:
        print(result.render())
    for result in results:
        rows = {obj: (w, l, c, s) for obj, w, l, c, s in result.rows}
        lat = rows["latency"]
        com = rows["communication"]
        assert com[1] <= lat[1]  # never more latches
        assert com[2] >= lat[2] - 1e-9  # may cost latency, tracked
    fdct_rows = {
        obj: (w, l, c, s) for obj, w, l, c, s in results[2].rows
    }
    assert fdct_rows["communication"][1] < fdct_rows["latency"][1]
