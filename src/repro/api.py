"""High-level one-call synthesis API.

:func:`synthesize` runs the complete flow of the paper on one dataflow
graph: order-based scheduling under the allocation, binding, TAUBM
annotation, and derivation of the distributed control unit plus the
centralized comparison FSMs.  The returned :class:`SynthesisResult` exposes
every intermediate artifact so scripts can go straight from a DFG to
simulation, latency analysis, area reports or Verilog.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from .faults.campaign import FaultCampaignReport
    from .perf.cache import SimulationCache, SynthesisCache
    from .resources.spec import CompletionSpec
    from .sim.runner import LatencyStatistics

from .analysis.latency import LatencyComparison, compare_latencies
from .binding.binder import BoundDataflowGraph
from .control.distributed import DistributedControlUnit
from .core.dfg import DataflowGraph
from .errors import SimulationError
from .fsm.model import FSM
from .fsm.product import build_cent_fsm
from .fsm.taubm import derive_cent_sync_fsm
from .resources.allocation import ResourceAllocation
from .scheduling.schedule import OrderSchedule, TaubmSchedule, TimeStepSchedule
from .sim.controllers import ControllerSystem, single_fsm_system


@dataclass(frozen=True)
class SynthesisResult:
    """Every artifact of one end-to-end synthesis run."""

    dfg: DataflowGraph
    allocation: ResourceAllocation
    schedule: TimeStepSchedule
    order: OrderSchedule
    bound: BoundDataflowGraph
    taubm: TaubmSchedule
    distributed: DistributedControlUnit

    @cached_property
    def cent_sync_fsm(self) -> FSM:
        """The synchronized centralized FSM (Fig. 4(b) expansion)."""
        return derive_cent_sync_fsm(self.taubm, self.bound)

    @cached_property
    def cent_fsm(self) -> FSM:
        """The full centralized product FSM (Fig. 4(a) expansion)."""
        return build_cent_fsm(self.bound)

    def distributed_system(self) -> ControllerSystem:
        """Executable distributed controllers for the simulator."""
        return self.distributed.system()

    def cent_sync_system(self) -> ControllerSystem:
        """Executable synchronized centralized controller."""
        return single_fsm_system(self.cent_sync_fsm, key="cent-sync")

    def cent_system(self) -> ControllerSystem:
        """Executable centralized product controller."""
        return single_fsm_system(self.cent_fsm, key="cent")

    def latency_comparison(
        self, ps: Sequence[float] = (0.9, 0.7, 0.5), **kwargs
    ) -> LatencyComparison:
        """The Table-2 latency comparison for this design."""
        return compare_latencies(self.bound, self.taubm, ps=ps, **kwargs)

    def monte_carlo_latency(
        self,
        p: "float | str | CompletionSpec" = 0.7,
        trials: int = 200,
        seed: int = 0,
        style: str = "dist",
        workers: "int | None" = 1,
        cache: "SimulationCache | None" = None,
        policy=None,
        report=None,
        checkpoint=None,
        engine: str = "auto",
    ) -> "LatencyStatistics":
        """Monte-Carlo first-iteration latency of one controller style.

        ``p`` is a bare fast probability (Bernoulli), a spec string such
        as ``per-unit:mul=0.9,*=0.5`` or ``markov:0.7,0.5``, or a
        :class:`~repro.resources.spec.CompletionSpec`.
        ``style`` is ``"dist"``, ``"cent-sync"`` or ``"cent"``;
        ``workers`` fans trials out over the parallel engine
        (:mod:`repro.perf`) with byte-identical statistics, and
        ``cache`` short-circuits previously simulated trials.
        ``policy``/``report`` supervise the pool and ``checkpoint``
        journals completed trials for byte-identical resume — see
        :mod:`repro.runtime`.  ``engine`` picks the trial executor
        (``"auto"``, ``"scalar"`` or ``"batch"`` — see
        :func:`repro.sim.runner.monte_carlo_latency`).
        """
        from .sim.runner import monte_carlo_latency

        return monte_carlo_latency(
            self.system(style),
            self.bound,
            p=p,
            trials=trials,
            seed=seed,
            workers=workers,
            cache=cache,
            policy=policy,
            report=report,
            checkpoint=checkpoint,
            engine=engine,
        )

    def exact_latency_analysis(
        self,
        p: "float | str | CompletionSpec" = 0.7,
        style: str = "dist",
    ):
        """Exact first-iteration latency distribution, analytically.

        Runs the polynomial-time exact engine
        (:mod:`repro.analysis.exact_engine`) instead of ``2**k``
        enumeration: per-node Bernoulli finish-time convolution for the
        distributed scheme, per-step extension convolution for the
        synchronized baseline.  ``p`` accepts i.i.d. completion specs
        (Bernoulli or heterogeneous per-unit); temporally correlated
        specs (``markov:...``) raise
        :class:`~repro.errors.ExactAnalysisError` with
        ``reason="correlated"`` — use the Monte-Carlo engines for
        those.  Returns an
        :class:`~repro.analysis.exact_engine.ExactLatencyAnalysis`
        carrying the full PMF plus the engine diagnostics (correlation
        cut width, DP state count).  ``style`` is ``"dist"`` or
        ``"cent-sync"`` (the unsynchronized product FSM has no
        analytical model).
        """
        from .analysis.exact_engine import (
            analyze_dist_latency,
            analyze_sync_latency,
        )
        from .analysis.latency import DistLatencyEvaluator
        from .resources.spec import BernoulliSpec, as_completion_spec

        spec = as_completion_spec(p)
        clock_ns = self.allocation.clock_period_ns()
        tau_ops = self.bound.telescopic_ops()
        # plain Bernoulli keeps the scalar fast path (byte-identical to
        # the legacy float argument); anything else resolves per-op
        # marginals against the binding — correlated specs raise here
        p_value: "float | dict[str, float]" = (
            spec.p
            if isinstance(spec, BernoulliSpec)
            else spec.op_probabilities(self.bound, tau_ops)
        )
        if style == "dist":
            return analyze_dist_latency(
                DistLatencyEvaluator(self.bound),
                tau_ops,
                p_value,
                clock_ns=clock_ns,
            )
        if style == "cent-sync":
            return analyze_sync_latency(
                self.taubm, tau_ops, p_value, clock_ns=clock_ns
            )
        raise SimulationError(
            f"unknown analytical style {style!r}; choose 'dist' or "
            f"'cent-sync'"
        )

    def system(self, style: str = "dist") -> ControllerSystem:
        """Executable controller system by style name."""
        if style == "dist":
            return self.distributed_system()
        if style == "cent-sync":
            return self.cent_sync_system()
        if style == "cent":
            return self.cent_system()
        raise SimulationError(
            f"unknown controller style {style!r}; choose 'dist', "
            f"'cent-sync' or 'cent'"
        )

    def model_check(
        self,
        name: "str | None" = None,
        max_states: int = 200_000,
        max_frontier: int = 100_000,
    ):
        """Model-check the composed distributed controller network.

        Explores every reachable state of the network under all
        realizable telescopic completion schedules and proves the
        MC-DEAD (no reachable deadlock), MC-RACE (no completion-pulse
        race) and MC-REF (refinement against the CENT-SYNC
        specification) rule families — see
        :mod:`repro.verify.modelcheck`.  Returns a
        :class:`~repro.verify.modelcheck.ModelCheckResult` whose report
        is byte-stable and whose counterexamples replay in the
        simulator.
        """
        from .verify.modelcheck import check_result

        return check_result(
            self,
            name=name,
            max_states=max_states,
            max_frontier=max_frontier,
        )

    def fault_campaign(
        self,
        trials: int = 100,
        seed: int = 0,
        p: "float | str | CompletionSpec" = 0.7,
        styles: Sequence[str] = ("dist", "cent-sync"),
        workers: "int | None" = 1,
        policy=None,
        report=None,
        checkpoint=None,
    ) -> "FaultCampaignReport":
        """Run a seeded fault-injection campaign on this design.

        Sweeps ``trials`` deterministic faults per controller style and
        classifies each run as detected / tolerated / silent — see
        :mod:`repro.faults`.  The report compares the distributed unit's
        vulnerability against the synchronized centralized baseline.
        ``workers`` parallelizes trials without changing the report;
        ``policy``/``report`` supervise the pool and ``checkpoint``
        journals completed trials for byte-identical resume.
        """
        from .faults.campaign import run_campaign

        return run_campaign(
            self, trials=trials, seed=seed, p=p, styles=styles,
            workers=workers, policy=policy, report=report,
            checkpoint=checkpoint,
        )


def synthesize(
    dfg: DataflowGraph,
    allocation: "ResourceAllocation | str",
    scheduler: str = "list",
    objective: str = "latency",
    *,
    cache: "SynthesisCache | None" = None,
) -> SynthesisResult:
    """Run the complete paper flow on a dataflow graph.

    This is the canned synthesis pipeline (:mod:`repro.pipeline`): the
    ``validate``, ``schedule``, ``order``, ``bind``, ``taubm`` and
    ``distributed`` passes run in order over a typed artifact store and
    the result is assembled from the store.  Use
    :func:`repro.pipeline.run_synthesis_pipeline` directly for the run
    manifest, partial runs or custom passes — artifacts are identical
    either way.

    ``allocation`` may be a :class:`ResourceAllocation` or a spec string
    such as ``"mul:2T,add:1,sub:1"`` (``T`` = telescopic class).
    Multi-level VCAU allocations (built with ``level_delays_ns``) are
    supported throughout: Algorithm 1 chains extension states, the
    synchronized baseline extends steps until every unit reports done.

    ``scheduler`` names an entry of the scheduler registry: ``"list"``
    (priority list scheduling, the default), ``"exact"`` (branch-and-
    bound minimum latency; falls back to the list schedule with a
    :class:`~repro.errors.SchedulingFallbackWarning` and a manifest
    diagnostic when the search blows up), ``"force-directed"`` (latency-
    constrained concurrency balancing), or the unconstrained ``"asap"``
    / ``"alap"`` (rejected when their schedule exceeds the allocation).
    ``objective`` selects the chain-assignment heuristic (``"latency"``
    or ``"communication"`` — see
    :func:`repro.scheduling.order_based.order_based_schedule`).

    ``cache`` is a :class:`~repro.perf.cache.SynthesisCache`; passes
    whose inputs and options fingerprint-match a previous run are
    rehydrated from it instead of recomputed.
    """
    from .pipeline.manager import synthesize_design

    return synthesize_design(
        dfg, allocation, scheduler, objective, cache=cache
    )
