"""Extension experiments X1–X5 (beyond the paper's tables).

* **X1 psweep** — expected latency vs P for DIST, CENT-SYNC and the
  conventional fixed-clock design: locates the crossover below which a
  telescopic datapath stops paying off at all.
* **X2 sdld** — SD/LD ratio sweep: how aggressive the short delay must be
  for the TAU design to beat the fixed design.
* **X3 opdist** — per-operation controllers ([3]): same latency as DIST,
  area growing with operation count.
* **X4 pipeline** — overlapped-iteration throughput of the distributed
  unit vs the synchronized one.
* **X5 csg** — achieved P of a synthesized bit-level CSG per operand
  distribution (connects the physical substrate to the Bernoulli model).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..analysis.latency import (
    DistLatencyEvaluator,
    SyncLatencyEvaluator,
    expected_latency,
)
from ..analysis.tables import render_series, render_table
from ..api import synthesize
from ..benchmarks.registry import benchmark
from ..fsm.area import fsm_area, latch_area
from ..fsm.op_controller import (
    derive_all_operation_controllers,
    operation_controller_consumes,
)
from ..fsm.signals import is_op_completion
from ..resources.allocation import ResourceAllocation
from ..resources.bitlevel import ArrayMultiplier
from ..resources.completion import (
    BernoulliCompletion,
    CategoricalCompletion,
)
from ..resources.csg import (
    measure_fast_fraction,
    small_value_distribution,
    sparse_distribution,
    synthesize_multiplier_csg,
    uniform_distribution,
)
from ..sim.controllers import ControllerSystem
from ..sim.runner import pipelined_throughput
from .common import synthesize_benchmark


# ----------------------------------------------------------------------
# X1 — P sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PSweepResult:
    """Expected latency (ns) vs P for the three designs."""

    benchmark: str
    ps: tuple[float, ...]
    dist_ns: tuple[float, ...]
    sync_ns: tuple[float, ...]
    fixed_ns: float

    def crossover_p(self) -> "float | None":
        """Largest swept P at which even DIST loses to the fixed design."""
        for p, ns in zip(reversed(self.ps), reversed(self.dist_ns)):
            if ns > self.fixed_ns:
                return p
        return None

    def render(self) -> str:
        rows = [
            [f"{p:.2f}", f"{d:.1f}", f"{s:.1f}", f"{self.fixed_ns:.1f}"]
            for p, d, s in zip(self.ps, self.dist_ns, self.sync_ns)
        ]
        return (
            f"X1 — P sweep on {self.benchmark} (ns)\n"
            + render_table(["P", "DIST", "CENT-SYNC", "fixed"], rows)
        )


def run_psweep(
    benchmark_name: str = "fir5",
    ps: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
) -> PSweepResult:
    """Sweep the fast-operand probability on one benchmark."""
    res = synthesize_benchmark(benchmark_name)
    tau_ops = res.bound.telescopic_ops()
    clock = res.allocation.clock_period_ns()
    dist_eval = DistLatencyEvaluator(res.bound)
    sync_eval = SyncLatencyEvaluator(res.taubm)
    dist_ns = []
    sync_ns = []
    for p in ps:
        dist_ns.append(expected_latency(dist_eval, tau_ops, p) * clock)
        sync_ns.append(expected_latency(sync_eval, tau_ops, p) * clock)
    fixed = res.schedule.num_steps * res.allocation.original_clock_period_ns()
    return PSweepResult(
        benchmark=benchmark_name,
        ps=tuple(ps),
        dist_ns=tuple(dist_ns),
        sync_ns=tuple(sync_ns),
        fixed_ns=fixed,
    )


# ----------------------------------------------------------------------
# X2 — SD/LD ratio sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SdLdResult:
    """Expected DIST latency (ns) vs SD, fixed LD."""

    benchmark: str
    p: float
    long_delay_ns: float
    short_delays_ns: tuple[float, ...]
    dist_ns: tuple[float, ...]
    fixed_ns: float

    def render(self) -> str:
        series = render_series(
            f"X2 — SD sweep on {self.benchmark} (LD={self.long_delay_ns}ns, "
            f"P={self.p}); fixed design = {self.fixed_ns:.0f}ns",
            list(zip(self.short_delays_ns, self.dist_ns)),
            unit="ns",
        )
        return series


def run_sdld_sweep(
    benchmark_name: str = "fir5",
    p: float = 0.7,
    long_delay_ns: float = 20.0,
    short_delays_ns: Sequence[float] = (11.0, 13.0, 15.0, 17.0, 19.0),
) -> SdLdResult:
    """Sweep the short delay (clock) for a fixed long delay."""
    entry = benchmark(benchmark_name)
    dist_ns = []
    fixed_ns = 0.0
    for sd in short_delays_ns:
        if not long_delay_ns / 2 <= sd < long_delay_ns:
            raise ValueError(
                f"SD {sd} must lie in [LD/2, LD) for a two-level TAU"
            )
        allocation = ResourceAllocation.parse(
            entry.allocation_spec,
            short_delay_ns=sd,
            long_delay_ns=long_delay_ns,
            fixed_delay_ns=sd,
        )
        res = synthesize(entry.dfg(), allocation)
        tau_ops = res.bound.telescopic_ops()
        cycles = expected_latency(
            DistLatencyEvaluator(res.bound), tau_ops, p
        )
        dist_ns.append(cycles * sd)
        fixed_ns = (
            res.schedule.num_steps * allocation.original_clock_period_ns()
        )
    return SdLdResult(
        benchmark=benchmark_name,
        p=p,
        long_delay_ns=long_delay_ns,
        short_delays_ns=tuple(short_delays_ns),
        dist_ns=tuple(dist_ns),
        fixed_ns=fixed_ns,
    )


# ----------------------------------------------------------------------
# X3 — per-operation controllers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpDistResult:
    """Area of per-operation controllers vs the per-unit DIST unit."""

    benchmark: str
    num_ops: int
    num_units: int
    opdist_comb: float
    opdist_seq: float
    opdist_latches: int
    dist_comb: float
    dist_seq: float
    dist_latches: int

    def render(self) -> str:
        rows = [
            [
                "OP-DIST",
                str(self.num_ops),
                f"{self.opdist_comb:.0f}",
                f"{self.opdist_seq:.0f}",
                str(self.opdist_latches),
            ],
            [
                "DIST",
                str(self.num_units),
                f"{self.dist_comb:.0f}",
                f"{self.dist_seq:.0f}",
                str(self.dist_latches),
            ],
        ]
        return (
            f"X3 — controller granularity on {self.benchmark}\n"
            + render_table(
                ["scheme", "FSMs", "comb", "seq", "latches"], rows
            )
        )


def run_opdist(benchmark_name: str = "diffeq") -> OpDistResult:
    """Compare per-operation and per-unit controller areas."""
    res = synthesize_benchmark(benchmark_name)
    controllers = derive_all_operation_controllers(res.bound)
    comb = 0.0
    seq = 0.0
    latches = 0
    for fsm in controllers.values():
        report = fsm_area(fsm)
        comb += report.combinational_area
        seq += report.sequential_area
        latches += sum(1 for s in fsm.inputs if is_op_completion(s))
    latch_comb, latch_seq = latch_area(latches)
    dist = res.distributed.total_area()
    return OpDistResult(
        benchmark=benchmark_name,
        num_ops=len(controllers),
        num_units=len(res.distributed.unit_names),
        opdist_comb=comb + latch_comb,
        opdist_seq=seq + latch_seq,
        opdist_latches=latches,
        dist_comb=dist.combinational_area,
        dist_seq=dist.sequential_area,
        dist_latches=res.distributed.num_latches,
    )


def operation_controller_system(res) -> ControllerSystem:
    """Executable per-operation controller system for a synthesis result."""
    controllers = derive_all_operation_controllers(res.bound)
    return ControllerSystem(
        controllers=controllers,
        consumes=operation_controller_consumes(res.bound),
    )


# ----------------------------------------------------------------------
# X4 — pipelined throughput
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineResult:
    """Overlapped-iteration throughput, DIST vs CENT-SYNC."""

    benchmark: str
    p: float
    iterations: int
    dist_latency_cycles: int
    dist_throughput_cycles: float
    sync_throughput_cycles: float
    dist_overruns: int

    def render(self) -> str:
        return (
            f"X4 — pipelined throughput on {self.benchmark} "
            f"(P={self.p}, {self.iterations} iterations)\n"
            f"  DIST: latency {self.dist_latency_cycles} cycles, "
            f"throughput {self.dist_throughput_cycles:.2f} cycles/iter "
            f"({self.dist_overruns} token overruns)\n"
            f"  CENT-SYNC: throughput "
            f"{self.sync_throughput_cycles:.2f} cycles/iter"
        )


def run_pipeline(
    benchmark_name: str = "fir5",
    p: float = 0.7,
    iterations: int = 8,
    seed: int = 7,
) -> PipelineResult:
    """Measure steady-state cycles/iteration for both schemes."""
    res = synthesize_benchmark(benchmark_name)
    dist_result, dist_tp = pipelined_throughput(
        res.distributed_system(),
        res.bound,
        BernoulliCompletion(p),
        iterations=iterations,
        seed=seed,
    )
    __, sync_tp = pipelined_throughput(
        res.cent_sync_system(),
        res.bound,
        BernoulliCompletion(p),
        iterations=iterations,
        seed=seed,
    )
    return PipelineResult(
        benchmark=benchmark_name,
        p=p,
        iterations=iterations,
        dist_latency_cycles=dist_result.cycles,
        dist_throughput_cycles=dist_tp,
        sync_throughput_cycles=sync_tp,
        dist_overruns=dist_result.token_overruns,
    )


# ----------------------------------------------------------------------
# X5 — bit-level CSG coverage
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CsgSweepResult:
    """Achieved fast-group probability per operand distribution."""

    width: int
    short_delay_ns: float
    rows: tuple[tuple[str, float], ...]

    def render(self) -> str:
        table = render_table(
            ["distribution", "achieved P"],
            [[name, f"{p:.3f}"] for name, p in self.rows],
        )
        return (
            f"X5 — telescopic multiplier CSG coverage ({self.width}-bit, "
            f"SD={self.short_delay_ns:.2f}ns)\n" + table
        )


def run_csg_sweep(width: int = 8, sd_fraction: float = 0.6) -> CsgSweepResult:
    """Measure the P a synthesized multiplier CSG achieves."""
    mult = ArrayMultiplier(width=width)
    sd = mult.base_delay_ns + sd_fraction * (
        mult.worst_delay_ns - mult.base_delay_ns
    )
    csg = synthesize_multiplier_csg(mult, sd)
    distributions = [
        uniform_distribution(width),
        small_value_distribution(width, width // 2),
        small_value_distribution(width, 3 * width // 4),
        sparse_distribution(width, 2),
    ]
    rows = tuple(
        (d.name, measure_fast_fraction(csg, d)) for d in distributions
    )
    return CsgSweepResult(
        width=width, short_delay_ns=csg.short_delay_ns, rows=rows
    )


# ----------------------------------------------------------------------
# X6 — multi-level VCAUs (the paper's §6 generalization)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MultiLevelResult:
    """Latency of a design built on >2-level telescopic units."""

    benchmark: str
    level_delays_ns: tuple[float, ...]
    level_probabilities: tuple[float, ...]
    clock_ns: float
    dist_expected_cycles: float
    sync_expected_cycles: float
    dist_simulated_mean_cycles: float
    max_extension_states: int

    def enhancement(self) -> float:
        """Relative improvement of DIST over the synchronized baseline."""
        return (
            self.sync_expected_cycles - self.dist_expected_cycles
        ) / self.sync_expected_cycles

    def render(self) -> str:
        levels = "/".join(f"{d:g}" for d in self.level_delays_ns)
        return (
            f"X6 — multi-level VCAU ({levels} ns, "
            f"P={list(self.level_probabilities)}) on {self.benchmark}\n"
            f"  DIST expected {self.dist_expected_cycles:.3f} cycles "
            f"(simulated {self.dist_simulated_mean_cycles:.3f}), "
            f"CENT-SYNC expected {self.sync_expected_cycles:.3f} cycles\n"
            f"  enhancement {100 * self.enhancement():.1f}%, deepest "
            f"controller extension chain: {self.max_extension_states} states"
        )


def _multilevel_trial(system, bound, probabilities, seed, trial) -> int:
    """One categorical Monte-Carlo trial (module-level for pickling)."""
    from ..sim.simulator import simulate

    model = CategoricalCompletion(probabilities)
    return simulate(system, bound, model, seed=seed + trial).cycles


def run_multilevel(
    benchmark_name: str = "fir5",
    level_delays_ns: Sequence[float] = (15.0, 30.0, 45.0),
    level_probabilities: Sequence[float] = (0.6, 0.3, 0.1),
    trials: int = 300,
    seed: int = 0,
    workers: "int | None" = 1,
    policy=None,
    report=None,
    checkpoint=None,
    fabric=None,
) -> MultiLevelResult:
    """Synthesize a benchmark on 3-level VCAUs and compare schemes.

    Exact expectations come from categorical duration enumeration; a
    Monte-Carlo run of the cycle-accurate simulator with
    :class:`~repro.resources.completion.CategoricalCompletion` cross-checks
    the distributed number.  ``workers`` parallelizes the Monte-Carlo
    trials (the result is identical for any worker count);
    ``checkpoint`` journals completed trials for byte-identical resume,
    ``policy``/``report`` supervise the pool.
    """
    from ..analysis.latency import (
        DistLatencyEvaluator,
        duration_table,
        exact_expected_latency_categorical,
    )
    from ..core.ops import ResourceClass

    entry = benchmark(benchmark_name)
    dfg = entry.dfg()
    spec = {
        rc: entry.allocation().count(rc) for rc in dfg.resource_classes()
    }
    allocation = ResourceAllocation.build(
        spec,
        telescopic_classes=(ResourceClass.MULTIPLIER,),
        level_delays_ns=tuple(level_delays_ns),
        fixed_delay_ns=level_delays_ns[0],
    )
    from ..api import synthesize

    result = synthesize(dfg, allocation)
    table = duration_table(result.bound, tuple(level_probabilities))
    evaluator = DistLatencyEvaluator(result.bound)
    dist_expected = exact_expected_latency_categorical(
        evaluator.for_durations, table
    )
    sync_expected = exact_expected_latency_categorical(
        result.taubm.cycles_for_durations, table
    )
    from functools import partial

    from ..runtime.journal import checkpointed_map

    system = result.distributed_system()
    run_key = (
        f"multilevel|{benchmark_name}"
        f"|delays={list(level_delays_ns)!r}"
        f"|probs={list(level_probabilities)!r}"
        f"|trials={trials}|seed={seed}"
        if checkpoint is not None
        else ""
    )
    total = sum(
        checkpointed_map(
            partial(
                _multilevel_trial,
                system,
                result.bound,
                tuple(level_probabilities),
                seed,
            ),
            range(trials),
            run_key=run_key,
            checkpoint=checkpoint,
            workers=workers,
            policy=policy,
            report=report,
            fabric=fabric,
        )
    )
    max_extension = max(
        sum(1 for s in fsm.states if s.startswith("SX"))
        for fsm in result.distributed.controllers.values()
    )
    return MultiLevelResult(
        benchmark=benchmark_name,
        level_delays_ns=tuple(level_delays_ns),
        level_probabilities=tuple(level_probabilities),
        clock_ns=allocation.clock_period_ns(),
        dist_expected_cycles=dist_expected,
        sync_expected_cycles=sync_expected,
        dist_simulated_mean_cycles=total / trials,
        max_extension_states=max_extension,
    )


# ----------------------------------------------------------------------
# X9 — end-to-end physical run: bit-level CSG drives the system
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhysicalRunResult:
    """Gate-level CSG → operand-driven simulation → Bernoulli prediction."""

    benchmark: str
    distribution: str
    width: int
    measured_p: float
    simulated_mean_cycles: float
    predicted_mean_cycles: float
    trials: int

    def render(self) -> str:
        return (
            f"X9 — physical run on {self.benchmark} "
            f"({self.width}-bit multiplier CSG, {self.distribution} "
            f"operands, {self.trials} trials)\n"
            f"  measured P = {self.measured_p:.3f}\n"
            f"  simulated mean latency  {self.simulated_mean_cycles:.3f} "
            f"cycles\n"
            f"  Bernoulli(P) prediction {self.predicted_mean_cycles:.3f} "
            f"cycles"
        )


def _physical_trial(
    system, bound, model, dfg, distribution, tau_ops, seed, trial
) -> tuple[int, int, int]:
    """One operand-driven trial: (cycles, fast hits, fast draws)."""
    from ..sim.simulator import simulate
    from ..sim.stimulus import input_streams

    streams = input_streams(dfg, distribution, iterations=1, seed=seed + trial)
    sim = simulate(system, bound, model, seed=seed + trial, inputs=streams)
    hits = 0
    draws = 0
    for op in tau_ops:
        hits += sum(sim.fast_outcomes[op])
        draws += len(sim.fast_outcomes[op])
    return sim.cycles, hits, draws


def run_physical(
    benchmark_name: str = "diffeq",
    width: int = 8,
    sd_fraction: float = 0.6,
    small_bits: "int | None" = 4,
    trials: int = 120,
    seed: int = 0,
    workers: "int | None" = 1,
    policy=None,
    report=None,
    checkpoint=None,
    fabric=None,
) -> PhysicalRunResult:
    """Drive a design with real operands through a synthesized CSG.

    Closes the loop the paper leaves open: instead of assuming a fast
    probability P, synthesize a safe completion-signal generator for a
    bit-level array multiplier, stream operands from a distribution
    through the value-computing datapath, let the CSG decide fast/slow per
    execution, and compare the observed mean latency against the
    analytic Bernoulli(P) prediction at the *measured* P.
    """
    from functools import partial

    from ..analysis.latency import (
        DistLatencyEvaluator,
        exact_expected_latency,
    )
    from ..resources.completion import OperandCompletion
    from ..runtime.journal import checkpointed_map
    from ..sim.stimulus import small_values, uniform_values

    mult = ArrayMultiplier(width=width)
    sd = mult.base_delay_ns + sd_fraction * (
        mult.worst_delay_ns - mult.base_delay_ns
    )
    csg = synthesize_multiplier_csg(mult, sd)
    result = synthesize_benchmark(benchmark_name)
    model = OperandCompletion(
        {
            unit.name: _TruncatingCsg(csg, width)
            for unit in result.allocation.telescopic_units()
        }
    )
    distribution = (
        small_values(width, small_bits)
        if small_bits is not None
        else uniform_values(width)
    )
    run_key = (
        f"physical|{benchmark_name}|width={width}"
        f"|sd_fraction={sd_fraction!r}|small_bits={small_bits}"
        f"|trials={trials}|seed={seed}"
        if checkpoint is not None
        else ""
    )
    outcomes = checkpointed_map(
        partial(
            _physical_trial,
            result.distributed_system(),
            result.bound,
            model,
            result.dfg,
            distribution,
            result.bound.telescopic_ops(),
            seed,
        ),
        range(trials),
        run_key=run_key,
        checkpoint=checkpoint,
        workers=workers,
        policy=policy,
        report=report,
        fabric=fabric,
    )
    total_cycles = sum(cycles for cycles, _, _ in outcomes)
    fast_hits = sum(hits for _, hits, _ in outcomes)
    fast_draws = sum(draws for _, _, draws in outcomes)
    measured_p = fast_hits / fast_draws if fast_draws else 1.0
    evaluator = DistLatencyEvaluator(result.bound)
    predicted = exact_expected_latency(
        evaluator, result.bound.telescopic_ops(), measured_p
    )
    return PhysicalRunResult(
        benchmark=benchmark_name,
        distribution=distribution.name,
        width=width,
        measured_p=measured_p,
        simulated_mean_cycles=total_cycles / trials,
        predicted_mean_cycles=predicted,
        trials=trials,
    )


class _TruncatingCsg:
    """Adapter: mask datapath values to the CSG's physical bit width.

    Intermediate dataflow values grow beyond the unit width; real hardware
    would truncate at the multiplier inputs, which is what the mask
    models.
    """

    def __init__(self, csg, width: int) -> None:
        self._csg = csg
        self._mask = (1 << width) - 1

    def is_fast(self, a: int, b: int) -> bool:
        return self._csg.is_fast(a & self._mask, b & self._mask)


# ----------------------------------------------------------------------
# X10 — state-encoding ablation for the distributed controllers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EncodingResult:
    """Area of the distributed control unit per state-encoding style."""

    benchmark: str
    rows: tuple[tuple[str, float, float, int], ...]  # style, comb, seq, ffs

    def render(self) -> str:
        table = render_table(
            ["encoding", "comb", "seq", "FFs"],
            [
                [style, f"{comb:.0f}", f"{seq:.0f}", str(ffs)]
                for style, comb, seq, ffs in self.rows
            ],
        )
        return (
            f"X10 — encoding styles for DIST controllers on "
            f"{self.benchmark}\n{table}"
        )


def run_encoding_ablation(
    benchmark_name: str = "diffeq",
    styles: Sequence[str] = ("binary", "gray", "one-hot"),
) -> EncodingResult:
    """Compare binary/gray/one-hot encodings of the DIST-FSM area.

    The classic trade: one-hot buys simple next-state logic with one FF
    per state; minimal binary packs states into ceil(log2 n) FFs at the
    price of wider decode terms.  (One-hot rows use the structural
    term-count model — see :mod:`repro.fsm.area`.)
    """
    res = synthesize_benchmark(benchmark_name)
    rows = []
    for style in styles:
        report = res.distributed.total_area(style)
        rows.append(
            (
                style,
                report.combinational_area,
                report.sequential_area,
                report.num_flip_flops,
            )
        )
    return EncodingResult(benchmark=benchmark_name, rows=tuple(rows))


# ----------------------------------------------------------------------
# X11 — communication-aware binding (the §5 wiring-overhead lever)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommunicationBindingResult:
    """Latency-vs-wiring trade of the two chain-assignment objectives."""

    benchmark: str
    rows: tuple[tuple[str, int, int, float, float], ...]
    # (objective, wires, latches, expected cycles @0.7, seq area)

    def render(self) -> str:
        table = render_table(
            ["objective", "CC wires", "latches", "E[cycles] @P=0.7", "seq"],
            [
                [obj, str(w), str(l), f"{c:.3f}", f"{s:.0f}"]
                for obj, w, l, c, s in self.rows
            ],
        )
        return (
            f"X11 — chain-assignment objectives on {self.benchmark}\n"
            + table
        )


def run_communication_binding(
    benchmark_name: str = "diffeq",
) -> CommunicationBindingResult:
    """Compare latency-first and communication-first chain assignment.

    The communication objective pulls data-dependent operations onto one
    unit, turning completion wires (and their arrival latches) into
    implicit chain order — trading (some) preserved concurrency for
    wiring and sequential area, the §5 overhead the paper names.
    """
    import math

    from ..analysis.latency import DistLatencyEvaluator, exact_expected_latency
    from ..logic.area import AREA_PER_FLIP_FLOP

    entry = benchmark(benchmark_name)
    rows = []
    for objective in ("latency", "communication"):
        res = synthesize(
            entry.dfg(), entry.allocation(), objective=objective
        )
        dcu = res.distributed
        evaluator = DistLatencyEvaluator(res.bound)
        expected = exact_expected_latency(
            evaluator, res.bound.telescopic_ops(), 0.7
        )
        # Sequential area directly from FF counts (state registers of a
        # binary encoding plus arrival latches) — no logic minimization
        # needed for this comparison.
        state_ffs = sum(
            max(1, math.ceil(math.log2(max(2, fsm.num_states))))
            for fsm in dcu.controllers.values()
        )
        seq_area = AREA_PER_FLIP_FLOP * (state_ffs + dcu.num_latches)
        rows.append(
            (
                objective,
                len(dcu.live_nets()),
                dcu.num_latches,
                expected,
                seq_area,
            )
        )
    return CommunicationBindingResult(
        benchmark=benchmark_name, rows=tuple(rows)
    )


# ----------------------------------------------------------------------
# X12 — control switching activity (dynamic-energy proxy)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ActivityResult:
    """Per-iteration control-signal toggles, DIST vs CENT-SYNC."""

    benchmark: str
    p: float
    iterations: int
    dist_toggles_per_iteration: float
    sync_toggles_per_iteration: float
    dist_writes_per_iteration: float
    sync_writes_per_iteration: float
    dist_cycles_per_iteration: float
    sync_cycles_per_iteration: float

    def render(self) -> str:
        return (
            f"X12 — control switching activity on {self.benchmark} "
            f"(P={self.p}, {self.iterations} iterations)\n"
            f"  DIST     : {self.dist_toggles_per_iteration:.1f} "
            f"toggles/iter, {self.dist_writes_per_iteration:.1f} "
            f"writes/iter, {self.dist_cycles_per_iteration:.2f} "
            f"cycles/iter\n"
            f"  CENT-SYNC: {self.sync_toggles_per_iteration:.1f} "
            f"toggles/iter, {self.sync_writes_per_iteration:.1f} "
            f"writes/iter, {self.sync_cycles_per_iteration:.2f} "
            f"cycles/iter"
        )


def run_activity(
    benchmark_name: str = "diffeq",
    p: float = 0.7,
    iterations: int = 8,
    seed: int = 3,
) -> ActivityResult:
    """Steady-state control activity of both schemes.

    Distribution is not free in energy: the per-unit controllers toggle
    completion wires and re-fetch operands independently, so DIST
    typically pays more control toggles per iteration than the batched
    synchronized machine — the energy-side counterpart of its area
    overhead, traded against fewer (stalled) cycles.
    """
    from ..analysis.activity import activity_report
    from ..sim.simulator import simulate

    res = synthesize_benchmark(benchmark_name)
    model = BernoulliCompletion(p)
    dist = simulate(
        res.distributed_system(),
        res.bound,
        model,
        iterations=iterations,
        seed=seed,
        record_trace=True,
    )
    sync = simulate(
        res.cent_sync_system(),
        res.bound,
        model,
        iterations=iterations,
        seed=seed,
        record_trace=True,
    )
    dist_activity = activity_report(dist, "DIST")
    sync_activity = activity_report(sync, "CENT-SYNC")
    return ActivityResult(
        benchmark=benchmark_name,
        p=p,
        iterations=iterations,
        dist_toggles_per_iteration=dist_activity.total_toggles / iterations,
        sync_toggles_per_iteration=sync_activity.total_toggles / iterations,
        dist_writes_per_iteration=dist_activity.register_writes / iterations,
        sync_writes_per_iteration=sync_activity.register_writes / iterations,
        dist_cycles_per_iteration=dist.throughput_cycles(),
        sync_cycles_per_iteration=sync.throughput_cycles(),
    )


# ----------------------------------------------------------------------
# X13 — completion-model comparison (beyond i.i.d. Bernoulli)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompletionModelsResult:
    """Latency of DIST vs CENT-SYNC under different completion models."""

    benchmark: str
    trials: int
    seed: int
    #: (spec encoding, DIST MC mean, CENT-SYNC MC mean, exact DIST
    #: mean or None when the spec has no i.i.d. analytical model)
    rows: tuple[tuple[str, float, float, "float | None"], ...]

    def render(self) -> str:
        table = [
            [
                encoding,
                f"{dist:.3f}",
                f"{sync:.3f}",
                "-" if exact is None else f"{exact:.3f}",
            ]
            for encoding, dist, sync, exact in self.rows
        ]
        return (
            f"X13 — completion models on {self.benchmark} "
            f"(mean cycles, {self.trials} trials, seed {self.seed})\n"
            + render_table(
                ["completion", "DIST", "CENT-SYNC", "exact DIST"], table
            )
        )


def run_completion_models(
    benchmark_name: str = "fig3",
    specs: Sequence[str] = (
        "bernoulli:0.7",
        "per-unit:mul=0.9,*=0.5",
        "markov:0.7,0.5",
    ),
    trials: int = 300,
    seed: int = 0,
) -> CompletionModelsResult:
    """Compare the controller styles across completion models.

    The Bernoulli row reproduces the paper's setup; the per-unit row
    models a datapath whose multipliers are more telescopic than the
    rest; the Markov row adds operand temporal correlation (sticky
    fast/slow streaks), which no i.i.d. analysis captures — its exact
    column is blank and only the Monte-Carlo engines apply.
    """
    from ..errors import ExactAnalysisError
    from ..resources.spec import as_completion_spec

    res = synthesize_benchmark(benchmark_name)
    rows = []
    for text in specs:
        spec = as_completion_spec(text)
        dist = res.monte_carlo_latency(
            p=spec, trials=trials, seed=seed, style="dist"
        ).mean
        sync = res.monte_carlo_latency(
            p=spec, trials=trials, seed=seed, style="cent-sync"
        ).mean
        try:
            exact = res.exact_latency_analysis(spec).expectation
        except ExactAnalysisError:
            exact = None
        rows.append((spec.encode(), dist, sync, exact))
    return CompletionModelsResult(
        benchmark=benchmark_name,
        trials=trials,
        seed=seed,
        rows=tuple(rows),
    )
