"""Experiments F1–F7 — regenerate the paper's figures as data/artifacts.

The paper's figures are structural (FSMs, DFGs, wiring diagrams) rather
than measurement plots; each driver here regenerates the figure's
*content* programmatically — state/transition listings, schedule-arc sets,
state-count growth series, wiring tables — and asserts the properties the
caption claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..analysis.tables import render_series
from ..api import synthesize
from ..benchmarks.paper_examples import (
    fig4_pathological_dfg,
    paper_fig2_dfg,
    paper_fig3_dfg,
)
from ..core.dot import dfg_to_dot
from ..fsm.area import fsm_area
from ..fsm.model import FSM
from ..resources.bitlevel import ArrayMultiplier, RippleCarryAdder
from ..resources.csg import (
    measure_fast_fraction,
    small_value_distribution,
    synthesize_adder_csg,
    synthesize_multiplier_csg,
    uniform_distribution,
    verify_csg_safety,
)


# ----------------------------------------------------------------------
# F1 — the telescopic unit itself (Fig. 1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig1Result:
    """A synthesized telescopic unit: SD/LD split and achieved P."""

    unit_kind: str
    width: int
    short_delay_ns: float
    long_delay_ns: float
    pairs_verified: int
    achieved_p: dict[str, float]

    def render(self) -> str:
        lines = [
            f"Fig. 1 — telescopic {self.unit_kind} ({self.width}-bit): "
            f"SD={self.short_delay_ns:.2f}ns LD={self.long_delay_ns:.2f}ns, "
            f"CSG safety verified on {self.pairs_verified} operand pairs"
        ]
        for dist, p in self.achieved_p.items():
            lines.append(f"  P({dist}) = {p:.3f}")
        return "\n".join(lines)


def run_fig1_multiplier(
    width: int = 8, sd_fraction: float = 0.6
) -> Fig1Result:
    """Synthesize and verify a telescopic multiplier CSG."""
    mult = ArrayMultiplier(width=width)
    sd = mult.base_delay_ns + sd_fraction * (
        mult.worst_delay_ns - mult.base_delay_ns
    )
    csg = synthesize_multiplier_csg(mult, sd)
    checked = verify_csg_safety(
        csg, mult.delay_ns, csg.short_delay_ns, width
    )
    achieved = {
        "uniform": measure_fast_fraction(csg, uniform_distribution(width)),
        "small-operand": measure_fast_fraction(
            csg, small_value_distribution(width, width // 2)
        ),
    }
    return Fig1Result(
        unit_kind="multiplier",
        width=width,
        short_delay_ns=csg.short_delay_ns,
        long_delay_ns=mult.worst_delay_ns,
        pairs_verified=checked,
        achieved_p=achieved,
    )


def run_fig1_adder(width: int = 8, max_chain: int = 4) -> Fig1Result:
    """Synthesize and verify a telescopic adder CSG."""
    adder = RippleCarryAdder(width=width)
    sd = adder.base_delay_ns + 2.0 * adder.gate_delay_ns * max_chain
    csg = synthesize_adder_csg(adder, sd)
    checked = verify_csg_safety(
        csg, adder.delay_ns, csg.short_delay_ns, width
    )
    achieved = {
        "uniform": measure_fast_fraction(csg, uniform_distribution(width)),
        "small-operand": measure_fast_fraction(
            csg, small_value_distribution(width, width // 2)
        ),
    }
    return Fig1Result(
        unit_kind="adder",
        width=width,
        short_delay_ns=csg.short_delay_ns,
        long_delay_ns=adder.worst_delay_ns,
        pairs_verified=checked,
        achieved_p=achieved,
    )


# ----------------------------------------------------------------------
# F2 — original DFG -> TAUBM DFG -> TAUBM FSM (Fig. 2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig2Result:
    """The Fig. 2 derivation chain."""

    dfg_dot: str
    taubm_text: str
    fsm: FSM
    min_cycles: int
    max_cycles: int

    def render(self) -> str:
        return (
            f"Fig. 2 — TAUBM derivation\n{self.taubm_text}\n"
            f"TAUBM FSM: {self.fsm.num_states} states, latency "
            f"{self.min_cycles}..{self.max_cycles} cycles\n"
            + self.fsm.describe()
        )


def run_fig2() -> Fig2Result:
    """Regenerate the Fig. 2 chain on the paper's example DFG."""
    result = synthesize(paper_fig2_dfg(), "mul:2T,add:1")
    fsm = result.cent_sync_fsm
    return Fig2Result(
        dfg_dot=dfg_to_dot(result.dfg, start_times=result.schedule.start),
        taubm_text=result.taubm.describe(),
        fsm=fsm,
        min_cycles=result.taubm.min_cycles(),
        max_cycles=result.taubm.max_cycles(),
    )


# ----------------------------------------------------------------------
# F3 — order-based scheduling (Fig. 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Result:
    """Schedule arcs, chains and binding of the Fig. 3 example."""

    order_text: str
    binding_text: str
    num_schedule_arcs: int
    min_multipliers_needed: int
    dot: str

    def render(self) -> str:
        return (
            f"Fig. 3 — order-based scheduling "
            f"(min TAU multipliers without arcs: "
            f"{self.min_multipliers_needed}, inserted arcs: "
            f"{self.num_schedule_arcs})\n"
            f"{self.order_text}\n{self.binding_text}"
        )


def run_fig3() -> Fig3Result:
    """Regenerate the Fig. 3 scheduling example."""
    from ..core.ops import ResourceClass
    from ..scheduling.order_based import minimum_units_required

    dfg = paper_fig3_dfg()
    result = synthesize(dfg, "mul:2T,add:2")
    return Fig3Result(
        order_text=result.order.describe(),
        binding_text=result.bound.describe(),
        num_schedule_arcs=len(result.order.schedule_arcs),
        min_multipliers_needed=minimum_units_required(
            dfg, ResourceClass.MULTIPLIER
        ),
        dot=dfg_to_dot(
            dfg,
            schedule_arcs=result.order.schedule_arcs,
            binding=result.bound.binding,
        ),
    )


# ----------------------------------------------------------------------
# F4 — exponential state growth (Fig. 4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4Result:
    """CENT vs CENT-SYNC state counts as TAUs per step grow."""

    tau_counts: tuple[int, ...]
    cent_states: tuple[int, ...]
    sync_states: tuple[int, ...]
    cent_transitions: tuple[int, ...]

    def render(self) -> str:
        cent = render_series(
            "Fig. 4 — CENT-FSM states vs TAUs in one step",
            list(zip(map(float, self.tau_counts), map(float, self.cent_states))),
        )
        sync = render_series(
            "CENT-SYNC-FSM states vs TAUs in one step",
            list(zip(map(float, self.tau_counts), map(float, self.sync_states))),
        )
        return cent + "\n" + sync


def _fig4_point(n: int) -> tuple[int, int, int]:
    """(CENT states, CENT transitions, SYNC states) for ``n`` TAUs."""
    dfg = fig4_pathological_dfg(n)
    result = synthesize(dfg, f"mul:{n}T,add:1")
    cent = result.cent_fsm
    return cent.num_states, cent.num_transitions, result.cent_sync_fsm.num_states


def run_fig4(
    tau_counts: Sequence[int] = (1, 2, 3, 4),
    workers: "int | None" = 1,
    policy=None,
    report=None,
    checkpoint=None,
    fabric=None,
) -> Fig4Result:
    """Measure state growth on the pathological one-step DFGs.

    The product construction for the largest ``n`` dominates; ``workers``
    builds the independent points concurrently.  ``checkpoint`` journals
    each finished point for byte-identical resume; ``policy``/``report``
    supervise the pool (see :mod:`repro.runtime`); ``fabric`` leases
    the points to distributed worker nodes (requires ``checkpoint``).
    """
    from ..runtime.journal import checkpointed_map

    run_key = (
        f"fig4|tau_counts={list(tau_counts)!r}"
        if checkpoint is not None
        else ""
    )
    points = checkpointed_map(
        _fig4_point,
        list(tau_counts),
        run_key=run_key,
        checkpoint=checkpoint,
        workers=workers,
        policy=policy,
        report=report,
        fabric=fabric,
    )
    return Fig4Result(
        tau_counts=tuple(tau_counts),
        cent_states=tuple(p[0] for p in points),
        sync_states=tuple(p[2] for p in points),
        cent_transitions=tuple(p[1] for p in points),
    )


# ----------------------------------------------------------------------
# F5/F6 — per-unit controller structure and the Fig. 6 FSM
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Result:
    """The Algorithm-1 FSM for TAU multiplier 1 of the Fig. 3 DFG."""

    fsm: FSM
    logical_transition_count: int
    area_text: str

    def render(self) -> str:
        return (
            f"Fig. 6 — {self.fsm.name}: {self.fsm.num_states} states, "
            f"{self.logical_transition_count} logical transitions\n"
            + self.fsm.describe()
            + "\n"
            + self.area_text
        )


def run_fig6(unit_name: "str | None" = None) -> Fig6Result:
    """Regenerate the Fig. 6 controller (first TAU multiplier)."""
    result = synthesize(paper_fig3_dfg(), "mul:2T,add:2")
    unit = unit_name or result.distributed.unit_names[0]
    fsm = result.distributed.controller(unit)
    return Fig6Result(
        fsm=fsm,
        logical_transition_count=len(fsm.logical_transitions()),
        area_text=fsm_area(fsm).describe(),
    )


# ----------------------------------------------------------------------
# F7 — the distributed control unit and its signal optimization
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig7Result:
    """Wiring of the distributed unit, with pruned signals."""

    description: str
    live_wires: int
    pruned_signals: tuple[str, ...]

    def render(self) -> str:
        return f"Fig. 7 — distributed control unit\n{self.description}"


def run_fig7() -> Fig7Result:
    """Regenerate the Fig. 7 integration on the Fig. 3 DFG."""
    result = synthesize(paper_fig3_dfg(), "mul:2T,add:2")
    dcu = result.distributed
    return Fig7Result(
        description=dcu.describe(),
        live_wires=len(dcu.live_nets()),
        pruned_signals=dcu.pruned_signals,
    )
