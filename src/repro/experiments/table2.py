"""Experiment T2 — reproduce Table 2 (latency, TAUBM-sync vs distributed).

For each of the six benchmark rows (3rd/5th FIR, 2nd/3rd IIR, Diff.,
AR-lattice) under the paper's allocations and timing (SD = 15 ns,
LD = 20 ns, FD = 15 ns): best case, exact expected latency at
P ∈ {0.9, 0.7, 0.5}, worst case — for the synchronized centralized TAUBM
controller and the distributed control unit — plus the performance
enhancement column.

Expected shape: DIST ≤ SYNC everywhere (dominance is a theorem here, see
the property tests); the enhancement grows with the number of TAU
operations per step and with decreasing P; rows with little concurrency
(3rd FIR) improve least.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..analysis.latency import LatencyComparison, compare_latencies
from ..analysis.tables import render_table
from ..benchmarks.registry import BenchmarkEntry, table2_benchmarks
from .common import synthesize_entry


@dataclass(frozen=True)
class Table2Result:
    """All rows of the reproduced Table 2."""

    ps: tuple[float, ...]
    comparisons: tuple[LatencyComparison, ...]

    def rows(self) -> list[list[str]]:
        return [
            [
                c.benchmark,
                c.resources,
                c.sync.bracket_ns(),
                c.dist.bracket_ns(),
                c.enhancement_column(),
            ]
            for c in self.comparisons
        ]

    def render(self) -> str:
        header = [
            "DFG",
            "Resources",
            "LT_TAU (ns)",
            "LT_DIST (ns)",
            "Enhancement",
        ]
        title = (
            "Table 2 — latency comparison, P in "
            + str(list(self.ps))
            + " (SD=15ns, LD=20ns, FD=15ns)"
        )
        return title + "\n" + render_table(header, self.rows())

    def check_shape(self) -> None:
        """Assert the paper's qualitative latency claims on every row."""
        for c in self.comparisons:
            assert c.dist.best_cycles <= c.sync.best_cycles
            assert c.dist.worst_cycles <= c.sync.worst_cycles
            for p in self.ps:
                assert (
                    c.dist.expected_ns(p) <= c.sync.expected_ns(p) + 1e-9
                ), f"DIST slower than SYNC on {c.benchmark} at P={p}"
                assert c.enhancement(p) >= -1e-9


def _table2_row(
    ps: tuple[float, ...],
    exact_limit: int,
    trials: int,
    entry: BenchmarkEntry,
) -> LatencyComparison:
    """Synthesize one benchmark row and compare latencies (pool-safe)."""
    res = synthesize_entry(entry, scheduler="exact")
    comparison = compare_latencies(
        res.bound,
        res.taubm,
        ps=ps,
        exact_limit=exact_limit,
        trials=trials,
    )
    return LatencyComparison(
        benchmark=entry.title,
        resources=comparison.resources,
        sync=comparison.sync,
        dist=comparison.dist,
        fixed_design_ns=comparison.fixed_design_ns,
    )


def run_table2(
    entries: "Sequence[BenchmarkEntry] | None" = None,
    ps: Sequence[float] = (0.9, 0.7, 0.5),
    exact_limit: int = 20,
    trials: int = 4000,
    workers: "int | None" = 1,
    policy=None,
    report=None,
    checkpoint=None,
    fabric=None,
) -> Table2Result:
    """Regenerate Table 2 over the registered Table-2 benchmarks.

    Each row is an independent synthesis + expectation computation;
    ``workers`` distributes rows over a process pool without changing a
    single digit of the output.  ``checkpoint`` journals each finished
    row so an interrupted run resumes byte-identically; ``policy`` and
    ``report`` supervise the pool (see :mod:`repro.runtime`).
    ``fabric`` (a :class:`~repro.fabric.FabricConfig`, requires
    ``checkpoint``) leases rows to distributed worker nodes instead —
    still byte-identical.
    """
    from functools import partial

    from ..runtime.journal import checkpointed_map

    work = list(entries or table2_benchmarks())
    run_key = (
        "table2|" + ",".join(e.name for e in work)
        + f"|ps={list(ps)!r}|exact_limit={exact_limit}|trials={trials}"
        if checkpoint is not None
        else ""
    )
    rows = checkpointed_map(
        partial(_table2_row, tuple(ps), exact_limit, trials),
        work,
        run_key=run_key,
        checkpoint=checkpoint,
        workers=workers,
        policy=policy,
        report=report,
        fabric=fabric,
    )
    return Table2Result(ps=tuple(ps), comparisons=tuple(rows))
