"""Experiment T1 — reproduce Table 1 (controller area on Diff.).

Derives the three controller styles for the HAL differential-equation
benchmark under the paper's allocation (2 TAU multipliers, 1 adder,
1 subtractor) and reports the paper's columns: I/O, states, FFs and
combinational/sequential area — for CENT-FSM, CENT-SYNC-FSM, the
aggregated DIST-FSM and each per-unit D-FSM.

Expected shape (the claims of §5): CENT-SYNC is the smallest;
DIST costs a few× CENT-SYNC in sequential area (controller replication
plus completion latches); CENT is by far the largest combinationally
because one machine enumerates all inter-unit interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import render_table
from ..api import SynthesisResult
from ..fsm.area import FSMAreaReport, fsm_area
from .common import synthesize_benchmark


@dataclass(frozen=True)
class Table1Result:
    """All rows of the reproduced Table 1."""

    benchmark: str
    cent: FSMAreaReport
    cent_sync: FSMAreaReport
    dist: FSMAreaReport
    dist_components: tuple[FSMAreaReport, ...]

    def rows(self) -> list[list[str]]:
        reports = [self.cent, self.cent_sync, self.dist]
        reports.extend(self.dist_components)
        return [
            [
                r.name,
                r.io_column(),
                str(r.num_states),
                str(r.num_flip_flops),
                r.area_column(),
            ]
            for r in reports
        ]

    def render(self) -> str:
        header = ["FSM", "I/O", "States", "FFs", "Area(Com./Seq.)"]
        return (
            f"Table 1 — area analysis for {self.benchmark}\n"
            + render_table(header, self.rows())
        )

    def check_shape(self) -> None:
        """Assert the paper's qualitative area ordering."""
        assert (
            self.cent_sync.total_area < self.dist.total_area
        ), "CENT-SYNC must be smaller than DIST"
        assert (
            self.dist.combinational_area < self.cent.combinational_area
        ), "DIST must be combinationally smaller than CENT"
        assert self.cent.num_states > self.dist.num_states


def run_table1(
    benchmark_name: str = "diffeq",
    encoding_style: str = "binary",
    result: "SynthesisResult | None" = None,
) -> Table1Result:
    """Regenerate Table 1 (optionally reusing a synthesis result)."""
    res = result or synthesize_benchmark(benchmark_name)
    dist = res.distributed
    cent_sync_report = fsm_area(res.cent_sync_fsm, encoding_style)
    cent_report = fsm_area(res.cent_fsm, encoding_style)
    return Table1Result(
        benchmark=res.dfg.name,
        cent=cent_report,
        cent_sync=cent_sync_report,
        dist=dist.total_area(encoding_style),
        dist_components=dist.component_areas(encoding_style),
    )
