"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from ..api import SynthesisResult, synthesize
from ..benchmarks.registry import BenchmarkEntry, benchmark


def synthesize_benchmark(
    name: str, scheduler: str = "list"
) -> SynthesisResult:
    """Run the full flow on a registered benchmark's paper allocation."""
    entry = benchmark(name)
    return synthesize(entry.dfg(), entry.allocation(), scheduler=scheduler)


def synthesize_entry(
    entry: BenchmarkEntry, scheduler: str = "list"
) -> SynthesisResult:
    """Run the full flow on a registry entry."""
    return synthesize(entry.dfg(), entry.allocation(), scheduler=scheduler)
