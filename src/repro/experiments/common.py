"""Shared helpers for the experiment drivers.

Every driver constructs designs through the synthesis pipeline
(:mod:`repro.pipeline`), so a process-default artifact cache — installed
by ``repro experiments --cache-dir`` — makes repeated Table-2/Fig-4/
ablation sweeps skip every pass whose inputs have not changed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..api import SynthesisResult
from ..benchmarks.registry import BenchmarkEntry, benchmark
from ..pipeline.manager import synthesize_design

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf.cache import SynthesisCache


def synthesize_benchmark(
    name: str,
    scheduler: str = "list",
    cache: "SynthesisCache | None" = None,
) -> SynthesisResult:
    """Run the full flow on a registered benchmark's paper allocation."""
    return synthesize_entry(benchmark(name), scheduler=scheduler, cache=cache)


def synthesize_entry(
    entry: BenchmarkEntry,
    scheduler: str = "list",
    cache: "SynthesisCache | None" = None,
) -> SynthesisResult:
    """Run the full flow on a registry entry."""
    return synthesize_design(
        entry.dfg(), entry.allocation(), scheduler=scheduler, cache=cache
    )
