"""Signal-name conventions shared by every controller generator.

The paper's signal vocabulary (Figs. 5–7):

* ``C_<unit>`` — completion signal of a telescopic unit's CSG (``C_T``),
* ``CC_<op>`` — completion signal of an operation, produced by the
  controller executing it (``C_CO(i)``) and consumed as ``C_PO(i)`` by the
  controllers of its direct successors,
* ``OF_<op>`` — operand fetch (select the operands at the unit's inputs),
* ``RE_<op>`` — register enable (latch the unit's result).

Keeping the naming in one module means the FSM builders, the distributed
integrator, the simulator and the Verilog backend can never disagree about
a wire's name.
"""

from __future__ import annotations

_UNIT_COMPLETION_PREFIX = "C_"
_OP_COMPLETION_PREFIX = "CC_"
_OPERAND_FETCH_PREFIX = "OF_"
_REGISTER_ENABLE_PREFIX = "RE_"


def unit_completion(unit_name: str) -> str:
    """The CSG completion signal of a telescopic unit (``C_T``)."""
    return f"{_UNIT_COMPLETION_PREFIX}{unit_name}"


def op_completion(op_name: str) -> str:
    """The completion signal of an operation (``C_CO`` / ``C_PO``)."""
    return f"{_OP_COMPLETION_PREFIX}{op_name}"


def operand_fetch(op_name: str) -> str:
    """The operand-fetch signal of an operation (``OF_i``)."""
    return f"{_OPERAND_FETCH_PREFIX}{op_name}"


def register_enable(op_name: str) -> str:
    """The register-enable signal of an operation (``RE_i``)."""
    return f"{_REGISTER_ENABLE_PREFIX}{op_name}"


def is_op_completion(signal: str) -> bool:
    """Whether a signal is an operation-completion wire."""
    return signal.startswith(_OP_COMPLETION_PREFIX)


def is_unit_completion(signal: str) -> bool:
    """Whether a signal is a unit (CSG) completion wire."""
    return signal.startswith(_UNIT_COMPLETION_PREFIX) and not signal.startswith(
        _OP_COMPLETION_PREFIX
    )


def op_of_completion(signal: str) -> str:
    """Invert :func:`op_completion`."""
    if not is_op_completion(signal):
        raise ValueError(f"{signal!r} is not an operation-completion signal")
    return signal[len(_OP_COMPLETION_PREFIX) :]


def unit_of_completion(signal: str) -> str:
    """Invert :func:`unit_completion`."""
    if not is_unit_completion(signal):
        raise ValueError(f"{signal!r} is not a unit-completion signal")
    return signal[len(_UNIT_COMPLETION_PREFIX) :]


def state_exec(op_name: str) -> str:
    """Name of the first-cycle execution state of an op (``S_i``)."""
    return f"S_{op_name}"


def state_extend(op_name: str, phase: int = 2) -> str:
    """Name of the ``phase``-th execution cycle state of a TAU op.

    Phase 2 is the paper's ``S_i'``; multi-level VCAUs chain further
    extension states (phase 3, 4, ...).
    """
    if phase < 2:
        raise ValueError("extension states start at phase 2")
    if phase == 2:
        return f"SX_{op_name}"
    return f"SX{phase}_{op_name}"


def state_ready(op_name: str) -> str:
    """Name of the ready/wait state preceding an op (``R_i``)."""
    return f"R_{op_name}"
