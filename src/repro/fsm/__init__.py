"""Controller FSMs: Algorithm 1, centralized TAUBM machines, analysis."""

from .algorithm1 import derive_all_unit_controllers, derive_unit_controller
from .area import (
    FSMAreaReport,
    LATCH_GLUE_LITERALS,
    fsm_area,
    fsm_logic_block,
    latch_area,
)
from .encode import (
    StateEncoding,
    binary_encoding,
    encode,
    gray_encoding,
    one_hot_encoding,
)
from .model import FSM, Transition, all_cube, make_transition, not_all_cubes
from .op_controller import (
    derive_all_operation_controllers,
    derive_operation_controller,
    operation_controller_consumes,
)
from .optimize import (
    merge_equivalent_states,
    prune_outputs,
    remove_unreachable_states,
)
from .product import build_cent_fsm, build_product_fsm
from .signals import (
    is_op_completion,
    is_unit_completion,
    op_completion,
    op_of_completion,
    operand_fetch,
    register_enable,
    state_exec,
    state_extend,
    state_ready,
    unit_completion,
    unit_of_completion,
)
from .taubm import derive_cent_sync_fsm
from .verilog import fsm_to_verilog, sanitize_identifier, start_strobe

__all__ = [
    "FSM",
    "FSMAreaReport",
    "LATCH_GLUE_LITERALS",
    "StateEncoding",
    "Transition",
    "all_cube",
    "binary_encoding",
    "build_cent_fsm",
    "build_product_fsm",
    "derive_all_operation_controllers",
    "derive_all_unit_controllers",
    "derive_cent_sync_fsm",
    "derive_operation_controller",
    "derive_unit_controller",
    "encode",
    "fsm_area",
    "fsm_logic_block",
    "fsm_to_verilog",
    "gray_encoding",
    "is_op_completion",
    "is_unit_completion",
    "latch_area",
    "make_transition",
    "merge_equivalent_states",
    "not_all_cubes",
    "one_hot_encoding",
    "op_completion",
    "op_of_completion",
    "operand_fetch",
    "operation_controller_consumes",
    "prune_outputs",
    "register_enable",
    "remove_unreachable_states",
    "sanitize_identifier",
    "start_strobe",
    "state_exec",
    "state_extend",
    "state_ready",
    "unit_completion",
    "unit_of_completion",
]
