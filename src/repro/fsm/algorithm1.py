"""Algorithm 1: per-arithmetic-unit controller FSM derivation (paper §4.2).

For a telescopic unit ``T`` with bound operations ``O_0 .. O_n`` (in chain
order), the derived FSM has, per operation:

* ``S_i`` — first execution cycle.  The CSG's completion signal ``C_T``
  selects between finishing now (fast operands) and extending into
* ``SX_i`` (the paper's ``S_i'``) — the guaranteed second/last cycle, and
* ``R_i`` — a ready state entered when ``O_i``'s cross-unit direct
  predecessors have not all completed yet (only generated when such
  predecessors exist).

Completing transitions assert ``OF_i RE_i CC_i`` (operand fetch, register
enable, operation completion); the extension transition holds ``OF_i``
only.  Guards of the form "not all predecessors done" are expanded into
disjoint cubes by :func:`repro.fsm.model.not_all_cubes`.

Fixed-delay units get the same construction minus ``C_T`` and the ``SX``
states — every operation completes in its single ``S`` cycle.

The FSMs loop: the successor of ``O_n`` is ``O_0`` (paper step 4's wrap),
matching the iterative execution of DSP dataflow graphs.
"""

from __future__ import annotations

from ..binding.binder import BoundDataflowGraph
from ..errors import FSMError
from .model import FSM, Transition, all_cube, make_transition, not_all_cubes
from .signals import (
    op_completion,
    operand_fetch,
    register_enable,
    state_exec,
    state_extend,
    state_ready,
    unit_completion,
)


def derive_unit_controller(
    bound: BoundDataflowGraph, unit_name: str
) -> FSM:
    """Derive the arithmetic-unit controller FSM for one unit.

    Implements Algorithm 1 for telescopic units and its fixed-delay
    reduction ("remove C_T, the S' states and their transitions") for
    conventional units.
    """
    ops = bound.ops_on_unit(unit_name)
    if not ops:
        raise FSMError(f"unit {unit_name!r} has no bound operations")
    unit = bound.allocation.unit(unit_name)
    telescopic = unit.is_telescopic

    preds = {o: bound.cross_unit_predecessors(o) for o in ops}
    pred_signals = {
        o: tuple(op_completion(p) for p in preds[o]) for o in ops
    }

    # Worst-level cycle count: a two-level TAU has one extension state
    # (the paper's S_i'); deeper telescopes chain further extensions.
    max_cycles = (
        bound.allocation.max_cycles_for(unit_name) if telescopic else 1
    )
    states: list[str] = []
    transitions: list[Transition] = []
    for op in ops:
        if pred_signals[op]:
            states.append(state_ready(op))
        states.append(state_exec(op))
        for phase in range(2, max_cycles + 1):
            states.append(state_extend(op, phase))

    inputs: list[str] = []
    if telescopic:
        inputs.append(unit_completion(unit_name))
    for op in ops:
        for signal in pred_signals[op]:
            if signal not in inputs:
                inputs.append(signal)

    outputs: list[str] = []
    for op in ops:
        outputs.extend(
            (operand_fetch(op), register_enable(op), op_completion(op))
        )

    c_t = unit_completion(unit_name)
    count = len(ops)
    for i, op in enumerate(ops):
        nxt = ops[(i + 1) % count]
        nxt_preds = pred_signals[nxt]
        completing_outputs = (
            operand_fetch(op),
            register_enable(op),
            op_completion(op),
        )

        def completing(source: str, base: "dict[str, bool]") -> None:
            """Step-3/4 transitions out of a (last) execution cycle."""
            if nxt_preds:
                guard = dict(base)
                guard.update(all_cube(nxt_preds))
                transitions.append(
                    make_transition(
                        source,
                        state_exec(nxt),
                        guard,
                        completing_outputs,
                        starts=(nxt,),
                        completes=(op,),
                        queries=nxt,
                    )
                )
                for cube in not_all_cubes(nxt_preds):
                    guard = dict(base)
                    guard.update(cube)
                    transitions.append(
                        make_transition(
                            source,
                            state_ready(nxt),
                            guard,
                            completing_outputs,
                            completes=(op,),
                            queries=nxt,
                        )
                    )
            else:
                transitions.append(
                    make_transition(
                        source,
                        state_exec(nxt),
                        dict(base),
                        completing_outputs,
                        starts=(nxt,),
                        completes=(op,),
                    )
                )

        if telescopic:
            # [S_i -> S_i'] : C_T' / OF_i  (extension, operands held),
            # chained once per extra cycle of the worst telescope level.
            cycle_states = [state_exec(op)] + [
                state_extend(op, phase)
                for phase in range(2, max_cycles + 1)
            ]
            for current, nxt_state in zip(cycle_states, cycle_states[1:]):
                transitions.append(
                    make_transition(
                        current,
                        nxt_state,
                        {c_t: False},
                        (operand_fetch(op),),
                    )
                )
                # [S -> ...] : C_T · (preds) / OF_i RE_i CC_i
                completing(current, {c_t: True})
            # Last cycle always completes: (preds) / OF_i RE_i CC_i
            completing(cycle_states[-1], {})
        else:
            completing(state_exec(op), {})

        # Ready-state self-loop and release (step 4).
        my_preds = pred_signals[op]
        if my_preds:
            transitions.append(
                make_transition(
                    state_ready(op),
                    state_exec(op),
                    all_cube(my_preds),
                    (),
                    starts=(op,),
                    queries=op,
                )
            )
            for cube in not_all_cubes(my_preds):
                transitions.append(
                    make_transition(
                        state_ready(op),
                        state_ready(op),
                        cube,
                        (),
                        queries=op,
                    )
                )

    first = ops[0]
    if pred_signals[first]:
        initial = state_ready(first)
        initial_starts: frozenset[str] = frozenset()
    else:
        initial = state_exec(first)
        initial_starts = frozenset({first})

    fsm = FSM(
        name=f"D-FSM-{unit_name}",
        states=tuple(states),
        initial=initial,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        transitions=tuple(transitions),
        initial_starts=initial_starts,
    )
    fsm.validate()
    return fsm


def derive_all_unit_controllers(
    bound: BoundDataflowGraph,
) -> dict[str, FSM]:
    """Controllers for every unit with at least one bound operation."""
    return {
        unit.name: derive_unit_controller(bound, unit.name)
        for unit in bound.used_units()
    }
