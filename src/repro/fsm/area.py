"""FSM area estimation (the paper's Table 1 columns).

Two estimation paths:

* **exact** — encode the states, build the truth table of every next-state
  bit and output signal (unused state codes and unreachable input combos
  are don't-cares), minimize each with the Quine–McCluskey engine and count
  literals.  Used whenever the total input width (state bits + FSM inputs)
  fits :data:`repro.logic.quine_mccluskey.EXACT_WIDTH_LIMIT`.
* **structural** — count each transition as one AND term (state-decode
  literals + guard literals) feeding OR planes per next-state bit and
  output.  Used for one-hot encodings and very large product FSMs.

Both report the same columns as Table 1: I/O, states, FFs, and
combinational / sequential area (sequential = 11 units per flip-flop, the
paper's visible convention).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..logic.area import (
    AREA_PER_FLIP_FLOP,
    FunctionArea,
    LogicBlockArea,
    function_area,
)
from ..logic.quine_mccluskey import EXACT_WIDTH_LIMIT
from ..logic.terms import BooleanFunction
from .encode import StateEncoding, encode
from .model import FSM


@dataclass(frozen=True)
class FSMAreaReport:
    """Table-1-style area report for one synthesized FSM."""

    name: str
    num_inputs: int
    num_outputs: int
    num_states: int
    num_flip_flops: int
    combinational_area: float
    sequential_area: float
    method: str

    @property
    def total_area(self) -> float:
        return self.combinational_area + self.sequential_area

    def io_column(self) -> str:
        """The paper's ``I/O`` column text."""
        return f"{self.num_inputs}/{self.num_outputs}"

    def area_column(self) -> str:
        """The paper's ``Area(Com./Seq.)`` column text."""
        return (
            f"{self.combinational_area:.0f} / {self.sequential_area:.0f}"
        )

    def describe(self) -> str:
        return (
            f"{self.name}: I/O {self.io_column()}, "
            f"{self.num_states} states, {self.num_flip_flops} FFs, "
            f"area {self.area_column()} [{self.method}]"
        )


def _exact_functions(
    fsm: FSM, encoding: StateEncoding
) -> tuple[FunctionArea, ...]:
    """Truth-table construction + minimization of every logic function."""
    state_width = encoding.width
    inputs = fsm.inputs
    total_width = state_width + len(inputs)
    next_ones: dict[int, set[int]] = {b: set() for b in range(state_width)}
    output_ones: dict[str, set[int]] = {o: set() for o in fsm.outputs}
    care_points: set[int] = set()
    for state in fsm.states:
        base = encoding.code_of(state)
        for values in itertools.product(
            (False, True), repeat=len(inputs)
        ):
            valuation = dict(zip(inputs, values))
            transition = fsm.step(state, valuation)
            point = base
            for i, value in enumerate(values):
                if value:
                    point |= 1 << (state_width + i)
            care_points.add(point)
            target_code = encoding.code_of(transition.target)
            for bit in range(state_width):
                if (target_code >> bit) & 1:
                    next_ones[bit].add(point)
            for signal in transition.outputs:
                output_ones[signal].add(point)
    dont_cares = frozenset(
        p for p in range(1 << total_width) if p not in care_points
    )
    functions = []
    for bit in range(state_width):
        functions.append(
            function_area(
                f"{fsm.name}.ns{bit}",
                BooleanFunction(
                    width=total_width,
                    ones=frozenset(next_ones[bit]),
                    dont_cares=dont_cares,
                ),
            )
        )
    for signal in fsm.outputs:
        functions.append(
            function_area(
                f"{fsm.name}.{signal}",
                BooleanFunction(
                    width=total_width,
                    ones=frozenset(output_ones[signal]),
                    dont_cares=dont_cares,
                ),
            )
        )
    return tuple(functions)


def _structural_functions(
    fsm: FSM, encoding: StateEncoding
) -> tuple[FunctionArea, ...]:
    """Term-counting estimate without boolean minimization."""
    one_hot = encoding.style == "one-hot"
    state_literals = 1 if one_hot else encoding.width
    term_literals: dict[str, int] = {}  # per-function literal totals
    term_counts: dict[str, int] = {}

    def feed(function: str, literals: int) -> None:
        term_literals[function] = term_literals.get(function, 0) + literals
        term_counts[function] = term_counts.get(function, 0) + 1

    for t in fsm.transitions:
        literals = state_literals + len(t.guard)
        target_code = encoding.code_of(t.target)
        for bit in range(encoding.width):
            if (target_code >> bit) & 1:
                feed(f"ns{bit}", literals)
        for signal in t.outputs:
            feed(signal, literals)
    return tuple(
        FunctionArea(
            name=f"{fsm.name}.{fn}",
            num_terms=term_counts[fn],
            num_literals=term_literals[fn],
        )
        for fn in sorted(term_literals)
    )


def fsm_logic_block(
    fsm: FSM, encoding_style: str = "binary"
) -> LogicBlockArea:
    """Minimized logic block (functions + flip-flops) of an FSM."""
    encoding = encode(fsm, encoding_style)
    total_width = encoding.width + len(fsm.inputs)
    use_exact = (
        encoding.style != "one-hot" and total_width <= EXACT_WIDTH_LIMIT
    )
    if use_exact:
        functions = _exact_functions(fsm, encoding)
    else:
        functions = _structural_functions(fsm, encoding)
    return LogicBlockArea(
        name=fsm.name,
        functions=functions,
        num_flip_flops=encoding.num_flip_flops,
    )


def fsm_area(
    fsm: FSM, encoding_style: str = "binary"
) -> FSMAreaReport:
    """Table-1-style area report of one FSM."""
    encoding = encode(fsm, encoding_style)
    total_width = encoding.width + len(fsm.inputs)
    method = (
        "exact"
        if encoding.style != "one-hot" and total_width <= EXACT_WIDTH_LIMIT
        else "structural"
    )
    block = fsm_logic_block(fsm, encoding_style)
    return FSMAreaReport(
        name=fsm.name,
        num_inputs=len(fsm.inputs),
        num_outputs=len(fsm.outputs),
        num_states=fsm.num_states,
        num_flip_flops=encoding.num_flip_flops,
        combinational_area=block.combinational_area,
        sequential_area=block.sequential_area,
        method=method,
    )


#: Comb. literals charged per completion-arrival latch (set/clear glue).
LATCH_GLUE_LITERALS = 4.0


def latch_area(num_latches: int) -> tuple[float, float]:
    """(combinational, sequential) area of completion-arrival latches."""
    return (
        LATCH_GLUE_LITERALS * num_latches,
        AREA_PER_FLIP_FLOP * num_latches,
    )
