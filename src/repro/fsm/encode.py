"""State encodings for FSM synthesis."""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping

from ..errors import FSMError
from .model import FSM


@dataclass(frozen=True)
class StateEncoding:
    """Assignment of binary codes to FSM states."""

    style: str
    width: int
    codes: Mapping[str, int]

    def code_of(self, state: str) -> int:
        try:
            return self.codes[state]
        except KeyError:
            raise FSMError(f"state {state!r} has no code") from None

    def used_codes(self) -> frozenset[int]:
        return frozenset(self.codes.values())

    @property
    def num_flip_flops(self) -> int:
        """One flip-flop per code bit."""
        return self.width


def binary_encoding(fsm: FSM) -> StateEncoding:
    """Minimum-width binary encoding in state-declaration order."""
    width = max(1, math.ceil(math.log2(max(1, fsm.num_states))))
    codes = {state: i for i, state in enumerate(fsm.states)}
    return StateEncoding(style="binary", width=width, codes=codes)


def one_hot_encoding(fsm: FSM) -> StateEncoding:
    """One flip-flop per state."""
    codes = {state: 1 << i for i, state in enumerate(fsm.states)}
    return StateEncoding(style="one-hot", width=fsm.num_states, codes=codes)


def gray_encoding(fsm: FSM) -> StateEncoding:
    """Gray-code encoding (adjacent declaration order differs in one bit)."""
    width = max(1, math.ceil(math.log2(max(1, fsm.num_states))))
    codes = {
        state: i ^ (i >> 1) for i, state in enumerate(fsm.states)
    }
    return StateEncoding(style="gray", width=width, codes=codes)


_ENCODERS = {
    "binary": binary_encoding,
    "one-hot": one_hot_encoding,
    "gray": gray_encoding,
}


def encode(fsm: FSM, style: str = "binary") -> StateEncoding:
    """Encode an FSM's states with a named style."""
    try:
        encoder = _ENCODERS[style]
    except KeyError:
        raise FSMError(
            f"unknown encoding style {style!r}; choose from "
            f"{sorted(_ENCODERS)}"
        ) from None
    return encoder(fsm)
