"""Centralized TAUBM FSMs (paper §2.2 and Fig. 4(b)).

The synchronized centralized controller — the paper's **CENT-SYNC-FSM** —
is the natural multi-TAU expansion of Benini's TAUBM: one state per time
step, and for steps containing TAU operations a conditional extension
state entered unless *all* the step's telescopic units report completion
(the ``C_TM1 · C_TM2`` conjunction of Fig. 4(b)).  With a single TAU this
reduces exactly to the Fig. 2(c) machine.

Synchronization is the point: every operation of a step — including fast
TAU operations and fixed-delay operations — latches its result at the end
of the step, so independent operations in different steps can never
overlap beyond what the time-step schedule already encodes.  Both problems
of §2.3 (the ``1 − Pⁿ`` extension probability and the lost concurrency)
are visible consequences reproduced by the simulator and the analytic
model.
"""

from __future__ import annotations

from ..binding.binder import BoundDataflowGraph
from ..errors import FSMError
from ..scheduling.schedule import TaubmSchedule
from .model import FSM, Transition, all_cube, make_transition, not_all_cubes
from .signals import (
    operand_fetch,
    register_enable,
    unit_completion,
)


def _step_state(index: int) -> str:
    return f"T{index}"


def _extension_state(index: int, phase: int = 2) -> str:
    """Extension state(s) of a step; phase 2 is the paper's ``T_i'``."""
    if phase == 2:
        return f"TX{index}"
    return f"TX{index}_{phase}"


def derive_cent_sync_fsm(
    taubm: TaubmSchedule,
    bound: BoundDataflowGraph,
    name: str = "CENT-SYNC-FSM",
) -> FSM:
    """Derive the synchronized centralized TAUBM FSM.

    ``bound`` supplies the operation→unit binding, needed because the
    completion guard of a step is the conjunction of the *unit* completion
    signals hosting the step's TAU operations.
    """
    if not taubm.steps:
        raise FSMError("TAUBM schedule has no steps")
    states: list[str] = []
    inputs: list[str] = []
    outputs: list[str] = []
    transitions: list[Transition] = []

    step_units: list[tuple[str, ...]] = []
    step_cycles: list[int] = []
    for step in taubm.steps:
        units = []
        for op in step.tau_ops:
            unit = bound.unit_of(op)
            if not unit.is_telescopic:
                raise FSMError(
                    f"op {op!r} marked telescopic in the schedule but bound "
                    f"to fixed unit {unit.name!r}"
                )
            if unit.name in units:
                raise FSMError(
                    f"two TAU ops of step {step.index} share unit "
                    f"{unit.name!r}; the time-step schedule is infeasible"
                )
            units.append(unit.name)
        step_units.append(tuple(units))
        # Worst-case cycles of this step: the slowest telescope level of
        # any of its units (1 for TAU-free steps).
        max_cycles = max(
            (bound.allocation.max_cycles_for(u) for u in units), default=1
        )
        step_cycles.append(max_cycles)
        states.append(_step_state(step.index))
        for phase in range(2, max_cycles + 1):
            states.append(_extension_state(step.index, phase))
        for u in units:
            signal = unit_completion(u)
            if signal not in inputs:
                inputs.append(signal)
        for op in step.ops:
            outputs.extend((operand_fetch(op), register_enable(op)))

    num_steps = len(taubm.steps)
    for step, units, max_cycles in zip(taubm.steps, step_units, step_cycles):
        next_index = (step.index + 1) % num_steps
        next_ops = taubm.steps[next_index].ops
        fetch = tuple(operand_fetch(op) for op in step.ops)
        latch = fetch + tuple(register_enable(op) for op in step.ops)
        completion_signals = tuple(unit_completion(u) for u in units)
        if step.has_extension:
            cycle_states = [_step_state(step.index)] + [
                _extension_state(step.index, phase)
                for phase in range(2, max_cycles + 1)
            ]
            for current, extension in zip(cycle_states, cycle_states[1:]):
                transitions.append(
                    make_transition(
                        current,
                        _step_state(next_index),
                        all_cube(completion_signals),
                        latch,
                        starts=next_ops,
                        completes=step.ops,
                    )
                )
                for cube in not_all_cubes(completion_signals):
                    transitions.append(
                        make_transition(current, extension, cube, fetch)
                    )
            transitions.append(
                make_transition(
                    cycle_states[-1],
                    _step_state(next_index),
                    {},
                    latch,
                    starts=next_ops,
                    completes=step.ops,
                )
            )
        else:
            transitions.append(
                make_transition(
                    _step_state(step.index),
                    _step_state(next_index),
                    {},
                    latch,
                    starts=next_ops,
                    completes=step.ops,
                )
            )

    fsm = FSM(
        name=name,
        states=tuple(states),
        initial=_step_state(0),
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        transitions=tuple(transitions),
        initial_starts=frozenset(taubm.steps[0].ops),
    )
    fsm.validate()
    return fsm
