"""FSM optimizations: reachability pruning and signal pruning.

The distributed integrator (paper Fig. 7) removes completion signals no
other controller listens to ("C_CO(0) is removed since any other
controllers do not receive it"); :func:`prune_outputs` implements that as a
generic output-signal restriction.  :func:`remove_unreachable_states` keeps
generated FSMs tight after transformations.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import FSMError
from .model import FSM, Transition


def remove_unreachable_states(fsm: FSM) -> FSM:
    """Drop states (and their transitions) unreachable from the initial."""
    reachable = {fsm.initial}
    frontier = [fsm.initial]
    while frontier:
        state = frontier.pop()
        for t in fsm.transitions_from(state):
            if t.target not in reachable:
                reachable.add(t.target)
                frontier.append(t.target)
    if reachable == set(fsm.states):
        return fsm
    states = tuple(s for s in fsm.states if s in reachable)
    transitions = tuple(
        t for t in fsm.transitions if t.source in reachable
    )
    referenced_inputs = {
        name for t in transitions for name, _ in t.guard
    }
    referenced_outputs = set().union(
        *(t.outputs for t in transitions)
    ) if transitions else set()
    pruned = FSM(
        name=fsm.name,
        states=states,
        initial=fsm.initial,
        inputs=tuple(i for i in fsm.inputs if i in referenced_inputs),
        outputs=tuple(o for o in fsm.outputs if o in referenced_outputs),
        transitions=transitions,
        initial_starts=fsm.initial_starts,
    )
    pruned.validate()
    return pruned


def prune_outputs(fsm: FSM, keep: Iterable[str]) -> FSM:
    """Restrict the FSM's outputs to ``keep`` (Fig. 7 signal optimization).

    Transition metadata (``starts``/``completes``) is untouched: pruning a
    wire changes the synthesized interface, never the behaviour.
    """
    keep_set = set(keep)
    unknown = keep_set - set(fsm.outputs)
    if unknown:
        raise FSMError(f"cannot keep undeclared outputs {sorted(unknown)}")
    transitions = tuple(
        Transition(
            source=t.source,
            target=t.target,
            guard=t.guard,
            outputs=frozenset(t.outputs & keep_set),
            starts=t.starts,
            completes=t.completes,
            queries=t.queries,
        )
        for t in fsm.transitions
    )
    pruned = FSM(
        name=fsm.name,
        states=fsm.states,
        initial=fsm.initial,
        inputs=fsm.inputs,
        outputs=tuple(o for o in fsm.outputs if o in keep_set),
        transitions=transitions,
        initial_starts=fsm.initial_starts,
    )
    pruned.validate()
    return pruned


def merge_equivalent_states(fsm: FSM) -> FSM:
    """Classic Moore-style partition refinement on (outputs, successors).

    Conservative state minimization: two states merge when, for every
    input valuation over the union of referenced inputs, they take
    transitions with identical outputs, metadata and equivalent targets.
    Generated controllers are usually already minimal; this pass exists to
    prove it (tests assert no reduction on Algorithm-1 machines).
    """
    names = sorted({n for t in fsm.transitions for n, _ in t.guard})
    import itertools

    valuations = [
        dict(zip(names, values))
        for values in itertools.product((False, True), repeat=len(names))
    ]

    def signature(state: str, classes: dict[str, int]) -> tuple:
        rows = []
        for valuation in valuations:
            t = fsm.step(state, valuation)
            rows.append(
                (classes[t.target], t.outputs, t.starts, t.completes)
            )
        return tuple(rows)

    classes = {state: 0 for state in fsm.states}
    while True:
        signatures = {s: signature(s, classes) for s in fsm.states}
        buckets: dict[tuple, int] = {}
        new_classes: dict[str, int] = {}
        for state in fsm.states:
            key = (classes[state], signatures[state])
            buckets.setdefault(key, len(buckets))
            new_classes[state] = buckets[key]
        if new_classes == classes:
            break
        classes = new_classes
    if len(set(classes.values())) == fsm.num_states:
        return fsm
    representative: dict[int, str] = {}
    for state in fsm.states:  # first state of each class represents it
        representative.setdefault(classes[state], state)
    rename = {s: representative[classes[s]] for s in fsm.states}
    merged_transitions = []
    seen = set()
    for t in fsm.transitions:
        if rename[t.source] != t.source:
            continue
        merged = Transition(
            source=t.source,
            target=rename[t.target],
            guard=t.guard,
            outputs=t.outputs,
            starts=t.starts,
            completes=t.completes,
            queries=t.queries,
        )
        key = (merged.source, merged.target, merged.guard, merged.outputs)
        if key not in seen:
            seen.add(key)
            merged_transitions.append(merged)
    merged_fsm = FSM(
        name=fsm.name,
        states=tuple(
            s for s in fsm.states if rename[s] == s
        ),
        initial=rename[fsm.initial],
        inputs=fsm.inputs,
        outputs=fsm.outputs,
        transitions=tuple(merged_transitions),
        initial_starts=fsm.initial_starts,
    )
    merged_fsm.validate()
    return merged_fsm
