"""Centralized CENT-FSM construction (paper Fig. 4(a)).

The non-synchronized centralized controller tracks every telescopic unit
independently inside one FSM.  We construct it as the *reachable product
automaton* of the distributed per-unit controllers (including the
completion-arrival flags, which become product state bits): by
construction it is cycle-for-cycle equivalent to the distributed control
unit — exactly the paper's observation that "CENT-FSM guarantees
performance as good as DIST-FSM" — while materializing the exponential
state growth the paper warns about (a state with ``n`` TAUs in flight has
``2**n`` outgoing completion-signal combinations).
"""

from __future__ import annotations

from ..binding.binder import BoundDataflowGraph
from ..errors import FSMError
from ..logic.terms import BooleanFunction
from ..logic.quine_mccluskey import minimize
from ..sim.controllers import ControllerSystem, SystemConfig, system_from_bound
from .algorithm1 import derive_all_unit_controllers
from .model import FSM, Transition, make_transition


def _state_label(config: SystemConfig, keys: tuple[str, ...]) -> str:
    body = "/".join(
        f"{key}.{state}" for key, state in zip(keys, config.states)
    )
    if config.flags:
        latched = ",".join(
            f"{key}:{producer}>{consumer}"
            for key, consumer, producer in sorted(config.flags)
        )
        return f"{body}[{latched}]"
    return body


def build_product_fsm(
    system: ControllerSystem,
    name: str = "CENT-FSM",
    max_states: int = 20000,
) -> FSM:
    """Reachable synchronous product of a controller system.

    External inputs are the telescopic units' completion signals; all
    operation-completion exchange and arrival latching is folded into the
    product state.  Guards over the completion signals are minimized per
    (source, target, outputs) group, so a state whose components ignore a
    unit's completion does not enumerate it.
    """
    signals = system.unit_completion_inputs()
    units = tuple(s.removeprefix("C_") for s in signals)
    width = len(signals)

    initial = system.initial_config()
    labels: dict[SystemConfig, str] = {initial: _state_label(initial, system.keys)}
    order: list[SystemConfig] = [initial]
    transitions: list[Transition] = []
    outputs: set[str] = set()

    frontier = [initial]
    while frontier:
        config = frontier.pop()
        # Group the 2**width successor evaluations for guard minimization.
        groups: dict[
            tuple[SystemConfig, frozenset[str], frozenset[str], frozenset[str]],
            set[int],
        ] = {}
        for assignment in range(1 << width):
            values = {
                unit: bool((assignment >> i) & 1)
                for i, unit in enumerate(units)
            }
            step = system.step(config, values)
            key = (step.config, step.outputs, step.starts, step.completes)
            groups.setdefault(key, set()).add(assignment)
        for (next_config, outs, starts, completes), minterms in groups.items():
            if next_config not in labels:
                if len(labels) >= max_states:
                    raise FSMError(
                        f"product FSM exceeds {max_states} states; the "
                        f"exponential growth of Fig. 4(a) is untamable here"
                    )
                labels[next_config] = _state_label(next_config, system.keys)
                order.append(next_config)
                frontier.append(next_config)
            outputs |= outs
            if len(minterms) == 1 << width:
                cubes: tuple = ({},)
            else:
                cover = minimize(
                    BooleanFunction(width=width, ones=frozenset(minterms))
                )
                cubes = tuple(
                    {
                        signals[i]: bool((cube.value >> i) & 1)
                        for i in range(width)
                        if (cube.care >> i) & 1
                    }
                    for cube in cover
                )
            for guard in cubes:
                transitions.append(
                    make_transition(
                        labels[config],
                        labels[next_config],
                        guard,
                        outs,
                        starts=starts,
                        completes=completes,
                    )
                )

    fsm = FSM(
        name=name,
        states=tuple(labels[c] for c in order),
        initial=labels[initial],
        inputs=signals,
        outputs=tuple(sorted(outputs)),
        transitions=tuple(transitions),
        initial_starts=system.initial_starts(),
    )
    fsm.validate()
    return fsm


def build_cent_fsm(
    bound: BoundDataflowGraph,
    name: str = "CENT-FSM",
    max_states: int = 20000,
) -> FSM:
    """CENT-FSM of a bound graph (product of its Algorithm-1 controllers)."""
    controllers = derive_all_unit_controllers(bound)
    system = system_from_bound(bound, controllers)
    return build_product_fsm(system, name=name, max_states=max_states)
