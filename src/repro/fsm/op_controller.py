"""Per-operation controllers (the [3]-style baseline of the paper's intro).

De Micheli's alternative granularity: one small independent controller per
*operation* rather than per arithmetic unit.  Concurrency is fully
preserved (like the distributed per-unit scheme), but the controller count
— and with it the latch and wiring overhead — grows with the number of
operations instead of the number of units, the "rapid area increase"
problem the paper cites.  Implemented as an extension so the area
comparison can be reproduced quantitatively.

Unit sharing is serialized by tokens along the binding chain: each
operation waits for its chain predecessor's completion signal, and the
first operation of a chain waits (from the second iteration on) for the
chain's last operation — the wrap-around interlock that keeps one-op-at-a-
time occupancy of the shared unit.
"""

from __future__ import annotations

from ..binding.binder import BoundDataflowGraph
from ..errors import FSMError
from .model import FSM, Transition, all_cube, make_transition, not_all_cubes
from .signals import (
    op_completion,
    operand_fetch,
    register_enable,
    unit_completion,
)


def _exec_state(op: str) -> str:
    return f"E_{op}"


def _extend_state(op: str) -> str:
    return f"EX_{op}"


def _ready_state(op: str) -> str:
    return f"W_{op}"


def _first_ready_state(op: str) -> str:
    return f"W0_{op}"


def derive_operation_controller(
    bound: BoundDataflowGraph, op_name: str
) -> FSM:
    """Derive the independent controller FSM of one operation."""
    if op_name not in bound.dfg:
        raise FSMError(f"unknown operation {op_name!r}")
    unit = bound.unit_of(op_name)
    telescopic = unit.is_telescopic
    chain = bound.order.chain_of(op_name)
    index = chain.index(op_name)

    data_preds = bound.dfg.predecessors(op_name)
    if len(chain) > 1:
        unit_pred = chain[index - 1] if index > 0 else chain[-1]
    else:
        unit_pred = None
    is_wrap_interlock = unit_pred is not None and index == 0

    steady_preds = list(data_preds)
    if unit_pred is not None and unit_pred not in steady_preds:
        steady_preds.append(unit_pred)
    steady = tuple(op_completion(p) for p in steady_preds)
    first = (
        tuple(op_completion(p) for p in data_preds)
        if is_wrap_interlock
        else steady
    )

    states: list[str] = []
    transitions: list[Transition] = []
    inputs: list[str] = []
    if telescopic:
        inputs.append(unit_completion(unit.name))
    inputs.extend(s for s in steady if s not in inputs)
    outputs = (
        operand_fetch(op_name),
        register_enable(op_name),
        op_completion(op_name),
    )

    if first and first != steady:
        states.append(_first_ready_state(op_name))
    if steady:
        states.append(_ready_state(op_name))
    states.append(_exec_state(op_name))
    if telescopic:
        states.append(_extend_state(op_name))

    after_exec = _ready_state(op_name) if steady else _exec_state(op_name)

    def completing(source: str, base: "dict[str, bool]") -> None:
        starts = (op_name,) if after_exec == _exec_state(op_name) else ()
        transitions.append(
            make_transition(
                source,
                after_exec,
                dict(base),
                outputs,
                starts=starts,
                completes=(op_name,),
            )
        )

    c_t = unit_completion(unit.name)
    if telescopic:
        transitions.append(
            make_transition(
                _exec_state(op_name),
                _extend_state(op_name),
                {c_t: False},
                (operand_fetch(op_name),),
            )
        )
        completing(_exec_state(op_name), {c_t: True})
        completing(_extend_state(op_name), {})
    else:
        completing(_exec_state(op_name), {})

    if steady:
        transitions.append(
            make_transition(
                _ready_state(op_name),
                _exec_state(op_name),
                all_cube(steady),
                (),
                starts=(op_name,),
                queries=op_name,
            )
        )
        for cube in not_all_cubes(steady):
            transitions.append(
                make_transition(
                    _ready_state(op_name),
                    _ready_state(op_name),
                    cube,
                    (),
                    queries=op_name,
                )
            )
    if first and first != steady:
        transitions.append(
            make_transition(
                _first_ready_state(op_name),
                _exec_state(op_name),
                all_cube(first),
                (),
                starts=(op_name,),
                queries=op_name,
            )
        )
        for cube in not_all_cubes(first):
            transitions.append(
                make_transition(
                    _first_ready_state(op_name),
                    _first_ready_state(op_name),
                    cube,
                    (),
                    queries=op_name,
                )
            )

    if not first:
        initial = _exec_state(op_name)
        initial_starts = frozenset({op_name})
    elif first != steady:
        initial = _first_ready_state(op_name)
        initial_starts = frozenset()
    else:
        initial = _ready_state(op_name)
        initial_starts = frozenset()

    fsm = FSM(
        name=f"OP-FSM-{op_name}",
        states=tuple(states),
        initial=initial,
        inputs=tuple(inputs),
        outputs=outputs,
        transitions=tuple(transitions),
        initial_starts=initial_starts,
    )
    fsm.validate()
    return fsm


def derive_all_operation_controllers(
    bound: BoundDataflowGraph,
) -> dict[str, FSM]:
    """One controller per operation, keyed by operation name."""
    return {
        op.name: derive_operation_controller(bound, op.name)
        for op in bound.dfg
    }


def operation_controller_consumes(
    bound: BoundDataflowGraph,
) -> dict[tuple[str, str], tuple[str, ...]]:
    """Consumption wiring for a per-operation controller system."""
    consumes: dict[tuple[str, str], tuple[str, ...]] = {}
    for op in bound.dfg:
        chain = bound.order.chain_of(op.name)
        index = chain.index(op.name)
        preds = list(bound.dfg.predecessors(op.name))
        if len(chain) > 1:
            unit_pred = chain[index - 1] if index > 0 else chain[-1]
            if unit_pred not in preds:
                preds.append(unit_pred)
        if preds:
            consumes[(op.name, op.name)] = tuple(preds)
    return consumes
