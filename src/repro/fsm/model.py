"""Synchronous Mealy FSM model for control units.

Guards are conjunctions of input literals (cubes); a state's outgoing
transitions must be *deterministic* (no two guards overlap) and *complete*
(every input combination matches), which :meth:`FSM.validate` enforces by
exhaustive enumeration over the inputs each state actually references.

Transitions carry two pieces of semantic metadata the paper's figures rely
on (and the simulator interprets):

* ``starts`` — operations that begin executing in the *target* state's
  cycle because this transition was taken,
* ``completes`` — operations that finish during the *source* state's cycle
  when this transition is taken.

Metadata never affects the logic-level view (area, Verilog); it is the
bridge between the FSM artifact and the cycle-accurate semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

from ..errors import FSMError


@dataclass(frozen=True)
class Transition:
    """One guarded transition of a Mealy FSM.

    ``queries`` names the operation whose predecessor-completion tokens the
    guard's ``CC_*`` literals examine (``None`` when the guard has no such
    literals).  The controller runtime needs it because completion-arrival
    latches are kept per dependence *edge*: the same ``CC_p`` wire reads a
    different latch depending on which waiting operation asks.
    """

    source: str
    target: str
    guard: tuple[tuple[str, bool], ...] = ()
    outputs: frozenset[str] = frozenset()
    starts: frozenset[str] = frozenset()
    completes: frozenset[str] = frozenset()
    queries: "str | None" = None

    def __post_init__(self) -> None:
        names = [n for n, _ in self.guard]
        if len(set(names)) != len(names):
            raise FSMError(f"guard references a signal twice: {self.guard}")
        object.__setattr__(self, "guard", tuple(sorted(self.guard)))

    @property
    def guard_dict(self) -> dict[str, bool]:
        """The guard as a mapping (conjunction of literals)."""
        return dict(self.guard)

    def matches(self, inputs: Mapping[str, bool]) -> bool:
        """Whether the guard holds under an input valuation."""
        for name, required in self.guard:
            if name not in inputs:
                raise FSMError(f"input {name!r} missing from valuation")
            if bool(inputs[name]) != required:
                return False
        return True

    def guard_str(self) -> str:
        """Human-readable guard text (``C_T·CC_o3'`` style)."""
        if not self.guard:
            return "1"
        parts = [
            name if required else f"{name}'" for name, required in self.guard
        ]
        return "·".join(parts)

    def __str__(self) -> str:
        outs = " ".join(sorted(self.outputs)) or "-"
        return f"{self.source} --[{self.guard_str()}]/{outs}--> {self.target}"


def make_transition(
    source: str,
    target: str,
    guard: "Mapping[str, bool] | None" = None,
    outputs: Iterable[str] = (),
    starts: Iterable[str] = (),
    completes: Iterable[str] = (),
    queries: "str | None" = None,
) -> Transition:
    """Convenience constructor accepting plain mappings/iterables."""
    return Transition(
        source=source,
        target=target,
        guard=tuple(sorted((guard or {}).items())),
        outputs=frozenset(outputs),
        starts=frozenset(starts),
        completes=frozenset(completes),
        queries=queries,
    )


@dataclass(frozen=True)
class FSM:
    """A deterministic, complete synchronous Mealy machine."""

    name: str
    states: tuple[str, ...]
    initial: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    transitions: tuple[Transition, ...]
    initial_starts: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if len(set(self.states)) != len(self.states):
            raise FSMError(f"FSM {self.name!r} has duplicate states")
        if self.initial not in self.states:
            raise FSMError(
                f"FSM {self.name!r}: initial state {self.initial!r} unknown"
            )
        state_set = set(self.states)
        input_set = set(self.inputs)
        output_set = set(self.outputs)
        for t in self.transitions:
            if t.source not in state_set or t.target not in state_set:
                raise FSMError(f"transition {t} references unknown states")
            for name, _ in t.guard:
                if name not in input_set:
                    raise FSMError(
                        f"transition {t} guards on undeclared input {name!r}"
                    )
            if not t.outputs <= output_set:
                raise FSMError(
                    f"transition {t} asserts undeclared outputs "
                    f"{sorted(t.outputs - output_set)}"
                )
        # Per-state transition index: ``step`` runs once per controller
        # per simulated clock edge, so the linear scan over *all*
        # transitions it replaces dominated large simulations.
        by_source: dict[str, list[Transition]] = {s: [] for s in self.states}
        for t in self.transitions:
            by_source[t.source].append(t)
        object.__setattr__(
            self,
            "_by_source",
            {s: tuple(ts) for s, ts in by_source.items()},
        )

    # -- structure -------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    def transitions_from(self, state: str) -> tuple[Transition, ...]:
        """Outgoing transitions of a state, declaration order."""
        by_source = self._by_source  # type: ignore[attr-defined]
        try:
            return by_source[state]
        except KeyError:
            return ()

    def referenced_inputs(self, state: str) -> tuple[str, ...]:
        """Inputs appearing in some guard of a state, sorted."""
        names: set[str] = set()
        for t in self.transitions_from(state):
            names.update(n for n, _ in t.guard)
        return tuple(sorted(names))

    # -- validation --------------------------------------------------------
    def validate(self) -> None:
        """Enforce determinism and completeness of every state.

        For each state, enumerate every valuation of the inputs its guards
        reference and require exactly one matching transition.
        """
        for state in self.states:
            outgoing = self.transitions_from(state)
            if not outgoing:
                raise FSMError(
                    f"FSM {self.name!r}: state {state!r} has no transitions"
                )
            names = self.referenced_inputs(state)
            for values in itertools.product((False, True), repeat=len(names)):
                valuation = dict(zip(names, values))
                matching = [t for t in outgoing if t.matches(valuation)]
                if len(matching) == 0:
                    raise FSMError(
                        f"FSM {self.name!r}: state {state!r} incomplete "
                        f"under {valuation}"
                    )
                if len(matching) > 1:
                    raise FSMError(
                        f"FSM {self.name!r}: state {state!r} "
                        f"nondeterministic under {valuation}: "
                        f"{[str(t) for t in matching]}"
                    )

    # -- execution -----------------------------------------------------------
    def step(
        self, state: str, inputs: Mapping[str, bool]
    ) -> Transition:
        """The unique transition taken from ``state`` under ``inputs``.

        ``inputs`` must provide values for every input the state's guards
        reference (providing all declared inputs is always safe).
        """
        for t in self.transitions_from(state):
            if t.matches(inputs):
                return t
        raise FSMError(
            f"FSM {self.name!r}: no transition from {state!r} under "
            f"{dict(inputs)}"
        )

    # -- reporting ----------------------------------------------------------
    def logical_transitions(
        self,
    ) -> tuple[tuple[str, str, frozenset[str], tuple[Transition, ...]], ...]:
        """Group guard cubes by (source, target, outputs).

        The paper draws one edge per *logical* transition (e.g. the ten
        numbered edges of Fig. 6) even when its guard is a disjunction the
        cube representation splits; this view restores that level.
        """
        groups: dict[
            tuple[str, str, frozenset[str]], list[Transition]
        ] = {}
        for t in self.transitions:
            groups.setdefault((t.source, t.target, t.outputs), []).append(t)
        return tuple(
            (src, dst, outs, tuple(cubes))
            for (src, dst, outs), cubes in groups.items()
        )

    def describe(self) -> str:
        """Multi-line listing of states and transitions."""
        lines = [
            f"FSM {self.name!r}: {self.num_states} states, "
            f"{len(self.inputs)} inputs, {len(self.outputs)} outputs, "
            f"initial {self.initial!r}"
        ]
        for t in self.transitions:
            lines.append(f"  {t}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """GraphViz rendering with logical (grouped) edges."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for state in self.states:
            shape = "doublecircle" if state == self.initial else "circle"
            lines.append(f'  "{state}" [shape={shape}];')
        for src, dst, outs, cubes in self.logical_transitions():
            guard = " + ".join(c.guard_str() for c in cubes)
            label = f"{guard} / {' '.join(sorted(outs)) or '-'}"
            lines.append(f'  "{src}" -> "{dst}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"


def not_all_cubes(signals: Sequence[str]) -> tuple[dict[str, bool], ...]:
    """Disjoint cubes covering ``NOT (AND of signals)``.

    The paper writes guards like ``(C_PO s)'`` — "not all predecessors
    done".  That is not a single conjunction, so builders expand it into
    the standard disjoint chain: ``s0'``, ``s0·s1'``, ``s0·s1·s2'``, ...
    """
    cubes = []
    for i, signal in enumerate(signals):
        cube = {s: True for s in signals[:i]}
        cube[signal] = False
        cubes.append(cube)
    return tuple(cubes)


def all_cube(signals: Sequence[str]) -> dict[str, bool]:
    """The conjunction cube requiring every signal high."""
    return {s: True for s in signals}
