"""String-keyed registries for the pipeline's pluggable stages.

Four registries cover the variation points of the flow: time-step
schedulers, order-objective heuristics, binders and controller backends.
Entries are plain callables with a uniform signature — positional
artifacts, a keyword-only ``diagnostics`` list the callable may append
structured events to (they land in the run manifest), and free keyword
options.  Registering a new entry makes it reachable from
``synthesize()``, ``repro synth --scheduler`` and ``repro pipeline``
without touching any pass code.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from collections.abc import Callable, Iterator

from ..binding.binder import bind
from ..control.distributed import build_distributed_control_unit
from ..core.analysis import schedule_length
from ..errors import (
    PipelineError,
    SchedulingError,
    SchedulingFallbackWarning,
)
from ..fsm.product import build_cent_fsm
from ..fsm.taubm import derive_cent_sync_fsm
from ..scheduling.asap_alap import alap_schedule, asap_schedule
from ..scheduling.exact import MAX_VISITED_STATES, exact_schedule
from ..scheduling.force_directed import force_directed_schedule
from ..scheduling.list_scheduler import list_schedule
from ..scheduling.order_based import order_based_schedule


@dataclass(frozen=True)
class RegistryEntry:
    """One registered stage implementation."""

    name: str
    fn: Callable
    summary: str


class Registry:
    """An ordered, string-keyed registry of stage implementations."""

    def __init__(
        self, kind: str, error: type = PipelineError
    ) -> None:
        self.kind = kind
        self._error = error
        self._entries: dict[str, RegistryEntry] = {}

    def register(
        self, name: str, fn: "Callable | None" = None, *, summary: str = ""
    ):
        """Register an implementation (usable as a decorator)."""

        def _add(fn: Callable) -> Callable:
            if name in self._entries:
                raise PipelineError(
                    f"{self.kind} {name!r} is already registered"
                )
            self._entries[name] = RegistryEntry(
                name=name, fn=fn, summary=summary
            )
            return fn

        return _add(fn) if fn is not None else _add

    def get(self, name: str) -> Callable:
        """Look an implementation up; unknown names list the choices."""
        entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(repr(n) for n in self.names())
            raise self._error(
                f"unknown {self.kind} {name!r}; choose {known}"
            )
        return entry.fn

    def names(self) -> tuple[str, ...]:
        """Registered names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[RegistryEntry]:
        for name in self.names():
            yield self._entries[name]


SCHEDULERS = Registry("scheduler", error=SchedulingError)
ORDER_OBJECTIVES = Registry("order objective", error=SchedulingError)
BINDERS = Registry("binder")
CONTROLLER_BACKENDS = Registry("controller backend")


# ----------------------------------------------------------------------
# Schedulers: (dfg, allocation, *, diagnostics, **options) -> schedule
# ----------------------------------------------------------------------
@SCHEDULERS.register(
    "list", summary="priority list scheduling (resource-constrained)"
)
def _list_scheduler(dfg, allocation, *, diagnostics, **options):
    return list_schedule(dfg, allocation)


@SCHEDULERS.register(
    "exact",
    summary="branch-and-bound minimum latency; falls back to 'list'",
)
def _exact_scheduler(
    dfg,
    allocation,
    *,
    diagnostics,
    max_visited: int = MAX_VISITED_STATES,
    **options,
):
    try:
        return exact_schedule(dfg, allocation, max_visited=max_visited)
    except SchedulingError as error:
        message = (
            f"exact scheduler fell back to list scheduling on "
            f"{dfg.name!r}: {error}"
        )
        warnings.warn(message, SchedulingFallbackWarning, stacklevel=2)
        diagnostics.append(
            {
                "event": "scheduler-fallback",
                "requested": "exact",
                "used": "list",
                "reason": str(error),
            }
        )
        return list_schedule(dfg, allocation)


@SCHEDULERS.register(
    "force-directed",
    summary="Paulin-Knight force-directed, horizon grown to fit units",
)
def _force_directed_scheduler(
    dfg,
    allocation,
    *,
    diagnostics,
    horizon: "int | None" = None,
    **options,
):
    critical = schedule_length(dfg)
    start = critical if horizon is None else horizon
    limit = start if horizon is not None else critical + len(dfg)
    for steps in range(start, limit + 1):
        schedule = force_directed_schedule(dfg, horizon=steps)
        usage = schedule.resource_usage()
        if all(
            count <= allocation.count(rc) for rc, count in usage.items()
        ):
            if steps != start:
                diagnostics.append(
                    {
                        "event": "horizon-extended",
                        "from": start,
                        "to": steps,
                        "reason": "allocation tighter than the "
                        "critical-path concurrency",
                    }
                )
            return schedule
    raise SchedulingError(
        f"force-directed scheduling found no allocation-feasible "
        f"schedule within horizon {limit}"
    )


def _check_fits_allocation(schedule, allocation, name: str):
    over = {
        rc.value: (count, allocation.count(rc))
        for rc, count in schedule.resource_usage().items()
        if count > allocation.count(rc)
    }
    if over:
        detail = ", ".join(
            f"{rc}: needs {need}, allocated {have}"
            for rc, (need, have) in sorted(over.items())
        )
        raise SchedulingError(
            f"{name} schedule exceeds the allocation ({detail}); "
            f"{name} scheduling is resource-unconstrained — use 'list', "
            f"'exact' or 'force-directed', or allocate more units"
        )
    return schedule


@SCHEDULERS.register(
    "asap", summary="as soon as possible (must fit the allocation)"
)
def _asap_scheduler(dfg, allocation, *, diagnostics, **options):
    return _check_fits_allocation(asap_schedule(dfg), allocation, "asap")


@SCHEDULERS.register(
    "alap", summary="as late as possible (must fit the allocation)"
)
def _alap_scheduler(
    dfg, allocation, *, diagnostics, horizon: "int | None" = None, **options
):
    return _check_fits_allocation(
        alap_schedule(dfg, horizon=horizon), allocation, "alap"
    )


# ----------------------------------------------------------------------
# Order objectives:
#   (dfg, allocation, schedule, *, diagnostics, **options) -> order
# ----------------------------------------------------------------------
@ORDER_OBJECTIVES.register(
    "latency", summary="each op joins the unit that frees earliest"
)
def _latency_objective(dfg, allocation, schedule, *, diagnostics, **options):
    return order_based_schedule(
        dfg, allocation, schedule, objective="latency"
    )


@ORDER_OBJECTIVES.register(
    "communication",
    summary="prefer the unit holding a data neighbour (fewer wires)",
)
def _communication_objective(
    dfg, allocation, schedule, *, diagnostics, **options
):
    return order_based_schedule(
        dfg, allocation, schedule, objective="communication"
    )


# ----------------------------------------------------------------------
# Binders: (dfg, allocation, order, *, diagnostics, **options) -> bound
# ----------------------------------------------------------------------
@BINDERS.register(
    "chain", summary="i-th chain of a class onto the i-th unit (Fig. 3c)"
)
def _chain_binder(dfg, allocation, order, *, diagnostics, **options):
    return bind(dfg, allocation, order)


# ----------------------------------------------------------------------
# Controller backends
# ----------------------------------------------------------------------
@CONTROLLER_BACKENDS.register(
    "dist", summary="distributed per-unit controllers (paper §4.1)"
)
def _dist_backend(bound, taubm, *, diagnostics, **options):
    return build_distributed_control_unit(bound)


@CONTROLLER_BACKENDS.register(
    "cent-sync", summary="synchronized centralized TAUBM FSM (Fig. 4b)"
)
def _cent_sync_backend(bound, taubm, *, diagnostics, **options):
    return derive_cent_sync_fsm(taubm, bound)


@CONTROLLER_BACKENDS.register(
    "cent", summary="full centralized product FSM (Fig. 4a)"
)
def _cent_backend(bound, taubm, *, diagnostics, **options):
    return build_cent_fsm(bound)
