"""Provenance manifest of one pipeline run.

Every executed pass appends a :class:`PassRecord`: the fingerprints of
the artifacts it read, the options it ran with, the fingerprints of the
artifacts it produced, structured diagnostics (scheduler fallbacks,
horizon extensions, ...) and its wall time.  The canonical JSON form
excludes wall times, so two fresh runs over the same inputs serialize
to byte-identical text and can be diffed or committed as goldens.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any

from ..errors import PipelineError

MANIFEST_FORMAT = 1

#: status values a pass record may carry
COMPUTED = "computed"
CACHED = "cached"


@dataclass(frozen=True)
class PassRecord:
    """Provenance of one executed pass."""

    name: str
    status: str
    inputs: Mapping[str, str]
    options: Mapping[str, Any]
    outputs: Mapping[str, str]
    diagnostics: tuple[Mapping[str, Any], ...] = ()
    cache_key: "str | None" = None
    wall_time_s: float = 0.0

    @property
    def cacheable(self) -> bool:
        """Whether this pass participates in the artifact cache."""
        return self.cache_key is not None

    def to_dict(self, timing: bool = False) -> dict[str, Any]:
        """JSON-compatible record; ``timing`` adds the wall time."""
        data: dict[str, Any] = {
            "pass": self.name,
            "status": self.status,
            "inputs": dict(sorted(self.inputs.items())),
            "options": dict(sorted(self.options.items())),
            "outputs": dict(sorted(self.outputs.items())),
            "diagnostics": [dict(d) for d in self.diagnostics],
            "cache_key": self.cache_key,
        }
        if timing:
            data["wall_time_s"] = self.wall_time_s
        return data


@dataclass
class RunManifest:
    """Ordered provenance of one pass-manager run."""

    pipeline: str = "synthesis"
    records: list[PassRecord] = field(default_factory=list)

    def append(self, record: PassRecord) -> None:
        self.records.append(record)

    def record_for(self, pass_name: str) -> PassRecord:
        """The record of a named pass (latest wins on re-runs)."""
        for record in reversed(self.records):
            if record.name == pass_name:
                return record
        raise PipelineError(
            f"pass {pass_name!r} has no record in this manifest"
        )

    def pass_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.records)

    def diagnostics(self) -> tuple[Mapping[str, Any], ...]:
        """All structured diagnostics, flattened in pass order."""
        return tuple(
            dict(d, **{"pass": r.name})
            for r in self.records
            for d in r.diagnostics
        )

    def all_cached(self) -> bool:
        """Whether every cacheable pass was satisfied from cache."""
        cacheable = [r for r in self.records if r.cacheable]
        return bool(cacheable) and all(
            r.status == CACHED for r in cacheable
        )

    def cache_summary(self) -> str:
        """Human-readable ``hits/cacheable`` counter, e.g. ``"5/6"``."""
        cacheable = [r for r in self.records if r.cacheable]
        hits = sum(1 for r in cacheable if r.status == CACHED)
        return f"{hits}/{len(cacheable)}"

    def to_dict(self, timing: bool = False) -> dict[str, Any]:
        """JSON-compatible manifest; byte-stable when ``timing=False``.

        The status field is included: two fresh runs agree on it, and a
        cached re-run differs exactly where it was served from cache —
        which is precisely the information a provenance diff should show.
        Artifact fingerprints are identical either way.
        """
        return {
            "format": MANIFEST_FORMAT,
            "pipeline": self.pipeline,
            "passes": [r.to_dict(timing=timing) for r in self.records],
        }

    def to_json(self, timing: bool = False, indent: int = 2) -> str:
        """Canonical JSON text (sorted keys, stable separators)."""
        return json.dumps(
            self.to_dict(timing=timing), indent=indent, sort_keys=True
        )

    def render(self) -> str:
        """Terminal-friendly per-pass summary table."""
        lines = [f"pipeline {self.pipeline!r}:"]
        for record in self.records:
            produced = ", ".join(
                f"{name}={fp[:12]}" for name, fp in record.outputs.items()
            )
            suffix = f" -> {produced}" if produced else ""
            lines.append(
                f"  {record.name:<12} {record.status:<9} "
                f"{1e3 * record.wall_time_s:8.1f} ms{suffix}"
            )
            for diag in record.diagnostics:
                event = diag.get("event", "diagnostic")
                detail = ", ".join(
                    f"{k}={v}" for k, v in sorted(diag.items())
                    if k != "event"
                )
                lines.append(f"    ! {event}: {detail}")
        lines.append(f"  cache: {self.cache_summary()} passes from cache")
        return "\n".join(lines)
