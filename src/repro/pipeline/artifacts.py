"""The typed artifact store the pass manager runs over.

Every pass reads and writes named artifacts; the store enforces that
each name carries exactly the declared type, so a miswired pass fails
loudly at the boundary instead of deep inside a downstream consumer.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from ..binding.binder import BoundDataflowGraph
from ..control.distributed import DistributedControlUnit
from ..core.dfg import DataflowGraph
from ..errors import PipelineError
from ..fsm.model import FSM
from ..resources.allocation import ResourceAllocation
from ..scheduling.schedule import (
    OrderSchedule,
    TaubmSchedule,
    TimeStepSchedule,
)

#: Declared artifact names and the type each one must carry.
ARTIFACT_TYPES: Mapping[str, type] = {
    "dfg": DataflowGraph,
    "allocation": ResourceAllocation,
    "schedule": TimeStepSchedule,
    "order": OrderSchedule,
    "bound": BoundDataflowGraph,
    "taubm": TaubmSchedule,
    "distributed": DistributedControlUnit,
    "cent_sync_fsm": FSM,
    "cent_fsm": FSM,
}


class ArtifactStore:
    """Typed name → artifact mapping shared by the passes of one run."""

    def __init__(self, **artifacts: object) -> None:
        self._artifacts: dict[str, object] = {}
        for name, value in artifacts.items():
            self.put(name, value)

    def put(self, name: str, artifact: object) -> None:
        """Store an artifact, checking name and type."""
        expected = ARTIFACT_TYPES.get(name)
        if expected is None:
            known = ", ".join(sorted(ARTIFACT_TYPES))
            raise PipelineError(
                f"unknown artifact name {name!r}; declared: {known}"
            )
        if not isinstance(artifact, expected):
            raise PipelineError(
                f"artifact {name!r} must be {expected.__name__}, got "
                f"{type(artifact).__name__}"
            )
        self._artifacts[name] = artifact

    def get(self, name: str) -> object:
        """Fetch an artifact; missing names raise a clear error."""
        try:
            return self._artifacts[name]
        except KeyError:
            raise PipelineError(
                f"artifact {name!r} has not been produced yet; run the "
                f"pass that provides it first"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._artifacts

    def __iter__(self) -> Iterator[str]:
        return iter(self._artifacts)

    def __len__(self) -> int:
        return len(self._artifacts)

    def names(self) -> tuple[str, ...]:
        """Stored artifact names in insertion order."""
        return tuple(self._artifacts)

    def as_dict(self) -> dict[str, object]:
        """A shallow copy of the stored artifacts."""
        return dict(self._artifacts)
