"""The pass manager: run declared passes over an artifact store.

Running a pipeline is a fold over the pass list: for each pass the
manager fingerprints the required input artifacts, merges options,
consults the synthesis-artifact cache (when the pass is cacheable and a
cache is supplied), executes or rehydrates, stores the provided
artifacts, and appends a provenance record to the run manifest.  The
cache key covers the pass name, every input fingerprint and the
options, so a hit is only possible when recomputing would provably
yield the same bytes.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from typing import Any

from ..core.dfg import DataflowGraph
from ..errors import PipelineError
from ..perf.cache import SynthesisCache, artifact_fingerprint
from ..resources.allocation import ResourceAllocation
from .artifacts import ArtifactStore
from .manifest import CACHED, COMPUTED, PassRecord, RunManifest
from .passes import Pass, check_pass_order, synthesis_passes


def _canonical_options(options: Mapping[str, Any]) -> dict[str, Any]:
    """Options as JSON-stable values (for cache keys and manifests)."""
    canonical: dict[str, Any] = {}
    for name, value in options.items():
        if isinstance(value, (tuple, list)):
            canonical[name] = list(value)
        elif isinstance(value, (bool, int, float, str)) or value is None:
            canonical[name] = value
        else:
            raise PipelineError(
                f"pass option {name!r} must be a JSON-stable value, "
                f"got {type(value).__name__}"
            )
    return canonical


class PassManager:
    """Runs an ordered pass list over an :class:`ArtifactStore`."""

    def __init__(self, passes: "Sequence[Pass] | None" = None) -> None:
        self.passes = tuple(
            passes if passes is not None else synthesis_passes()
        )
        names = [p.name for p in self.passes]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate pass names in {names}")
        check_pass_order(self.passes)

    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def get_pass(self, name: str) -> Pass:
        for p in self.passes:
            if p.name == name:
                return p
        known = ", ".join(self.pass_names())
        raise PipelineError(f"unknown pass {name!r}; declared: {known}")

    def run(
        self,
        store: ArtifactStore,
        *,
        upto: "str | None" = None,
        options: "Mapping[str, Mapping[str, Any]] | None" = None,
        cache: "SynthesisCache | None" = None,
        manifest: "RunManifest | None" = None,
    ) -> RunManifest:
        """Execute passes in order, stopping after ``upto`` (inclusive).

        ``options`` maps pass names to option overrides; unknown pass
        names in it are rejected.  Returns the run manifest (the one
        passed in, extended, or a fresh one).
        """
        if upto is not None:
            self.get_pass(upto)  # fail fast on unknown target
        options = dict(options or {})
        for name in options:
            self.get_pass(name)
        if manifest is None:
            manifest = RunManifest()
        for p in self.passes:
            manifest.append(
                self._run_pass(p, store, options.get(p.name), cache)
            )
            if p.name == upto:
                break
        return manifest

    def _run_pass(
        self,
        p: Pass,
        store: ArtifactStore,
        overrides: "Mapping[str, Any] | None",
        cache: "SynthesisCache | None",
    ) -> PassRecord:
        opts = _canonical_options(p.resolve_options(overrides))
        inputs = {
            name: artifact_fingerprint(store.get(name))
            for name in p.requires
        }
        cache_key = (
            SynthesisCache.key(p.name, inputs, opts)
            if p.cacheable
            else None
        )
        diagnostics: list[dict] = []
        started = time.perf_counter()
        status = COMPUTED
        artifacts: "dict[str, object] | None" = None
        if cache is not None and cache_key is not None:
            payload = cache.get(cache_key)
            if payload is not None:
                artifacts = p.from_payload(payload["artifacts"], store)
                diagnostics = [dict(d) for d in payload["diagnostics"]]
                status = CACHED
        if artifacts is None:
            artifacts = p.run(store, opts, diagnostics)
            if cache is not None and cache_key is not None:
                cache.put(
                    cache_key,
                    {
                        "artifacts": p.to_payload(artifacts),
                        "diagnostics": diagnostics,
                    },
                )
        elapsed = time.perf_counter() - started
        produced = set(artifacts)
        if produced != set(p.provides):
            raise PipelineError(
                f"pass {p.name!r} produced {sorted(produced)} but "
                f"declares {sorted(p.provides)}"
            )
        for name, value in artifacts.items():
            store.put(name, value)
        outputs = {
            name: artifact_fingerprint(store.get(name))
            for name in p.provides
        }
        return PassRecord(
            name=p.name,
            status=status,
            inputs=inputs,
            options=opts,
            outputs=outputs,
            diagnostics=tuple(diagnostics),
            cache_key=cache_key,
            wall_time_s=elapsed,
        )


# ----------------------------------------------------------------------
# High-level entry points
# ----------------------------------------------------------------------
def run_synthesis_pipeline(
    dfg: DataflowGraph,
    allocation: "ResourceAllocation | str",
    *,
    scheduler: str = "list",
    objective: str = "latency",
    upto: "str | None" = "distributed",
    options: "Mapping[str, Mapping[str, Any]] | None" = None,
    cache: "SynthesisCache | None" = None,
    passes: "Sequence[Pass] | None" = None,
) -> tuple[ArtifactStore, RunManifest]:
    """Run the canned flow on a graph, returning store and manifest.

    ``scheduler`` and ``objective`` are shorthands for the equivalent
    per-pass entries of ``options``; explicit ``options`` entries win.
    ``cache=None`` falls back to the process-default synthesis cache
    (see :func:`set_default_synthesis_cache`).
    """
    if isinstance(allocation, str):
        allocation = ResourceAllocation.parse(allocation)
    merged: dict[str, dict[str, Any]] = {
        "schedule": {"scheduler": scheduler},
        "order": {"objective": objective},
    }
    for name, overrides in (options or {}).items():
        merged.setdefault(name, {}).update(overrides)
    store = ArtifactStore(dfg=dfg, allocation=allocation)
    manifest = PassManager(passes).run(
        store,
        upto=upto,
        options=merged,
        cache=cache if cache is not None else default_synthesis_cache(),
    )
    return store, manifest


def synthesize_design(
    dfg: DataflowGraph,
    allocation: "ResourceAllocation | str",
    scheduler: str = "list",
    objective: str = "latency",
    *,
    cache: "SynthesisCache | None" = None,
    options: "Mapping[str, Mapping[str, Any]] | None" = None,
):
    """The pipeline behind :func:`repro.synthesize`.

    Runs the canned passes up to ``distributed`` and assembles the
    public :class:`~repro.api.SynthesisResult` from the store.
    """
    from ..api import SynthesisResult

    store, _ = run_synthesis_pipeline(
        dfg,
        allocation,
        scheduler=scheduler,
        objective=objective,
        upto="distributed",
        options=options,
        cache=cache,
    )
    return SynthesisResult(
        dfg=store.get("dfg"),
        allocation=store.get("allocation"),
        schedule=store.get("schedule"),
        order=store.get("order"),
        bound=store.get("bound"),
        taubm=store.get("taubm"),
        distributed=store.get("distributed"),
    )


# ----------------------------------------------------------------------
# Process-default synthesis cache
#
# ``repro experiments --cache-dir`` and ``repro bench --cache-dir`` set
# this once; every synthesis through the pipeline (drivers, campaigns,
# sweeps) then shares the same artifact cache without threading a cache
# object through each call chain.
# ----------------------------------------------------------------------
_default_cache: "SynthesisCache | None" = None


def set_default_synthesis_cache(
    cache: "SynthesisCache | None",
) -> "SynthesisCache | None":
    """Install the process-default cache; returns the previous one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def default_synthesis_cache() -> "SynthesisCache | None":
    """The process-default synthesis-artifact cache (or ``None``)."""
    return _default_cache
