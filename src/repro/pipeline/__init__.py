"""Pass-based synthesis pipeline.

The paper's flow — order-based scheduling → binding → TAUBM annotation
→ distributed control derivation — as explicit IR-to-IR passes over a
typed :class:`~repro.pipeline.artifacts.ArtifactStore`:

``validate → schedule → order → bind → taubm → distributed → cent-fsms``

Variation points (schedulers, order objectives, binders, controller
backends) are string-keyed registries; every pass records provenance
into a byte-stable :class:`~repro.pipeline.manifest.RunManifest` and is
content-addressed-cached via
:class:`~repro.perf.cache.SynthesisCache`, so repeated sweeps skip
unchanged prefixes.  :func:`repro.synthesize` is the canned pipeline::

    from repro.pipeline import run_synthesis_pipeline
    store, manifest = run_synthesis_pipeline(dfg, "mul:2T,add:1")
    print(manifest.render())
"""

from .artifacts import ARTIFACT_TYPES, ArtifactStore
from .manager import (
    PassManager,
    default_synthesis_cache,
    run_synthesis_pipeline,
    set_default_synthesis_cache,
    synthesize_design,
)
from .manifest import PassRecord, RunManifest
from .passes import Pass, synthesis_passes
from .registry import (
    BINDERS,
    CONTROLLER_BACKENDS,
    ORDER_OBJECTIVES,
    SCHEDULERS,
    Registry,
)

__all__ = [
    "ARTIFACT_TYPES",
    "ArtifactStore",
    "BINDERS",
    "CONTROLLER_BACKENDS",
    "ORDER_OBJECTIVES",
    "Pass",
    "PassManager",
    "PassRecord",
    "Registry",
    "RunManifest",
    "SCHEDULERS",
    "default_synthesis_cache",
    "run_synthesis_pipeline",
    "set_default_synthesis_cache",
    "synthesis_passes",
    "synthesize_design",
]
