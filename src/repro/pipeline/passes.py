"""The declared passes of the synthesis pipeline.

Each :class:`Pass` names the artifacts it requires and provides, carries
its default options, and — when its outputs are value-serializable —
a payload codec pair (``to_payload`` / ``from_payload``) that lets the
pass manager satisfy it from the content-addressed artifact cache.
``from_payload`` rebuilds artifacts from JSON plus the upstream
artifacts already in the store, so a cache hit yields objects that
serialize byte-identically to freshly computed ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping
from typing import Any

from ..core.validate import validate_dfg
from ..errors import PipelineError
from ..scheduling.taubm import derive_taubm_schedule
from ..serialize import (
    bound_from_dict,
    bound_to_dict,
    distributed_from_dict,
    distributed_to_dict,
    fsm_from_dict,
    fsm_to_dict,
    order_from_dict,
    order_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    taubm_from_dict,
    taubm_to_dict,
)
from .artifacts import ArtifactStore
from .registry import (
    BINDERS,
    CONTROLLER_BACKENDS,
    ORDER_OBJECTIVES,
    SCHEDULERS,
)

#: signature of a pass body: (store, options, diagnostics) -> artifacts
PassBody = Callable[
    [ArtifactStore, Mapping[str, Any], list], "dict[str, object]"
]


@dataclass(frozen=True)
class Pass:
    """One declared IR-to-IR transformation of the pipeline."""

    name: str
    requires: tuple[str, ...]
    provides: tuple[str, ...]
    run: PassBody
    summary: str = ""
    defaults: Mapping[str, Any] = field(default_factory=dict)
    to_payload: "Callable[[Mapping[str, object]], dict] | None" = None
    from_payload: (
        "Callable[[Mapping, ArtifactStore], dict[str, object]] | None"
    ) = None

    @property
    def cacheable(self) -> bool:
        """Whether the pass output can live in the artifact cache."""
        return self.to_payload is not None

    def resolve_options(
        self, overrides: "Mapping[str, Any] | None"
    ) -> dict[str, Any]:
        """Defaults merged with per-run overrides."""
        options = dict(self.defaults)
        options.update(overrides or {})
        return options


# ----------------------------------------------------------------------
# Pass bodies
# ----------------------------------------------------------------------
def _run_validate(store, options, diagnostics):
    dfg = store.get("dfg")
    allocation = store.get("allocation")
    validate_dfg(dfg)
    allocation.validate_for(dfg)
    return {}


def _run_schedule(store, options, diagnostics):
    options = dict(options)
    scheduler = SCHEDULERS.get(options.pop("scheduler"))
    schedule = scheduler(
        store.get("dfg"),
        store.get("allocation"),
        diagnostics=diagnostics,
        **options,
    )
    return {"schedule": schedule}


def _run_order(store, options, diagnostics):
    options = dict(options)
    objective = ORDER_OBJECTIVES.get(options.pop("objective"))
    order = objective(
        store.get("dfg"),
        store.get("allocation"),
        store.get("schedule"),
        diagnostics=diagnostics,
        **options,
    )
    return {"order": order}


def _run_bind(store, options, diagnostics):
    options = dict(options)
    binder = BINDERS.get(options.pop("binder"))
    bound = binder(
        store.get("dfg"),
        store.get("allocation"),
        store.get("order"),
        diagnostics=diagnostics,
        **options,
    )
    return {"bound": bound}


def _run_taubm(store, options, diagnostics):
    taubm = derive_taubm_schedule(
        store.get("schedule"), store.get("allocation")
    )
    return {"taubm": taubm}


def _run_distributed(store, options, diagnostics):
    options = dict(options)
    backend = CONTROLLER_BACKENDS.get(options.pop("backend"))
    distributed = backend(
        store.get("bound"),
        store.get("taubm"),
        diagnostics=diagnostics,
        **options,
    )
    return {"distributed": distributed}


def _run_verify(store, options, diagnostics):
    from ..verify.engine import lint_store

    report = lint_store(store, name=options.get("design") or None)
    diagnostics.extend(d.to_dict() for d in report.diagnostics)
    if options.get("strict") and report.has_errors:
        raise PipelineError(
            f"verify-artifacts: {report.count('error')} error "
            f"finding(s) on design {report.design!r}"
        )
    return {}


def _run_model_check(store, options, diagnostics):
    from ..verify.modelcheck import check_store

    result = check_store(
        store,
        name=options.get("design") or None,
        max_states=options["max_states"],
        max_frontier=options["max_frontier"],
    )
    diagnostics.extend(d.to_dict() for d in result.report.diagnostics)
    if options.get("strict") and result.report.has_errors:
        raise PipelineError(
            f"model-check: {result.report.count('error')} error "
            f"finding(s) on design {result.report.design!r}"
        )
    return {}


def _run_cent_fsms(store, options, diagnostics):
    bound = store.get("bound")
    taubm = store.get("taubm")
    cent_sync = CONTROLLER_BACKENDS.get("cent-sync")(
        bound, taubm, diagnostics=diagnostics
    )
    cent = CONTROLLER_BACKENDS.get("cent")(
        bound, taubm, diagnostics=diagnostics
    )
    return {"cent_sync_fsm": cent_sync, "cent_fsm": cent}


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------
def _schedule_payload(artifacts):
    return {"schedule": schedule_to_dict(artifacts["schedule"])}


def _schedule_unpayload(payload, store):
    return {
        "schedule": schedule_from_dict(
            payload["schedule"], store.get("dfg")
        )
    }


def _order_payload(artifacts):
    return {"order": order_to_dict(artifacts["order"])}


def _order_unpayload(payload, store):
    return {"order": order_from_dict(payload["order"], store.get("dfg"))}


def _bound_payload(artifacts):
    return {"bound": bound_to_dict(artifacts["bound"])}


def _bound_unpayload(payload, store):
    return {
        "bound": bound_from_dict(
            payload["bound"], store.get("dfg"), store.get("allocation")
        )
    }


def _taubm_payload(artifacts):
    return {"taubm": taubm_to_dict(artifacts["taubm"])}


def _taubm_unpayload(payload, store):
    return {"taubm": taubm_from_dict(payload["taubm"], store.get("dfg"))}


def _distributed_payload(artifacts):
    return {"distributed": distributed_to_dict(artifacts["distributed"])}


def _distributed_unpayload(payload, store):
    return {
        "distributed": distributed_from_dict(
            payload["distributed"], store.get("bound")
        )
    }


def _verify_payload(artifacts):
    # The pass provides no artifacts; its product is the diagnostics
    # list, which the pass manager caches alongside this payload.
    return {}


def _verify_unpayload(payload, store):
    return {}


def _cent_fsms_payload(artifacts):
    return {
        "cent_sync_fsm": fsm_to_dict(artifacts["cent_sync_fsm"]),
        "cent_fsm": fsm_to_dict(artifacts["cent_fsm"]),
    }


def _cent_fsms_unpayload(payload, store):
    return {
        "cent_sync_fsm": fsm_from_dict(payload["cent_sync_fsm"]),
        "cent_fsm": fsm_from_dict(payload["cent_fsm"]),
    }


# ----------------------------------------------------------------------
# The canned synthesis pipeline
# ----------------------------------------------------------------------
VALIDATE = Pass(
    name="validate",
    requires=("dfg", "allocation"),
    provides=(),
    run=_run_validate,
    summary="structural DFG checks + allocation feasibility",
)

SCHEDULE = Pass(
    name="schedule",
    requires=("dfg", "allocation"),
    provides=("schedule",),
    run=_run_schedule,
    summary="time-step schedule via the scheduler registry",
    defaults={"scheduler": "list"},
    to_payload=_schedule_payload,
    from_payload=_schedule_unpayload,
)

ORDER = Pass(
    name="order",
    requires=("dfg", "allocation", "schedule"),
    provides=("order",),
    run=_run_order,
    summary="per-unit execution chains + schedule arcs (paper §3)",
    defaults={"objective": "latency"},
    to_payload=_order_payload,
    from_payload=_order_unpayload,
)

BIND = Pass(
    name="bind",
    requires=("dfg", "allocation", "order"),
    provides=("bound",),
    run=_run_bind,
    summary="chains onto concrete unit instances",
    defaults={"binder": "chain"},
    to_payload=_bound_payload,
    from_payload=_bound_unpayload,
)

TAUBM = Pass(
    name="taubm",
    requires=("schedule", "allocation"),
    provides=("taubm",),
    run=_run_taubm,
    summary="TAU extension annotation (Fig. 2b)",
    to_payload=_taubm_payload,
    from_payload=_taubm_unpayload,
)

DISTRIBUTED = Pass(
    name="distributed",
    requires=("bound", "taubm"),
    provides=("distributed",),
    run=_run_distributed,
    summary="distributed control unit (Fig. 7) via the backend registry",
    defaults={"backend": "dist"},
    to_payload=_distributed_payload,
    from_payload=_distributed_unpayload,
)

VERIFY = Pass(
    name="verify-artifacts",
    requires=(
        "dfg",
        "allocation",
        "schedule",
        "order",
        "bound",
        "taubm",
        "distributed",
    ),
    provides=(),
    run=_run_verify,
    summary="static lint of artifacts + generated RTL (repro.verify)",
    defaults={"strict": False, "design": ""},
    to_payload=_verify_payload,
    from_payload=_verify_unpayload,
)

MODEL_CHECK = Pass(
    name="model-check",
    requires=(
        "dfg",
        "allocation",
        "schedule",
        "order",
        "bound",
        "taubm",
        "distributed",
    ),
    provides=(),
    run=_run_model_check,
    summary="explicit-state reachability over the composed network "
    "(MC-DEAD / MC-RACE / MC-REF)",
    defaults={
        "strict": False,
        "design": "",
        "max_states": 200_000,
        "max_frontier": 100_000,
    },
    to_payload=_verify_payload,
    from_payload=_verify_unpayload,
)

CENT_FSMS = Pass(
    name="cent-fsms",
    requires=("bound", "taubm"),
    provides=("cent_sync_fsm", "cent_fsm"),
    run=_run_cent_fsms,
    summary="centralized comparison FSMs (Fig. 4a/4b)",
    to_payload=_cent_fsms_payload,
    from_payload=_cent_fsms_unpayload,
)


def synthesis_passes() -> tuple[Pass, ...]:
    """The canned paper flow, in dependency order."""
    return (
        VALIDATE,
        SCHEDULE,
        ORDER,
        BIND,
        TAUBM,
        DISTRIBUTED,
        VERIFY,
        MODEL_CHECK,
        CENT_FSMS,
    )


def check_pass_order(passes: tuple[Pass, ...]) -> None:
    """Reject pass lists whose requirements cannot be met in order."""
    available = {"dfg", "allocation"}
    for p in passes:
        missing = set(p.requires) - available
        if missing:
            raise PipelineError(
                f"pass {p.name!r} requires {sorted(missing)} which no "
                f"earlier pass provides"
            )
        available.update(p.provides)
