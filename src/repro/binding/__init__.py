"""Binding: operations to units, values to registers."""

from .binder import BoundDataflowGraph, bind
from .registers import (
    Lifetime,
    RegisterBinding,
    left_edge_register_binding,
    value_lifetimes,
    verify_register_binding,
)

__all__ = [
    "BoundDataflowGraph",
    "Lifetime",
    "RegisterBinding",
    "bind",
    "left_edge_register_binding",
    "value_lifetimes",
    "verify_register_binding",
]
