"""Register binding via the left-edge algorithm.

Every operation result must live in a register from the step it is
produced until the last step a consumer reads it.  Values whose lifetimes
do not overlap may share a register; the left-edge algorithm yields a
minimum-register assignment for the interval graph of lifetimes.

The paper's controllers emit a register-enable signal ``RE_i`` per
operation; this module tells the datapath *which physical register* that
enable targets, completing the datapath picture (and feeding the area
reports with a register count).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..errors import BindingError
from ..scheduling.schedule import TimeStepSchedule


@dataclass(frozen=True)
class Lifetime:
    """The interval (birth step, last-use step) of one operation result."""

    op: str
    birth: int
    death: int

    def overlaps(self, other: "Lifetime") -> bool:
        """Whether two lifetimes need distinct registers."""
        return not (self.death < other.birth or other.death < self.birth)


def value_lifetimes(schedule: TimeStepSchedule) -> tuple[Lifetime, ...]:
    """Lifetime of every operation result under a time-step schedule.

    A value is born at the end of its producer's step and must survive
    until the step of its last consumer; primary-output values survive to
    the end of the schedule.
    """
    dfg = schedule.dfg
    output_ops = set(dfg.outputs.values())
    horizon = schedule.num_steps
    lifetimes = []
    for op in dfg:
        birth = schedule.start[op.name]
        uses = [schedule.start[s] for s in dfg.successors(op.name)]
        if op.name in output_ops:
            uses.append(horizon)
        death = max(uses, default=birth)
        lifetimes.append(Lifetime(op=op.name, birth=birth, death=death))
    return tuple(lifetimes)


@dataclass(frozen=True)
class RegisterBinding:
    """Assignment of operation results to physical registers."""

    register_of: Mapping[str, int]
    num_registers: int

    def ops_in_register(self, index: int) -> tuple[str, ...]:
        """All operations whose results share one register."""
        return tuple(
            op for op, reg in self.register_of.items() if reg == index
        )

    def describe(self) -> str:
        """Multi-line listing, one line per register."""
        lines = [f"{self.num_registers} registers:"]
        for index in range(self.num_registers):
            ops = ", ".join(self.ops_in_register(index))
            lines.append(f"  R{index}: {ops}")
        return "\n".join(lines)


def left_edge_register_binding(
    schedule: TimeStepSchedule,
) -> RegisterBinding:
    """Minimum-register binding via the left-edge algorithm."""
    lifetimes = sorted(
        value_lifetimes(schedule), key=lambda lt: (lt.birth, lt.death, lt.op)
    )
    register_last_death: list[int] = []
    register_of: dict[str, int] = {}
    for lt in lifetimes:
        placed = False
        for index, last_death in enumerate(register_last_death):
            if last_death < lt.birth:
                register_of[lt.op] = index
                register_last_death[index] = lt.death
                placed = True
                break
        if not placed:
            register_of[lt.op] = len(register_last_death)
            register_last_death.append(lt.death)
    return RegisterBinding(
        register_of=register_of, num_registers=len(register_last_death)
    )


def verify_register_binding(
    schedule: TimeStepSchedule, binding: RegisterBinding
) -> None:
    """Check no two overlapping lifetimes share a register."""
    lifetimes = {lt.op: lt for lt in value_lifetimes(schedule)}
    by_register: dict[int, list[Lifetime]] = {}
    for op, reg in binding.register_of.items():
        by_register.setdefault(reg, []).append(lifetimes[op])
    for reg, members in by_register.items():
        members.sort(key=lambda lt: lt.birth)
        for first, second in zip(members, members[1:]):
            if first.overlaps(second):
                raise BindingError(
                    f"register R{reg}: lifetimes of {first.op!r} and "
                    f"{second.op!r} overlap"
                )
