"""Operation → arithmetic-unit binding.

Takes the chains of an order-based schedule and assigns each chain to a
concrete unit instance of the allocation, producing the
:class:`BoundDataflowGraph` every controller generator consumes.  The i-th
chain of a class lands on the i-th allocated unit of that class, which is
exactly the paper's Fig. 3(c) notation: ``(O0, O1) -> TAU multiplier-1``,
``(O6, O4, O8) -> TAU multiplier-2``, ...
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..core.dfg import DataflowGraph
from ..errors import BindingError
from ..resources.allocation import ResourceAllocation
from ..resources.units import ArithmeticUnit
from ..scheduling.schedule import OrderSchedule


@dataclass(frozen=True)
class BoundDataflowGraph:
    """A DFG with a complete order-based schedule and unit binding.

    The single source of truth downstream: controller derivation, the
    simulator and the analytic latency model all read the execution order
    (``ops_on_unit``), the unit kinds and the cross-unit predecessor
    relation from here.
    """

    dfg: DataflowGraph
    allocation: ResourceAllocation
    order: OrderSchedule
    binding: Mapping[str, str]

    def __post_init__(self) -> None:
        for op in self.dfg:
            unit_name = self.binding.get(op.name)
            if unit_name is None:
                raise BindingError(f"operation {op.name!r} is unbound")
            unit = self.allocation.unit(unit_name)
            if unit.resource_class is not op.resource_class:
                raise BindingError(
                    f"operation {op.name!r} ({op.resource_class.value}) "
                    f"bound to {unit_name!r} ({unit.resource_class.value})"
                )

    # -- structure -------------------------------------------------------
    def unit_of(self, op_name: str) -> ArithmeticUnit:
        """The unit instance an operation executes on."""
        return self.allocation.unit(self.binding[op_name])

    def ops_on_unit(self, unit_name: str) -> tuple[str, ...]:
        """Execution order of the operations bound to a unit."""
        self.allocation.unit(unit_name)  # existence check
        rc = self.allocation.unit(unit_name).resource_class
        units = [u.name for u in self.allocation.units_of_class(rc)]
        index = units.index(unit_name)
        chains = self.order.chains.get(rc, ())
        if index >= len(chains):
            return ()
        return chains[index]

    def used_units(self) -> tuple[ArithmeticUnit, ...]:
        """Units with at least one bound operation, allocation order."""
        return tuple(
            u for u in self.allocation if self.ops_on_unit(u.name)
        )

    def is_telescopic_op(self, op_name: str) -> bool:
        """Whether an operation executes on a telescopic unit."""
        return self.unit_of(op_name).is_telescopic

    def telescopic_ops(self) -> tuple[str, ...]:
        """All operations bound to telescopic units, topological order."""
        return tuple(
            op.name for op in self.dfg if self.is_telescopic_op(op.name)
        )

    # -- cross-unit dependency relation (paper §4.2) ----------------------
    def cross_unit_predecessors(self, op_name: str) -> tuple[str, ...]:
        """Direct predecessors of an op that run on *different* units.

        The paper restricts the direct predecessor/successor relation to
        operations on different units, because a unit controller enforces
        the order between its own operations automatically.
        """
        my_unit = self.binding[op_name]
        return tuple(
            p
            for p in self.dfg.predecessors(op_name)
            if self.binding[p] != my_unit
        )

    def cross_unit_successors(self, op_name: str) -> tuple[str, ...]:
        """Direct successors of an op that run on *different* units."""
        my_unit = self.binding[op_name]
        return tuple(
            s
            for s in self.dfg.successors(op_name)
            if self.binding[s] != my_unit
        )

    # -- timing ----------------------------------------------------------
    def duration_cycles(self, op_name: str, fast: bool) -> int:
        """Cycles one execution of an op occupies its unit (binary view)."""
        return self.allocation.cycles_for(self.binding[op_name], fast)

    def duration_for_level(self, op_name: str, level: int) -> int:
        """Cycles of one execution completing at a telescope level."""
        return self.allocation.cycles_for_level(
            self.binding[op_name], level
        )

    def max_duration_cycles(self, op_name: str) -> int:
        """Worst-level cycle count of an op on its unit."""
        return self.allocation.max_cycles_for(self.binding[op_name])

    def execution_edges(self) -> tuple[tuple[str, str], ...]:
        """Data edges plus schedule arcs (the execution graph)."""
        return self.order.execution_edges()

    def describe(self) -> str:
        """Multi-line report: unit -> chain listing plus schedule arcs."""
        lines = [f"binding of {self.dfg.name!r}:"]
        for unit in self.allocation:
            ops = self.ops_on_unit(unit.name)
            listing = ", ".join(ops) if ops else "(idle)"
            lines.append(f"  {unit.name}: ({listing})")
        arcs = ", ".join(f"{u}->{v}" for u, v in self.order.schedule_arcs)
        lines.append(f"  schedule arcs: {arcs if arcs else '(none)'}")
        return "\n".join(lines)


def bind(
    dfg: DataflowGraph,
    allocation: ResourceAllocation,
    order: OrderSchedule,
) -> BoundDataflowGraph:
    """Bind the chains of an order schedule onto the allocated units."""
    allocation.validate_for(dfg)
    binding: dict[str, str] = {}
    for rc in dfg.resource_classes():
        units = allocation.units_of_class(rc)
        chains = order.chains.get(rc, ())
        if len(chains) > len(units):
            raise BindingError(
                f"{len(chains)} chains of class {rc.value} but only "
                f"{len(units)} units allocated"
            )
        for chain, unit in zip(chains, units):
            for op_name in chain:
                binding[op_name] = unit.name
    return BoundDataflowGraph(
        dfg=dfg, allocation=allocation, order=order, binding=binding
    )
