"""Top-level Verilog for a distributed control unit.

Instantiates every per-unit controller module, wires completion pulses
between them, and materializes the completion-arrival latches with the
exact token semantics the simulator implements: a latch sets on a pulse,
clears when the consuming controller raises the start strobe of the
waiting operation, and a pulse that coincides with a consumption survives.
"""

from __future__ import annotations

from ..fsm.signals import is_op_completion, op_of_completion
from ..fsm.verilog import fsm_to_verilog, sanitize_identifier, start_strobe
from .distributed import DistributedControlUnit


def distributed_to_verilog(
    unit: DistributedControlUnit, top_name: str = "control_top"
) -> str:
    """Render controller modules plus the wiring top level."""
    chunks: list[str] = []
    for fsm in unit.controllers.values():
        chunks.append(fsm_to_verilog(fsm, include_start_strobes=True))

    bound = unit.bound
    lines: list[str] = []
    lines.append(f"// Distributed control unit for {bound.dfg.name}")
    lines.append(f"module {sanitize_identifier(top_name)} (")
    lines.append("    input  wire clk,")
    lines.append("    input  wire rst_n,")
    port_lines: list[str] = []
    external_inputs: list[str] = []
    external_outputs: list[str] = []
    for fsm in unit.controllers.values():
        for signal in fsm.inputs:
            if not is_op_completion(signal):
                external_inputs.append(signal)
        for signal in fsm.outputs:
            if not is_op_completion(signal):
                external_outputs.append(signal)
    for signal in external_inputs:
        port_lines.append(f"    input  wire {sanitize_identifier(signal)},")
    for signal in external_outputs:
        port_lines.append(f"    output wire {sanitize_identifier(signal)},")
    if port_lines:
        port_lines[-1] = port_lines[-1].rstrip(",")
    lines.extend(port_lines)
    lines.append(");")
    lines.append("")

    # Internal completion pulse wires and arrival latches.
    live = unit.live_nets()
    for net in live:
        lines.append(f"  wire pulse_{sanitize_identifier(net.producer_op)};")
    strobes: set[str] = set()
    for unit_name, fsm in unit.controllers.items():
        for op in bound.ops_on_unit(unit_name):
            strobes.add(op)
            lines.append(f"  wire st_{sanitize_identifier(op)};")
    lines.append("")
    for net in live:
        producer = sanitize_identifier(net.producer_op)
        for consumer_unit in net.consumer_units:
            waiters = [
                op
                for op in bound.ops_on_unit(consumer_unit)
                if net.producer_op in bound.cross_unit_predecessors(op)
            ]
            consume = " | ".join(
                f"st_{sanitize_identifier(w)}" for w in waiters
            ) or "1'b0"
            flag = f"flag_{sanitize_identifier(consumer_unit)}_{producer}"
            lines.append(f"  reg {flag};")
            lines.append("  always @(posedge clk or negedge rst_n) begin")
            lines.append(f"    if (!rst_n) {flag} <= 1'b0;")
            lines.append(
                f"    else if ({consume}) {flag} <= {flag} & pulse_{producer};"
            )
            lines.append(
                f"    else if (pulse_{producer}) {flag} <= 1'b1;"
            )
            lines.append("  end")
            lines.append(
                f"  wire eff_{sanitize_identifier(consumer_unit)}_{producer}"
                f" = {flag} | pulse_{producer};"
            )
            lines.append("")

    # Controller instances.
    for unit_name, fsm in unit.controllers.items():
        instance = sanitize_identifier(f"u_{unit_name}")
        lines.append(
            f"  {sanitize_identifier(fsm.name)} {instance} ("
        )
        conns = ["    .clk(clk)", "    .rst_n(rst_n)"]
        for signal in fsm.inputs:
            port = sanitize_identifier(signal)
            if is_op_completion(signal):
                producer = sanitize_identifier(op_of_completion(signal))
                conns.append(
                    f"    .{port}(eff_{sanitize_identifier(unit_name)}_"
                    f"{producer})"
                )
            else:
                conns.append(f"    .{port}({port})")
        for signal in fsm.outputs:
            port = sanitize_identifier(signal)
            if is_op_completion(signal):
                producer = sanitize_identifier(op_of_completion(signal))
                conns.append(f"    .{port}(pulse_{producer})")
            else:
                conns.append(f"    .{port}({port})")
        for op in bound.ops_on_unit(unit_name):
            strobe = sanitize_identifier(start_strobe(op))
            conns.append(f"    .{strobe}(st_{sanitize_identifier(op)})")
        lines.append(",\n".join(conns))
        lines.append("  );")
        lines.append("")
    lines.append("endmodule")
    chunks.append("\n".join(lines) + "\n")
    return "\n\n".join(chunks)
