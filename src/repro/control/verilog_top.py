"""Top-level Verilog for a distributed control unit.

Instantiates every per-unit controller module, wires completion pulses
between them, and materializes the completion-arrival latches with the
exact token semantics the simulator implements: a latch sets on a pulse,
clears when the consuming controller raises the start strobe of the
waiting operation, and a pulse that coincides with a consumption survives.

Every emitted identifier is claimed through a collision-aware allocator:
two source names that sanitize to the same Verilog id (``o1!`` vs.
``o1?`` both become ``o1_``) are suffix-deduplicated consistently across
module names, top-level nets and instance connections.  Clean names pass
through unchanged, so collision handling never perturbs existing output.
"""

from __future__ import annotations

from ..fsm.signals import is_op_completion, op_of_completion
from ..fsm.verilog import (
    claim_identifier,
    fsm_port_map,
    fsm_to_verilog,
    sanitize_identifier,
    start_strobe,
)
from .distributed import DistributedControlUnit


def controller_module_names(
    unit: DistributedControlUnit, top_name: str = "control_top"
) -> dict[str, str]:
    """Emitted module name per controller unit, collision-free.

    The top module's name is reserved first; controller modules claim
    theirs in declaration order.  :func:`distributed_to_verilog` and the
    RTL lint share this map so they can never disagree about which
    module a unit's controller became.
    """
    used: set[str] = {sanitize_identifier(top_name)}
    return {
        unit_name: claim_identifier(
            sanitize_identifier(fsm.name), used
        )
        for unit_name, fsm in unit.controllers.items()
    }


def distributed_to_verilog(
    unit: DistributedControlUnit, top_name: str = "control_top"
) -> str:
    """Render controller modules plus the wiring top level."""
    modules = controller_module_names(unit, top_name)
    port_maps = {
        unit_name: fsm_port_map(fsm, include_start_strobes=True)
        for unit_name, fsm in unit.controllers.items()
    }
    chunks: list[str] = []
    for unit_name, fsm in unit.controllers.items():
        chunks.append(
            fsm_to_verilog(
                fsm,
                module_name=modules[unit_name],
                include_start_strobes=True,
            )
        )

    bound = unit.bound
    used: set[str] = {"clk", "rst_n"}
    lines: list[str] = []
    lines.append(f"// Distributed control unit for {bound.dfg.name}")
    lines.append(f"module {sanitize_identifier(top_name)} (")
    lines.append("    input  wire clk,")
    lines.append("    input  wire rst_n,")
    port_lines: list[str] = []
    external_inputs: list[str] = []
    external_outputs: list[str] = []
    for fsm in unit.controllers.values():
        for signal in fsm.inputs:
            if not is_op_completion(signal) and signal not in external_inputs:
                external_inputs.append(signal)
        for signal in fsm.outputs:
            if (
                not is_op_completion(signal)
                and signal not in external_outputs
            ):
                external_outputs.append(signal)
    external_ids = {
        signal: claim_identifier(sanitize_identifier(signal), used)
        for signal in (*external_inputs, *external_outputs)
    }
    for signal in external_inputs:
        port_lines.append(f"    input  wire {external_ids[signal]},")
    for signal in external_outputs:
        port_lines.append(f"    output wire {external_ids[signal]},")
    if port_lines:
        port_lines[-1] = port_lines[-1].rstrip(",")
    lines.extend(port_lines)
    lines.append(");")
    lines.append("")

    # Internal completion pulse wires and arrival latches.
    live = unit.live_nets()
    pulse_ids: dict[str, str] = {}
    for net in live:
        pulse_ids[net.producer_op] = claim_identifier(
            f"pulse_{sanitize_identifier(net.producer_op)}", used
        )
        lines.append(f"  wire {pulse_ids[net.producer_op]};")
    strobe_ids: dict[str, str] = {}
    for unit_name in unit.controllers:
        for op in bound.ops_on_unit(unit_name):
            strobe_ids[op] = claim_identifier(
                f"st_{sanitize_identifier(op)}", used
            )
            lines.append(f"  wire {strobe_ids[op]};")
    lines.append("")
    eff_ids: dict[tuple[str, str], str] = {}
    for net in live:
        pulse = pulse_ids[net.producer_op]
        for consumer_unit in net.consumer_units:
            waiters = [
                op
                for op in bound.ops_on_unit(consumer_unit)
                if net.producer_op in bound.cross_unit_predecessors(op)
            ]
            consume = " | ".join(
                strobe_ids[w] for w in waiters
            ) or "1'b0"
            pair = (
                f"{sanitize_identifier(consumer_unit)}_"
                f"{sanitize_identifier(net.producer_op)}"
            )
            flag = claim_identifier(f"flag_{pair}", used)
            eff = claim_identifier(f"eff_{pair}", used)
            eff_ids[(consumer_unit, net.producer_op)] = eff
            lines.append(f"  reg {flag};")
            lines.append("  always @(posedge clk or negedge rst_n) begin")
            lines.append(f"    if (!rst_n) {flag} <= 1'b0;")
            lines.append(
                f"    else if ({consume}) {flag} <= {flag} & {pulse};"
            )
            lines.append(
                f"    else if ({pulse}) {flag} <= 1'b1;"
            )
            lines.append("  end")
            lines.append(
                f"  wire {eff}"
                f" = {flag} | {pulse};"
            )
            lines.append("")

    # Controller instances.
    for unit_name, fsm in unit.controllers.items():
        instance = claim_identifier(
            sanitize_identifier(f"u_{unit_name}"), used
        )
        ports = port_maps[unit_name]
        lines.append(
            f"  {modules[unit_name]} {instance} ("
        )
        conns = ["    .clk(clk)", "    .rst_n(rst_n)"]
        for signal in fsm.inputs:
            port = ports[signal]
            if is_op_completion(signal):
                producer = op_of_completion(signal)
                conns.append(
                    f"    .{port}({eff_ids[(unit_name, producer)]})"
                )
            else:
                conns.append(f"    .{port}({external_ids[signal]})")
        for signal in fsm.outputs:
            port = ports[signal]
            if is_op_completion(signal):
                producer = op_of_completion(signal)
                conns.append(f"    .{port}({pulse_ids[producer]})")
            else:
                conns.append(f"    .{port}({external_ids[signal]})")
        for op in bound.ops_on_unit(unit_name):
            strobe = ports[start_strobe(op)]
            conns.append(f"    .{strobe}({strobe_ids[op]})")
        lines.append(",\n".join(conns))
        lines.append("  );")
        lines.append("")
    lines.append("endmodule")
    chunks.append("\n".join(lines) + "\n")
    return "\n\n".join(chunks)
