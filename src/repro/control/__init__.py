"""Distributed control-unit integration and export."""

from .distributed import DistributedControlUnit, build_distributed_control_unit
from .netlist import CompletionNet, completion_netlist
from .verilog_top import distributed_to_verilog

__all__ = [
    "CompletionNet",
    "DistributedControlUnit",
    "build_distributed_control_unit",
    "completion_netlist",
    "distributed_to_verilog",
]
