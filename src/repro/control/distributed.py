"""The distributed synchronous control unit (paper §4.1 and Fig. 7).

Integration of the per-unit Algorithm-1 controllers into one global
control unit:

1. derive one FSM per used arithmetic unit,
2. build the completion-signal netlist between them,
3. prune completion outputs nobody consumes (the paper's example: removing
   ``C_CO(0)``),
4. account for the completion-arrival latches the coordination mechanism
   needs (one per (consumer controller, producer op) pair).

The result is both an analyzable artifact (states/FFs/area per component,
Table 1's DIST rows) and an executable one (:meth:`DistributedControlUnit.
system` plugs straight into the cycle-accurate simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..binding.binder import BoundDataflowGraph
from ..fsm.algorithm1 import derive_all_unit_controllers
from ..fsm.area import FSMAreaReport, fsm_area, latch_area
from ..fsm.model import FSM
from ..fsm.optimize import prune_outputs
from ..fsm.signals import is_op_completion, op_completion
from ..sim.controllers import ControllerSystem, system_from_bound
from .netlist import CompletionNet, completion_netlist


@dataclass(frozen=True)
class DistributedControlUnit:
    """An integrated set of per-unit controllers with pruned wiring."""

    bound: BoundDataflowGraph
    controllers: Mapping[str, FSM]
    nets: tuple[CompletionNet, ...]
    pruned_signals: tuple[str, ...]

    # -- structure ---------------------------------------------------------
    @property
    def unit_names(self) -> tuple[str, ...]:
        return tuple(self.controllers)

    def controller(self, unit_name: str) -> FSM:
        return self.controllers[unit_name]

    def live_nets(self) -> tuple[CompletionNet, ...]:
        """Completion wires with at least one consumer."""
        return tuple(n for n in self.nets if n.fanout > 0)

    @property
    def num_latches(self) -> int:
        """Completion-arrival latches across all controllers."""
        return sum(
            sum(1 for s in fsm.inputs if is_op_completion(s))
            for fsm in self.controllers.values()
        )

    def system(self) -> ControllerSystem:
        """The executable controller system for the simulator."""
        return system_from_bound(self.bound, dict(self.controllers))

    # -- area ----------------------------------------------------------------
    def component_areas(
        self, encoding_style: str = "binary"
    ) -> tuple[FSMAreaReport, ...]:
        """Per-controller Table-1 rows (D-FSM-M1, D-FSM-M2, ...)."""
        return tuple(
            fsm_area(fsm, encoding_style)
            for fsm in self.controllers.values()
        )

    def total_area(
        self, encoding_style: str = "binary", include_latches: bool = True
    ) -> FSMAreaReport:
        """The aggregated DIST-FSM Table-1 row.

        I/O counts the *external* interface: unit completion inputs plus
        OF/RE outputs (inter-controller completion wires are internal).
        """
        parts = self.component_areas(encoding_style)
        comb = sum(p.combinational_area for p in parts)
        seq = sum(p.sequential_area for p in parts)
        ffs = sum(p.num_flip_flops for p in parts)
        if include_latches:
            latch_comb, latch_seq = latch_area(self.num_latches)
            comb += latch_comb
            seq += latch_seq
            ffs += self.num_latches
        external_inputs = {
            s
            for fsm in self.controllers.values()
            for s in fsm.inputs
            if not is_op_completion(s)
        }
        external_outputs = {
            s
            for fsm in self.controllers.values()
            for s in fsm.outputs
            if not is_op_completion(s)
        }
        return FSMAreaReport(
            name="DIST-FSM",
            num_inputs=len(external_inputs),
            num_outputs=len(external_outputs),
            num_states=sum(p.num_states for p in parts),
            num_flip_flops=ffs,
            combinational_area=comb,
            sequential_area=seq,
            method=parts[0].method if parts else "exact",
        )

    # -- reporting ---------------------------------------------------------
    def describe(self) -> str:
        lines = [f"distributed control unit for {self.bound.dfg.name!r}:"]
        for fsm in self.controllers.values():
            lines.append(
                f"  {fsm.name}: {fsm.num_states} states, "
                f"{len(fsm.inputs)} in / {len(fsm.outputs)} out"
            )
        for net in self.live_nets():
            lines.append(f"  wire {net}")
        if self.pruned_signals:
            lines.append(
                f"  pruned (unconsumed): {', '.join(self.pruned_signals)}"
            )
        lines.append(f"  completion-arrival latches: {self.num_latches}")
        return "\n".join(lines)


def build_distributed_control_unit(
    bound: BoundDataflowGraph,
) -> DistributedControlUnit:
    """Derive, integrate and optimize the distributed control unit."""
    raw = derive_all_unit_controllers(bound)
    nets = completion_netlist(bound, raw)
    consumed = {
        op_completion(net.producer_op) for net in nets if net.fanout > 0
    }
    pruned: list[str] = []
    optimized: dict[str, FSM] = {}
    for unit_name, fsm in raw.items():
        keep = [
            s
            for s in fsm.outputs
            if not is_op_completion(s) or s in consumed
        ]
        dropped = [s for s in fsm.outputs if s not in keep]
        pruned.extend(dropped)
        optimized[unit_name] = (
            prune_outputs(fsm, keep) if dropped else fsm
        )
    return DistributedControlUnit(
        bound=bound,
        controllers=optimized,
        nets=nets,
        pruned_signals=tuple(pruned),
    )
