"""Completion-signal netlist of a distributed control unit (paper Fig. 7)."""

from __future__ import annotations

from dataclasses import dataclass

from ..binding.binder import BoundDataflowGraph
from ..fsm.model import FSM
from ..fsm.signals import is_op_completion, op_completion, op_of_completion


@dataclass(frozen=True)
class CompletionNet:
    """One completion wire: who produces it, which controllers consume it."""

    producer_op: str
    producer_unit: str
    consumer_units: tuple[str, ...]

    @property
    def signal(self) -> str:
        return op_completion(self.producer_op)

    @property
    def fanout(self) -> int:
        return len(self.consumer_units)

    def __str__(self) -> str:
        sinks = ", ".join(self.consumer_units)
        return f"{self.signal}: {self.producer_unit} -> [{sinks}]"


def completion_netlist(
    bound: BoundDataflowGraph, controllers: "dict[str, FSM]"
) -> tuple[CompletionNet, ...]:
    """All completion wires between controllers, including dead ones.

    A net with zero consumers is exactly what the Fig. 7 optimization
    removes; callers filter on :attr:`CompletionNet.fanout`.
    """
    consumers: dict[str, list[str]] = {}
    for unit_name, fsm in controllers.items():
        for signal in fsm.inputs:
            if is_op_completion(signal):
                consumers.setdefault(
                    op_of_completion(signal), []
                ).append(unit_name)
    nets = []
    for unit_name in controllers:
        for op in bound.ops_on_unit(unit_name):
            nets.append(
                CompletionNet(
                    producer_op=op,
                    producer_unit=unit_name,
                    consumer_units=tuple(consumers.get(op, ())),
                )
            )
    return tuple(nets)
