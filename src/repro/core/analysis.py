"""Static timing analysis on dataflow graphs.

These are the classic HLS graph analyses: ASAP / ALAP levels, mobility and
critical path, parameterized by a per-operation duration (in abstract time
steps).  They are used both by the schedulers and by the analytic latency
model (the distributed controller's latency *is* the weighted longest path,
see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..errors import GraphError
from .dfg import DataflowGraph

#: A duration assignment: operation name -> number of time steps (>= 1).
Durations = Mapping[str, int]


def uniform_durations(dfg: DataflowGraph, steps: int = 1) -> dict[str, int]:
    """Duration map giving every operation the same number of steps."""
    return {op.name: steps for op in dfg}


def _check_durations(dfg: DataflowGraph, durations: Durations) -> None:
    for op in dfg:
        d = durations.get(op.name)
        if d is None:
            raise GraphError(f"no duration for operation {op.name!r}")
        if d < 1:
            raise GraphError(f"duration of {op.name!r} must be >= 1, got {d}")


def asap_start_times(
    dfg: DataflowGraph,
    durations: "Durations | None" = None,
    extra_edges: "tuple[tuple[str, str], ...]" = (),
) -> dict[str, int]:
    """Earliest start time of every operation (time step 0 based).

    ``extra_edges`` lets callers thread in schedule arcs: each ``(u, v)``
    forces ``start(v) >= finish(u)`` exactly like a data edge.
    """
    durations = durations or uniform_durations(dfg)
    _check_durations(dfg, durations)
    extra_preds: dict[str, list[str]] = {}
    for u, v in extra_edges:
        extra_preds.setdefault(v, []).append(u)
    preds_of = {
        op.name: list(dfg.predecessors(op.name))
        + extra_preds.get(op.name, [])
        for op in dfg
    }
    # Insertion order is topological for data edges only; schedule arcs may
    # point backwards in it, so order the combined graph explicitly (Kahn).
    order: list[str] = []
    if extra_edges:
        indegree = {name: len(preds) for name, preds in preds_of.items()}
        succs: dict[str, list[str]] = {name: [] for name in preds_of}
        for name, preds in preds_of.items():
            for p in preds:
                succs[p].append(name)
        ready = [name for name, n in indegree.items() if n == 0]
        while ready:
            node = ready.pop()
            order.append(node)
            for succ in succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(preds_of):
            raise GraphError("extra edges create a dependency cycle")
    else:
        order = list(dfg.op_names())
    start: dict[str, int] = {}
    for name in order:
        start[name] = max(
            (start[p] + durations[p] for p in preds_of[name]), default=0
        )
    return start


def finish_times(
    start: Mapping[str, int], durations: Durations
) -> dict[str, int]:
    """Finish time (exclusive) for every operation given start times."""
    return {name: t + durations[name] for name, t in start.items()}


def schedule_length(
    dfg: DataflowGraph,
    durations: "Durations | None" = None,
    extra_edges: "tuple[tuple[str, str], ...]" = (),
) -> int:
    """Length (in steps) of the unconstrained ASAP schedule.

    With ``extra_edges`` set to the schedule arcs of an order-based
    schedule, this is exactly the latency of the distributed control unit
    for the given duration assignment.
    """
    durations = durations or uniform_durations(dfg)
    start = asap_start_times(dfg, durations, extra_edges)
    return max(
        (start[op.name] + durations[op.name] for op in dfg), default=0
    )


def alap_start_times(
    dfg: DataflowGraph,
    horizon: "int | None" = None,
    durations: "Durations | None" = None,
) -> dict[str, int]:
    """Latest start time of every operation for a given horizon.

    ``horizon`` defaults to the critical-path length, giving zero mobility
    on the critical path.
    """
    durations = durations or uniform_durations(dfg)
    _check_durations(dfg, durations)
    if horizon is None:
        horizon = schedule_length(dfg, durations)
    cp = schedule_length(dfg, durations)
    if horizon < cp:
        raise GraphError(
            f"horizon {horizon} is shorter than the critical path {cp}"
        )
    start: dict[str, int] = {}
    for op in reversed(dfg.operations()):
        succs = dfg.successors(op.name)
        latest_finish = min(
            (start[s] for s in succs), default=horizon
        )
        start[op.name] = latest_finish - durations[op.name]
    return start


def mobility(
    dfg: DataflowGraph,
    horizon: "int | None" = None,
    durations: "Durations | None" = None,
) -> dict[str, int]:
    """Slack (ALAP − ASAP start) of every operation."""
    asap = asap_start_times(dfg, durations)
    alap = alap_start_times(dfg, horizon, durations)
    return {name: alap[name] - asap[name] for name in asap}


def critical_path(
    dfg: DataflowGraph, durations: "Durations | None" = None
) -> tuple[str, ...]:
    """One longest (duration-weighted) dependency chain, source to sink."""
    durations = durations or uniform_durations(dfg)
    start = asap_start_times(dfg, durations)
    finish = finish_times(start, durations)
    if not len(dfg):
        return ()
    # Walk backwards from the op with the latest finish time.
    current = max(finish, key=lambda n: (finish[n], n))
    path = [current]
    while True:
        preds = dfg.predecessors(current)
        tight = [p for p in preds if finish[p] == start[current]]
        if not tight:
            break
        current = min(tight)  # deterministic choice
        path.append(current)
    path.reverse()
    return tuple(path)


@dataclass(frozen=True)
class GraphProfile:
    """Aggregate statistics of a DFG used in reports and experiments."""

    name: str
    num_ops: int
    num_edges: int
    depth: int
    width: int
    ops_by_class: tuple[tuple[str, int], ...]

    def __str__(self) -> str:
        mix = ", ".join(f"{c}:{n}" for c, n in self.ops_by_class)
        return (
            f"{self.name}: {self.num_ops} ops, {self.num_edges} edges, "
            f"depth {self.depth}, width {self.width} ({mix})"
        )


def profile(dfg: DataflowGraph) -> GraphProfile:
    """Compute a :class:`GraphProfile` for a graph (unit durations)."""
    start = asap_start_times(dfg)
    depth = schedule_length(dfg)
    width = 0
    for step in range(depth):
        width = max(width, sum(1 for op in dfg if start[op.name] == step))
    counts: dict[str, int] = {}
    for op in dfg:
        key = op.resource_class.value
        counts[key] = counts.get(key, 0) + 1
    return GraphProfile(
        name=dfg.name,
        num_ops=len(dfg),
        num_edges=len(dfg.edges()),
        depth=depth,
        width=width,
        ops_by_class=tuple(sorted(counts.items())),
    )


def longest_path_length(
    dfg: DataflowGraph,
    durations: Durations,
    extra_edges: "tuple[tuple[str, str], ...]" = (),
) -> int:
    """Alias of :func:`schedule_length` emphasising the latency reading."""
    return schedule_length(dfg, durations, extra_edges)
