"""Convenience builder for dataflow graphs.

:class:`DFGBuilder` wraps :class:`~repro.core.dfg.DataflowGraph` with an
expression-like API so benchmark graphs read close to the arithmetic they
implement::

    b = DFGBuilder("fir3")
    x = [b.input(f"x{i}") for i in range(4)]
    taps = [b.mul(f"m{i}", x[i], coeff) for i, coeff in enumerate([3, 5, 7, 2])]
    acc = b.add("a0", taps[0], taps[1])
    acc = b.add("a1", acc, taps[2])
    acc = b.add("a2", acc, taps[3])
    b.output("y", acc)
    dfg = b.build()
"""

from __future__ import annotations

from .dfg import DataflowGraph, InputRef, OpRef, Operand
from .ops import OpType


class DFGBuilder:
    """Fluent construction of a :class:`DataflowGraph`."""

    def __init__(self, name: str) -> None:
        self._dfg = DataflowGraph(name)
        self._auto_counter = 0

    # -- declarations ---------------------------------------------------
    def input(self, name: str) -> InputRef:
        """Declare a primary input."""
        return self._dfg.add_input(name)

    def inputs(self, *names: str) -> list[InputRef]:
        """Declare several primary inputs at once."""
        return [self._dfg.add_input(n) for n in names]

    def output(self, name: str, op: "OpRef | str") -> None:
        """Declare a primary output."""
        self._dfg.set_output(name, op)

    # -- operations -----------------------------------------------------
    def op(
        self, name: str, op_type: OpType, *sources: "Operand | str | int"
    ) -> OpRef:
        """Add an arbitrary operation."""
        return self._dfg.add_op(name, op_type, *sources)

    def mul(self, name: str, a, b) -> OpRef:
        """Add a multiplication (multiplier resource class)."""
        return self._dfg.add_op(name, OpType.MUL, a, b)

    def add(self, name: str, a, b) -> OpRef:
        """Add an addition (adder resource class)."""
        return self._dfg.add_op(name, OpType.ADD, a, b)

    def sub(self, name: str, a, b) -> OpRef:
        """Add a subtraction (subtractor resource class)."""
        return self._dfg.add_op(name, OpType.SUB, a, b)

    def lt(self, name: str, a, b) -> OpRef:
        """Add a less-than comparison (subtractor resource class)."""
        return self._dfg.add_op(name, OpType.LT, a, b)

    def auto_name(self, prefix: str) -> str:
        """Generate a fresh operation name with the given prefix."""
        self._auto_counter += 1
        return f"{prefix}{self._auto_counter}"

    # -- finalization ---------------------------------------------------
    def build(self) -> DataflowGraph:
        """Validate and return the constructed graph."""
        from .validate import validate_dfg

        validate_dfg(self._dfg)
        return self._dfg
