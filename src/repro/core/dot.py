"""GraphViz DOT export for dataflow graphs and schedules.

Regenerates the *visual* artifacts of the paper (Figs. 2(a,b), 3(a,c)):
plain DFGs, TAUBM DFGs with split time steps, and scheduled DFGs with
schedule arcs drawn dashed, exactly as in the paper's figures.
"""

from __future__ import annotations

from collections.abc import Mapping

from .dfg import ConstRef, DataflowGraph, InputRef
from .ops import ResourceClass

_CLASS_SHAPE = {
    ResourceClass.MULTIPLIER: "circle",
    ResourceClass.ADDER: "circle",
    ResourceClass.SUBTRACTOR: "circle",
    ResourceClass.ALU: "box",
}


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def dfg_to_dot(
    dfg: DataflowGraph,
    schedule_arcs: "tuple[tuple[str, str], ...]" = (),
    start_times: "Mapping[str, int] | None" = None,
    binding: "Mapping[str, str] | None" = None,
    include_io: bool = True,
) -> str:
    """Render a DFG (optionally scheduled/bound) as a DOT digraph.

    * ``schedule_arcs`` are drawn as dashed edges (paper Fig. 3(c)),
    * ``start_times`` groups operations into same-rank time steps,
    * ``binding`` annotates each node with its arithmetic unit.
    """
    lines = [f"digraph {_quote(dfg.name)} {{", "  rankdir=TB;"]
    for op in dfg:
        label = f"{op.name}\\n{op.op_type.symbol}"
        if binding and op.name in binding:
            label += f"\\n[{binding[op.name]}]"
        shape = _CLASS_SHAPE.get(op.resource_class, "ellipse")
        lines.append(
            f"  {_quote(op.name)} [label={_quote(label)} shape={shape}];"
        )
    if include_io:
        for name in dfg.inputs:
            lines.append(
                f"  {_quote('in_' + name)} "
                f"[label={_quote(name)} shape=plaintext];"
            )
        for out_name in dfg.outputs:
            lines.append(
                f"  {_quote('out_' + out_name)} "
                f"[label={_quote(out_name)} shape=plaintext];"
            )
    for op in dfg:
        for operand in op.operands:
            if isinstance(operand, InputRef) and include_io:
                lines.append(
                    f"  {_quote('in_' + operand.name)} -> {_quote(op.name)};"
                )
            elif isinstance(operand, ConstRef):
                continue
        for pred in dfg.predecessors(op.name):
            lines.append(f"  {_quote(pred)} -> {_quote(op.name)};")
    if include_io:
        for out_name, op_name in dfg.outputs.items():
            lines.append(
                f"  {_quote(op_name)} -> {_quote('out_' + out_name)};"
            )
    for u, v in schedule_arcs:
        lines.append(
            f"  {_quote(u)} -> {_quote(v)} [style=dashed constraint=true];"
        )
    if start_times:
        by_step: dict[int, list[str]] = {}
        for name, step in start_times.items():
            by_step.setdefault(step, []).append(name)
        for step in sorted(by_step):
            members = " ".join(_quote(n) for n in sorted(by_step[step]))
            lines.append(f"  {{ rank=same; {members} }}")
    lines.append("}")
    return "\n".join(lines) + "\n"
