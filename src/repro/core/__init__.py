"""Core dataflow-graph model and analyses."""

from .analysis import (
    GraphProfile,
    alap_start_times,
    asap_start_times,
    critical_path,
    finish_times,
    longest_path_length,
    mobility,
    profile,
    schedule_length,
    uniform_durations,
)
from .builder import DFGBuilder
from .dfg import (
    ConstRef,
    DataflowGraph,
    InputRef,
    Operand,
    Operation,
    OpRef,
    reachable_from,
    transitive_dependency,
)
from .dot import dfg_to_dot
from .ops import (
    DEFAULT_TELESCOPIC_CLASSES,
    OpType,
    ResourceClass,
    op_type_from_symbol,
)
from .validate import concurrent_pairs, validate_dfg, validate_extra_edges

__all__ = [
    "ConstRef",
    "DEFAULT_TELESCOPIC_CLASSES",
    "DFGBuilder",
    "DataflowGraph",
    "GraphProfile",
    "InputRef",
    "OpRef",
    "OpType",
    "Operand",
    "Operation",
    "ResourceClass",
    "alap_start_times",
    "asap_start_times",
    "concurrent_pairs",
    "critical_path",
    "dfg_to_dot",
    "finish_times",
    "longest_path_length",
    "mobility",
    "op_type_from_symbol",
    "profile",
    "reachable_from",
    "schedule_length",
    "transitive_dependency",
    "uniform_durations",
    "validate_dfg",
    "validate_extra_edges",
]
