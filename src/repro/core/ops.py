"""Operation types for dataflow graphs.

The paper's benchmarks use the classic high-level-synthesis operation mix:
multiplications (the expensive operations that get mapped onto telescopic
arithmetic units), additions, subtractions and comparisons.  This module
defines the operation vocabulary, the *resource class* each operation
competes for, and a reference evaluator used by the value-computing
datapath simulator.
"""

from __future__ import annotations

import enum
from collections.abc import Callable


class ResourceClass(str, enum.Enum):
    """The kind of arithmetic unit an operation executes on.

    Operations of the same resource class compete for the same pool of
    allocated units.  The paper allocates multipliers (possibly telescopic),
    adders and subtractors; comparisons are served by the subtractor class
    (a comparator is a subtractor whose sum output is unused), mirroring the
    usual HLS convention for the HAL differential-equation benchmark.
    """

    MULTIPLIER = "mul"
    ADDER = "add"
    SUBTRACTOR = "sub"
    ALU = "alu"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _evaluate_less(a: int, b: int) -> int:
    return 1 if a < b else 0


class OpType(enum.Enum):
    """An operation type: symbol, arity, resource class and evaluator."""

    MUL = ("*", 2, ResourceClass.MULTIPLIER, lambda a, b: a * b, True)
    ADD = ("+", 2, ResourceClass.ADDER, lambda a, b: a + b, True)
    SUB = ("-", 2, ResourceClass.SUBTRACTOR, lambda a, b: a - b, False)
    LT = ("<", 2, ResourceClass.SUBTRACTOR, _evaluate_less, False)
    SHL = ("<<", 2, ResourceClass.ALU, lambda a, b: a << b, False)
    SHR = (">>", 2, ResourceClass.ALU, lambda a, b: a >> b, False)
    NEG = ("neg", 1, ResourceClass.SUBTRACTOR, lambda a: -a, False)

    def __init__(
        self,
        symbol: str,
        arity: int,
        resource_class: ResourceClass,
        evaluator: Callable[..., int],
        commutative: bool,
    ) -> None:
        self.symbol = symbol
        self.arity = arity
        self.resource_class = resource_class
        self.evaluator = evaluator
        self.commutative = commutative

    def evaluate(self, *operands: int) -> int:
        """Apply this operation to concrete operand values."""
        if len(operands) != self.arity:
            raise ValueError(
                f"{self.name} expects {self.arity} operands, got {len(operands)}"
            )
        return self.evaluator(*operands)

    def __reduce_ex__(self, protocol: int):
        # Enums with tuple values pickle *by value* by default — and this
        # value tuple holds a lambda, which made every design object
        # (hence every parallel work item) silently unpicklable.  Pickle
        # by name instead so designs cross process boundaries.
        return getattr, (type(self), self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpType.{self.name}"


#: Operation types that the paper maps onto telescopic units by default.
DEFAULT_TELESCOPIC_CLASSES = frozenset({ResourceClass.MULTIPLIER})

_SYMBOL_TABLE = {op.symbol: op for op in OpType}


def op_type_from_symbol(symbol: str) -> OpType:
    """Look up an :class:`OpType` by its symbol (``"*"``, ``"+"``, ...)."""
    try:
        return _SYMBOL_TABLE[symbol]
    except KeyError:
        raise ValueError(f"unknown operation symbol {symbol!r}") from None
