"""Structural validation of dataflow graphs.

The :class:`~repro.core.dfg.DataflowGraph` construction API already enforces
the strongest invariant (operations may only reference earlier operations,
so graphs are acyclic by construction).  This module adds the whole-graph
checks that only make sense once construction is finished, plus a validator
for externally supplied edge sets (schedule arcs).
"""

from __future__ import annotations

from ..errors import GraphError
from .dfg import DataflowGraph, transitive_dependency


def validate_dfg(dfg: DataflowGraph, require_outputs: bool = False) -> None:
    """Check whole-graph invariants; raise :class:`GraphError` on failure.

    * the graph has at least one operation,
    * every primary output refers to an existing operation,
    * (optionally) at least one primary output is declared,
    * insertion order is topological (defensive re-check).
    """
    if not len(dfg):
        raise GraphError(f"graph {dfg.name!r} has no operations")
    if require_outputs and not dfg.outputs:
        raise GraphError(f"graph {dfg.name!r} declares no primary outputs")
    seen: set[str] = set()
    for op in dfg:
        for pred in op.data_predecessors():
            if pred not in seen:
                raise GraphError(
                    f"operation {op.name!r} references {pred!r} before it "
                    f"is defined (topological-order invariant broken)"
                )
        seen.add(op.name)
    for out_name, op_name in dfg.outputs.items():
        if op_name not in dfg:
            raise GraphError(
                f"output {out_name!r} refers to unknown operation {op_name!r}"
            )


def validate_extra_edges(
    dfg: DataflowGraph, edges: "tuple[tuple[str, str], ...]"
) -> None:
    """Check that added (schedule) arcs keep the combined graph acyclic.

    An arc ``(u, v)`` is illegal when ``v`` already (transitively) feeds
    ``u`` — in that case the arc closes a cycle.  Self-arcs are rejected
    too.  The check must consider the *combination* of data edges and all
    supplied arcs, so we run a DFS over the merged edge relation.
    """
    for u, v in edges:
        if u not in dfg or v not in dfg:
            raise GraphError(f"schedule arc ({u!r}, {v!r}) names unknown ops")
        if u == v:
            raise GraphError(f"schedule arc ({u!r}, {u!r}) is a self-loop")

    succ: dict[str, set[str]] = {op.name: set() for op in dfg}
    for a, b in dfg.edges():
        succ[a].add(b)
    for a, b in edges:
        succ[a].add(b)

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in succ}

    def dfs(node: str) -> None:
        color[node] = GRAY
        for nxt in succ[node]:
            if color[nxt] == GRAY:
                raise GraphError(
                    f"schedule arcs create a cycle through {nxt!r}"
                )
            if color[nxt] == WHITE:
                dfs(nxt)
        color[node] = BLACK

    for name in succ:
        if color[name] == WHITE:
            dfs(name)


def concurrent_pairs(dfg: DataflowGraph) -> frozenset[frozenset[str]]:
    """All unordered pairs of operations with no dependency either way.

    Two operations can execute concurrently exactly when neither reaches
    the other.  This is the complement of the paper's Fig. 3(b) dependency
    graph, used in tests and by the order-based scheduler.
    """
    deps = transitive_dependency(dfg)
    names = dfg.op_names()
    pairs: set[frozenset[str]] = set()
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if a not in deps[b] and b not in deps[a]:
                pairs.add(frozenset((a, b)))
    return frozenset(pairs)
