"""Dataflow graph (DFG) data model.

A :class:`DataflowGraph` is the behavioural input of the whole flow: a set of
arithmetic operations connected by data dependencies, with named primary
inputs and primary outputs.  It deliberately carries *no* scheduling or
binding information — those are layered on top by :mod:`repro.scheduling`
and :mod:`repro.binding` so a single graph can be scheduled many ways.

Operands are represented explicitly as one of three source kinds:

* :class:`InputRef` — a primary input of the graph,
* :class:`ConstRef` — a literal constant (filter coefficients, ``3``, ...),
* :class:`OpRef` — the result of another operation.

Only :class:`OpRef` operands induce graph edges (the *direct predecessor /
successor* relation of the paper, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Mapping

from ..errors import GraphError
from .ops import OpType, ResourceClass


@dataclass(frozen=True)
class InputRef:
    """Operand taken from a primary input."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstRef:
    """Operand taken from a literal constant."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class OpRef:
    """Operand taken from the result of another operation."""

    op: str

    def __str__(self) -> str:
        return self.op


Operand = InputRef | ConstRef | OpRef


def as_operand(source: "Operand | str | int") -> Operand:
    """Coerce a convenience value into an :class:`Operand`.

    Strings are resolved later by the graph (operation name if one exists,
    otherwise primary input); integers become constants.
    """
    if isinstance(source, (InputRef, ConstRef, OpRef)):
        return source
    if isinstance(source, bool):
        raise GraphError("booleans are not valid operands")
    if isinstance(source, int):
        return ConstRef(source)
    if isinstance(source, str):
        # Resolution against the graph happens in DataflowGraph.add_op.
        return OpRef(source)
    raise GraphError(f"cannot interpret {source!r} as an operand")


@dataclass(frozen=True)
class Operation:
    """A single arithmetic operation in a dataflow graph."""

    name: str
    op_type: OpType
    operands: tuple[Operand, ...]

    @property
    def resource_class(self) -> ResourceClass:
        """The resource class this operation competes for."""
        return self.op_type.resource_class

    def data_predecessors(self) -> tuple[str, ...]:
        """Names of operations whose results feed this operation.

        Duplicates are preserved (an operation may use the same producer on
        both ports, e.g. squaring); use ``set(...)`` for the dependency
        relation.
        """
        return tuple(o.op for o in self.operands if isinstance(o, OpRef))

    def __str__(self) -> str:
        args = ", ".join(str(o) for o in self.operands)
        return f"{self.name} = {self.op_type.symbol}({args})"


class DataflowGraph:
    """A directed acyclic graph of arithmetic operations.

    Operations are stored in insertion order, which is also a valid
    topological order (an operation may only reference operations added
    before it).  This invariant makes many downstream algorithms simple and
    deterministic.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._inputs: list[str] = []
        self._ops: dict[str, Operation] = {}
        self._outputs: dict[str, str] = {}
        self._successors: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> InputRef:
        """Declare a primary input and return a reference to it."""
        if name in self._inputs:
            raise GraphError(f"duplicate primary input {name!r}")
        if name in self._ops:
            raise GraphError(f"input {name!r} collides with an operation name")
        self._inputs.append(name)
        return InputRef(name)

    def add_op(
        self,
        name: str,
        op_type: OpType,
        *sources: "Operand | str | int",
    ) -> OpRef:
        """Add an operation fed by ``sources`` and return a reference to it.

        ``sources`` may mix :class:`Operand` objects, names (resolved to an
        existing operation, else to a declared primary input) and integer
        constants.
        """
        if name in self._ops:
            raise GraphError(f"duplicate operation name {name!r}")
        if name in self._inputs:
            raise GraphError(f"operation {name!r} collides with an input name")
        operands = tuple(self._resolve(as_operand(s)) for s in sources)
        if len(operands) != op_type.arity:
            raise GraphError(
                f"operation {name!r}: {op_type.name} expects {op_type.arity} "
                f"operands, got {len(operands)}"
            )
        op = Operation(name=name, op_type=op_type, operands=operands)
        self._ops[name] = op
        self._successors[name] = []
        for pred in set(op.data_predecessors()):
            self._successors[pred].append(name)
        return OpRef(name)

    def _resolve(self, operand: Operand) -> Operand:
        """Resolve a string-derived :class:`OpRef` against inputs/ops."""
        if isinstance(operand, OpRef):
            if operand.op in self._ops:
                return operand
            if operand.op in self._inputs:
                return InputRef(operand.op)
            raise GraphError(
                f"operand {operand.op!r} is neither an existing operation "
                f"nor a declared primary input"
            )
        if isinstance(operand, InputRef) and operand.name not in self._inputs:
            raise GraphError(f"unknown primary input {operand.name!r}")
        return operand

    def set_output(self, output_name: str, op: "OpRef | str") -> None:
        """Declare the result of ``op`` as primary output ``output_name``."""
        op_name = op.op if isinstance(op, OpRef) else op
        if op_name not in self._ops:
            raise GraphError(f"output source {op_name!r} is not an operation")
        if output_name in self._outputs:
            raise GraphError(f"duplicate primary output {output_name!r}")
        self._outputs[output_name] = op_name

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary input names, in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> Mapping[str, str]:
        """Mapping from primary output name to producing operation name."""
        return dict(self._outputs)

    def operations(self) -> tuple[Operation, ...]:
        """All operations in insertion (= topological) order."""
        return tuple(self._ops.values())

    def op_names(self) -> tuple[str, ...]:
        """All operation names in insertion (= topological) order."""
        return tuple(self._ops)

    def op(self, name: str) -> Operation:
        """Look up an operation by name."""
        try:
            return self._ops[name]
        except KeyError:
            raise GraphError(f"no operation named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops.values())

    def predecessors(self, name: str) -> tuple[str, ...]:
        """Distinct direct data predecessors of an operation, stable order."""
        seen: dict[str, None] = {}
        for pred in self.op(name).data_predecessors():
            seen.setdefault(pred, None)
        return tuple(seen)

    def successors(self, name: str) -> tuple[str, ...]:
        """Distinct direct data successors of an operation, stable order."""
        self.op(name)
        return tuple(self._successors[name])

    def edges(self) -> tuple[tuple[str, str], ...]:
        """All distinct data-dependency edges ``(producer, consumer)``."""
        result = []
        for op in self:
            for pred in self.predecessors(op.name):
                result.append((pred, op.name))
        return tuple(result)

    def source_ops(self) -> tuple[str, ...]:
        """Operations with no operation predecessors (fed by inputs only)."""
        return tuple(o.name for o in self if not self.predecessors(o.name))

    def sink_ops(self) -> tuple[str, ...]:
        """Operations whose result feeds no other operation."""
        return tuple(o.name for o in self if not self._successors[o.name])

    def ops_of_class(self, resource_class: ResourceClass) -> tuple[str, ...]:
        """Operation names of one resource class, topological order."""
        return tuple(
            o.name for o in self if o.resource_class is resource_class
        )

    def resource_classes(self) -> tuple[ResourceClass, ...]:
        """Resource classes present in the graph, stable order."""
        seen: dict[ResourceClass, None] = {}
        for op in self:
            seen.setdefault(op.resource_class, None)
        return tuple(seen)

    def topological_order(self) -> tuple[str, ...]:
        """A topological order of the operations (the insertion order)."""
        return self.op_names()

    # ------------------------------------------------------------------
    # reference semantics
    # ------------------------------------------------------------------
    def evaluate(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Evaluate the graph on concrete input values.

        Returns the value of *every* operation (keyed by operation name)
        plus every primary output (keyed by output name).  This is the
        golden reference the cycle-accurate datapath simulation is checked
        against.
        """
        missing = [i for i in self._inputs if i not in inputs]
        if missing:
            raise GraphError(f"missing values for primary inputs: {missing}")
        values: dict[str, int] = {}
        for op in self:
            args = [self._operand_value(o, inputs, values) for o in op.operands]
            values[op.name] = op.op_type.evaluate(*args)
        for out_name, op_name in self._outputs.items():
            values[out_name] = values[op_name]
        return values

    @staticmethod
    def _operand_value(
        operand: Operand, inputs: Mapping[str, int], values: Mapping[str, int]
    ) -> int:
        if isinstance(operand, ConstRef):
            return operand.value
        if isinstance(operand, InputRef):
            return inputs[operand.name]
        return values[operand.op]

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self, name: "str | None" = None) -> "DataflowGraph":
        """Deep-enough copy (operations are immutable)."""
        clone = DataflowGraph(name or self.name)
        clone._inputs = list(self._inputs)
        clone._ops = dict(self._ops)
        clone._outputs = dict(self._outputs)
        clone._successors = {k: list(v) for k, v in self._successors.items()}
        return clone

    def summary(self) -> str:
        """Human-readable one-line description of the graph."""
        by_class: dict[ResourceClass, int] = {}
        for op in self:
            by_class[op.resource_class] = by_class.get(op.resource_class, 0) + 1
        mix = ", ".join(f"{v}x{k.value}" for k, v in by_class.items())
        return (
            f"DFG {self.name!r}: {len(self)} ops ({mix}), "
            f"{len(self._inputs)} inputs, {len(self._outputs)} outputs"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DataflowGraph {self.name!r} ops={len(self)}>"


def reachable_from(dfg: DataflowGraph, start: str) -> frozenset[str]:
    """All operations reachable from ``start`` via data edges (inclusive)."""
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for succ in dfg.successors(node):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return frozenset(seen)


def transitive_dependency(dfg: DataflowGraph) -> dict[str, frozenset[str]]:
    """For every op, the set of ops it (transitively) depends on.

    Computed in one topological pass; used by the order-based scheduler to
    decide which operations may execute concurrently (§3's dependency
    graph).
    """
    deps: dict[str, frozenset[str]] = {}
    for op in dfg:
        acc: set[str] = set()
        for pred in dfg.predecessors(op.name):
            acc.add(pred)
            acc |= deps[pred]
        deps[op.name] = frozenset(acc)
    return deps
