"""TAUBM schedule derivation (paper §2.2).

Turns a classical time-step schedule into a *TAUBM DFG* (paper Fig. 2(b)):
every time step ``T_i`` that contains operations bound to telescopic units
is split into ``T_i`` and a conditional extension ``T_i'``.  TAU operations
span both (they finish in ``T_i`` for fast operands, in ``T_i'``
otherwise); nothing else is scheduled into the extension — the paper's gray
boxes.
"""

from __future__ import annotations

from ..core.ops import ResourceClass
from ..resources.allocation import ResourceAllocation
from .schedule import TaubmSchedule, TaubmStep, TimeStepSchedule


def telescopic_classes(
    allocation: ResourceAllocation,
) -> frozenset[ResourceClass]:
    """Resource classes served by telescopic units in an allocation."""
    return frozenset(
        u.resource_class for u in allocation.telescopic_units()
    )


def derive_taubm_schedule(
    schedule: TimeStepSchedule,
    allocation: ResourceAllocation,
) -> TaubmSchedule:
    """Annotate a time-step schedule with TAU extensions (Fig. 2(b)).

    The derivation is the paper's two trivial steps: split every step with
    TAU-bound operations, schedule those operations across the pair, and
    keep all fixed-delay operations in the first half.
    """
    tau_classes = telescopic_classes(allocation)
    steps = []
    for index, ops in enumerate(schedule.steps()):
        tau_ops = tuple(
            name
            for name in ops
            if schedule.dfg.op(name).resource_class in tau_classes
        )
        steps.append(TaubmStep(index=index, ops=tuple(ops), tau_ops=tau_ops))
    return TaubmSchedule(base=schedule, steps=tuple(steps))


def tau_bound_ops(
    schedule: TimeStepSchedule, allocation: ResourceAllocation
) -> tuple[str, ...]:
    """All operations that will execute on telescopic units."""
    tau_classes = telescopic_classes(allocation)
    return tuple(
        op.name
        for op in schedule.dfg
        if op.resource_class in tau_classes
    )
