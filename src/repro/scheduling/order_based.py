"""Order-based scheduling under TAU allocation (paper §3).

The key idea of the paper's scheduling step: with variable-computation-time
units, pinning operations to time steps throws away performance.  Instead,
only decide the *execution order* among operations that share an arithmetic
unit, inserting **schedule arcs** until the concurrency width of every
resource class fits the number of allocated units (the clique argument of
Fig. 3(b)).  All remaining concurrency is preserved and exploited by the
distributed controllers at run time.

Implementation (documented substitution — the paper reuses external
algorithms [9, 10]):

1. a resource-constrained list schedule fixes a legal relative order,
2. per resource class, operations are dealt greedily onto the allocated
   units in (start step, ALAP, name) order, always onto the unit that
   became free earliest — producing one execution *chain* per unit,
3. consecutive chain members that are not already (transitively) dependent
   get a schedule arc.

:func:`concurrency_width` computes the maximum antichain of a class's
operations via Dilworth's theorem (minimum chain cover = maximum antichain,
through bipartite matching), which yields the *minimum* number of units any
order-based schedule needs — the "at least three TAU-multipliers" check of
Fig. 3(b) — and verifies post-insertion width.
"""

from __future__ import annotations

import networkx as nx

from ..core.analysis import alap_start_times
from ..core.dfg import DataflowGraph, transitive_dependency
from ..core.ops import ResourceClass
from ..errors import SchedulingError
from ..resources.allocation import ResourceAllocation
from .list_scheduler import list_schedule
from .schedule import OrderSchedule, TimeStepSchedule


def concurrency_width(
    dfg: DataflowGraph,
    ops: "tuple[str, ...]",
    extra_edges: "tuple[tuple[str, str], ...]" = (),
) -> int:
    """Maximum number of the given ops that may execute concurrently.

    Two operations can overlap iff neither (transitively) precedes the
    other in the execution graph (data edges plus ``extra_edges``).  The
    width is the maximum antichain of the induced partial order, computed
    as |ops| − |maximum matching| in the bipartite reachability graph
    (Dilworth via König).
    """
    if not ops:
        return 0
    reach = _transitive_with_extra(dfg, extra_edges)
    graph = nx.Graph()
    left = {name: ("L", name) for name in ops}
    right = {name: ("R", name) for name in ops}
    graph.add_nodes_from(left.values(), bipartite=0)
    graph.add_nodes_from(right.values(), bipartite=1)
    for a in ops:
        for b in ops:
            if a != b and a in reach[b]:  # a precedes b
                graph.add_edge(left[a], right[b])
    matching = nx.bipartite.maximum_matching(graph, top_nodes=set(left.values()))
    matched = sum(1 for node in matching if node[0] == "L")
    return len(ops) - matched


def minimum_units_required(
    dfg: DataflowGraph, resource_class: ResourceClass
) -> int:
    """Minimum unit count any order-based schedule needs for a class.

    This is the minimal clique count of the paper's Fig. 3(b) dependency
    graph: operations with no dependency between them need distinct units.
    """
    return concurrency_width(dfg, dfg.ops_of_class(resource_class))


def _transitive_with_extra(
    dfg: DataflowGraph, extra_edges: "tuple[tuple[str, str], ...]"
) -> dict[str, frozenset[str]]:
    """Transitive predecessor sets over data edges plus extra arcs."""
    if not extra_edges:
        return transitive_dependency(dfg)
    graph = nx.DiGraph()
    graph.add_nodes_from(dfg.op_names())
    graph.add_edges_from(dfg.edges())
    graph.add_edges_from(extra_edges)
    order = list(nx.topological_sort(graph))
    deps: dict[str, frozenset[str]] = {}
    for node in order:
        acc: set[str] = set()
        for pred in graph.predecessors(node):
            acc.add(pred)
            acc |= deps[pred]
        deps[node] = frozenset(acc)
    return deps


def order_based_schedule(
    dfg: DataflowGraph,
    allocation: ResourceAllocation,
    base_schedule: "TimeStepSchedule | None" = None,
    objective: str = "latency",
) -> OrderSchedule:
    """Derive chains and schedule arcs for an allocation (paper §3).

    ``base_schedule`` (a resource-constrained time-step schedule) supplies
    the relative order; by default a list schedule under the same
    allocation is used, so the centralized and distributed controllers in
    an experiment share one execution order.

    ``objective`` selects the chain-assignment heuristic:

    * ``"latency"`` — each operation joins the unit that frees earliest
      (the default; keeps chains balanced and latency minimal),
    * ``"communication"`` — each operation prefers the unit already
      holding one of its data neighbours, making that dependence
      chain-internal and removing a completion wire plus its arrival
      latch (the §5 "communication signal overhead" lever), falling back
      to earliest-free on ties.
    """
    if objective not in ("latency", "communication"):
        raise SchedulingError(
            f"unknown objective {objective!r}; choose 'latency' or "
            f"'communication'"
        )
    allocation.validate_for(dfg)
    schedule = base_schedule or list_schedule(dfg, allocation)
    horizon = schedule.num_steps + len(dfg)
    alap = alap_start_times(dfg, horizon)
    deps = transitive_dependency(dfg)

    chains: dict[ResourceClass, tuple[tuple[str, ...], ...]] = {}
    arcs: list[tuple[str, str]] = []
    for rc in dfg.resource_classes():
        unit_count = allocation.count(rc)
        ops = sorted(
            dfg.ops_of_class(rc),
            key=lambda n: (schedule.start[n], alap[n], n),
        )
        required = concurrency_width(dfg, tuple(ops))
        unit_chains: list[list[str]] = [[] for _ in range(unit_count)]
        # Greedy deal: each op goes to the unit whose last op finishes
        # earliest (ties by unit index for determinism); the
        # communication objective first tries units holding a data
        # neighbour, as long as that unit is free in time.
        last_step = [-1] * unit_count
        neighbours = {
            name: set(dfg.predecessors(name)) | set(dfg.successors(name))
            for name in ops
        }
        for name in ops:
            candidates = range(unit_count)
            if objective == "communication":
                friendly = [
                    u
                    for u in candidates
                    if unit_chains[u]
                    and last_step[u] < schedule.start[name]
                    and neighbours[name] & set(unit_chains[u])
                ]
                if friendly:
                    unit = min(
                        friendly,
                        key=lambda u: (
                            -len(neighbours[name] & set(unit_chains[u])),
                            last_step[u],
                            u,
                        ),
                    )
                    unit_chains[unit].append(name)
                    last_step[unit] = schedule.start[name]
                    continue
            unit = min(candidates, key=lambda u: (last_step[u], u))
            unit_chains[unit].append(name)
            last_step[unit] = schedule.start[name]
        for chain in unit_chains:
            for prev, nxt in zip(chain, chain[1:]):
                if prev not in deps[nxt]:
                    arcs.append((prev, nxt))
        chains[rc] = tuple(tuple(c) for c in unit_chains)
        if required > unit_count and len(ops) > unit_count:
            # Sanity: after arc insertion the width must fit the units.
            post = concurrency_width(dfg, tuple(ops), tuple(arcs))
            if post > unit_count:
                raise SchedulingError(
                    f"schedule-arc insertion left width {post} > "
                    f"{unit_count} for class {rc.value}"
                )
    return OrderSchedule(
        dfg=dfg, chains=chains, schedule_arcs=tuple(arcs)
    )
