"""Scheduling: time-step, TAUBM and order-based schedules."""

from .asap_alap import alap_schedule, asap_schedule
from .exact import exact_schedule
from .force_directed import force_directed_schedule
from .list_scheduler import list_schedule
from .order_based import (
    concurrency_width,
    minimum_units_required,
    order_based_schedule,
)
from .schedule import (
    OrderSchedule,
    TaubmSchedule,
    TaubmStep,
    TimeStepSchedule,
)
from .taubm import derive_taubm_schedule, tau_bound_ops, telescopic_classes

__all__ = [
    "OrderSchedule",
    "TaubmSchedule",
    "TaubmStep",
    "TimeStepSchedule",
    "alap_schedule",
    "asap_schedule",
    "concurrency_width",
    "derive_taubm_schedule",
    "exact_schedule",
    "force_directed_schedule",
    "list_schedule",
    "minimum_units_required",
    "order_based_schedule",
    "tau_bound_ops",
    "telescopic_classes",
]
