"""Schedule data models.

Two schedule notions coexist in the paper:

* the classical **time-step schedule** (every operation pinned to a step,
  §2) that the centralized TAUBM FSMs are derived from, and
* the **order-based schedule** (§3) that only fixes the execution order of
  operations sharing an arithmetic unit via *schedule arcs*, leaving all
  remaining concurrency to the distributed controllers.

Both are immutable artifacts produced by the schedulers in this package and
consumed by binding, FSM derivation and the analytic latency engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..core.dfg import DataflowGraph
from ..core.ops import ResourceClass
from ..core.validate import validate_extra_edges
from ..errors import SchedulingError


@dataclass(frozen=True)
class TimeStepSchedule:
    """Every operation pinned to a start time step (0-based)."""

    dfg: DataflowGraph
    start: Mapping[str, int]

    def __post_init__(self) -> None:
        for op in self.dfg:
            if op.name not in self.start:
                raise SchedulingError(f"operation {op.name!r} not scheduled")
            step = self.start[op.name]
            if step < 0:
                raise SchedulingError(
                    f"operation {op.name!r} scheduled at negative step {step}"
                )
            for pred in self.dfg.predecessors(op.name):
                if self.start[pred] >= step:
                    raise SchedulingError(
                        f"dependency violated: {pred!r} (step "
                        f"{self.start[pred]}) must precede {op.name!r} "
                        f"(step {step})"
                    )

    @property
    def num_steps(self) -> int:
        """Number of time steps the schedule spans."""
        return max(self.start.values()) + 1 if self.start else 0

    def ops_in_step(self, step: int) -> tuple[str, ...]:
        """Operations starting in a given step, topological order."""
        return tuple(
            op.name for op in self.dfg if self.start[op.name] == step
        )

    def steps(self) -> tuple[tuple[str, ...], ...]:
        """All steps as tuples of operation names."""
        return tuple(self.ops_in_step(t) for t in range(self.num_steps))

    def resource_usage(self) -> dict[ResourceClass, int]:
        """Peak per-class concurrency (units needed by this schedule)."""
        usage: dict[ResourceClass, int] = {}
        for step_ops in self.steps():
            counts: dict[ResourceClass, int] = {}
            for name in step_ops:
                rc = self.dfg.op(name).resource_class
                counts[rc] = counts.get(rc, 0) + 1
            for rc, n in counts.items():
                usage[rc] = max(usage.get(rc, 0), n)
        return usage

    def describe(self) -> str:
        """Multi-line listing of the schedule, one line per step."""
        lines = [f"schedule of {self.dfg.name!r} ({self.num_steps} steps):"]
        for t, ops in enumerate(self.steps()):
            lines.append(f"  T{t}: {', '.join(ops) if ops else '(empty)'}")
        return "\n".join(lines)


@dataclass(frozen=True)
class OrderSchedule:
    """The §3 artifact: per-class execution chains plus schedule arcs.

    ``chains`` assigns every operation of a resource class to exactly one
    chain (one future arithmetic unit), in execution order.  The
    ``schedule_arcs`` are the inserted (non-data) arcs between chain
    neighbours; together with the data edges they form the *execution
    graph* whose weighted longest path is the distributed latency.
    """

    dfg: DataflowGraph
    chains: Mapping[ResourceClass, tuple[tuple[str, ...], ...]]
    schedule_arcs: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        validate_extra_edges(self.dfg, self.schedule_arcs)
        assigned: set[str] = set()
        for rc, rc_chains in self.chains.items():
            for chain in rc_chains:
                for name in chain:
                    if self.dfg.op(name).resource_class is not rc:
                        raise SchedulingError(
                            f"operation {name!r} in a {rc.value} chain has "
                            f"class {self.dfg.op(name).resource_class.value}"
                        )
                    if name in assigned:
                        raise SchedulingError(
                            f"operation {name!r} assigned to two chains"
                        )
                    assigned.add(name)
        missing = set(self.dfg.op_names()) - assigned
        if missing:
            raise SchedulingError(
                f"operations not assigned to any chain: {sorted(missing)}"
            )

    def execution_edges(self) -> tuple[tuple[str, str], ...]:
        """Data edges plus schedule arcs (the execution graph)."""
        return self.dfg.edges() + self.schedule_arcs

    def chain_of(self, op_name: str) -> tuple[str, ...]:
        """The chain containing an operation."""
        rc = self.dfg.op(op_name).resource_class
        for chain in self.chains.get(rc, ()):
            if op_name in chain:
                return chain
        raise SchedulingError(f"operation {op_name!r} is in no chain")

    def all_chains(self) -> tuple[tuple[ResourceClass, tuple[str, ...]], ...]:
        """Flat list of (class, chain) pairs in stable order."""
        result = []
        for rc in self.dfg.resource_classes():
            for chain in self.chains.get(rc, ()):
                result.append((rc, chain))
        return tuple(result)

    def num_units_required(self) -> dict[ResourceClass, int]:
        """Units each class needs: one per (non-empty) chain."""
        return {
            rc: sum(1 for c in rc_chains if c)
            for rc, rc_chains in self.chains.items()
        }

    def describe(self) -> str:
        """Multi-line listing: chains per class plus inserted arcs."""
        lines = [f"order schedule of {self.dfg.name!r}:"]
        for rc, chain in self.all_chains():
            lines.append(f"  {rc.value}: {' -> '.join(chain)}")
        arcs = ", ".join(f"{u}->{v}" for u, v in self.schedule_arcs)
        lines.append(f"  schedule arcs: {arcs if arcs else '(none)'}")
        return "\n".join(lines)


@dataclass(frozen=True)
class TaubmStep:
    """One macro time step of a TAUBM schedule (paper Fig. 2(b)).

    Steps containing TAU-bound operations are split into ``T_i`` and
    ``T_i'``; the extension is taken at run time only when some TAU
    operation in the step is slow.
    """

    index: int
    ops: tuple[str, ...]
    tau_ops: tuple[str, ...]

    @property
    def has_extension(self) -> bool:
        """Whether this step owns a conditional ``T_i'`` extension."""
        return bool(self.tau_ops)

    @property
    def fixed_ops(self) -> tuple[str, ...]:
        """Operations of the step on fixed-delay units."""
        return tuple(o for o in self.ops if o not in set(self.tau_ops))


@dataclass(frozen=True)
class TaubmSchedule:
    """A time-step schedule annotated with TAU extensions (Fig. 2(b))."""

    base: TimeStepSchedule
    steps: tuple[TaubmStep, ...]

    @property
    def dfg(self) -> DataflowGraph:
        return self.base.dfg

    def min_cycles(self) -> int:
        """Best-case cycle count (every extension skipped)."""
        return len(self.steps)

    def max_cycles(self) -> int:
        """Worst-case cycle count (every extension taken)."""
        return len(self.steps) + sum(s.has_extension for s in self.steps)

    def cycles_for(self, fast: Mapping[str, bool]) -> int:
        """Cycle count for one fast/slow assignment (synchronized steps)."""
        total = 0
        for step in self.steps:
            total += 1
            if step.has_extension and not all(
                fast[name] for name in step.tau_ops
            ):
                total += 1
        return total

    def cycles_for_durations(self, durations: Mapping[str, int]) -> int:
        """Cycle count when each TAU op takes a given cycle count.

        The multi-level generalization of :meth:`cycles_for`: a step runs
        until its slowest operation is done, so it costs the maximum of
        its operations' durations (1 for TAU-free steps).
        """
        total = 0
        for step in self.steps:
            total += max(
                (durations[name] for name in step.tau_ops), default=1
            )
        return total

    def expected_cycles(self, p: float) -> float:
        """Closed-form expected cycle count under i.i.d. Bernoulli(p).

        A step with ``n`` TAU operations extends with probability
        ``1 - p**n`` — the paper's first TAUBM problem (§2.3).
        """
        total = 0.0
        for step in self.steps:
            total += 1.0
            if step.has_extension:
                total += 1.0 - p ** len(step.tau_ops)
        return total

    def describe(self) -> str:
        """Multi-line listing with extension markers."""
        lines = [f"TAUBM schedule of {self.dfg.name!r}:"]
        for step in self.steps:
            mark = "  + T'" if step.has_extension else ""
            lines.append(
                f"  T{step.index}: {', '.join(step.ops)}{mark}"
            )
        return "\n".join(lines)
