"""Unconstrained ASAP / ALAP schedulers producing schedule objects."""

from __future__ import annotations

from ..core.analysis import alap_start_times, asap_start_times
from ..core.dfg import DataflowGraph
from .schedule import TimeStepSchedule


def asap_schedule(dfg: DataflowGraph) -> TimeStepSchedule:
    """As-soon-as-possible schedule with unit step durations."""
    return TimeStepSchedule(dfg=dfg, start=asap_start_times(dfg))


def alap_schedule(
    dfg: DataflowGraph, horizon: "int | None" = None
) -> TimeStepSchedule:
    """As-late-as-possible schedule for a horizon (critical path default)."""
    return TimeStepSchedule(dfg=dfg, start=alap_start_times(dfg, horizon))
