"""Force-directed scheduling (Paulin & Knight).

Latency-constrained scheduling that balances the per-class *distribution
graphs* so the number of concurrently active units of each class is
minimized.  Not required to reproduce the paper's tables (the paper uses a
fixed allocation and list scheduling suffices), but it completes the HLS
substrate: the future-work section of the paper calls for integrating the
controller scheme into a full synthesis tool, and force-directed scheduling
is the canonical latency-constrained scheduler such a tool offers.
"""

from __future__ import annotations

from ..core.analysis import schedule_length
from ..core.dfg import DataflowGraph
from ..core.ops import ResourceClass
from ..errors import SchedulingError
from .schedule import TimeStepSchedule


def _frames(
    dfg: DataflowGraph,
    fixed: dict[str, int],
    horizon: int,
) -> dict[str, tuple[int, int]]:
    """Current [ASAP, ALAP] start-time frame of every op, honouring fixed.

    Fixed operations have a one-point frame; frames of the rest tighten
    through dependency propagation.
    """
    asap: dict[str, int] = {}
    for op in dfg:
        earliest = max(
            (asap[p] + 1 for p in dfg.predecessors(op.name)), default=0
        )
        if op.name in fixed:
            if fixed[op.name] < earliest:
                raise SchedulingError(
                    f"fixed step {fixed[op.name]} of {op.name!r} violates "
                    f"a dependency"
                )
            earliest = fixed[op.name]
        asap[op.name] = earliest
    alap: dict[str, int] = {}
    for op in reversed(dfg.operations()):
        latest = min(
            (alap[s] - 1 for s in dfg.successors(op.name)), default=horizon - 1
        )
        if op.name in fixed:
            latest = fixed[op.name]
        if latest < asap[op.name]:
            raise SchedulingError(
                f"empty time frame for {op.name!r} at horizon {horizon}"
            )
        alap[op.name] = latest
    return {name: (asap[name], alap[name]) for name in asap}


def _distribution(
    dfg: DataflowGraph,
    frames: dict[str, tuple[int, int]],
    horizon: int,
) -> dict[ResourceClass, list[float]]:
    """Per-class expected concurrency at each step (distribution graphs)."""
    dist: dict[ResourceClass, list[float]] = {
        rc: [0.0] * horizon for rc in dfg.resource_classes()
    }
    for op in dfg:
        lo, hi = frames[op.name]
        weight = 1.0 / (hi - lo + 1)
        row = dist[op.resource_class]
        for t in range(lo, hi + 1):
            row[t] += weight
    return dist


def force_directed_schedule(
    dfg: DataflowGraph, horizon: "int | None" = None
) -> TimeStepSchedule:
    """Schedule within ``horizon`` steps minimizing peak concurrency.

    Classic self-force minimization: repeatedly commit the (operation,
    step) choice with the lowest force — the increase in distribution-graph
    load caused by collapsing the operation's frame to that step, including
    the induced tightening of predecessor/successor frames.
    """
    if horizon is None:
        horizon = schedule_length(dfg)
    if horizon < schedule_length(dfg):
        raise SchedulingError(
            f"horizon {horizon} below critical path "
            f"{schedule_length(dfg)}"
        )
    fixed: dict[str, int] = {}
    while len(fixed) < len(dfg):
        frames = _frames(dfg, fixed, horizon)
        dist = _distribution(dfg, frames, horizon)
        best: "tuple[float, str, int] | None" = None
        for op in dfg:
            if op.name in fixed:
                continue
            lo, hi = frames[op.name]
            for step in range(lo, hi + 1):
                trial = dict(fixed)
                trial[op.name] = step
                try:
                    trial_frames = _frames(dfg, trial, horizon)
                except SchedulingError:
                    continue
                trial_dist = _distribution(dfg, trial_frames, horizon)
                force = 0.0
                for rc, row in trial_dist.items():
                    base = dist[rc]
                    force += sum(
                        (row[t] - base[t]) * base[t] for t in range(horizon)
                    )
                key = (force, op.name, step)
                if best is None or key < best:
                    best = key
        if best is None:
            raise SchedulingError("force-directed scheduling is stuck")
        _, name, step = best
        fixed[name] = step
    return TimeStepSchedule(dfg=dfg, start=fixed)
