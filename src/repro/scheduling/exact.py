"""Exact (optimal-latency) resource-constrained scheduling.

Branch-and-bound over time steps for small graphs: at every step choose
which ready operations to start, bounded by the per-class unit counts,
pruning with the critical-path lower bound.  Exponential in the worst case
— intended as ground truth for validating the heuristic list scheduler on
benchmark-sized graphs, mirroring how HLS papers sanity-check heuristics
against ILP formulations.
"""

from __future__ import annotations

import itertools

from ..core.analysis import alap_start_times, asap_start_times
from ..core.dfg import DataflowGraph
from ..core.ops import ResourceClass
from ..errors import SchedulingError
from ..resources.allocation import ResourceAllocation
from .list_scheduler import list_schedule
from .schedule import TimeStepSchedule

#: Safety bound on the search — benchmark-scale graphs stay far below it.
MAX_VISITED_STATES = 200_000


def exact_schedule(
    dfg: DataflowGraph,
    allocation: ResourceAllocation,
    max_visited: int = MAX_VISITED_STATES,
) -> TimeStepSchedule:
    """Minimum-latency schedule under the allocation's unit counts.

    Raises :class:`SchedulingError` when the search exceeds
    ``max_visited`` explored states (use the list scheduler instead).
    """
    allocation.validate_for(dfg)
    limits = {rc: allocation.count(rc) for rc in dfg.resource_classes()}
    names = dfg.op_names()
    index = {name: i for i, name in enumerate(names)}
    preds = [
        tuple(index[p] for p in dfg.predecessors(name)) for name in names
    ]
    classes = [dfg.op(name).resource_class for name in names]

    # Upper bound: the list schedule (also the fallback answer).
    heuristic = list_schedule(dfg, allocation)
    best_length = heuristic.num_steps
    best_start = {index[n]: t for n, t in heuristic.start.items()}

    # Lower bounds per op: remaining critical path below it.
    asap = asap_start_times(dfg)
    alap = alap_start_times(dfg)
    depth_below = {
        index[n]: max(asap.values()) - alap[n] for n in names
    }

    visited: dict[frozenset[int], int] = {}
    counter = 0

    def search(
        done: frozenset[int], step: int, start: dict[int, int]
    ) -> None:
        nonlocal best_length, best_start, counter
        counter += 1
        if counter > max_visited:
            raise SchedulingError(
                f"exact scheduling exceeded {max_visited} states; "
                f"use list_schedule for this graph"
            )
        if len(done) == len(names):
            if step < best_length:
                best_length = step
                best_start = dict(start)
            return
        # Bound: even finishing the deepest remaining chain can't beat best.
        remaining_depth = max(
            depth_below[i] + 1 for i in range(len(names)) if i not in done
        )
        if step + remaining_depth >= best_length:
            return
        seen = visited.get(done)
        if seen is not None and seen <= step:
            return  # reached this completion set no later before
        visited[done] = step

        ready = [
            i
            for i in range(len(names))
            if i not in done and all(p in done for p in preds[i])
        ]
        by_class: dict[ResourceClass, list[int]] = {}
        for i in ready:
            by_class.setdefault(classes[i], []).append(i)
        # Candidate subsets per class: all max-size-bounded combinations.
        class_choices = []
        for rc, members in by_class.items():
            take = min(limits[rc], len(members))
            choices = [
                combo
                for size in range(take, -1, -1)
                for combo in itertools.combinations(members, size)
            ]
            class_choices.append(choices)
        for combo_set in itertools.product(*class_choices):
            chosen = tuple(itertools.chain.from_iterable(combo_set))
            if not chosen and ready:
                continue  # idling a step with work ready is never optimal
            new_done = done | set(chosen)
            new_start = dict(start)
            for i in chosen:
                new_start[i] = step
            search(new_done, step + 1, new_start)

    search(frozenset(), 0, {})
    return TimeStepSchedule(
        dfg=dfg, start={names[i]: t for i, t in best_start.items()}
    )
