"""Resource-constrained list scheduling.

The classic HLS workhorse: walk time steps forward; at each step start the
ready operations with the least slack first, limited by the per-class unit
counts.  The resulting :class:`~repro.scheduling.schedule.TimeStepSchedule`
is the basis for the centralized TAUBM controllers *and* (through the order
it implies) for the order-based schedule the distributed controllers use —
so every controller style in an experiment controls the same execution
order and the comparison isolates the control-structure effect.
"""

from __future__ import annotations

from ..core.analysis import alap_start_times, schedule_length
from ..core.dfg import DataflowGraph
from ..core.ops import ResourceClass
from ..errors import SchedulingError
from ..resources.allocation import ResourceAllocation
from .schedule import TimeStepSchedule


def list_schedule(
    dfg: DataflowGraph,
    allocation: ResourceAllocation,
    horizon_slack: int = 0,
) -> TimeStepSchedule:
    """Priority list scheduling under the allocation's unit counts.

    Priority: smaller ALAP start first (less mobility = more urgent), name
    as a deterministic tie-break.  ``horizon_slack`` loosens the ALAP
    horizon used for priorities (it never affects feasibility).
    """
    allocation.validate_for(dfg)
    limits: dict[ResourceClass, int] = {
        rc: allocation.count(rc) for rc in dfg.resource_classes()
    }
    # Priorities from ALAP on a generous horizon (list scheduling may
    # exceed the critical path under resource constraints).
    horizon = schedule_length(dfg) + horizon_slack + len(dfg)
    alap = alap_start_times(dfg, horizon)

    remaining_preds = {
        op.name: len(dfg.predecessors(op.name)) for op in dfg
    }
    ready = sorted(
        (name for name, n in remaining_preds.items() if n == 0),
        key=lambda n: (alap[n], n),
    )
    start: dict[str, int] = {}
    finished_count = 0
    step = 0
    while finished_count < len(dfg):
        if not ready:
            raise SchedulingError(
                f"no ready operations at step {step}; graph {dfg.name!r} "
                f"has a dependency inconsistency"
            )
        budget = dict(limits)
        started_now: list[str] = []
        deferred: list[str] = []
        for name in ready:
            rc = dfg.op(name).resource_class
            if budget[rc] > 0:
                budget[rc] -= 1
                start[name] = step
                started_now.append(name)
            else:
                deferred.append(name)
        # Unit-duration steps: everything started this step finishes now.
        newly_ready: list[str] = []
        for name in started_now:
            finished_count += 1
            for succ in dfg.successors(name):
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    newly_ready.append(succ)
        ready = sorted(
            deferred + newly_ready, key=lambda n: (alap[n], n)
        )
        step += 1
    return TimeStepSchedule(dfg=dfg, start=start)
