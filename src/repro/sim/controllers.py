"""Communicating controller FSMs with completion-signal latches.

The distributed control unit is a *set* of synchronous FSMs exchanging
completion pulses (paper Fig. 7).  This module gives that set an exact
cycle semantics:

* Every controller steps once per clock.
* A controller's ``CC_*`` inputs see the corresponding producer's pulse in
  the cycle it is emitted *or* the latched arrival flag afterwards; a flag
  clears when the consumer starts the operation that waited on it (token
  semantics, see DESIGN.md §2 "completion-signal latching").
* ``C_<unit>`` inputs are external per cycle (they come from the CSGs of
  the telescopic units; the simulator derives them from a completion
  model, the product-FSM builder treats them as free inputs).

The step function is *pure* over an immutable :class:`SystemConfig`, so the
same code drives the cycle-accurate simulator and the exhaustive product
construction of the centralized CENT-FSM — guaranteeing by construction
the paper's claim that CENT-FSM behaves exactly like the distributed unit.

A structural property makes one-pass pulse resolution sound: a controller's
*outputs* never depend on its ``CC_*`` inputs (only the chosen target state
does).  Algorithm 1 produces only such FSMs; the step function verifies the
property at run time and fails loudly otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..binding.binder import BoundDataflowGraph
from ..errors import SimulationError
from ..fsm.model import FSM
from ..fsm.signals import (
    is_op_completion,
    is_unit_completion,
    op_completion,
    op_of_completion,
    unit_of_completion,
)


@dataclass(frozen=True)
class SystemConfig:
    """Immutable snapshot of all controller states and arrival flags.

    Flags are kept per dependence *edge* — (controller key, consumer op,
    producer op) — because one producer may feed several operations on the
    same unit and each waits on its own token (a shared per-producer latch
    would let the first consumer starve the second).
    """

    states: tuple[str, ...]
    flags: frozenset[tuple[str, str, str]]


@dataclass(frozen=True)
class SystemStep:
    """Result of advancing the controller system by one clock cycle.

    ``overruns`` lists (controller, consumer op, producer op) edges whose
    1-bit arrival latch received a second completion pulse before the first
    was consumed — impossible within one dataflow iteration, but observable
    under overlapped iterations, where it marks the point a real design
    would need deeper token buffering.
    """

    config: SystemConfig
    outputs: frozenset[str]
    starts: frozenset[str]
    completes: frozenset[str]
    overruns: frozenset[tuple[str, str, str]] = frozenset()


class ControllerSystem:
    """A fixed set of controller FSMs plus the completion-latch wiring.

    ``consumes`` maps ``(controller key, started op)`` to the producer
    operations whose arrival flags that start consumes — i.e. the op's
    cross-unit direct predecessors.  Use :func:`system_from_bound` to build
    it from a bound graph.
    """

    def __init__(
        self,
        controllers: Mapping[str, FSM],
        consumes: Mapping[tuple[str, str], tuple[str, ...]],
    ) -> None:
        if not controllers:
            raise SimulationError("controller system needs >= 1 controller")
        self._keys = tuple(controllers)
        self._fsms = dict(controllers)
        self._consumes = dict(consumes)
        self._cc_inputs: dict[str, tuple[str, ...]] = {}
        self._ct_inputs: dict[str, tuple[str, ...]] = {}
        for key, fsm in self._fsms.items():
            self._cc_inputs[key] = tuple(
                op_of_completion(s) for s in fsm.inputs if is_op_completion(s)
            )
            self._ct_inputs[key] = tuple(
                s for s in fsm.inputs if is_unit_completion(s)
            )
        # Dependence edges per controller: producer -> waiting consumer ops.
        self._edges: dict[str, dict[str, tuple[str, ...]]] = {
            key: {} for key in self._keys
        }
        for (key, consumer), producers in self._consumes.items():
            if key not in self._fsms:
                raise SimulationError(f"consumes references unknown {key!r}")
            for producer in producers:
                waiting = self._edges[key].setdefault(producer, ())
                self._edges[key][producer] = waiting + (consumer,)
        # Per-state query op: which consumer's tokens a state's CC guards
        # examine.  Must be unique per state (Algorithm 1 guarantees it).
        self._state_query: dict[str, dict[str, "str | None"]] = {}
        for key, fsm in self._fsms.items():
            per_state: dict[str, "str | None"] = {}
            for state in fsm.states:
                queries = set()
                for t in fsm.transitions_from(state):
                    if any(is_op_completion(n) for n, _ in t.guard):
                        if t.queries is None:
                            raise SimulationError(
                                f"controller {key!r}: transition {t} guards "
                                f"on completion signals without a query op"
                            )
                        queries.add(t.queries)
                if len(queries) > 1:
                    raise SimulationError(
                        f"controller {key!r}: state {state!r} queries "
                        f"tokens of several ops {sorted(queries)}"
                    )
                per_state[state] = next(iter(queries), None)
            self._state_query[key] = per_state

    # -- introspection -----------------------------------------------------
    @property
    def keys(self) -> tuple[str, ...]:
        """Controller keys (usually unit names), stable order."""
        return self._keys

    def fsm(self, key: str) -> FSM:
        """The FSM of one controller."""
        return self._fsms[key]

    def unit_completion_inputs(self) -> tuple[str, ...]:
        """All distinct ``C_<unit>`` signals any controller references."""
        seen: dict[str, None] = {}
        for key in self._keys:
            for signal in self._ct_inputs[key]:
                seen.setdefault(signal, None)
        return tuple(seen)

    def dependence_edges(self) -> tuple[tuple[str, str, str], ...]:
        """All (controller, consumer op, producer op) arrival-latch edges.

        One entry per 1-bit completion-arrival latch of the distributed
        unit — the exact set of places a handshake fault can strike.  Empty
        for centralized (single-FSM) systems, which have no inter-controller
        nets.
        """
        edges: list[tuple[str, str, str]] = []
        for key in self._keys:
            for producer, consumers in sorted(self._edges[key].items()):
                for consumer in consumers:
                    edges.append((key, consumer, producer))
        return tuple(edges)

    def pulse_emitters(
        self,
        config: SystemConfig,
        unit_completions: Mapping[str, bool],
    ) -> dict[str, tuple[str, ...]]:
        """Which controller(s) emit each ``CC`` pulse this cycle.

        Mirrors pass 1 of :meth:`step` (flag-only CC inputs — sound
        because outputs never depend on CC inputs) without advancing any
        state.  The result maps the pulsed operation to the emitting
        controller keys, in key order; a healthy network never has two
        emitters for one operation in the same cycle, which is exactly
        what the model checker's MC-RACE rule looks for.
        """
        emitters: dict[str, tuple[str, ...]] = {}
        for key, state in zip(self._keys, config.states):
            inputs = self._inputs_for(
                key, state, config.flags, frozenset(), unit_completions
            )
            transition = self._fsms[key].step(state, inputs)
            for signal in transition.outputs:
                if is_op_completion(signal):
                    op = op_of_completion(signal)
                    emitters[op] = emitters.get(op, ()) + (key,)
        return emitters

    def all_ops(self) -> frozenset[str]:
        """Every operation some controller starts or completes."""
        ops: set[str] = set()
        for fsm in self._fsms.values():
            ops |= fsm.initial_starts
            for t in fsm.transitions:
                ops |= t.starts | t.completes
        return frozenset(ops)

    # -- configuration -------------------------------------------------------
    def initial_config(self) -> SystemConfig:
        """All controllers in their initial states, no flags latched."""
        return SystemConfig(
            states=tuple(self._fsms[k].initial for k in self._keys),
            flags=frozenset(),
        )

    def initial_starts(self) -> frozenset[str]:
        """Operations executing during cycle 0."""
        result: set[str] = set()
        for key in self._keys:
            result |= self._fsms[key].initial_starts
        return frozenset(result)

    # -- the cycle ----------------------------------------------------------
    def step(
        self,
        config: SystemConfig,
        unit_completions: Mapping[str, bool],
        *,
        suppress_pulses: frozenset[str] = frozenset(),
        inject_pulses: frozenset[str] = frozenset(),
    ) -> SystemStep:
        """Advance every controller by one clock edge.

        ``unit_completions`` maps unit names to their CSG value during the
        current cycle (missing units read as 0, which is only legal when
        the corresponding input is not referenced this cycle — enforced by
        the FSM semantics being insensitive to unreferenced inputs).

        ``suppress_pulses`` / ``inject_pulses`` model glitches on the
        inter-controller completion nets: a suppressed producer's ``CC``
        pulse is emitted by its FSM but reaches no consumer and no latch
        this cycle; an injected producer pulses spuriously.  Both default
        to empty (the fault-free wire); :mod:`repro.faults` drives them.
        The step function stays pure — no internal state is mutated.
        """
        flags = config.flags
        # Pass 1: outputs (hence CC pulses) with flag-only CC inputs.
        pulses: set[str] = set()
        pass1_transitions: dict = {}
        for key, state in zip(self._keys, config.states):
            inputs = self._inputs_for(
                key, state, flags, frozenset(), unit_completions
            )
            transition = self._fsms[key].step(state, inputs)
            pass1_transitions[key] = transition
            for signal in transition.outputs:
                if is_op_completion(signal):
                    pulses.add(op_of_completion(signal))
        pulses -= suppress_pulses
        pulses |= inject_pulses
        # Pass 2: state choice with pulse-or-flag CC inputs.  A state
        # whose guards reference no completion signal (query op is None)
        # matches the same transition under any CC valuation, so pass 1's
        # answer is reused — most controllers spend most cycles in such
        # states (counting down C_<unit>), making this the common case.
        next_states: list[str] = []
        outputs: set[str] = set()
        starts: set[str] = set()
        completes: set[str] = set()
        consumed: set[tuple[str, str, str]] = set()
        pulse_set = frozenset(pulses)
        for key, state in zip(self._keys, config.states):
            if self._state_query[key].get(state) is None:
                transition = pass1_transitions[key]
            else:
                inputs = self._inputs_for(
                    key, state, flags, pulse_set, unit_completions
                )
                transition = self._fsms[key].step(state, inputs)
            if transition.outputs != pass1_transitions[key].outputs:
                raise SimulationError(
                    f"controller {key!r}: outputs depend on completion "
                    f"inputs (state {state!r}); the one-pass pulse "
                    f"resolution is unsound for this FSM"
                )
            next_states.append(transition.target)
            outputs |= transition.outputs
            starts |= transition.starts
            completes |= transition.completes
            for op in transition.starts:
                for producer in self._consumes.get((key, op), ()):
                    consumed.add((key, op, producer))
        # Latch update per dependence edge: a consumption eats exactly one
        # token; a pulse that coincides with a consumption of the
        # previously latched token therefore survives, and a pulse hitting
        # an unconsumed latched token is a (reported) overrun.
        new_flags: set[tuple[str, str, str]] = set()
        overruns: set[tuple[str, str, str]] = set()
        for key in self._keys:
            for producer, consumers in self._edges[key].items():
                pulsed = producer in pulse_set
                for consumer in consumers:
                    edge = (key, consumer, producer)
                    had = edge in flags
                    if edge in consumed:
                        remains = had and pulsed
                    else:
                        remains = had or pulsed
                        if had and pulsed:
                            overruns.add(edge)
                    if remains:
                        new_flags.add(edge)
        return SystemStep(
            config=SystemConfig(
                states=tuple(next_states), flags=frozenset(new_flags)
            ),
            outputs=frozenset(outputs),
            starts=frozenset(starts),
            completes=frozenset(completes),
            overruns=frozenset(overruns),
        )

    def _inputs_for(
        self,
        key: str,
        state: str,
        flags: frozenset[tuple[str, str, str]],
        pulses: frozenset[str],
        unit_completions: Mapping[str, bool],
    ) -> dict[str, bool]:
        inputs: dict[str, bool] = {}
        for signal in self._ct_inputs[key]:
            inputs[signal] = bool(
                unit_completions.get(unit_of_completion(signal), False)
            )
        query = self._state_query[key].get(state)
        for producer in self._cc_inputs[key]:
            latched = (
                query is not None
                and (key, query, producer) in flags
            )
            inputs[op_completion(producer)] = (
                latched or producer in pulses
            )
        return inputs


def system_from_bound(
    bound: BoundDataflowGraph, controllers: Mapping[str, FSM]
) -> ControllerSystem:
    """Build the consumption wiring for per-unit controllers.

    A controller starting operation ``o`` consumes the arrival flags of
    ``o``'s cross-unit direct predecessors.
    """
    consumes: dict[tuple[str, str], tuple[str, ...]] = {}
    for key in controllers:
        for op in bound.ops_on_unit(key):
            preds = bound.cross_unit_predecessors(op)
            if preds:
                consumes[(key, op)] = preds
    return ControllerSystem(controllers=controllers, consumes=consumes)


def single_fsm_system(fsm: FSM, key: str = "central") -> ControllerSystem:
    """Wrap a centralized FSM (no CC wiring) as a controller system."""
    return ControllerSystem(controllers={key: fsm}, consumes={})
