"""Batch simulation runners: Monte-Carlo statistics and throughput."""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from ..binding.binder import BoundDataflowGraph
from ..errors import SimulationError
from ..resources.completion import (
    AssignmentCompletion,
    CompletionModel,
)
from ..resources.spec import CompletionSpec, as_completion_spec
from .controllers import ControllerSystem
from .simulator import SimulationResult, simulate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf.cache import SimulationCache
    from ..runtime.journal import CheckpointJournal
    from ..runtime.policy import RunPolicy, RunReport


def _percentile(sorted_samples: Sequence[int], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted samples."""
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    if len(sorted_samples) == 1:
        return float(sorted_samples[0])
    rank = (len(sorted_samples) - 1) * q
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(sorted_samples[low])
    fraction = rank - low
    return (
        sorted_samples[low] * (1.0 - fraction)
        + sorted_samples[high] * fraction
    )


@dataclass(frozen=True)
class LatencyStatistics:
    """Summary of many simulated first-iteration latencies (cycles).

    ``std`` is the *sample* standard deviation (n − 1 denominator; 0.0
    for a single trial); ``p50``/``p95``/``p99`` are
    linear-interpolation percentiles of the latency distribution.
    """

    trials: int
    mean: float
    std: float
    minimum: int
    maximum: int
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0

    def mean_ns(self, clock_ns: float) -> float:
        return self.mean * clock_ns

    @classmethod
    def from_samples(cls, samples: Sequence[int]) -> "LatencyStatistics":
        """Build the summary from raw latency samples (cycles)."""
        if not samples:
            raise ValueError("latency statistics need >= 1 sample")
        ordered = sorted(samples)
        n = len(ordered)
        mean = sum(ordered) / n
        if n > 1:
            variance = sum((s - mean) ** 2 for s in ordered) / (n - 1)
        else:
            variance = 0.0
        return cls(
            trials=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
        )


def _latency_trial(
    system: ControllerSystem,
    bound: BoundDataflowGraph,
    spec: CompletionSpec,
    base_seed: int,
    trial: int,
) -> int:
    """One Monte-Carlo trial (module-level so process pools can run it)."""
    from ..perf.engine import derive_seed

    result = simulate(
        system,
        bound,
        spec.model(),
        seed=derive_seed(base_seed, trial),
    )
    return result.cycles


def monte_carlo_latency(
    system: ControllerSystem,
    bound: BoundDataflowGraph,
    p: "float | str | CompletionSpec",
    trials: int = 200,
    seed: int = 0,
    *,
    workers: "int | None" = 1,
    cache: "SimulationCache | None" = None,
    policy: "RunPolicy | None" = None,
    report: "RunReport | None" = None,
    checkpoint: "CheckpointJournal | str | None" = None,
    fabric=None,
    engine: str = "auto",
) -> LatencyStatistics:
    """Simulate ``trials`` runs under the completion spec ``p``.

    ``p`` accepts the historical bare probability (Bernoulli), a spec
    string in the ``--completion`` grammar, or a
    :class:`~repro.resources.spec.CompletionSpec`; see
    :mod:`repro.resources.spec`.

    Per-trial seeds are derived from ``(seed, trial)`` with a stable
    hash (:func:`~repro.perf.engine.derive_seed`), so ``workers=N``
    returns statistics byte-identical to the serial run — parallelism
    changes wall-clock time only.  ``cache`` (a
    :class:`~repro.perf.cache.SimulationCache`) short-circuits trials
    already simulated for this exact design/model/seed combination.

    ``policy``/``report`` supervise the pool (crash recovery, retries,
    timeouts — see :mod:`repro.runtime`); ``checkpoint`` journals each
    completed trial so an interrupted sweep resumes with statistics
    byte-identical to an uninterrupted run.  ``fabric`` (a
    :class:`~repro.fabric.FabricConfig`, requires ``checkpoint``)
    distributes the missing trials over fabric worker nodes instead of
    a local pool — same shard keys, same bytes.

    ``engine`` selects the trial executor: ``"scalar"`` runs one
    event-loop simulation per trial, ``"batch"`` requires the
    numpy-vectorized lockstep engine (:mod:`repro.sim.batch` —
    statistics byte-identical to scalar, orders of magnitude faster),
    and ``"auto"`` (the default) uses the batch engine whenever it
    applies (numpy present, <= 63 ops, no cache/policy/checkpoint/
    fabric supervision requested) and the scalar path otherwise.
    """
    from ..perf.engine import derive_seed

    spec = as_completion_spec(p)
    if engine not in ("auto", "scalar", "batch"):
        raise SimulationError(
            f"engine must be 'auto', 'scalar' or 'batch', got {engine!r}"
        )
    if engine != "scalar":
        from .batch import BatchUnsupported, batch_supported

        supervised = (
            cache is not None
            or policy is not None
            or checkpoint is not None
            or fabric is not None
        )
        if engine == "batch" and supervised:
            raise SimulationError(
                "engine='batch' is incompatible with cache/policy/"
                "checkpoint/fabric supervision; use engine='auto' or "
                "'scalar'"
            )
        if not supervised and trials > 0 and batch_supported(system, bound):
            from ..runtime.policy import record_event
            from .batch import batch_monte_carlo_latency

            try:
                stats = batch_monte_carlo_latency(
                    system, bound, spec, trials, seed
                )
            except BatchUnsupported:
                if engine == "batch":
                    raise
            else:
                record_event(
                    report,
                    "batch-engine",
                    f"{trials} Monte-Carlo trials vectorized in lockstep "
                    f"(statistics byte-identical to scalar)",
                )
                return stats
        elif engine == "batch":
            raise SimulationError(
                "engine='batch' requires numpy and <= 63 operations"
            )
    if cache is not None:
        from ..perf.cache import simulate_cached

        model = spec.model()
        samples = [
            simulate_cached(
                system,
                bound,
                model,
                cache=cache,
                seed=derive_seed(seed, trial),
            ).cycles
            for trial in range(trials)
        ]
        return LatencyStatistics.from_samples(samples)
    from ..runtime.journal import checkpointed_map

    # fingerprinting costs a serialization pass; only pay it when a
    # journal actually needs the run key
    run_key = (
        _monte_carlo_run_key(system, bound, spec, trials, seed)
        if checkpoint is not None
        else ""
    )
    samples = checkpointed_map(
        partial(_latency_trial, system, bound, spec, seed),
        range(trials),
        run_key=run_key,
        checkpoint=checkpoint,
        workers=workers,
        policy=policy,
        report=report,
        fabric=fabric,
    )
    return LatencyStatistics.from_samples(samples)


def _monte_carlo_run_key(
    system: ControllerSystem,
    bound: BoundDataflowGraph,
    spec: CompletionSpec,
    trials: int,
    seed: int,
) -> str:
    """Everything that determines a Monte-Carlo sweep's samples.

    Deliberately excludes ``workers`` — parallel and serial runs are
    byte-identical, so either may resume the other's journal.  The
    spec's :meth:`~repro.resources.spec.CompletionSpec.key_fragment`
    renders plain Bernoulli as the legacy ``p={p!r}`` fragment, so
    journals written before completion specs existed resume warm.
    """
    from ..perf.cache import design_fingerprint, system_fingerprint

    return (
        f"monte-carlo|{design_fingerprint(bound)}"
        f"|{system_fingerprint(system)}|{spec.key_fragment()}"
        f"|trials={trials}|seed={seed}"
    )


def simulate_assignment(
    system: ControllerSystem,
    bound: BoundDataflowGraph,
    fast: Mapping[str, bool],
    **kwargs,
) -> SimulationResult:
    """Simulate one exact fast/slow scenario (for analytic cross-checks)."""
    fast_map = {op.name: True for op in bound.dfg}
    fast_map.update(fast)
    return simulate(system, bound, AssignmentCompletion(fast_map), **kwargs)


def pipelined_throughput(
    system: ControllerSystem,
    bound: BoundDataflowGraph,
    completion: CompletionModel,
    iterations: int = 8,
    seed: int = 0,
    inputs: "Mapping[str, Sequence[int]] | None" = None,
) -> tuple[SimulationResult, float]:
    """Back-to-back iteration run; returns (result, cycles/iteration).

    The wrap-around transitions of Algorithm 1 controllers let independent
    units begin iteration ``k+1`` while others still finish ``k`` — the
    throughput gain over the single-iteration latency quantifies the
    concurrency the distributed structure preserves across iterations (an
    extension beyond the paper's Table 2).
    """
    result = simulate(
        system,
        bound,
        completion,
        iterations=iterations,
        seed=seed,
        inputs=inputs,
    )
    return result, result.throughput_cycles()
