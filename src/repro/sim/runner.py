"""Batch simulation runners: Monte-Carlo statistics and throughput."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..binding.binder import BoundDataflowGraph
from ..resources.completion import (
    AssignmentCompletion,
    BernoulliCompletion,
    CompletionModel,
)
from .controllers import ControllerSystem
from .simulator import SimulationResult, simulate


@dataclass(frozen=True)
class LatencyStatistics:
    """Summary of many simulated first-iteration latencies (cycles)."""

    trials: int
    mean: float
    std: float
    minimum: int
    maximum: int

    def mean_ns(self, clock_ns: float) -> float:
        return self.mean * clock_ns


def monte_carlo_latency(
    system: ControllerSystem,
    bound: BoundDataflowGraph,
    p: float,
    trials: int = 200,
    seed: int = 0,
) -> LatencyStatistics:
    """Simulate ``trials`` runs under Bernoulli(p) completion."""
    model = BernoulliCompletion(p)
    samples = []
    for trial in range(trials):
        result = simulate(system, bound, model, seed=seed + trial)
        samples.append(result.cycles)
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / len(samples)
    return LatencyStatistics(
        trials=trials,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(samples),
        maximum=max(samples),
    )


def simulate_assignment(
    system: ControllerSystem,
    bound: BoundDataflowGraph,
    fast: Mapping[str, bool],
    **kwargs,
) -> SimulationResult:
    """Simulate one exact fast/slow scenario (for analytic cross-checks)."""
    fast_map = {op.name: True for op in bound.dfg}
    fast_map.update(fast)
    return simulate(system, bound, AssignmentCompletion(fast_map), **kwargs)


def pipelined_throughput(
    system: ControllerSystem,
    bound: BoundDataflowGraph,
    completion: CompletionModel,
    iterations: int = 8,
    seed: int = 0,
    inputs: "Mapping[str, Sequence[int]] | None" = None,
) -> tuple[SimulationResult, float]:
    """Back-to-back iteration run; returns (result, cycles/iteration).

    The wrap-around transitions of Algorithm 1 controllers let independent
    units begin iteration ``k+1`` while others still finish ``k`` — the
    throughput gain over the single-iteration latency quantifies the
    concurrency the distributed structure preserves across iterations (an
    extension beyond the paper's Table 2).
    """
    result = simulate(
        system,
        bound,
        completion,
        iterations=iterations,
        seed=seed,
        inputs=inputs,
    )
    return result, result.throughput_cycles()
