"""Value-computing datapath for controller verification.

The controllers only decide *when* operations run; this datapath computes
*what* they produce, so a simulation can assert that a controller scheme is
functionally correct (same results as a plain topological evaluation of the
DFG) and can feed concrete operand values to operand-dependent completion
models (:class:`~repro.resources.completion.OperandCompletion`).

Primary inputs are streams (one value per iteration, last value repeated),
so overlapped-iteration simulations stay well-defined.  Iteration ``k`` of
an operation reads iteration ``k`` of its producers; the token semantics of
the control units guarantees the producer value exists when the consumer
starts — a missing value therefore indicates a *control* bug and raises
immediately.

Note (idealization): under overlapped iterations a real datapath would need
double-buffered registers to keep iteration ``k`` readable while ``k+1`` is
produced; we model the buffered behaviour directly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..core.dfg import ConstRef, DataflowGraph, InputRef, OpRef
from ..errors import ProtocolError, SimulationError, VerificationError


class Datapath:
    """Executes operation instances and stores per-iteration results."""

    def __init__(
        self,
        dfg: DataflowGraph,
        inputs: "Mapping[str, int | Sequence[int]]",
    ) -> None:
        self._dfg = dfg
        self._streams: dict[str, tuple[int, ...]] = {}
        for name in dfg.inputs:
            if name not in inputs:
                raise SimulationError(f"no value for primary input {name!r}")
            value = inputs[name]
            if isinstance(value, int):
                self._streams[name] = (value,)
            else:
                stream = tuple(int(v) for v in value)
                if not stream:
                    raise SimulationError(f"empty stream for input {name!r}")
                self._streams[name] = stream
        self._results: dict[str, list[int]] = {op.name: [] for op in dfg}
        self._exec_count: dict[str, int] = {op.name: 0 for op in dfg}

    # -- execution ---------------------------------------------------------
    def iteration_of(self, op_name: str) -> int:
        """Iteration index the next start of an op will execute."""
        return self._exec_count[op_name]

    def operand_values(self, op_name: str) -> tuple[int, ...]:
        """Concrete operand values for the op's *next* execution."""
        iteration = self._exec_count[op_name]
        op = self._dfg.op(op_name)
        values = []
        for operand in op.operands:
            if isinstance(operand, ConstRef):
                values.append(operand.value)
            elif isinstance(operand, InputRef):
                stream = self._streams[operand.name]
                values.append(stream[min(iteration, len(stream) - 1)])
            else:
                assert isinstance(operand, OpRef)
                produced = self._results[operand.op]
                if iteration >= len(produced):
                    raise ProtocolError(
                        f"control bug: {op_name!r} iteration {iteration} "
                        f"started before producer {operand.op!r} finished "
                        f"iteration {iteration}",
                        kind="premature-start",
                        op=op_name,
                    )
                values.append(produced[iteration])
        return tuple(values)

    def start(self, op_name: str) -> tuple[int, ...]:
        """Begin the op's next execution; returns the fetched operands.

        The result becomes visible to consumers immediately (it is latched
        by ``RE`` at completion; consumers can only start strictly after
        that, so computing it eagerly is equivalent).
        """
        operands = self.operand_values(op_name)
        op = self._dfg.op(op_name)
        self._results[op_name].append(op.op_type.evaluate(*operands))
        self._exec_count[op_name] += 1
        return operands

    # -- inspection ----------------------------------------------------------
    def result(self, op_name: str, iteration: int = 0) -> int:
        """The op's result for one iteration."""
        produced = self._results[op_name]
        if iteration >= len(produced):
            raise SimulationError(
                f"{op_name!r} has not executed iteration {iteration}"
            )
        return produced[iteration]

    def executions(self, op_name: str) -> int:
        """How many times an op has started."""
        return self._exec_count[op_name]

    def iteration_inputs(self, iteration: int) -> dict[str, int]:
        """The primary-input values iteration ``k`` consumed."""
        return {
            name: stream[min(iteration, len(stream) - 1)]
            for name, stream in self._streams.items()
        }

    def verify_iteration(self, iteration: int = 0) -> None:
        """Compare one iteration's results against reference evaluation."""
        reference = self._dfg.evaluate(self.iteration_inputs(iteration))
        for op in self._dfg:
            actual = self.result(op.name, iteration)
            if actual != reference[op.name]:
                raise VerificationError(
                    f"datapath mismatch at {op.name!r} iteration "
                    f"{iteration}: controller produced {actual}, reference "
                    f"says {reference[op.name]}",
                    op=op.name,
                    iteration=iteration,
                    actual=actual,
                    expected=reference[op.name],
                )

    def output_values(self, iteration: int = 0) -> dict[str, int]:
        """Primary-output values of one iteration."""
        return {
            out: self.result(op_name, iteration)
            for out, op_name in self._dfg.outputs.items()
        }
