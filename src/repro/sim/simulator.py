"""Cycle-accurate simulation of control units over a bound dataflow graph.

Drives a :class:`~repro.sim.controllers.ControllerSystem` — distributed
per-unit controllers, the centralized synchronized FSM, or the product
CENT-FSM — clock edge by clock edge:

1. sample the completion model when an operation starts on a telescopic
   unit (optionally feeding it real operand values from a
   :class:`~repro.sim.datapath.Datapath`),
2. present each unit's CSG value during the operation's first cycle,
3. step every controller, deliver completion pulses, update latches,
4. record start/finish cycles per operation and per iteration.

The first-iteration latency this measures is exactly what the paper's
Table 2 reports; the analytic engine in :mod:`repro.analysis` must agree
cycle-for-cycle (enforced by tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from ..binding.binder import BoundDataflowGraph
from ..errors import DeadlockError, ProtocolError, SimulationError
from ..resources.completion import CompletionModel
from .controllers import ControllerSystem
from .datapath import Datapath
from .trace import CycleRecord, SimulationTrace


@dataclass(frozen=True)
class MonitorConfig:
    """Which runtime invariant monitors the simulator enforces.

    ``occupancy``, ``timing`` and ``deadlock`` are invariants of every
    correct control unit — they can only fire when something (a fault
    injector, a hand-mutated FSM) broke the protocol, so they default on.
    ``handshake`` promotes token overruns on the completion-arrival latches
    to :class:`~repro.errors.ProtocolError`; overruns are *legal* under
    overlapped iterations (they mark where a real design needs deeper
    buffering), so strict handshake checking is opt-in and meant for
    single-iteration fault campaigns.
    """

    deadlock: bool = True
    occupancy: bool = True
    timing: bool = True
    handshake: bool = False


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run."""

    cycles: int
    clock_ns: float
    start_cycles: Mapping[str, int]
    finish_cycles: Mapping[str, int]
    iteration_finish_cycles: tuple[int, ...]
    fast_outcomes: Mapping[str, tuple[bool, ...]]
    level_outcomes: Mapping[str, tuple[int, ...]] = field(
        default_factory=dict
    )
    token_overruns: int = 0
    trace: "SimulationTrace | None" = None
    datapath: "Datapath | None" = None

    @property
    def latency_ns(self) -> float:
        """First-iteration latency in nanoseconds."""
        return self.cycles * self.clock_ns

    def throughput_cycles(self) -> float:
        """Average cycles per iteration in steady state (>= 2 iterations)."""
        finishes = self.iteration_finish_cycles
        if len(finishes) < 2:
            raise SimulationError(
                "throughput needs at least two simulated iterations"
            )
        return (finishes[-1] - finishes[0]) / (len(finishes) - 1)


def simulate(
    system: ControllerSystem,
    bound: BoundDataflowGraph,
    completion: CompletionModel,
    *,
    iterations: int = 1,
    seed: int = 0,
    inputs: "Mapping[str, int | Sequence[int]] | None" = None,
    record_trace: bool = False,
    max_cycles: "int | None" = None,
    monitors: "MonitorConfig | None" = None,
) -> SimulationResult:
    """Run a controller system until every op completed ``iterations`` times.

    ``inputs`` enables the value-computing datapath (required for
    operand-dependent completion models).  ``max_cycles`` bounds the run
    and turns controller deadlocks into errors instead of hangs.
    ``monitors`` selects the runtime invariant checks (see
    :class:`MonitorConfig`); protocol violations raise
    :class:`~repro.errors.ProtocolError` and stalls raise
    :class:`~repro.errors.DeadlockError` with machine-readable context.
    """
    if monitors is None:
        monitors = MonitorConfig()
    if iterations < 1:
        raise SimulationError("iterations must be >= 1")
    completion.reset()
    rng = random.Random(seed)
    ops = system.all_ops()
    if not ops:
        raise SimulationError("controller system drives no operations")
    missing = ops - set(bound.dfg.op_names())
    if missing:
        raise SimulationError(f"controllers reference unknown ops {missing}")
    if max_cycles is None:
        max_cycles = 16 + 4 * iterations * sum(
            bound.duration_cycles(op, fast=False) for op in ops
        )
    datapath = Datapath(bound.dfg, inputs) if inputs is not None else None
    trace = SimulationTrace() if record_trace else None

    config = system.initial_config()
    executing: dict[str, tuple[str, int, int]] = {}  # unit -> (op, duration, t0)
    start_cycles: dict[str, int] = {}
    finish_cycles: dict[str, int] = {}
    completions: dict[str, int] = {op: 0 for op in ops}
    fast_outcomes: dict[str, list[bool]] = {op: [] for op in ops}
    level_outcomes: dict[str, list[int]] = {op: [] for op in ops}
    iteration_finish: list[int] = []
    overruns = 0

    # Per-op lookup tables, hoisted out of the cycle loop: unit
    # resolution and duration computation walk the allocation on every
    # call, which dominated ``begin`` on large graphs.
    unit_of_op = {op: bound.unit_of(op) for op in ops}
    unit_name_of = {op: unit.name for op, unit in unit_of_op.items()}
    telescopic = frozenset(
        op for op, unit in unit_of_op.items() if unit.is_telescopic
    )
    fixed_duration = {
        op: bound.duration_cycles(op, fast=True)
        for op in ops
        if op not in telescopic
    }
    level_duration: dict[tuple[str, int], int] = {}

    def begin(op: str, cycle: int) -> None:
        unit_name = unit_name_of[op]
        if monitors.occupancy and unit_name in executing:
            busy_op = executing[unit_name][0]
            raise ProtocolError(
                f"occupancy violation: unit {unit_name!r} is busy with "
                f"{busy_op!r} but a controller started {op!r} at cycle "
                f"{cycle}",
                kind="occupancy",
                cycle=cycle,
                op=op,
                unit=unit_name,
            )
        operands = datapath.start(op) if datapath is not None else None
        if op in telescopic:
            level = int(
                completion.sample_level(op, unit_of_op[op], operands, rng)
            )
            duration = level_duration.get((op, level))
            if duration is None:
                duration = bound.duration_for_level(op, level)
                level_duration[(op, level)] = duration
        else:
            level = 0
            duration = fixed_duration[op]
        level_outcomes[op].append(level)
        fast_outcomes[op].append(level == 0)
        executing[unit_name] = (op, duration, cycle)
        start_cycles.setdefault(op, cycle)

    # Sorted iteration over start/complete sets keeps error reporting
    # deterministic across processes (frozenset order follows the
    # per-process string hash seed).
    for op in sorted(system.initial_starts()):
        begin(op, 0)

    def deadlock_context() -> dict:
        pending = tuple(
            sorted(op for op in ops if completions[op] < iterations)
        )
        # Completion nets a stuck consumer is waiting on: a dependence
        # edge of a pending op whose arrival flag is empty is exactly a
        # ``CC_<producer>`` token that never arrived — on an injected
        # handshake fault this names the faulted net.
        starved = tuple(
            edge
            for edge in system.dependence_edges()
            if edge[1] in pending and edge not in config.flags
        )
        return {
            "cycle": cycle,
            "pending_ops": pending,
            "executing": {u: rec[0] for u, rec in sorted(executing.items())},
            "controller_states": dict(zip(system.keys, config.states)),
            "starved_edges": starved,
        }

    def deadlock_detail() -> str:
        ctx = deadlock_context()
        never_started = sorted(set(ctx["pending_ops"]) - set(start_cycles))
        busy = (
            ", ".join(f"{u}:{o}" for u, o in ctx["executing"].items())
            or "none"
        )
        states = ", ".join(
            f"{k}={s}" for k, s in ctx["controller_states"].items()
        )
        starved = "; ".join(
            f"{consumer} (on {key}) awaits net CC_{producer}"
            for key, consumer, producer in ctx["starved_edges"]
        )
        detail = (
            f"executing units: {busy}; pending ops: "
            f"{list(ctx['pending_ops'])}; never started: {never_started}; "
            f"controller states: {states}"
        )
        if starved:
            detail += f"; starved: {starved}"
        return detail

    # Fault injectors that act in a bounded cycle window advertise the last
    # cycle they may still fire; past it, a repeated configuration with no
    # countdown in flight can never resolve (the step function is pure).
    fault_horizon = getattr(system, "fault_horizon", -1)
    previous_snapshot: "tuple | None" = None
    cycle = 0
    num_ops = len(ops)
    target = iterations * num_ops
    total_done = 0
    # done_at[k] counts ops with >= k completions (k in 1..iterations):
    # the incremental form of the per-cycle "is iteration k finished"
    # scan, which was O(iterations × ops) per clock edge.
    done_at = [0] * (iterations + 1)
    while total_done < target:
        if cycle >= max_cycles:
            raise DeadlockError(
                f"simulation exceeded {max_cycles} cycles "
                f"({total_done}/{target} completions) — deadlock or "
                f"livelock in the control unit; {deadlock_detail()}",
                max_cycles=max_cycles,
                **deadlock_context(),
            )
        # The CSG reports "done by now": true from the cycle the sampled
        # telescope level's delay is covered.  Two-level FSMs only look
        # during the first cycle; multi-level extension states re-check.
        unit_completions = {
            unit: (cycle - t0 + 1) >= duration
            for unit, (op, duration, t0) in executing.items()
        }
        if monitors.deadlock:
            # Quiescence watchdog: if the configuration and every CSG value
            # repeat with no countdown left to flip (all reported done) and
            # no fault window still open, every future step is identical.
            # The completion count is part of the snapshot: under wrap-
            # around pipelining a controller may legally complete-and-
            # restart the same op every cycle at a fixed configuration —
            # progress with a repeating config is not a deadlock.
            # The snapshot is only materialized on quiescent cycles (all
            # CSGs report done): an unstable cycle can never equal a
            # stable one — its completion tuple differs — so recording it
            # only costs time on the hot path.
            if all(unit_completions.values()):
                snapshot = (
                    config,
                    tuple(sorted(unit_completions.items())),
                    total_done,
                )
                if (
                    snapshot == previous_snapshot
                    and cycle > fault_horizon
                ):
                    raise DeadlockError(
                        f"deadlock at cycle {cycle}: the control unit is "
                        f"quiescent with {total_done}/{target} completions "
                        f"and can never progress; {deadlock_detail()}",
                        max_cycles=max_cycles,
                        **deadlock_context(),
                    )
                previous_snapshot = snapshot
            else:
                previous_snapshot = None
        result = system.step(config, unit_completions)
        if trace is not None:
            trace.append(
                CycleRecord(
                    cycle=cycle,
                    states=tuple(zip(system.keys, config.states)),
                    unit_completions=tuple(sorted(unit_completions.items())),
                    outputs=result.outputs,
                    starts=result.starts,
                    completes=result.completes,
                )
            )
        completes = result.completes
        if len(completes) > 1:
            completes = sorted(completes)
        for op in completes:
            unit = unit_name_of.get(op) or bound.unit_of(op).name
            record = executing.get(unit)
            if record is None or record[0] != op:
                raise ProtocolError(
                    f"controller completed {op!r} but unit {unit!r} is not "
                    f"executing it",
                    kind="phantom-completion",
                    cycle=cycle,
                    op=op,
                    unit=unit,
                )
            elapsed = cycle - record[2] + 1
            if monitors.timing and elapsed < record[1]:
                raise ProtocolError(
                    f"premature completion: {op!r} on unit {unit!r} "
                    f"completed after {elapsed} cycle(s) at cycle {cycle} "
                    f"but its sampled telescope level needs {record[1]} — "
                    f"the completion signal lied",
                    kind="timing",
                    cycle=cycle,
                    op=op,
                    unit=unit,
                )
            del executing[unit]
            finish_cycles.setdefault(op, cycle + 1)
            completions[op] += 1
            count = completions[op]
            if count <= iterations:
                total_done += 1
                done_at[count] += 1
        starts = result.starts
        if len(starts) > 1:
            starts = sorted(starts)
        for op in starts:
            begin(op, cycle + 1)
        if monitors.handshake and result.overruns:
            edges = tuple(sorted(result.overruns))
            listed = ", ".join(
                f"{ctrl}: {producer}->{consumer}"
                for ctrl, consumer, producer in edges
            )
            raise ProtocolError(
                f"token overrun at cycle {cycle}: a completion pulse hit "
                f"an already-latched arrival flag ({listed}) — a pulse "
                f"must be consumed exactly once",
                kind="overrun",
                cycle=cycle,
                edges=edges,
            )
        overruns += len(result.overruns)
        config = result.config
        cycle += 1
        while (
            len(iteration_finish) < iterations
            and done_at[len(iteration_finish) + 1] == num_ops
        ):
            iteration_finish.append(cycle)

    if datapath is not None:
        for k in range(iterations):
            datapath.verify_iteration(k)

    return SimulationResult(
        cycles=iteration_finish[0],
        clock_ns=bound.allocation.clock_period_ns(),
        start_cycles=start_cycles,
        finish_cycles=finish_cycles,
        iteration_finish_cycles=tuple(iteration_finish),
        fast_outcomes={
            op: tuple(v) for op, v in fast_outcomes.items()
        },
        level_outcomes={
            op: tuple(v) for op, v in level_outcomes.items()
        },
        token_overruns=overruns,
        trace=trace,
        datapath=datapath,
    )
