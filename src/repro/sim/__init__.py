"""Cycle-accurate simulation of control units and datapaths."""

from .controllers import (
    ControllerSystem,
    SystemConfig,
    SystemStep,
    single_fsm_system,
    system_from_bound,
)
from .batch import (
    BatchSimulator,
    batch_monte_carlo_latency,
    batch_supported,
    numpy_available,
)
from .datapath import Datapath
from .runner import (
    LatencyStatistics,
    monte_carlo_latency,
    pipelined_throughput,
    simulate_assignment,
)
from .simulator import MonitorConfig, SimulationResult, simulate
from .trace import CycleRecord, SimulationTrace, gantt
from .stimulus import (
    ValueDistribution,
    constant_streams,
    input_streams,
    small_values,
    sparse_values,
    uniform_values,
)
from .vcd import trace_to_vcd

__all__ = [
    "BatchSimulator",
    "ControllerSystem",
    "CycleRecord",
    "Datapath",
    "LatencyStatistics",
    "MonitorConfig",
    "SimulationResult",
    "SimulationTrace",
    "SystemConfig",
    "SystemStep",
    "ValueDistribution",
    "batch_monte_carlo_latency",
    "batch_supported",
    "constant_streams",
    "gantt",
    "input_streams",
    "monte_carlo_latency",
    "numpy_available",
    "pipelined_throughput",
    "simulate",
    "simulate_assignment",
    "small_values",
    "sparse_values",
    "single_fsm_system",
    "system_from_bound",
    "trace_to_vcd",
    "uniform_values",
]
