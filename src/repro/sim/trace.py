"""Cycle-by-cycle trace recording for controller simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping


@dataclass(frozen=True)
class CycleRecord:
    """Everything observable during one clock cycle.

    ``states`` are the controller states *during* the cycle;
    ``unit_completions`` the CSG values presented; ``outputs`` the Mealy
    outputs asserted; ``starts``/``completes`` the operations that begin in
    the next cycle / finish in this one.
    """

    cycle: int
    states: tuple[tuple[str, str], ...]
    unit_completions: tuple[tuple[str, bool], ...]
    outputs: frozenset[str]
    starts: frozenset[str]
    completes: frozenset[str]


@dataclass
class SimulationTrace:
    """An ordered list of cycle records with rendering helpers."""

    records: list[CycleRecord] = field(default_factory=list)

    def append(self, record: CycleRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def states_of(self, key: str) -> tuple[str, ...]:
        """The state sequence one controller visited."""
        return tuple(
            dict(r.states)[key] for r in self.records
        )

    def render(self, max_cycles: "int | None" = None) -> str:
        """Human-readable waveform-ish text table, one row per cycle."""
        lines = ["cycle | states | C | completes"]
        for record in self.records[:max_cycles]:
            states = " ".join(f"{k}:{s}" for k, s in record.states)
            cs = " ".join(
                f"{u}={int(v)}" for u, v in record.unit_completions
            )
            done = " ".join(sorted(record.completes)) or "-"
            lines.append(
                f"{record.cycle:5d} | {states} | {cs or '-'} | {done}"
            )
        if max_cycles is not None and len(self.records) > max_cycles:
            lines.append(f"... ({len(self.records) - max_cycles} more)")
        return "\n".join(lines)


def gantt(
    start_cycles: Mapping[str, int],
    finish_cycles: Mapping[str, int],
    unit_of: Mapping[str, str],
) -> str:
    """ASCII occupancy chart: one row per unit, ``#`` per busy cycle."""
    horizon = max(finish_cycles.values(), default=0)
    rows: dict[str, list[str]] = {}
    for op, start in start_cycles.items():
        unit = unit_of[op]
        row = rows.setdefault(unit, ["."] * horizon)
        for t in range(start, finish_cycles[op]):
            row[t] = "#" if row[t] == "." else "!"
    lines = [f"{'unit':8s} " + "".join(str(t % 10) for t in range(horizon))]
    for unit in sorted(rows):
        lines.append(f"{unit:8s} " + "".join(rows[unit]))
    return "\n".join(lines)
