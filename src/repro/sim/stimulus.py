"""Input-stimulus generation for datapath simulations.

Produces per-input value streams (one value per dataflow iteration) drawn
from named operand distributions, so operand-dependent completion models
(:class:`~repro.resources.completion.OperandCompletion`) can be driven
with statistically meaningful data — uniform full-scale words, DSP-like
small samples, or sparse control words.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Mapping

from ..core.dfg import DataflowGraph


@dataclass(frozen=True)
class ValueDistribution:
    """A named generator of single operand values."""

    name: str
    sampler: Callable[[random.Random], int]

    def sample(self, rng: random.Random) -> int:
        return self.sampler(rng)


def uniform_values(width: int) -> ValueDistribution:
    """Values uniform over the full ``width``-bit range."""
    limit = (1 << width) - 1
    return ValueDistribution(
        name=f"uniform{width}", sampler=lambda rng: rng.randint(0, limit)
    )


def small_values(width: int, active_bits: int) -> ValueDistribution:
    """Values confined to the low ``active_bits`` bits (DSP samples)."""
    limit = (1 << min(active_bits, width)) - 1
    return ValueDistribution(
        name=f"small{active_bits}of{width}",
        sampler=lambda rng: rng.randint(0, limit),
    )


def sparse_values(width: int, ones: int) -> ValueDistribution:
    """Values with at most ``ones`` set bits (short carry chains)."""

    def sample(rng: random.Random) -> int:
        value = 0
        for _ in range(ones):
            value |= 1 << rng.randrange(width)
        return value

    return ValueDistribution(name=f"sparse{ones}of{width}", sampler=sample)


def input_streams(
    dfg: DataflowGraph,
    distribution: ValueDistribution,
    iterations: int = 1,
    seed: int = 0,
) -> dict[str, list[int]]:
    """One value per iteration for every primary input of a graph."""
    rng = random.Random(seed)
    return {
        name: [distribution.sample(rng) for _ in range(iterations)]
        for name in dfg.inputs
    }


def constant_streams(
    dfg: DataflowGraph, values: Mapping[str, int]
) -> dict[str, list[int]]:
    """Wrap fixed input values as single-iteration streams."""
    return {name: [values[name]] for name in dfg.inputs}
