"""Input and completion stimulus for simulations.

Produces per-input value streams (one value per dataflow iteration) drawn
from named operand distributions, so operand-dependent completion models
(:class:`~repro.resources.completion.OperandCompletion`) can be driven
with statistically meaningful data — uniform full-scale words, DSP-like
small samples, or sparse control words.

It also defines :class:`CounterexampleStimulus`, the replayable form of
a model-checker counterexample: the telescope-level assignment that
drove the composed controller network into a violating state, packaged
so one :meth:`~CounterexampleStimulus.replay` call reproduces the
violation as the matching runtime error in the cycle-accurate
simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Mapping
from typing import TYPE_CHECKING

from ..core.dfg import DataflowGraph
from ..errors import DeadlockError, ProtocolError, VerificationError

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from ..binding.binder import BoundDataflowGraph
    from ..errors import SimulationError
    from ..resources.completion import LevelAssignmentCompletion
    from .controllers import ControllerSystem


@dataclass(frozen=True)
class ValueDistribution:
    """A named generator of single operand values."""

    name: str
    sampler: Callable[[random.Random], int]

    def sample(self, rng: random.Random) -> int:
        return self.sampler(rng)


def uniform_values(width: int) -> ValueDistribution:
    """Values uniform over the full ``width``-bit range."""
    limit = (1 << width) - 1
    return ValueDistribution(
        name=f"uniform{width}", sampler=lambda rng: rng.randint(0, limit)
    )


def small_values(width: int, active_bits: int) -> ValueDistribution:
    """Values confined to the low ``active_bits`` bits (DSP samples)."""
    limit = (1 << min(active_bits, width)) - 1
    return ValueDistribution(
        name=f"small{active_bits}of{width}",
        sampler=lambda rng: rng.randint(0, limit),
    )


def sparse_values(width: int, ones: int) -> ValueDistribution:
    """Values with at most ``ones`` set bits (short carry chains)."""

    def sample(rng: random.Random) -> int:
        value = 0
        for _ in range(ones):
            value |= 1 << rng.randrange(width)
        return value

    return ValueDistribution(name=f"sparse{ones}of{width}", sampler=sample)


def input_streams(
    dfg: DataflowGraph,
    distribution: ValueDistribution,
    iterations: int = 1,
    seed: int = 0,
) -> dict[str, list[int]]:
    """One value per iteration for every primary input of a graph."""
    rng = random.Random(seed)
    return {
        name: [distribution.sample(rng) for _ in range(iterations)]
        for name in dfg.inputs
    }


def constant_streams(
    dfg: DataflowGraph, values: Mapping[str, int]
) -> dict[str, list[int]]:
    """Wrap fixed input values as single-iteration streams."""
    return {name: [values[name]] for name in dfg.inputs}


@dataclass(frozen=True)
class CounterexampleStimulus:
    """A replayable model-checker counterexample.

    The model checker's only source of nondeterminism is the telescope
    level each operation completes at, so a violating run is fully
    described by one level per operation (``levels``, sorted pairs).
    Replaying those levels through a
    :class:`~repro.resources.completion.LevelAssignmentCompletion`
    deterministically re-creates the violating trajectory in the
    cycle-accurate simulator.

    ``expects`` names the runtime error class the replay must raise:
    ``"deadlock"`` (:class:`~repro.errors.DeadlockError`) or
    ``"protocol"`` (:class:`~repro.errors.ProtocolError`).
    """

    design: str
    rule_id: str
    expects: str
    levels: tuple[tuple[str, int], ...]
    depth: int = 0
    description: str = ""
    handshake: bool = True

    def __post_init__(self) -> None:
        if self.expects not in ("deadlock", "protocol"):
            raise VerificationError(
                f"counterexample expects {self.expects!r}; choose "
                f"'deadlock' or 'protocol'"
            )

    def completion_model(self) -> "LevelAssignmentCompletion":
        """The fixed level-per-op completion model of this trajectory."""
        from ..resources.completion import LevelAssignmentCompletion

        return LevelAssignmentCompletion(levels=dict(self.levels))

    def replay(
        self,
        system: "ControllerSystem",
        bound: "BoundDataflowGraph",
        max_cycles: "int | None" = None,
    ) -> "SimulationError":
        """Reproduce the violation in the simulator and return the error.

        Runs one dataflow iteration under the counterexample's level
        assignment with every runtime monitor armed (token-overrun
        checking per ``handshake``).  Raises
        :class:`~repro.errors.VerificationError` if the simulation does
        *not* raise the expected error — the one outcome a sound
        counterexample must never produce.
        """
        from .simulator import MonitorConfig, simulate

        expected: type
        expected = (
            DeadlockError if self.expects == "deadlock" else ProtocolError
        )
        try:
            simulate(
                system,
                bound,
                self.completion_model(),
                iterations=1,
                max_cycles=max_cycles,
                monitors=MonitorConfig(handshake=self.handshake),
            )
        except expected as exc:
            return exc
        raise VerificationError(
            f"counterexample for {self.rule_id} on design "
            f"{self.design!r} did not reproduce: the simulator raised "
            f"no {self.expects} error under levels {dict(self.levels)}"
        )

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "rule_id": self.rule_id,
            "expects": self.expects,
            "levels": [[op, level] for op, level in self.levels],
            "depth": self.depth,
            "description": self.description,
            "handshake": self.handshake,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CounterexampleStimulus":
        return cls(
            design=str(payload["design"]),
            rule_id=str(payload["rule_id"]),
            expects=str(payload["expects"]),
            levels=tuple(
                (str(op), int(level)) for op, level in payload["levels"]
            ),
            depth=int(payload.get("depth", 0)),
            description=str(payload.get("description", "")),
            handshake=bool(payload.get("handshake", True)),
        )
