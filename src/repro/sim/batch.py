"""Vectorized batch Monte-Carlo simulation (thousands of trials in lockstep).

The scalar path in :mod:`repro.sim.runner` runs one Python event loop
per trial; at sub-millisecond per simulation the interpreter dispatch —
not the model — dominates.  This engine simulates *all* trials at once
with trial-major numpy arrays:

* **Replicated randomness.**  The scalar simulator draws fast/slow
  outcomes from ``random.Random(derive_seed(seed, trial))`` — CPython's
  MT19937.  :func:`mt_streams` reproduces those exact streams in bulk:
  it vectorizes ``init_by_array`` over the trial axis (state matrix of
  shape ``(624, trials)``, processed in cache-resident chunks) and
  tempers the first ``2*draws`` outputs directly from the seeded state
  (no twist is needed below 227 outputs), yielding the same
  53-bit doubles ``random.random()`` would return, bit for bit.
* **Transition memo.**  The cycle step is driven by the *real*
  :meth:`~repro.sim.controllers.ControllerSystem.step` — but a system
  only ever visits a few thousand distinct ``(config, completion
  flags)`` pairs, so each is expanded once into dense row tables
  (next config id, per-unit keep masks, completed-op bitmask, started
  ops) and every cycle becomes a handful of array gathers across all
  live trials.  The memo persists on the :class:`BatchSimulator`, so
  repeated campaigns over the same design skip expansion entirely.
* **Bitvector completion tracking.**  Completed ops accumulate into one
  int64 bitmask per trial; a trial finishes the cycle its mask covers
  every operation, matching the scalar first-iteration latency
  semantics.  Finished trials are compacted out of the live arrays.

Statistics are byte-identical to ``monte_carlo_latency``'s scalar path
(pinned by ``tests/test_sim_batch.py`` across all three controller
styles) for every :class:`~repro.resources.spec.CompletionSpec` kind —
Bernoulli thresholds the shared draw stream with one constant,
per-unit mixes with a per-op threshold array, and Markov specs with a
compacted per-trial per-unit state matrix that replays the scalar
chain exactly.  The engine refuses — rather than approximates —
anything it cannot reproduce exactly (>63 ops, missing numpy).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..errors import SimulationError
from ..resources.completion import markov_transition_probabilities
from ..resources.spec import CompletionSpec, MarkovSpec, as_completion_spec
from .runner import LatencyStatistics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..binding.binder import BoundDataflowGraph
    from .controllers import ControllerSystem

try:  # numpy is an optional dependency; every entry point is gated
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None


def numpy_available() -> bool:
    """Whether the vectorized engine can run in this interpreter."""
    return _np is not None


class BatchUnsupported(SimulationError):
    """The batch engine cannot reproduce this configuration exactly."""


def _require_numpy() -> None:
    if _np is None:
        raise BatchUnsupported(
            "batch Monte-Carlo requires numpy; install it or use the "
            "scalar engine"
        )


# -- MT19937 stream replication ------------------------------------------

#: ``random.random()`` consumes two 32-bit outputs per double; the
#: untwisted MT state yields 227 outputs, so 113 draws per trial is the
#: widest block the no-twist fast path can serve.
_MAX_DRAWS = 113


def _mt_base():
    """State after ``init_genrand(19650218)`` — shared by every seed."""
    mt = _np.empty(624, dtype=_np.uint64)
    mt[0] = 19650218
    for i in range(1, 624):
        mt[i] = (1812433253 * (mt[i - 1] ^ (mt[i - 1] >> 30)) + i) & (
            0xFFFFFFFF
        )
    return mt.astype(_np.uint32)


_BASE = None


def _chunk_streams(key0, key1, draws, scratch):
    """``random.random()`` doubles for one chunk of trial seeds.

    Runs CPython's ``init_by_array`` over the whole chunk at once (the
    state matrix is ``(624, chunk)``; all ops in-place on ``scratch``),
    then tempers the first ``2*draws`` outputs straight from the seeded
    state.  ``key0``/``key1`` are the little-endian 32-bit words of the
    63-bit :func:`~repro.perf.engine.derive_seed` values.
    """
    mt, tmp = scratch
    mt[:] = _BASE[:, None]
    key = (key0, key1)
    xor, rsh = _np.bitwise_xor, _np.right_shift
    mul, add, sub = _np.multiply, _np.add, _np.subtract
    i, j = 1, 0
    for _ in range(624, 0, -1):
        prev, row = mt[i - 1], mt[i]
        rsh(prev, 30, out=tmp)
        xor(prev, tmp, out=tmp)
        mul(tmp, _np.uint32(1664525), out=tmp)
        xor(row, tmp, out=row)
        add(row, key[j], out=row)
        if j:
            add(row, _np.uint32(j), out=row)
        i += 1
        j += 1
        if i >= 624:
            mt[0] = mt[623]
            i = 1
        if j >= 2:
            j = 0
    for _ in range(623, 0, -1):
        prev, row = mt[i - 1], mt[i]
        rsh(prev, 30, out=tmp)
        xor(prev, tmp, out=tmp)
        mul(tmp, _np.uint32(1566083941), out=tmp)
        xor(row, tmp, out=row)
        sub(row, _np.uint32(i), out=row)
        i += 1
        if i >= 624:
            mt[0] = mt[623]
            i = 1
    mt[0] = _np.uint32(0x80000000)
    n = 2 * draws
    y = (mt[0:n] & _np.uint32(0x80000000)) | (
        mt[1 : n + 1] & _np.uint32(0x7FFFFFFF)
    )
    out = mt[397 : 397 + n] ^ (y >> 1) ^ ((y & _np.uint32(1)) * (
        _np.uint32(0x9908B0DF)
    ))
    out ^= out >> 11
    out ^= (out << 7) & _np.uint32(0x9D2C5680)
    out ^= (out << 15) & _np.uint32(0xEFC60000)
    out ^= out >> 18
    high = (out[0::2] >> 5).astype(_np.float64)
    low = (out[1::2] >> 6).astype(_np.float64)
    return ((high * 67108864.0 + low) * (1.0 / 9007199254740992.0)).T


def mt_streams(seeds, draws: int, chunk: int = 16384):
    """``(trials, draws)`` doubles matching ``random.Random(seed)``.

    Byte-for-byte the values ``random.Random(int(seed)).random()`` would
    produce, for every seed at once.  ``draws`` is capped at 113 (the
    no-twist limit); ``chunk`` bounds the working set so the state
    matrix stays cache-resident.
    """
    _require_numpy()
    global _BASE
    if _BASE is None:
        _BASE = _mt_base()
    if draws > _MAX_DRAWS:
        raise BatchUnsupported(
            f"{draws} draws per trial exceeds the no-twist limit "
            f"{_MAX_DRAWS}"
        )
    seeds = _np.asarray(seeds, dtype=_np.uint64)
    key0 = (seeds & _np.uint64(0xFFFFFFFF)).astype(_np.uint32)
    key1 = (seeds >> _np.uint64(32)).astype(_np.uint32)
    trials = seeds.shape[0]
    result = _np.empty((trials, draws))
    scratch = None
    for lo in range(0, trials, chunk):
        hi = min(lo + chunk, trials)
        if scratch is None or hi - lo != scratch[0].shape[1]:
            scratch = (
                _np.empty((624, hi - lo), dtype=_np.uint32),
                _np.empty(hi - lo, dtype=_np.uint32),
            )
        result[lo:hi] = _chunk_streams(
            key0[lo:hi], key1[lo:hi], draws, scratch
        )
    return result


# -- the lockstep engine -------------------------------------------------


class _DrawOverflow(Exception):
    """A trial needed more Bernoulli draws than were pre-generated."""


class BatchSimulator:
    """Lockstep Monte-Carlo engine for one ``(system, bound)`` design.

    Construction compiles the op/unit tables; the transition memo then
    grows on demand as trials visit new ``(config, flags)`` pairs and is
    kept across :meth:`latencies` calls — a warm engine simulates 100k
    AR-lattice trials without a single Python-level ``step`` call.
    """

    def __init__(
        self, system: "ControllerSystem", bound: "BoundDataflowGraph"
    ) -> None:
        _require_numpy()
        ops = sorted(system.all_ops())
        if len(ops) > 63:
            raise BatchUnsupported(
                f"{len(ops)} ops exceed the 63-bit completion mask"
            )
        self.system = system
        self.bound = bound
        self.ops = ops
        self.N = len(ops)
        self.opi = {op: i for i, op in enumerate(ops)}
        units = sorted({bound.unit_of(op).name for op in ops})
        self.units = units
        self.U = len(units)
        unit_index = {u: i for i, u in enumerate(units)}
        self.unit_arr = [unit_index[bound.unit_of(op).name] for op in ops]
        telescopic = set(bound.telescopic_ops()) & set(ops)
        self.is_tele = [op in telescopic for op in ops]
        fast = [
            bound.duration_for_level(op, 0)
            if op in telescopic
            else bound.duration_cycles(op, fast=True)
            for op in ops
        ]
        slow = [
            bound.duration_for_level(op, bound.unit_of(op).num_levels - 1)
            if op in telescopic
            else fast[i]
            for i, op in enumerate(ops)
        ]
        self.fast_arr = _np.array(fast, dtype=_np.int16)
        self.slow_arr = _np.array(slow, dtype=_np.int16)
        self.k = len(telescopic)
        self.max_cycles = 16 + 4 * sum(
            bound.duration_cycles(op, fast=False) for op in ops
        )
        # persistent transition memo: one row per (config, flags) pair
        self._config_ids: dict = {}
        self._configs: list = []
        self._next_config: list[int] = []
        self._keep_rows: list = []
        self._done_rows: list[int] = []
        self._start_rows: list = []
        self._rowtab = _np.full(1 << self.U, -1, dtype=_np.int64)
        self._tables_cache = None
        self.init_config = self._intern(system.initial_config())
        self.init_starts = sorted(system.initial_starts())
        # draws per trial: one per telescopic start, including the
        # wrap-around second-iteration starts observed before the last
        # first-iteration completion; k + 2U + 2 covers every benchmark
        # with margin, and an overflow doubles the block and retries
        self.initial_draws = min(self.k + 2 * self.U + 2, _MAX_DRAWS)

    # -- transition memo -------------------------------------------------

    def _intern(self, config) -> int:
        row = self._config_ids.get(config)
        if row is None:
            row = len(self._configs)
            self._config_ids[config] = row
            self._configs.append(config)
            need = len(self._configs) << self.U
            if self._rowtab.size < need:
                grown = _np.full(
                    max(need, 2 * self._rowtab.size), -1, dtype=_np.int64
                )
                grown[: self._rowtab.size] = self._rowtab
                self._rowtab = grown
        return row

    def _expand(self, key: int) -> None:
        """Memoize one ``(config, completion flags)`` transition."""
        config_id = key >> self.U
        flag_bits = key & ((1 << self.U) - 1)
        unit_completions = {
            self.units[u]: bool(flag_bits >> u & 1) for u in range(self.U)
        }
        step = self.system.step(
            self._configs[config_id], unit_completions
        )
        keep = _np.ones(self.U, dtype=bool)
        done_bits = 0
        for op in step.completes:
            keep[self.unit_arr[self.opi[op]]] = False
            done_bits |= 1 << self.opi[op]
        starts = _np.zeros(self.N, dtype=bool)
        for op in step.starts:
            starts[self.opi[op]] = True
        next_config = self._intern(step.config)
        self._next_config.append(next_config)
        self._keep_rows.append(keep)
        self._done_rows.append(done_bits)
        self._start_rows.append(starts)
        self._rowtab[key] = len(self._next_config) - 1
        self._tables_cache = None

    def _tables(self):
        if self._tables_cache is None:
            start_matrix = _np.array(self._start_rows)
            self._tables_cache = (
                _np.array(self._next_config, dtype=_np.int64),
                _np.array(self._keep_rows),
                _np.array(self._done_rows, dtype=_np.int64),
                start_matrix,
                start_matrix.any(axis=1),
            )
        return self._tables_cache

    @property
    def memo_size(self) -> int:
        """Distinct ``(config, flags)`` transitions expanded so far."""
        return len(self._next_config)

    # -- simulation ------------------------------------------------------

    def latencies(
        self, p: "float | str | CompletionSpec", trials: int, seed: int = 0
    ):
        """First-iteration latencies (cycles) for all trials.

        Entry ``t`` equals ``simulate(system, bound, spec.model(),
        seed=derive_seed(seed, trial=t)).cycles`` exactly, for any
        completion spec (Bernoulli, per-unit, Markov).
        """
        from ..perf.engine import derive_seed

        spec = as_completion_spec(p)
        if trials <= 0:
            raise SimulationError("batch Monte-Carlo needs >= 1 trial")
        seeds = _np.fromiter(
            (derive_seed(seed, t) for t in range(trials)),
            dtype=_np.uint64,
            count=trials,
        )
        draws = self.initial_draws
        while True:
            u = mt_streams(seeds, draws)
            try:
                return self._run(u, spec)
            except _DrawOverflow:
                if draws >= _MAX_DRAWS:
                    raise BatchUnsupported(
                        "trial exceeded the per-trial draw budget"
                    ) from None
                draws = min(2 * draws, _MAX_DRAWS)

    def statistics(
        self, p: "float | str | CompletionSpec", trials: int, seed: int = 0
    ) -> LatencyStatistics:
        """``LatencyStatistics`` byte-identical to the scalar path."""
        return LatencyStatistics.from_samples(
            self.latencies(p, trials, seed).tolist()
        )

    def _op_thresholds(self, spec: CompletionSpec):
        """Per-op fast thresholds for i.i.d. specs (telescopic ops only)."""
        thresholds = _np.zeros(self.N)
        for i, op in enumerate(self.ops):
            if self.is_tele[i]:
                thresholds[i] = spec.probability_for(self.bound.unit_of(op))
        return thresholds

    def _run(self, u, spec: CompletionSpec):
        trials = u.shape[0]
        width = u.shape[1]
        unit_arr, is_tele = self.unit_arr, self.is_tele
        fast_arr, slow_arr = self.fast_arr, self.slow_arr
        if isinstance(spec, MarkovSpec):
            thresholds = None
            first_threshold = spec.p_fast
            after_fast, after_slow = markov_transition_probabilities(
                spec.p_fast, spec.stickiness
            )
            # -1 = no history yet, 0 = last draw slow, 1 = last draw fast;
            # compacted alongside the other live-trial arrays
            markov_state = _np.full((trials, self.U), -1, dtype=_np.int8)
        else:
            thresholds = self._op_thresholds(spec)
            markov_state = None
        remaining = _np.zeros((trials, self.U), dtype=_np.int16)
        executing = _np.zeros((trials, self.U), dtype=bool)
        config = _np.full(trials, self.init_config, dtype=_np.int64)
        draw_count = _np.zeros(trials, dtype=_np.int64)
        done_mask = _np.zeros(trials, dtype=_np.int64)
        latency = _np.full(trials, -1, dtype=_np.int64)
        # live-trial view; ``u``/``draw_count`` index by original
        # trial id and are never compacted
        orig = _np.arange(trials)

        def start_op(op, rows, trial_ids, extra):
            unit = unit_arr[op]
            if is_tele[op]:
                counts = draw_count[trial_ids]
                if counts.size and int(counts.max()) >= width:
                    raise _DrawOverflow
                draw = u[trial_ids, counts]
                draw_count[trial_ids] = counts + 1
                if markov_state is None:
                    fast_bit = draw < thresholds[op]
                else:
                    state = markov_state[rows, unit]
                    fast_bit = draw < _np.where(
                        state < 0,
                        first_threshold,
                        _np.where(state > 0, after_fast, after_slow),
                    )
                    markov_state[rows, unit] = fast_bit
                remaining[rows, unit] = _np.where(
                    fast_bit, fast_arr[op], slow_arr[op]
                ).astype(_np.int16) + _np.int16(extra)
            else:
                remaining[rows, unit] = int(fast_arr[op]) + extra
            executing[rows, unit] = True

        all_rows = _np.arange(trials)
        for op in self.init_starts:
            start_op(self.opi[op], all_rows, all_rows, 0)
        full = _np.int64((1 << self.N) - 1)
        cycle = 0
        while orig.size:
            if cycle >= self.max_cycles:
                raise SimulationError(
                    f"batch simulation exceeded {self.max_cycles} cycles"
                )
            flags = executing & (remaining <= _np.int16(1))
            flag_bits = _np.packbits(
                flags, axis=1, bitorder="little"
            )[:, 0].astype(_np.int64)
            keys = (config << _np.int64(self.U)) | flag_bits
            rows = self._rowtab[keys]
            missing = rows < 0
            if missing.any():
                for key in _np.unique(keys[missing]):
                    self._expand(int(key))
                rows = self._rowtab[keys]
            next_config, keep, done, start_matrix, row_starts = (
                self._tables()
            )
            config = next_config[rows]
            executing &= keep[rows]
            done_mask |= done[rows]
            if row_starts[rows].any():
                started_ops = _np.flatnonzero(
                    start_matrix[_np.unique(rows)].any(axis=0)
                )
                # sorted op order matches the scalar simulator's
                # deterministic draw order
                columns = start_matrix[:, started_ops][rows]
                for col in range(started_ops.size):
                    hit = _np.flatnonzero(columns[:, col])
                    if hit.size:
                        start_op(
                            int(started_ops[col]), hit, orig[hit], 1
                        )
            remaining -= _np.int16(1)
            cycle += 1
            finished = done_mask == full
            n_finished = int(_np.count_nonzero(finished))
            if n_finished:
                latency[orig[finished]] = cycle
                if n_finished == orig.size:
                    break
                live = ~finished
                orig = orig[live]
                remaining = remaining[live]
                executing = executing[live]
                config = config[live]
                done_mask = done_mask[live]
                if markov_state is not None:
                    markov_state = markov_state[live]
        return latency


def batch_monte_carlo_latency(
    system: "ControllerSystem",
    bound: "BoundDataflowGraph",
    p: "float | str | CompletionSpec",
    trials: int = 200,
    seed: int = 0,
    *,
    engine: "BatchSimulator | None" = None,
) -> LatencyStatistics:
    """Vectorized drop-in for the scalar ``monte_carlo_latency`` core.

    Pass a prebuilt :class:`BatchSimulator` as ``engine`` to reuse its
    transition memo across calls; otherwise one is built (and cached per
    ``(system, bound)`` pair) on the fly.
    """
    if engine is None:
        engine = shared_engine(system, bound)
    return engine.statistics(p, trials, seed)


# engines keyed on the live system object; entries die with the system
_ENGINES: "dict | None" = None


def shared_engine(
    system: "ControllerSystem", bound: "BoundDataflowGraph"
) -> BatchSimulator:
    """The process-wide memoized engine for ``(system, bound)``."""
    import weakref

    global _ENGINES
    _require_numpy()
    if _ENGINES is None:
        _ENGINES = weakref.WeakKeyDictionary()
    entry = _ENGINES.get(system)
    if entry is not None and entry[0] is bound:
        return entry[1]
    engine = BatchSimulator(system, bound)
    _ENGINES[system] = (bound, engine)
    return engine


def batch_supported(
    system: "ControllerSystem", bound: "BoundDataflowGraph"
) -> bool:
    """Whether the batch engine can take this design at all."""
    return numpy_available() and len(system.all_ops()) <= 63


__all__: Sequence[str] = (
    "BatchSimulator",
    "BatchUnsupported",
    "batch_monte_carlo_latency",
    "batch_supported",
    "mt_streams",
    "numpy_available",
    "shared_engine",
)
