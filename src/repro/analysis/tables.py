"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Monospace table with padded columns and a separator rule."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(
            str(cell).ljust(width) for cell, width in zip(cells, widths)
        )
    rule = "-+-".join("-" * w for w in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_series(
    title: str, points: Sequence[tuple[float, float]], unit: str = ""
) -> str:
    """One-line-per-point rendering of a figure-style series."""
    lines = [title]
    for x, y in points:
        lines.append(f"  {x:g}\t{y:g}{unit}")
    return "\n".join(lines)
