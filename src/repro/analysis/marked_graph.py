"""Marked-graph throughput bounds for pipelined execution.

Under overlapped iterations the distributed control unit behaves as a
*marked graph*: operations are transitions, dependence/schedule arcs are
places with zero initial tokens, and each unit chain's wrap-around arc
(last op → first op) carries the one initial token that lets iteration
``k+1`` begin.  The steady-state iteration period of such a system is its
**maximum cycle ratio**

    λ* = max over directed cycles C of  Σ duration(op in C) / Σ tokens(C),

the classic performance bound of timed marked graphs / synchronous data
flow.  This module computes λ* exactly (Lawler's parametric search with
Bellman–Ford positive-cycle detection, then exact re-evaluation on the
extracted critical cycle) and names the critical cycle — telling a
designer *which* resource chain or dependence loop caps the pipeline.

Validated against the cycle-accurate simulator: with fixed durations the
simulated steady-state cycles/iteration equals λ* whenever no token
overruns occur (tests assert it).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from collections.abc import Mapping, Sequence

from ..binding.binder import BoundDataflowGraph
from ..errors import SimulationError


@dataclass(frozen=True)
class ThroughputBound:
    """The maximum cycle ratio and one critical cycle realizing it."""

    cycles_per_iteration: Fraction
    critical_cycle: tuple[str, ...]

    @property
    def value(self) -> float:
        return float(self.cycles_per_iteration)

    def render(self) -> str:
        loop = " -> ".join(self.critical_cycle + (self.critical_cycle[0],))
        return (
            f"throughput bound {self.cycles_per_iteration} "
            f"cycles/iteration (critical cycle: {loop})"
        )


def _edges_with_tokens(
    bound: BoundDataflowGraph,
) -> list[tuple[str, str, int]]:
    """Execution edges (0 tokens) plus per-chain wrap arcs (1 token)."""
    edges: list[tuple[str, str, int]] = [
        (u, v, 0) for u, v in bound.execution_edges()
    ]
    for _, chain in bound.order.all_chains():
        if chain:
            edges.append((chain[-1], chain[0], 1))
    return edges


def handshake_edges(
    bound: BoundDataflowGraph,
) -> tuple[tuple[str, str, int], ...]:
    """The CC-handshake marked graph of a bound design, as edges.

    Public view of the token-annotated execution graph (data edges and
    schedule arcs with zero tokens, per-chain wrap arcs with one) shared
    by the throughput analysis and the static liveness rule of
    :mod:`repro.verify`.
    """
    return tuple(_edges_with_tokens(bound))


def token_free_cycle(
    edges: Sequence[tuple[str, str, int]],
) -> "tuple[str, ...] | None":
    """A directed cycle all of whose edges carry zero tokens, if any.

    A marked graph is live exactly when no such cycle exists (every
    cycle then holds at least one initial token to fire around).  The
    returned tuple lists the cycle's nodes in order; ``None`` means the
    zero-token subgraph is acyclic.
    """
    succ: dict[str, list[str]] = {}
    for u, v, tokens in edges:
        if tokens == 0:
            succ.setdefault(u, []).append(v)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in succ}
    for u, v, _ in edges:
        color.setdefault(u, WHITE)
        color.setdefault(v, WHITE)
    for root in color:
        if color[root] != WHITE:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        path: list[str] = []
        color[root] = GRAY
        path.append(root)
        while stack:
            node, child_index = stack[-1]
            children = succ.get(node, ())
            if child_index < len(children):
                stack[-1] = (node, child_index + 1)
                child = children[child_index]
                if color[child] == GRAY:
                    start = path.index(child)
                    return tuple(path[start:])
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
                    path.append(child)
            else:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return None


def _positive_cycle(
    names: Sequence[str],
    edges: Sequence[tuple[int, int, float, int]],
    durations: Sequence[int],
    lam: float,
) -> "list[int] | None":
    """A cycle with positive weight under w = duration − λ·tokens, if any.

    Longest-path Bellman–Ford from a virtual source; a relaxation in the
    n-th round exposes a positive cycle, recovered by walking predecessor
    pointers.
    """
    n = len(names)
    dist = [0.0] * n
    pred: list[int] = [-1] * n
    pred_edge_last = -1
    for _round in range(n):
        changed = -1
        for u, v, weight, _ in edges:
            candidate = dist[u] + weight
            if candidate > dist[v] + 1e-12:
                dist[v] = candidate
                pred[v] = u
                changed = v
        if changed < 0:
            return None
        pred_edge_last = changed
    # Walk back n steps to land inside the cycle, then collect it.
    node = pred_edge_last
    for _ in range(n):
        node = pred[node]
    cycle = [node]
    walk = pred[node]
    while walk != node:
        cycle.append(walk)
        walk = pred[walk]
    cycle.reverse()
    return cycle


def pipelined_throughput_bound(
    bound: BoundDataflowGraph,
    durations: "Mapping[str, int] | None" = None,
    fast: bool = True,
) -> ThroughputBound:
    """Exact maximum cycle ratio of the pipelined execution graph.

    ``durations`` gives per-op cycle counts; by default every op takes its
    fast (``fast=True``) or worst (``fast=False``) duration.
    """
    names = list(bound.dfg.op_names())
    index = {name: i for i, name in enumerate(names)}
    if durations is None:
        durations = {
            name: bound.duration_cycles(name, fast) for name in names
        }
    dur = [int(durations[name]) for name in names]
    if any(d < 1 for d in dur):
        raise SimulationError("durations must be >= 1 cycle")

    raw_edges = _edges_with_tokens(bound)
    if not any(tokens for _, _, tokens in raw_edges):
        raise SimulationError("no wrap arcs: the graph cannot pipeline")

    def edges_for(lam: float):
        return [
            (index[u], index[v], dur[index[u]] - lam * tokens, tokens)
            for u, v, tokens in raw_edges
        ]

    # Parametric search: the largest λ admitting a positive cycle is λ*.
    low, high = 0.0, float(sum(dur)) + 1.0
    best_cycle: "list[int] | None" = None
    for _ in range(64):
        mid = (low + high) / 2.0
        cycle = _positive_cycle(names, edges_for(mid), dur, mid)
        if cycle is not None:
            best_cycle = cycle
            low = mid
        else:
            high = mid
        if high - low < 1e-9:
            break
    if best_cycle is None:
        # λ = 0 already admits no positive cycle: ratio is the largest
        # single wrap self-loop.
        best_cycle = max(
            ([index[u]] for u, v, t in raw_edges if t and u == v),
            key=lambda c: dur[c[0]],
            default=None,
        )
        if best_cycle is None:
            raise SimulationError("failed to locate a critical cycle")

    # Exact ratio of the extracted cycle.
    cycle_set = best_cycle
    total_duration = sum(dur[i] for i in cycle_set)
    tokens = _cycle_tokens(best_cycle, raw_edges, index)
    ratio = Fraction(total_duration, tokens)
    return ThroughputBound(
        cycles_per_iteration=ratio,
        critical_cycle=tuple(names[i] for i in best_cycle),
    )


def _cycle_tokens(
    cycle: Sequence[int],
    raw_edges: Sequence[tuple[str, str, int]],
    index: Mapping[str, int],
) -> int:
    """Tokens along the cycle (choosing min-token parallel edges)."""
    edge_tokens: dict[tuple[int, int], int] = {}
    for u, v, tokens in raw_edges:
        key = (index[u], index[v])
        edge_tokens[key] = min(edge_tokens.get(key, tokens), tokens)
    total = 0
    for i, node in enumerate(cycle):
        nxt = cycle[(i + 1) % len(cycle)]
        if (node, nxt) not in edge_tokens:
            raise SimulationError("extracted cycle is not closed")
        total += edge_tokens[(node, nxt)]
    if total < 1:
        raise SimulationError(
            "token-free cycle found: the execution graph is cyclic"
        )
    return total


def resource_bound_cycles(
    bound: BoundDataflowGraph, fast: bool = True
) -> dict[str, int]:
    """Per-unit work per iteration (the trivial chain-only bounds)."""
    result = {}
    for unit in bound.used_units():
        result[unit.name] = sum(
            bound.duration_cycles(op, fast)
            for op in bound.ops_on_unit(unit.name)
        )
    return result
