"""Exact latency distributions (beyond Table 2's expectations).

Table 2 reports expected latencies; designers sizing real-time budgets
need the whole distribution — e.g. "which latency is met 99% of the
time?".  Because the fast/slow outcomes are independent Bernoulli draws,
the exact probability mass function over cycle counts is computable by
the same exhaustive enumeration the expectation uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from ..errors import SimulationError
from .latency import (
    EXACT_ENUMERATION_LIMIT,
    LatencyFn,
    enumerate_assignments,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from ..resources.spec import CompletionSpec


@dataclass(frozen=True)
class LatencyDistribution:
    """Exact PMF of a scheme's latency in cycles."""

    scheme: str
    clock_ns: float
    pmf: tuple[tuple[int, float], ...]  # (cycles, probability), ascending

    def __post_init__(self) -> None:
        total = sum(p for _, p in self.pmf)
        if abs(total - 1.0) > 1e-6:
            raise SimulationError(
                f"latency PMF sums to {total}, expected 1"
            )

    # -- moments -----------------------------------------------------------
    def mean(self) -> float:
        return sum(c * p for c, p in self.pmf)

    def variance(self) -> float:
        mean = self.mean()
        return sum(p * (c - mean) ** 2 for c, p in self.pmf)

    def std(self) -> float:
        return math.sqrt(self.variance())

    # -- order statistics -----------------------------------------------------
    def cdf(self) -> tuple[tuple[int, float], ...]:
        """Running ``(cycles, P(latency <= cycles))`` pairs, ascending.

        The single accumulation both order statistics are defined on —
        ``quantile`` and ``probability_at_most`` read the same curve.
        """
        acc = 0.0
        pairs = []
        for cycles, p in self.pmf:
            acc += p
            pairs.append((cycles, acc))
        return tuple(pairs)

    def quantile(self, q: float) -> int:
        """Smallest cycle count whose CDF reaches ``q``."""
        if not 0.0 < q <= 1.0:
            raise SimulationError(f"quantile must be in (0, 1], got {q}")
        for cycles, acc in self.cdf():
            if acc >= q - 1e-12:
                return cycles
        return self.pmf[-1][0]

    def probability_at_most(self, cycles: int) -> float:
        """P(latency <= cycles) — the timing-budget yield."""
        result = 0.0
        for c, acc in self.cdf():
            if c > cycles:
                break
            result = acc
        return result

    @property
    def support(self) -> tuple[int, ...]:
        return tuple(c for c, _ in self.pmf)

    # -- rendering -----------------------------------------------------------
    def histogram(self, width: int = 40) -> str:
        """ASCII histogram, one row per cycle count."""
        peak = max(p for _, p in self.pmf)
        lines = [f"{self.scheme} latency distribution (cycles):"]
        for cycles, p in self.pmf:
            bar = "#" * max(1, round(width * p / peak)) if p > 0 else ""
            lines.append(
                f"  {cycles:4d} ({cycles * self.clock_ns:6.1f} ns) "
                f"{p:7.4f} {bar}"
            )
        return "\n".join(lines)


def exact_latency_distribution(
    scheme: str,
    latency_fn: LatencyFn,
    tau_ops: Sequence[str],
    p: "float | Mapping[str, float]",
    clock_ns: float,
    limit: int = EXACT_ENUMERATION_LIMIT,
) -> LatencyDistribution:
    """Exact latency PMF under independent Bernoulli fast outcomes.

    ``p`` is one shared fast probability or a per-op mapping (the
    resolved marginals of a ``per-unit`` completion spec).  Structured
    evaluators (``DistLatencyEvaluator``, ``SyncLatencyEvaluator``)
    dispatch to the exact engine's distribution propagation and are
    feasible at any ``k``; opaque callables enumerate all ``2**k``
    assignments, bounded by ``limit``.
    """
    from ..errors import ExactAnalysisError
    from .latency import DistLatencyEvaluator, SyncLatencyEvaluator

    try:
        if isinstance(latency_fn, DistLatencyEvaluator):
            from .exact_engine import analyze_dist_latency

            return analyze_dist_latency(
                latency_fn, tau_ops, p, scheme=scheme, clock_ns=clock_ns
            ).distribution
        if isinstance(latency_fn, SyncLatencyEvaluator):
            from .exact_engine import analyze_sync_latency

            return analyze_sync_latency(
                latency_fn.taubm, tau_ops, p,
                scheme=scheme, clock_ns=clock_ns,
            ).distribution
    except ExactAnalysisError:
        if len(tau_ops) > limit:
            raise
        # cut too wide for the engine but enumeration still feasible
    if len(tau_ops) > limit:
        raise SimulationError(
            f"{len(tau_ops)} telescopic ops exceed the enumeration limit"
        )
    from .latency import _check_p_values, _op_p

    _check_p_values(p)
    mass: dict[int, float] = {}
    for values in enumerate_assignments(tau_ops):
        fast = dict(zip(tau_ops, values))
        if isinstance(p, Mapping):
            weight = 1.0
            for op, is_fast in fast.items():
                p_op = _op_p(p, op)
                weight *= p_op if is_fast else 1.0 - p_op
        else:
            # power form, byte-identical to the historical scalar path
            fast_count = sum(values)
            weight = (p ** fast_count) * (
                (1.0 - p) ** (len(tau_ops) - fast_count)
            )
        if weight == 0.0:
            continue
        cycles = latency_fn(fast)
        mass[cycles] = mass.get(cycles, 0.0) + weight
    return LatencyDistribution(
        scheme=scheme,
        clock_ns=clock_ns,
        pmf=tuple(sorted(mass.items())),
    )


@dataclass(frozen=True)
class DistributionComparison:
    """DIST vs CENT-SYNC latency distributions at one completion model.

    ``p`` is the shared float fast probability for Bernoulli runs and
    the completion spec's description otherwise.
    """

    benchmark: str
    p: "float | str"
    dist: LatencyDistribution
    sync: LatencyDistribution

    def render(self) -> str:
        lines = [
            f"latency distributions for {self.benchmark} at P={self.p}",
            self.dist.histogram(),
            self.sync.histogram(),
            (
                f"P99 budget: DIST {self.dist.quantile(0.99)} cycles vs "
                f"CENT-SYNC {self.sync.quantile(0.99)} cycles"
            ),
        ]
        return "\n".join(lines)

    def stochastic_dominance_holds(self) -> bool:
        """Whether DIST's CDF dominates SYNC's at every cycle count.

        First-order stochastic dominance is the distribution-level form of
        the per-assignment dominance theorem: for every budget ``c``,
        P(DIST <= c) >= P(SYNC <= c).
        """
        budgets = set(self.dist.support) | set(self.sync.support)
        return all(
            self.dist.probability_at_most(c)
            >= self.sync.probability_at_most(c) - 1e-12
            for c in budgets
        )


def compare_distributions(
    bound,
    taubm,
    p: "float | str | CompletionSpec" = 0.7,
    limit: int = EXACT_ENUMERATION_LIMIT,
) -> DistributionComparison:
    """Exact distribution comparison for one synthesized design.

    ``p`` accepts any i.i.d. completion spec (float, spec string, or
    :class:`~repro.resources.spec.CompletionSpec`); correlated specs
    raise :class:`~repro.errors.ExactAnalysisError` — use the
    Monte-Carlo engines for those.
    """
    from ..resources.spec import BernoulliSpec, as_completion_spec
    from .latency import DistLatencyEvaluator, SyncLatencyEvaluator

    spec = as_completion_spec(p)
    tau_ops = bound.telescopic_ops()
    clock = bound.allocation.clock_period_ns()
    # Bernoulli keeps the scalar fast path (byte-identical to the
    # legacy float argument); other specs resolve per-op marginals
    p_value: "float | Mapping[str, float]" = (
        spec.p
        if isinstance(spec, BernoulliSpec)
        else spec.op_probabilities(bound, tau_ops)
    )
    dist = exact_latency_distribution(
        "DIST", DistLatencyEvaluator(bound), tau_ops, p_value, clock, limit
    )
    sync = exact_latency_distribution(
        "CENT-SYNC",
        SyncLatencyEvaluator(taubm),
        tau_ops,
        p_value,
        clock,
        limit,
    )
    return DistributionComparison(
        benchmark=bound.dfg.name,
        p=spec.p if isinstance(spec, BernoulliSpec) else spec.describe(),
        dist=dist,
        sync=sync,
    )
