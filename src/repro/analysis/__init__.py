"""Analytic latency models and report rendering."""

from .activity import ActivityReport, activity_report, compare_activity
from .marked_graph import (
    ThroughputBound,
    pipelined_throughput_bound,
    resource_bound_cycles,
)
from .distribution import (
    DistributionComparison,
    LatencyDistribution,
    compare_distributions,
    exact_latency_distribution,
)
from .exact_engine import (
    ExactLatencyAnalysis,
    analyze_dist_categorical,
    analyze_dist_latency,
    analyze_sync_categorical,
    analyze_sync_latency,
    graph_latency_pmf,
)
from .latency import (
    DistLatencyEvaluator,
    DurationTable,
    EXACT_ENUMERATION_LIMIT,
    LatencyComparison,
    SchemeLatency,
    SyncLatencyEvaluator,
    compare_latencies,
    dist_latency_cycles,
    duration_table,
    exact_expected_latency_categorical,
    enumerate_assignments,
    exact_expected_latency,
    expected_latency,
    monte_carlo_expected_latency,
    scheme_latency,
    sync_latency_cycles,
)
from .tables import render_series, render_table
from .utilization import (
    UnitUtilization,
    UtilizationReport,
    compare_utilization,
    utilization_report,
)

__all__ = [
    "ActivityReport",
    "DistLatencyEvaluator",
    "DistributionComparison",
    "DurationTable",
    "EXACT_ENUMERATION_LIMIT",
    "ExactLatencyAnalysis",
    "LatencyComparison",
    "LatencyDistribution",
    "SchemeLatency",
    "SyncLatencyEvaluator",
    "ThroughputBound",
    "activity_report",
    "analyze_dist_categorical",
    "analyze_dist_latency",
    "analyze_sync_categorical",
    "analyze_sync_latency",
    "graph_latency_pmf",
    "compare_activity",
    "UnitUtilization",
    "UtilizationReport",
    "compare_utilization",
    "compare_distributions",
    "compare_latencies",
    "dist_latency_cycles",
    "duration_table",
    "exact_expected_latency_categorical",
    "enumerate_assignments",
    "exact_expected_latency",
    "exact_latency_distribution",
    "expected_latency",
    "monte_carlo_expected_latency",
    "pipelined_throughput_bound",
    "render_series",
    "resource_bound_cycles",
    "render_table",
    "scheme_latency",
    "sync_latency_cycles",
    "utilization_report",
]
