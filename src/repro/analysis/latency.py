"""Exact and Monte-Carlo latency analysis (the paper's Table 2 engine).

Two closed execution models (derived in DESIGN.md §2):

* **Distributed** — an operation starts the cycle after all of its data
  predecessors, schedule-arc predecessors and unit predecessor finished,
  so for a fixed fast/slow assignment the latency is the node-weighted
  longest path of the execution graph (weights 1 or 2 cycles).
* **Synchronized TAUBM** — each time step takes one cycle, plus one
  extension cycle when any of its TAU operations is slow.

Expectations over i.i.d. Bernoulli(P) fast/slow outcomes are computed
*exactly* by enumerating the ``2**k`` assignments of the ``k`` telescopic
operations (weighted by the binomial probabilities) when ``k`` is small
enough, and by seeded Monte-Carlo sampling otherwise.  The cycle-accurate
simulator must agree with both models assignment-for-assignment; tests
enforce it.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

from ..binding.binder import BoundDataflowGraph
from ..core.analysis import schedule_length
from ..errors import ExactAnalysisError, SimulationError
from ..scheduling.schedule import TaubmSchedule

#: Default limit on exhaustive enumeration (2**20 assignments).
EXACT_ENUMERATION_LIMIT = 20


class DistLatencyEvaluator:
    """Compiled longest-path evaluator for one bound graph.

    Precomputes the topological order and predecessor lists of the
    execution graph once so exhaustive enumeration over ``2**k`` fast/slow
    assignments stays cheap (Table 2's AR-lattice row evaluates 65536
    assignments per P value).
    """

    def __init__(self, bound: BoundDataflowGraph) -> None:
        dfg = bound.dfg
        names = list(dfg.op_names())
        index = {name: i for i, name in enumerate(names)}
        preds: list[set[int]] = [set() for _ in names]
        for u, v in bound.execution_edges():
            preds[index[v]].add(index[u])
        # Kahn order over the combined graph.
        indegree = [len(p) for p in preds]
        succs: list[list[int]] = [[] for _ in names]
        for v, plist in enumerate(preds):
            for u in plist:
                succs[u].append(v)
        ready = [i for i, n in enumerate(indegree) if n == 0]
        order: list[int] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ in succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        self._names = names
        self._order = order
        self._preds = [tuple(p) for p in preds]
        self._fast_dur = [
            bound.duration_cycles(name, fast=True) for name in names
        ]
        self._slow_dur = [
            bound.duration_cycles(name, fast=False) for name in names
        ]

    def __call__(self, fast: Mapping[str, bool]) -> int:
        finish = [0] * len(self._names)
        for i in self._order:
            dur = (
                self._fast_dur[i]
                if fast.get(self._names[i], True)
                else self._slow_dur[i]
            )
            finish[i] = dur + max(
                (finish[p] for p in self._preds[i]), default=0
            )
        return max(finish) if finish else 0

    def for_durations(self, durations: Mapping[str, int]) -> int:
        """Latency for explicit per-op cycle counts (multi-level VCAUs).

        Missing operations default to their fastest duration.
        """
        finish = [0] * len(self._names)
        for i in self._order:
            dur = durations.get(self._names[i], self._fast_dur[i])
            finish[i] = dur + max(
                (finish[p] for p in self._preds[i]), default=0
            )
        return max(finish) if finish else 0

    def execution_structure(
        self,
    ) -> tuple[
        tuple[str, ...],
        tuple[tuple[int, ...], ...],
        tuple[int, ...],
        tuple[int, ...],
    ]:
        """``(names, predecessor_indices, fast_durs, slow_durs)``.

        The compiled execution-graph structure, exposed for the exact
        engine's distribution propagation (:mod:`.exact_engine`).
        """
        return (
            tuple(self._names),
            tuple(self._preds),
            tuple(self._fast_dur),
            tuple(self._slow_dur),
        )


class SyncLatencyEvaluator:
    """Compiled CENT-SYNC (TAUBM) latency evaluator.

    The callable mirrors :func:`sync_latency_cycles` — one cycle per
    step plus an extension when any of the step's TAU ops is slow, with
    unmentioned ops defaulting to fast — but carries the schedule
    structure so the exact engine can use the closed-form per-step model
    instead of enumeration.
    """

    def __init__(self, taubm: TaubmSchedule) -> None:
        self.taubm = taubm
        self._steps = [
            (step.tau_ops, bool(step.tau_ops)) for step in taubm.steps
        ]

    def __call__(self, fast: Mapping[str, bool]) -> int:
        total = 0
        for tau_ops, has_extension in self._steps:
            total += 1
            if has_extension and not all(
                fast.get(op, True) for op in tau_ops
            ):
                total += 1
        return total

    def for_durations(self, durations: Mapping[str, int]) -> int:
        """Latency for explicit per-op cycle counts (multi-level VCAUs)."""
        return self.taubm.cycles_for_durations(durations)


def dist_latency_cycles(
    bound: BoundDataflowGraph, fast: Mapping[str, bool]
) -> int:
    """Distributed latency (cycles) for one fast/slow assignment."""
    durations = {
        op.name: bound.duration_cycles(op.name, fast.get(op.name, True))
        for op in bound.dfg
    }
    return schedule_length(
        bound.dfg, durations, extra_edges=bound.order.schedule_arcs
    )


def sync_latency_cycles(
    taubm: TaubmSchedule, fast: Mapping[str, bool]
) -> int:
    """Synchronized TAUBM latency (cycles) for one assignment."""
    return taubm.cycles_for(
        {op: fast.get(op, True) for op in _tau_ops_of(taubm)}
    )


def _tau_ops_of(taubm: TaubmSchedule) -> tuple[str, ...]:
    return tuple(
        op for step in taubm.steps for op in step.tau_ops
    )


LatencyFn = Callable[[Mapping[str, bool]], int]


def enumerate_assignments(
    tau_ops: Sequence[str],
) -> "itertools.product":
    """All fast/slow assignments of the telescopic operations."""
    return itertools.product((False, True), repeat=len(tau_ops))


def _op_p(p: "float | Mapping[str, float]", op: str) -> float:
    if isinstance(p, Mapping):
        try:
            return p[op]
        except KeyError:
            raise SimulationError(
                f"per-op probability mapping is missing TAU op {op!r}"
            ) from None
    return p


def _check_p_values(p: "float | Mapping[str, float]") -> None:
    values = p.values() if isinstance(p, Mapping) else (p,)
    for value in values:
        if not 0.0 <= value <= 1.0:
            raise SimulationError(f"P must be in [0, 1], got {value}")


def _engine_analysis(
    latency_fn: LatencyFn, tau_ops: Sequence[str], p: "float | Mapping[str, float]"
) -> "object | None":
    """Exact-engine analysis for structured evaluators, else ``None``.

    Compiled evaluators expose the graph/schedule structure, so the
    exact engine can propagate distributions instead of enumerating
    ``2**k`` assignments; opaque callables keep the legacy enumerator.
    Raises :class:`~repro.errors.ExactAnalysisError` when the structure
    is too correlated for exact propagation.
    """
    from .exact_engine import analyze_dist_latency, analyze_sync_latency

    if isinstance(latency_fn, DistLatencyEvaluator):
        return analyze_dist_latency(latency_fn, tau_ops, p)
    if isinstance(latency_fn, SyncLatencyEvaluator):
        return analyze_sync_latency(latency_fn.taubm, tau_ops, p)
    return None


def exact_expected_latency(
    latency_fn: LatencyFn,
    tau_ops: Sequence[str],
    p: "float | Mapping[str, float]",
    limit: int = EXACT_ENUMERATION_LIMIT,
) -> float:
    """Exact expectation: distribution propagation, else enumeration.

    ``p`` is the shared scalar probability or a per-op mapping (a
    heterogeneous per-unit spec resolved through
    :meth:`~repro.resources.spec.CompletionSpec.op_probabilities`).
    Structured evaluators (:class:`DistLatencyEvaluator`,
    :class:`SyncLatencyEvaluator`) dispatch to the exact engine and are
    feasible at any ``k``; opaque callables fall back to exhaustive
    ``2**k`` enumeration, bounded by ``limit``.
    """
    try:
        analysis = _engine_analysis(latency_fn, tau_ops, p)
    except ExactAnalysisError:
        if len(tau_ops) > limit:
            raise
        analysis = None  # cut too wide but enumeration still feasible
    if analysis is not None:
        return analysis.expectation
    if len(tau_ops) > limit:
        raise SimulationError(
            f"{len(tau_ops)} telescopic ops exceed the exact enumeration "
            f"limit {limit}; use monte_carlo_expected_latency"
        )
    _check_p_values(p)
    total = 0.0
    for values in enumerate_assignments(tau_ops):
        fast = dict(zip(tau_ops, values))
        if isinstance(p, Mapping):
            weight = 1.0
            for op, is_fast in zip(tau_ops, values):
                p_op = _op_p(p, op)
                weight *= p_op if is_fast else 1.0 - p_op
        else:
            # keep the power form: byte-identical to the legacy scalar path
            fast_count = sum(values)
            weight = (p ** fast_count) * (
                (1.0 - p) ** (len(tau_ops) - fast_count)
            )
        if weight == 0.0:
            continue
        total += weight * latency_fn(fast)
    return total


#: A categorical duration table: op -> ((cycles, probability), ...).
DurationTable = Mapping[str, Sequence[tuple[int, float]]]


def duration_table(
    bound: BoundDataflowGraph, level_probabilities: Sequence[float]
) -> dict[str, tuple[tuple[int, float], ...]]:
    """Per-op (cycles, probability) rows for i.i.d. level outcomes.

    Telescope levels that quantize to the same cycle count at the system
    clock are merged (their probabilities add).
    """
    table: dict[str, tuple[tuple[int, float], ...]] = {}
    for op in bound.telescopic_ops():
        unit = bound.unit_of(op)
        if len(level_probabilities) != unit.num_levels:
            raise SimulationError(
                f"{len(level_probabilities)} level probabilities but unit "
                f"{unit.name!r} has {unit.num_levels} levels"
            )
        merged: dict[int, float] = {}
        for level, p in enumerate(level_probabilities):
            cycles = bound.duration_for_level(op, level)
            merged[cycles] = merged.get(cycles, 0.0) + p
        table[op] = tuple(sorted(merged.items()))
    return table


def exact_expected_latency_categorical(
    latency_fn: Callable[[Mapping[str, int]], int],
    table: DurationTable,
    limit_assignments: int = 2_000_000,
) -> float:
    """Exact expectation over independent categorical durations.

    ``latency_fn`` maps an explicit duration assignment to cycles (use
    :meth:`DistLatencyEvaluator.for_durations` or
    :meth:`TaubmSchedule.cycles_for_durations`).  Bound methods of the
    structured evaluators dispatch to the exact engine's distribution
    propagation; other callables enumerate the duration cross-product.
    """
    analysis = None
    try:
        owner = getattr(latency_fn, "__self__", None)
        func = getattr(latency_fn, "__func__", None)
        if isinstance(owner, DistLatencyEvaluator) and (
            func is DistLatencyEvaluator.for_durations
        ):
            from .exact_engine import analyze_dist_categorical

            analysis = analyze_dist_categorical(owner, table)
        elif isinstance(owner, TaubmSchedule) and (
            func is TaubmSchedule.cycles_for_durations
        ):
            from .exact_engine import analyze_sync_categorical

            analysis = analyze_sync_categorical(owner, table)
        elif isinstance(owner, SyncLatencyEvaluator) and (
            func is SyncLatencyEvaluator.for_durations
        ):
            from .exact_engine import analyze_sync_categorical

            analysis = analyze_sync_categorical(owner.taubm, table)
    except ExactAnalysisError:
        analysis = None  # exact enumeration below is still exact
    if analysis is not None:
        return analysis.expectation
    ops = list(table)
    combos = 1
    for rows in table.values():
        combos *= len(rows)
    if combos > limit_assignments:
        raise SimulationError(
            f"{combos} duration assignments exceed the enumeration limit"
        )
    total = 0.0
    for choice in itertools.product(*(table[op] for op in ops)):
        weight = 1.0
        durations: dict[str, int] = {}
        for op, (cycles, p) in zip(ops, choice):
            weight *= p
            durations[op] = cycles
        if weight == 0.0:
            continue
        total += weight * latency_fn(durations)
    return total


def monte_carlo_expected_latency(
    latency_fn: LatencyFn,
    tau_ops: Sequence[str],
    p: "float | Mapping[str, float]",
    trials: int = 4000,
    seed: int = 0,
) -> float:
    """Seeded Monte-Carlo estimate of the expected latency."""
    rng = random.Random(seed)
    total = 0
    for _ in range(trials):
        fast = {op: rng.random() < _op_p(p, op) for op in tau_ops}
        total += latency_fn(fast)
    return total / trials


def expected_latency(
    latency_fn: LatencyFn,
    tau_ops: Sequence[str],
    p: "float | Mapping[str, float]",
    exact_limit: int = EXACT_ENUMERATION_LIMIT,
    trials: int = 4000,
    seed: int = 0,
    *,
    allow_monte_carlo: bool = True,
) -> float:
    """Exact when feasible, Monte-Carlo otherwise.

    Structured evaluators are exact at any ``k`` via the exact engine;
    opaque callables are exact up to ``exact_limit`` enumerated ops.
    With ``allow_monte_carlo=False`` an infeasible exact analysis raises
    :class:`~repro.errors.ExactAnalysisError` instead of silently
    degrading to a sampled estimate.
    """
    if isinstance(latency_fn, (DistLatencyEvaluator, SyncLatencyEvaluator)):
        try:
            return exact_expected_latency(
                latency_fn, tau_ops, p, exact_limit
            )
        except ExactAnalysisError:
            if not allow_monte_carlo:
                raise
            return monte_carlo_expected_latency(
                latency_fn, tau_ops, p, trials, seed
            )
    if len(tau_ops) <= exact_limit:
        return exact_expected_latency(latency_fn, tau_ops, p, exact_limit)
    if not allow_monte_carlo:
        raise ExactAnalysisError(
            f"{len(tau_ops)} telescopic ops exceed the exact enumeration "
            f"limit {exact_limit} and allow_monte_carlo=False",
            limit=exact_limit,
        )
    return monte_carlo_expected_latency(latency_fn, tau_ops, p, trials, seed)


@dataclass(frozen=True)
class SchemeLatency:
    """Best / expected-at-P / worst latency of one controller scheme."""

    scheme: str
    clock_ns: float
    best_cycles: int
    worst_cycles: int
    expected_cycles: Mapping[float, float]

    @property
    def best_ns(self) -> float:
        return self.best_cycles * self.clock_ns

    @property
    def worst_ns(self) -> float:
        return self.worst_cycles * self.clock_ns

    def expected_ns(self, p: float) -> float:
        return self.expected_cycles[p] * self.clock_ns

    def bracket_ns(self) -> str:
        """The paper's ``[best][avg...][worst]`` notation in ns."""
        avgs = ", ".join(
            f"{self.expected_ns(p):.1f}" for p in self.expected_cycles
        )
        return f"[{self.best_ns:.0f}][{avgs}][{self.worst_ns:.0f}]"


@dataclass(frozen=True)
class LatencyComparison:
    """TAUBM-sync vs distributed latency for one benchmark/allocation."""

    benchmark: str
    resources: str
    sync: SchemeLatency
    dist: SchemeLatency
    fixed_design_ns: float

    def enhancement(self, p: float) -> float:
        """Relative improvement of DIST over sync at one P."""
        base = self.sync.expected_ns(p)
        return (base - self.dist.expected_ns(p)) / base

    def enhancement_column(self) -> str:
        """The paper's ``Performance Enhancement`` column."""
        return (
            "["
            + ", ".join(
                f"{100 * self.enhancement(p):.1f}%"
                for p in self.sync.expected_cycles
            )
            + "]"
        )


def scheme_latency(
    scheme: str,
    latency_fn: LatencyFn,
    tau_ops: Sequence[str],
    clock_ns: float,
    ps: Sequence[float],
    exact_limit: int = EXACT_ENUMERATION_LIMIT,
    trials: int = 4000,
    seed: int = 0,
) -> SchemeLatency:
    """Evaluate best/worst/expected latency of one scheme."""
    best = latency_fn({op: True for op in tau_ops})
    worst = latency_fn({op: False for op in tau_ops})
    expected = {
        p: expected_latency(
            latency_fn, tau_ops, p, exact_limit, trials, seed
        )
        for p in ps
    }
    return SchemeLatency(
        scheme=scheme,
        clock_ns=clock_ns,
        best_cycles=best,
        worst_cycles=worst,
        expected_cycles=expected,
    )


def compare_latencies(
    bound: BoundDataflowGraph,
    taubm: TaubmSchedule,
    ps: Sequence[float] = (0.9, 0.7, 0.5),
    resources: "str | None" = None,
    exact_limit: int = EXACT_ENUMERATION_LIMIT,
    trials: int = 4000,
    seed: int = 0,
) -> LatencyComparison:
    """The full Table-2 comparison for one benchmark/allocation.

    ``fixed_design_ns`` is the conventional all-fixed-delay design: the
    same time-step schedule clocked at the original (worst-delay) period —
    the baseline a telescopic design must beat at all.
    """
    tau_ops = bound.telescopic_ops()
    clock = bound.allocation.clock_period_ns()
    sync = scheme_latency(
        "CENT-SYNC",
        SyncLatencyEvaluator(taubm),
        tau_ops,
        clock,
        ps,
        exact_limit,
        trials,
        seed,
    )
    dist = scheme_latency(
        "DIST",
        DistLatencyEvaluator(bound),
        tau_ops,
        clock,
        ps,
        exact_limit,
        trials,
        seed,
    )
    fixed = (
        taubm.base.num_steps * bound.allocation.original_clock_period_ns()
    )
    return LatencyComparison(
        benchmark=bound.dfg.name,
        resources=resources or _resource_string(bound),
        sync=sync,
        dist=dist,
        fixed_design_ns=fixed,
    )


def _resource_string(bound: BoundDataflowGraph) -> str:
    counts: dict[str, int] = {}
    for unit in bound.allocation:
        symbol = {
            "mul": "*",
            "add": "+",
            "sub": "-",
            "alu": "#",
        }[unit.resource_class.value]
        counts[symbol] = counts.get(symbol, 0) + 1
    return ", ".join(f"{sym}:{n}" for sym, n in counts.items())
