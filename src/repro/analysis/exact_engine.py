"""Exact latency analysis by distribution propagation (no ``2**k`` sweep).

The enumerator in :mod:`repro.analysis.latency` evaluates the longest
path once per fast/slow assignment — ``2**k`` evaluations for ``k``
telescopic operations (65536 on the AR lattice, ~1.7 s per P value).
This module computes the same PMF by propagating per-node *finish-time
distributions* through the execution graph instead:

* **Frontier DP (DIST).**  Process nodes in a topological order chosen
  greedily to keep the *live frontier* — nodes whose finish time a
  still-unprocessed successor needs — as narrow as possible.  The DP
  state is the tuple of frontier finish times (packed into one integer),
  conditioned exactly: each node convolves its Bernoulli/categorical
  duration onto ``max`` of its predecessors' finish times, and nodes
  whose last consumer has been processed are dropped from the state
  (folding sinks into a running maximum).  The frontier width *is* the
  correlation cut: independent branches never multiply states, only the
  simultaneously-live correlated nodes do.  Weakly-connected components
  are solved separately and joined with the max-of-independent-CDFs
  product rule.
* **Step convolution (CENT-SYNC).**  The TAUBM partitions operations
  over time steps, so the per-step extension indicators are independent:
  a step with ``k`` enumerated TAU ops costs ``1`` cycle with
  probability ``p**k`` and ``2`` otherwise, and the latency PMF is the
  convolution over steps (a Poisson-binomial shifted by the step count).

Both methods reproduce the enumerator's PMF exactly wherever enumeration
is feasible (pinned by property tests) and stay in the milliseconds far
beyond the ``2**20``-assignment horizon.  When the correlated frontier
is genuinely too wide (``cut_limit``) or the conditioned state count
explodes (``state_limit``), a structured
:class:`~repro.errors.ExactAnalysisError` reports the detected cut width
instead of silently degrading.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from ..errors import ExactAnalysisError, SimulationError
from .distribution import LatencyDistribution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..scheduling.schedule import TaubmSchedule
    from .latency import DistLatencyEvaluator, DurationTable

#: One node's duration distribution: ((cycles, probability), ...).
DurationSpec = tuple[tuple[int, float], ...]

#: Maximum live-frontier width before exact DP is declared infeasible.
#: 2**18 packed states is the same order as the old 2**18-assignment
#: enumerations that were still tolerably fast; every paper benchmark
#: has cut width <= 11.
DEFAULT_CUT_LIMIT = 18

#: Hard cap on simultaneously-live conditioned DP states.
DEFAULT_STATE_LIMIT = 4_000_000


@dataclass(frozen=True)
class ExactLatencyAnalysis:
    """The exact PMF plus how (and how hard) it was to compute.

    ``cut_width`` is the widest correlated frontier the DP had to
    condition on (for the step model: the largest enumerated TAU group
    in one step), ``states`` the peak conditioned-state count, and
    ``components`` the number of independently-solved weakly-connected
    components.
    """

    distribution: LatencyDistribution
    method: str
    cut_width: int
    states: int
    components: int

    @property
    def expectation(self) -> float:
        return self.distribution.mean()

    @property
    def variance(self) -> float:
        return self.distribution.variance()

    @property
    def std(self) -> float:
        return self.distribution.std()

    def quantile(self, q: float) -> int:
        return self.distribution.quantile(q)


# -- frontier DP over the execution graph --------------------------------


def _components(
    count: int, preds: Sequence[Sequence[int]]
) -> list[list[int]]:
    """Weakly-connected components, each sorted, listed by least node."""
    adjacency: list[list[int]] = [[] for _ in range(count)]
    for node, plist in enumerate(preds):
        for pred in plist:
            adjacency[node].append(pred)
            adjacency[pred].append(node)
    seen = [False] * count
    components: list[list[int]] = []
    for start in range(count):
        if seen[start]:
            continue
        seen[start] = True
        stack = [start]
        comp = []
        while stack:
            node = stack.pop()
            comp.append(node)
            for other in adjacency[node]:
                if not seen[other]:
                    seen[other] = True
                    stack.append(other)
        components.append(sorted(comp))
    return components


def _plan_component(
    comp: Sequence[int],
    preds: Sequence[Sequence[int]],
    succs: Sequence[Sequence[int]],
) -> tuple[list[tuple[int, tuple[int, ...], tuple[int, ...], bool]], int]:
    """Greedy min-width elimination order for one component.

    Returns ``(plan, width)`` where each plan entry is
    ``(node, predecessor_positions, kept_positions, grows)``: positions
    index the live frontier *before* the step, ``kept_positions`` lists
    the frontier entries that survive (in order), and ``grows`` says the
    node joins the frontier (it still has unprocessed successors) rather
    than folding into the running sink maximum.
    """
    compset = set(comp)
    indegree = {v: len(preds[v]) for v in comp}
    remaining_succs = {v: len(succs[v]) for v in comp}
    ready = sorted(v for v in comp if indegree[v] == 0)
    live: list[int] = []
    plan: list[tuple[int, tuple[int, ...], tuple[int, ...], bool]] = []
    width = 0
    while ready:
        best = None
        best_width = None
        for v in ready:
            drops = sum(1 for u in preds[v] if remaining_succs[u] == 1)
            grows = 1 if succs[v] else 0
            w = len(live) - drops + grows
            if best_width is None or w < best_width:
                best, best_width = v, w
        v = best
        ready.remove(v)
        pred_set = set(preds[v])
        pred_pos = tuple(
            i for i, u in enumerate(live) if u in pred_set
        )
        dropped = {u for u in pred_set if remaining_succs[u] == 1}
        keep_pos = tuple(
            i for i, u in enumerate(live) if u not in dropped
        )
        grows = bool(succs[v])
        plan.append((v, pred_pos, keep_pos, grows))
        live = [u for u in live if u not in dropped]
        if grows:
            live.append(v)
        width = max(width, len(live))
        for u in pred_set:
            remaining_succs[u] -= 1
        for w_node in succs[v]:
            indegree[w_node] -= 1
            if indegree[w_node] == 0:
                ready.append(w_node)
        ready.sort()
    if len(plan) != len(compset):  # pragma: no cover - defensive
        raise ExactAnalysisError(
            "execution graph contains a cycle; exact analysis impossible"
        )
    return plan, width


def _component_pmf(
    plan: Sequence[tuple[int, tuple[int, ...], tuple[int, ...], bool]],
    specs: Sequence[DurationSpec],
    bits: int,
    state_limit: int,
) -> tuple[dict[int, float], int]:
    """Run the packed-integer frontier DP for one planned component."""
    mask = (1 << bits) - 1
    states: dict[int, float] = {0: 1.0}
    peak = 1
    for node, pred_pos, keep_pos, grows in plan:
        rows = specs[node]
        pred_shifts = tuple((i + 1) * bits for i in pred_pos)
        keeps = tuple(
            ((old + 1) * bits, (new + 1) * bits)
            for new, old in enumerate(keep_pos)
        )
        append_shift = (len(keep_pos) + 1) * bits
        new_states: dict[int, float] = {}
        for state, weight in states.items():
            acc = state & mask
            ready = 0
            for shift in pred_shifts:
                finish = (state >> shift) & mask
                if finish > ready:
                    ready = finish
            packed = acc
            for src, dst in keeps:
                packed |= ((state >> src) & mask) << dst
            if grows:
                for cycles, prob in rows:
                    key = packed | ((ready + cycles) << append_shift)
                    new_states[key] = new_states.get(key, 0.0) + (
                        weight * prob
                    )
            else:
                high = packed & ~mask
                for cycles, prob in rows:
                    finish = ready + cycles
                    key = high | (finish if finish > acc else acc)
                    new_states[key] = new_states.get(key, 0.0) + (
                        weight * prob
                    )
        states = new_states
        peak = max(peak, len(states))
        if peak > state_limit:
            raise ExactAnalysisError(
                f"exact frontier DP exceeded {state_limit} conditioned "
                f"states; raise state_limit or allow Monte-Carlo",
                limit=state_limit,
            )
    pmf: dict[int, float] = {}
    for state, weight in states.items():
        cycles = state & mask
        pmf[cycles] = pmf.get(cycles, 0.0) + weight
    return pmf, peak


def _max_of_independent(
    a: dict[int, float], b: dict[int, float]
) -> dict[int, float]:
    """PMF of ``max(A, B)`` for independent A, B via the CDF product."""
    support = sorted(set(a) | set(b))
    cdf_a = 0.0
    cdf_b = 0.0
    prev = 0.0
    out: dict[int, float] = {}
    for cycles in support:
        cdf_a += a.get(cycles, 0.0)
        cdf_b += b.get(cycles, 0.0)
        cdf = cdf_a * cdf_b
        mass = cdf - prev
        if mass != 0.0:
            out[cycles] = mass
        prev = cdf
    return out


def graph_latency_pmf(
    specs: Sequence[DurationSpec],
    preds: Sequence[Sequence[int]],
    *,
    cut_limit: int = DEFAULT_CUT_LIMIT,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> tuple[dict[int, float], int, int, int]:
    """Exact longest-path PMF of a DAG with independent node durations.

    ``specs[i]`` is node ``i``'s ``(cycles, probability)`` distribution
    and ``preds[i]`` its predecessor indices; the latency is
    ``max_i finish_i`` with ``finish_i = dur_i + max(finish_preds)``.
    Returns ``(pmf, cut_width, peak_states, components)``.  Raises
    :class:`~repro.errors.ExactAnalysisError` when the detected cut
    width exceeds ``cut_limit`` (checked *before* any state expansion).
    """
    count = len(specs)
    if count == 0:
        return {0: 1.0}, 0, 1, 0
    succs: list[list[int]] = [[] for _ in range(count)]
    for node, plist in enumerate(preds):
        for pred in plist:
            succs[pred].append(node)
    for slist in succs:
        slist.sort()
    plans = []
    width = 0
    for comp in _components(count, preds):
        plan, comp_width = _plan_component(comp, preds, succs)
        plans.append((comp, plan))
        width = max(width, comp_width)
    if width > cut_limit:
        raise ExactAnalysisError(
            f"correlated frontier of width {width} exceeds the exact "
            f"analysis cut limit {cut_limit}",
            cut_width=width,
            limit=cut_limit,
        )
    peak = 1
    combined: dict[int, float] | None = None
    for comp, plan in plans:
        horizon = sum(max(c for c, _ in specs[v]) for v in comp)
        bits = max(horizon.bit_length(), 1)
        pmf, comp_peak = _component_pmf(plan, specs, bits, state_limit)
        peak = max(peak, comp_peak)
        combined = (
            pmf if combined is None else _max_of_independent(combined, pmf)
        )
    return combined or {0: 1.0}, width, peak, len(plans)


# -- duration specs from the evaluator's structure -----------------------


def _check_p(p: "float | Mapping[str, float]") -> None:
    if isinstance(p, Mapping):
        for op, value in p.items():
            if not 0.0 <= value <= 1.0:
                raise SimulationError(
                    f"P[{op}] must be in [0, 1], got {value}"
                )
        return
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"P must be in [0, 1], got {p}")


def _p_of(p: "float | Mapping[str, float]", op: str) -> float:
    """Per-op fast probability: scalar P or a per-op mapping.

    Mappings come from
    :meth:`~repro.resources.spec.CompletionSpec.op_probabilities` —
    heterogeneous per-unit specs resolved against the binding.  A
    missing entry is an error: the caller enumerated ``op`` as
    telescopic, so its marginal must be defined.
    """
    if isinstance(p, Mapping):
        try:
            return p[op]
        except KeyError:
            raise SimulationError(
                f"per-op probability mapping is missing TAU op {op!r}"
            ) from None
    return p


def _normalize_rows(
    rows: Sequence[tuple[int, float]], context: str
) -> DurationSpec:
    merged: dict[int, float] = {}
    for cycles, prob in rows:
        if prob < 0.0:
            raise SimulationError(
                f"negative probability {prob} for {context}"
            )
        if prob > 0.0:
            merged[cycles] = merged.get(cycles, 0.0) + prob
    if not merged:
        raise SimulationError(f"empty duration distribution for {context}")
    return tuple(sorted(merged.items()))


def _bernoulli_specs(
    evaluator: "DistLatencyEvaluator",
    tau_ops: Sequence[str],
    p: "float | Mapping[str, float]",
) -> list[DurationSpec]:
    names, _, fast_dur, slow_dur = evaluator.execution_structure()
    enumerated = set(tau_ops)
    specs: list[DurationSpec] = []
    for i, name in enumerate(names):
        fast, slow = fast_dur[i], slow_dur[i]
        if name not in enumerated or fast == slow:
            specs.append(((fast, 1.0),))
            continue
        p_op = _p_of(p, name)
        if p_op == 1.0:
            specs.append(((fast, 1.0),))
        elif p_op == 0.0:
            specs.append(((slow, 1.0),))
        else:
            specs.append(
                _normalize_rows(((fast, p_op), (slow, 1.0 - p_op)), name)
            )
    return specs


def _categorical_specs(
    evaluator: "DistLatencyEvaluator", table: "DurationTable"
) -> list[DurationSpec]:
    names, _, fast_dur, _ = evaluator.execution_structure()
    specs: list[DurationSpec] = []
    for i, name in enumerate(names):
        rows = table.get(name)
        if rows is None:
            specs.append(((fast_dur[i], 1.0),))
        else:
            specs.append(_normalize_rows(tuple(rows), name))
    return specs


# -- public entry points -------------------------------------------------


def analyze_dist_latency(
    evaluator: "DistLatencyEvaluator",
    tau_ops: Sequence[str],
    p: "float | Mapping[str, float]",
    *,
    scheme: str = "DIST",
    clock_ns: float = 1.0,
    cut_limit: int = DEFAULT_CUT_LIMIT,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> ExactLatencyAnalysis:
    """Exact DIST latency PMF under independent Bernoulli fast outcomes.

    ``p`` is the shared scalar probability or a per-op mapping (from a
    heterogeneous per-unit completion spec).  Matches
    ``exact_latency_distribution`` / ``exact_expected_latency`` over the
    same evaluator for any feasible enumeration, without the ``2**k``
    sweep.
    """
    _check_p(p)
    specs = _bernoulli_specs(evaluator, tau_ops, p)
    _, preds, _, _ = evaluator.execution_structure()
    pmf, width, peak, parts = graph_latency_pmf(
        specs, preds, cut_limit=cut_limit, state_limit=state_limit
    )
    return ExactLatencyAnalysis(
        distribution=LatencyDistribution(
            scheme=scheme, clock_ns=clock_ns, pmf=tuple(sorted(pmf.items()))
        ),
        method="frontier-dp",
        cut_width=width,
        states=peak,
        components=parts,
    )


def analyze_dist_categorical(
    evaluator: "DistLatencyEvaluator",
    table: "DurationTable",
    *,
    scheme: str = "DIST",
    clock_ns: float = 1.0,
    cut_limit: int = DEFAULT_CUT_LIMIT,
    state_limit: int = DEFAULT_STATE_LIMIT,
) -> ExactLatencyAnalysis:
    """Exact DIST latency PMF over independent categorical durations."""
    specs = _categorical_specs(evaluator, table)
    _, preds, _, _ = evaluator.execution_structure()
    pmf, width, peak, parts = graph_latency_pmf(
        specs, preds, cut_limit=cut_limit, state_limit=state_limit
    )
    return ExactLatencyAnalysis(
        distribution=LatencyDistribution(
            scheme=scheme, clock_ns=clock_ns, pmf=tuple(sorted(pmf.items()))
        ),
        method="frontier-dp",
        cut_width=width,
        states=peak,
        components=parts,
    )


def _convolve(a: dict[int, float], b: DurationSpec) -> dict[int, float]:
    out: dict[int, float] = {}
    for cycles, weight in a.items():
        for extra, prob in b:
            key = cycles + extra
            out[key] = out.get(key, 0.0) + weight * prob
    return out


def analyze_sync_latency(
    taubm: "TaubmSchedule",
    tau_ops: Sequence[str],
    p: "float | Mapping[str, float]",
    *,
    scheme: str = "CENT-SYNC",
    clock_ns: float = 1.0,
) -> ExactLatencyAnalysis:
    """Exact TAUBM latency PMF: a convolution of per-step extensions.

    Each step contributes ``1`` cycle plus an extension cycle iff any of
    its enumerated TAU ops is slow — probability ``1 - p**k`` for ``k``
    enumerated ops (the product of the per-op probabilities when ``p``
    is a heterogeneous mapping).  Steps partition the operations, so
    the extensions are independent and the PMF is their convolution.
    """
    _check_p(p)
    enumerated = set(tau_ops)
    seen: set[str] = set()
    pmf: dict[int, float] = {0: 1.0}
    peak = 1
    width = 0
    steps_with_ext = 0
    for step in taubm.steps:
        overlap = set(step.tau_ops) & seen
        if overlap:
            raise ExactAnalysisError(
                f"TAU ops {sorted(overlap)} appear in multiple TAUBM "
                f"steps; per-step extensions are not independent"
            )
        seen.update(step.tau_ops)
        step_ops = set(step.tau_ops) & enumerated
        k = len(step_ops)
        width = max(width, k)
        if step.has_extension and k:
            if isinstance(p, Mapping):
                fast_all = 1.0
                for op in sorted(step_ops):
                    fast_all *= _p_of(p, op)
            else:
                # keep the scalar power form: byte-identical to the
                # historical bare-float path
                fast_all = p**k
        else:
            fast_all = 1.0
        if fast_all >= 1.0:
            spec: DurationSpec = ((1, 1.0),)
        elif fast_all <= 0.0:
            spec = ((2, 1.0),)
            steps_with_ext += 1
        else:
            spec = ((1, fast_all), (2, 1.0 - fast_all))
            steps_with_ext += 1
        pmf = _convolve(pmf, spec)
        peak = max(peak, len(pmf))
    return ExactLatencyAnalysis(
        distribution=LatencyDistribution(
            scheme=scheme, clock_ns=clock_ns, pmf=tuple(sorted(pmf.items()))
        ),
        method="step-convolution",
        cut_width=width,
        states=peak,
        components=steps_with_ext,
    )


def analyze_sync_categorical(
    taubm: "TaubmSchedule",
    table: "DurationTable",
    *,
    scheme: str = "CENT-SYNC",
    clock_ns: float = 1.0,
) -> ExactLatencyAnalysis:
    """Exact TAUBM latency PMF over independent categorical durations.

    Each step costs ``max`` of its TAU ops' durations (``1`` when it has
    none); the per-op maxima use the CDF product, the steps convolve.
    """
    seen: set[str] = set()
    pmf: dict[int, float] = {0: 1.0}
    peak = 1
    width = 0
    steps_with_ext = 0
    for step in taubm.steps:
        overlap = set(step.tau_ops) & seen
        if overlap:
            raise ExactAnalysisError(
                f"TAU ops {sorted(overlap)} appear in multiple TAUBM "
                f"steps; per-step costs are not independent"
            )
        seen.update(step.tau_ops)
        step_pmf: dict[int, float] | None = None
        for op in sorted(step.tau_ops):
            rows = table.get(op)
            if rows is None:
                raise ExactAnalysisError(
                    f"duration table is missing TAU op {op!r} required "
                    f"by TAUBM step {step.index}"
                )
            op_pmf = dict(_normalize_rows(tuple(rows), op))
            step_pmf = (
                op_pmf
                if step_pmf is None
                else _max_of_independent(step_pmf, op_pmf)
            )
        if step_pmf is None:
            step_pmf = {1: 1.0}
        else:
            width = max(width, len(step.tau_ops))
            steps_with_ext += 1
        pmf = _convolve(pmf, tuple(sorted(step_pmf.items())))
        peak = max(peak, len(pmf))
    return ExactLatencyAnalysis(
        distribution=LatencyDistribution(
            scheme=scheme, clock_ns=clock_ns, pmf=tuple(sorted(pmf.items()))
        ),
        method="step-convolution",
        cut_width=width,
        states=peak,
        components=steps_with_ext,
    )
