"""Switching-activity analysis (a dynamic-energy proxy).

Telescopic units come out of the low-power literature (Benini, Macii,
Poncino), so a controller comparison should say something about dynamic
energy, not only latency.  This module counts control-signal *toggles*
(0→1 and 1→0 transitions cycle over cycle) from a recorded simulation
trace — the standard first-order proxy for dynamic switching energy —
split by signal family (operand fetches, register enables, completion
wires), plus the register-write count on the datapath side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import SimulationError
from ..fsm.signals import is_op_completion

if TYPE_CHECKING:  # avoid the sim <-> fsm import cycle
    from ..sim.simulator import SimulationResult


@dataclass(frozen=True)
class ActivityReport:
    """Toggle counts of one simulation run, by signal family."""

    scheme: str
    cycles: int
    fetch_toggles: int
    enable_toggles: int
    completion_toggles: int
    register_writes: int

    @property
    def total_toggles(self) -> int:
        return (
            self.fetch_toggles
            + self.enable_toggles
            + self.completion_toggles
        )

    def render(self) -> str:
        return (
            f"{self.scheme}: {self.total_toggles} control toggles over "
            f"{self.cycles} cycles (OF {self.fetch_toggles}, "
            f"RE {self.enable_toggles}, CC {self.completion_toggles}); "
            f"{self.register_writes} register writes"
        )


def activity_report(
    sim: "SimulationResult", scheme: str = "DIST"
) -> ActivityReport:
    """Count signal toggles from a recorded trace.

    A signal toggles when its value differs between consecutive cycles
    (and once at the start when it rises out of reset).
    """
    if sim.trace is None:
        raise SimulationError(
            "activity analysis needs a trace; simulate with "
            "record_trace=True"
        )
    previous: frozenset[str] = frozenset()
    fetch = enable = completion = writes = 0
    for record in sim.trace.records:
        current = record.outputs
        for signal in current.symmetric_difference(previous):
            if signal.startswith("OF_"):
                fetch += 1
            elif signal.startswith("RE_"):
                enable += 1
            elif is_op_completion(signal):
                completion += 1
        writes += sum(1 for s in current if s.startswith("RE_"))
        previous = current
    return ActivityReport(
        scheme=scheme,
        cycles=len(sim.trace.records),
        fetch_toggles=fetch,
        enable_toggles=enable,
        completion_toggles=completion,
        register_writes=writes,
    )


def compare_activity(
    dist_sim: "SimulationResult", sync_sim: "SimulationResult"
) -> tuple[ActivityReport, ActivityReport]:
    """Activity of the two controller schemes on the same scenario."""
    return (
        activity_report(dist_sim, "DIST"),
        activity_report(sync_sim, "CENT-SYNC"),
    )
