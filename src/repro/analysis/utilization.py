"""Unit-utilization analysis of simulation runs.

The paper's stated goal for the distributed structure is "to minimize
idle time of component arithmetic units"; this module measures exactly
that from a simulation: per-unit busy cycles, idle cycles and utilization
over the executed window, for any controller scheme — making the
idle-time claim a measurable quantity instead of prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..binding.binder import BoundDataflowGraph

if TYPE_CHECKING:  # avoid an import cycle: sim imports fsm imports sim
    from ..sim.simulator import SimulationResult


@dataclass(frozen=True)
class UnitUtilization:
    """Busy/idle accounting for one arithmetic unit."""

    unit: str
    busy_cycles: int
    window_cycles: int
    operations_executed: int

    @property
    def utilization(self) -> float:
        if self.window_cycles == 0:
            return 0.0
        return self.busy_cycles / self.window_cycles

    @property
    def idle_cycles(self) -> int:
        return self.window_cycles - self.busy_cycles


@dataclass(frozen=True)
class UtilizationReport:
    """Per-unit utilization for one simulation run."""

    scheme: str
    window_cycles: int
    units: tuple[UnitUtilization, ...]

    def mean_utilization(self) -> float:
        if not self.units:
            return 0.0
        return sum(u.utilization for u in self.units) / len(self.units)

    def unit(self, name: str) -> UnitUtilization:
        for u in self.units:
            if u.unit == name:
                return u
        raise KeyError(name)

    def render(self) -> str:
        lines = [
            f"{self.scheme}: unit utilization over {self.window_cycles} "
            f"cycles (mean {100 * self.mean_utilization():.1f}%)"
        ]
        for u in self.units:
            bar = "#" * round(20 * u.utilization)
            lines.append(
                f"  {u.unit:6s} {100 * u.utilization:5.1f}% "
                f"({u.busy_cycles}/{u.window_cycles} cycles, "
                f"{u.operations_executed} ops) {bar}"
            )
        return "\n".join(lines)


def utilization_report(
    bound: BoundDataflowGraph,
    sim: "SimulationResult",
    scheme: str = "DIST",
) -> UtilizationReport:
    """Busy-cycle accounting from a simulation's start/finish records.

    The window is the first-iteration latency; an operation's busy
    cycles are the duration of its sampled telescope level — actual
    compute time, so a synchronized stall (operands held while a sibling
    unit extends) counts as *idle*, which is precisely the time the
    distributed structure reclaims.
    """
    window = sim.cycles
    per_unit: dict[str, tuple[int, int]] = {}
    for op in bound.dfg.op_names():
        unit = bound.binding[op]
        level = sim.level_outcomes[op][0]
        busy = min(bound.duration_for_level(op, level), window)
        prev_busy, prev_count = per_unit.get(unit, (0, 0))
        per_unit[unit] = (prev_busy + busy, prev_count + 1)
    units = tuple(
        UnitUtilization(
            unit=unit,
            busy_cycles=busy,
            window_cycles=window,
            operations_executed=count,
        )
        for unit, (busy, count) in sorted(per_unit.items())
    )
    return UtilizationReport(
        scheme=scheme, window_cycles=window, units=units
    )


def compare_utilization(
    bound: BoundDataflowGraph,
    dist_sim: "SimulationResult",
    sync_sim: "SimulationResult",
) -> str:
    """Side-by-side utilization of the two controller schemes."""
    dist = utilization_report(bound, dist_sim, "DIST")
    sync = utilization_report(bound, sync_sim, "CENT-SYNC")
    return dist.render() + "\n" + sync.render()
