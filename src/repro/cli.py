"""Command-line interface: ``python -m repro <command>``.

Gives the library's main flows a shell-level surface::

    python -m repro benchmarks
    python -m repro synthesize diffeq
    python -m repro synthesize fir5 --allocation "mul:3T,add:2" --verilog out.v
    python -m repro simulate fir5 --p 0.7 --trace --vcd fir5.vcd
    python -m repro simulate fir5 --completion per-unit:mul=0.9,*=0.5
    python -m repro simulate "gen:ops=20,depth=5,seed=2" --completion markov:0.7,0.5
    python -m repro faults diffeq --trials 100 --seed 0 -j 4
    python -m repro faults diffeq --checkpoint-dir ckpt --retries 3
    python -m repro faults diffeq --checkpoint-dir ckpt --fabric --nodes 2
    python -m repro resume ckpt
    python -m repro fabric status ckpt
    python -m repro fabric drill --nodes 2 --report drill.json
    python -m repro table1
    python -m repro table2
    python -m repro distribution fir5 --p 0.7
    python -m repro experiments multilevel physical -j 4
    python -m repro bench --quick -o BENCH_core.json
    python -m repro pipeline --list
    python -m repro pipeline diffeq --cache-dir .repro-cache --manifest m.json
    python -m repro lint
    python -m repro lint fig2 fdct --format json -o lint.json
    python -m repro lint --write-baseline
    python -m repro lint --check-baseline --fail-on warning
    python -m repro lint --jobs 4
    python -m repro check
    python -m repro check fir5 diffeq --format json -o check.json
    python -m repro check --check-baseline --jobs 4
    python -m repro check fir5 --max-states 50000

Long-running commands (``faults``, ``experiments``, ``bench``,
``table2``) accept ``--checkpoint-dir DIR``: completed trials are
journaled there and a ``manifest.json`` records the invocation, so an
interrupted run picks up where it left off with ``repro resume DIR`` —
producing output byte-identical to an uninterrupted run.  Every command
runs under an ambient :class:`~repro.runtime.policy.RunReport`;
recoveries (worker crashes survived, corrupt cache entries quarantined,
retries) are summarized on stderr.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .analysis.distribution import compare_distributions
from .api import synthesize
from .benchmarks.registry import all_benchmarks, benchmark
from .control.verilog_top import distributed_to_verilog
from .core.dot import dfg_to_dot
from .errors import ReproError
from .pipeline.registry import (
    BINDERS,
    CONTROLLER_BACKENDS,
    ORDER_OBJECTIVES,
    SCHEDULERS,
)
from .resources.allocation import ResourceAllocation
from .resources.spec import (
    BernoulliSpec,
    CompletionSpec,
    parse_completion_spec,
)
from .sim.simulator import simulate
from .sim.vcd import trace_to_vcd
from .verify.baseline import (
    DEFAULT_BASELINE_DIR,
    DEFAULT_CHECK_BASELINE_DIR,
)


#: name of the invocation record ``--checkpoint-dir`` writes
RESUME_MANIFEST = "manifest.json"


def _policy_from_args(args) -> "object | None":
    """Build a :class:`~repro.runtime.policy.RunPolicy` from CLI flags.

    Returns ``None`` (no supervision) unless at least one policy flag
    was given — the unsupervised pool stays the zero-overhead default.
    """
    timeout = getattr(args, "timeout", None)
    retries = getattr(args, "retries", None)
    on_failure = getattr(args, "on_failure", None)
    if timeout is None and retries is None and on_failure is None:
        return None
    from .runtime.policy import RunPolicy

    return RunPolicy(
        timeout_s=timeout,
        max_retries=retries if retries is not None else 2,
        on_failure=on_failure if on_failure is not None else "retry",
    )


def _fabric_from_args(args) -> "object | None":
    """Build a :class:`~repro.fabric.FabricConfig` from CLI flags.

    Returns ``None`` unless ``--fabric`` was given.  The fabric's
    replicated journal is its write-ahead commit log, so ``--fabric``
    without ``--checkpoint-dir`` is an error.
    """
    if not getattr(args, "fabric", False):
        return None
    if not getattr(args, "checkpoint_dir", None):
        from .errors import FabricError

        raise FabricError(
            "--fabric requires --checkpoint-dir: the replicated "
            "journal is the fabric's write-ahead commit log"
        )
    from .fabric import FabricConfig

    return FabricConfig(
        nodes=args.nodes,
        port=args.fabric_port,
        lease_timeout_s=args.lease_timeout,
    )


def _write_resume_manifest(checkpoint_dir: str, argv: "Sequence[str]"):
    """Record the invocation so ``repro resume`` can replay it."""
    import json
    import os

    from .runtime.journal import atomic_write_text

    os.makedirs(checkpoint_dir, exist_ok=True)
    atomic_write_text(
        os.path.join(checkpoint_dir, RESUME_MANIFEST),
        json.dumps(
            {"schema": 1, "argv": list(argv)},
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )


def _completion_from_args(args) -> CompletionSpec:
    """The completion spec a command was invoked with.

    ``--completion`` (full spec grammar) wins over the legacy ``--p``
    float, which keeps denoting a plain Bernoulli model.
    """
    completion = getattr(args, "completion", None)
    if completion:
        return parse_completion_spec(completion)
    return BernoulliSpec(args.p)


def _benchmark_design(args) -> "tuple":
    entry = benchmark(args.benchmark)
    allocation = (
        ResourceAllocation.parse(args.allocation)
        if args.allocation
        else entry.allocation()
    )
    return entry, allocation


def _synthesize_from_args(args) -> "tuple":
    entry, allocation = _benchmark_design(args)
    return entry, synthesize(entry.dfg(), allocation, scheduler=args.scheduler)


def _cmd_benchmarks(args) -> int:
    from .analysis.tables import render_table
    from .core.analysis import profile

    rows = []
    for entry in all_benchmarks():
        prof = profile(entry.dfg())
        mix = ", ".join(f"{c}:{n}" for c, n in prof.ops_by_class)
        rows.append(
            [
                entry.name,
                entry.title,
                str(prof.num_ops),
                mix,
                entry.allocation_spec,
            ]
        )
    print(
        render_table(
            ["name", "title", "ops", "mix", "paper allocation"], rows
        )
    )
    return 0


def _cmd_synthesize(args) -> int:
    __, result = _synthesize_from_args(args)
    print(result.dfg.summary())
    print()
    print(result.schedule.describe())
    print()
    print(result.bound.describe())
    print()
    print(result.distributed.describe())
    comparison = result.latency_comparison()
    print()
    print(f"CENT-SYNC latency: {comparison.sync.bracket_ns()}")
    print(f"DIST      latency: {comparison.dist.bracket_ns()}")
    print(f"enhancement      : {comparison.enhancement_column()}")
    if args.verilog:
        text = distributed_to_verilog(
            result.distributed, top_name=f"{result.dfg.name}_control"
        )
        with open(args.verilog, "w") as handle:
            handle.write(text)
        print(f"\nwrote Verilog to {args.verilog}")
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(
                dfg_to_dot(
                    result.dfg,
                    schedule_arcs=result.order.schedule_arcs,
                    binding=result.bound.binding,
                )
            )
        print(f"wrote DOT to {args.dot}")
    return 0


def _cmd_simulate(args) -> int:
    __, result = _synthesize_from_args(args)
    spec = _completion_from_args(args)
    sim = simulate(
        result.distributed_system(),
        result.bound,
        spec.model(),
        seed=args.seed,
        iterations=args.iterations,
        record_trace=args.trace or bool(args.vcd),
    )
    print(
        f"{result.dfg.name}: {sim.cycles} cycles = {sim.latency_ns:.0f} ns "
        f"at {spec.describe()} (seed {args.seed})"
    )
    if args.iterations > 1:
        print(
            f"steady-state throughput: "
            f"{sim.throughput_cycles():.2f} cycles/iteration "
            f"({sim.token_overruns} token overruns)"
        )
    if args.utilization:
        from .analysis.utilization import utilization_report

        print()
        print(utilization_report(result.bound, sim).render())
    if args.trace:
        print()
        print(sim.trace.render())
    if args.vcd:
        with open(args.vcd, "w") as handle:
            handle.write(trace_to_vcd(sim, design_name=result.dfg.name))
        print(f"wrote VCD to {args.vcd}")
    return 0


def _cmd_faults(args) -> int:
    from .faults.campaign import run_campaign

    entry, result = _synthesize_from_args(args)
    styles = (
        ("dist", "cent-sync") if args.style == "both" else (args.style,)
    )
    report = run_campaign(
        result,
        trials=args.trials,
        seed=args.seed,
        p=_completion_from_args(args),
        styles=styles,
        benchmark=entry.name,
        workers=args.workers,
        policy=_policy_from_args(args),
        checkpoint=args.checkpoint_dir,
        fabric=_fabric_from_args(args),
    )
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"\nwrote JSON coverage report to {args.json}")
    if args.strict:
        report.check_no_escapes()
    return 0


def _cmd_table1(args) -> int:
    from .experiments.table1 import run_table1

    result = run_table1(args.benchmark)
    print(result.render())
    result.check_shape()
    return 0


def _cmd_table2(args) -> int:
    from .experiments.table2 import run_table2

    result = run_table2(
        workers=args.workers,
        checkpoint=args.checkpoint_dir,
        fabric=_fabric_from_args(args),
    )
    print(result.render())
    result.check_shape()
    return 0


def _cmd_report(args) -> int:
    from .experiments.report import generate_report

    text = generate_report(include_table1=not args.quick)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


#: keyword arguments the parallel experiment drivers accept beyond
#: their defaults (see ``_cmd_experiments``)
_PARALLEL_KWARGS = frozenset({"workers", "policy", "checkpoint", "fabric"})

#: experiment drivers runnable via ``repro experiments``, mapping name
#: to (module, function, extra kwargs the driver accepts)
_EXPERIMENT_DRIVERS = {
    "psweep": ("repro.experiments.ablations", "run_psweep", frozenset()),
    "sdld": ("repro.experiments.ablations", "run_sdld_sweep", frozenset()),
    "opdist": ("repro.experiments.ablations", "run_opdist", frozenset()),
    "pipeline": (
        "repro.experiments.ablations", "run_pipeline", frozenset()
    ),
    "csg": ("repro.experiments.ablations", "run_csg_sweep", frozenset()),
    "multilevel": (
        "repro.experiments.ablations", "run_multilevel", _PARALLEL_KWARGS
    ),
    "physical": (
        "repro.experiments.ablations", "run_physical", _PARALLEL_KWARGS
    ),
    "encoding": (
        "repro.experiments.ablations", "run_encoding_ablation", frozenset()
    ),
    "communication": (
        "repro.experiments.ablations",
        "run_communication_binding",
        frozenset(),
    ),
    "activity": ("repro.experiments.ablations", "run_activity", frozenset()),
    "completion": (
        "repro.experiments.ablations",
        "run_completion_models",
        frozenset(),
    ),
    "fig4": ("repro.experiments.figures", "run_fig4", _PARALLEL_KWARGS),
}


def _cmd_experiments(args) -> int:
    import importlib

    from .pipeline.manager import set_default_synthesis_cache

    cache = None
    if args.cache_dir:
        from .perf.cache import SynthesisCache

        cache = SynthesisCache(args.cache_dir)
    names = args.experiments or sorted(_EXPERIMENT_DRIVERS)
    for name in names:
        if name not in _EXPERIMENT_DRIVERS:
            known = ", ".join(sorted(_EXPERIMENT_DRIVERS))
            print(
                f"error: unknown experiment {name!r}; choose from {known}",
                file=sys.stderr,
            )
            return 1
    available = {
        "workers": args.workers,
        "policy": _policy_from_args(args),
        "checkpoint": args.checkpoint_dir,
        "fabric": _fabric_from_args(args),
    }
    previous = (
        set_default_synthesis_cache(cache) if cache is not None else None
    )
    try:
        first = True
        for name in names:
            module_name, func_name, accepts = _EXPERIMENT_DRIVERS[name]
            runner = getattr(importlib.import_module(module_name), func_name)
            kwargs = {k: available[k] for k in accepts}
            if not first:
                print()
            first = False
            print(runner(**kwargs).render())
    finally:
        if cache is not None:
            set_default_synthesis_cache(previous)
    return 0


def _cmd_bench(args) -> int:
    from .perf.bench import (
        CORE_BENCHMARKS,
        compare_bench,
        compare_bench_files,
        run_bench,
    )

    if args.compare and args.compare_to:
        # pure file diff: no bench run
        comparison = compare_bench_files(
            args.compare, args.compare_to, threshold=args.threshold
        )
        print(comparison.render())
        return 0 if comparison.ok else 1
    report = run_bench(
        benchmarks=(
            tuple(args.benchmarks) if args.benchmarks else CORE_BENCHMARKS
        ),
        quick=args.quick,
        trials=args.trials,
        workers=args.workers,
        seed=args.seed,
        p=_completion_from_args(args),
        cache_dir=args.cache_dir,
        checkpoint_dir=args.checkpoint_dir,
        fabric=_fabric_from_args(args),
    )
    print(report.render())
    if args.output:
        report.write(args.output)
        print(f"\nwrote benchmark report to {args.output}")
    if args.compare:
        import json as json_module

        with open(args.compare) as handle:
            baseline = json_module.load(handle)
        comparison = compare_bench(
            baseline, report.data, threshold=args.threshold
        )
        print()
        print(comparison.render())
        return 0 if comparison.ok else 1
    return 0


def _cmd_distribution(args) -> int:
    __, result = _synthesize_from_args(args)
    comparison = compare_distributions(
        result.bound, result.taubm, p=_completion_from_args(args)
    )
    print(comparison.render())
    return 0


def _cmd_pipeline(args) -> int:
    from .analysis.tables import render_table
    from .perf.cache import SynthesisCache
    from .pipeline import run_synthesis_pipeline, synthesis_passes

    if args.list:
        rows = [
            [
                p.name,
                ", ".join(p.requires) or "-",
                ", ".join(p.provides) or "-",
                "yes" if p.cacheable else "no",
                p.summary,
            ]
            for p in synthesis_passes()
        ]
        print(
            render_table(
                ["pass", "requires", "provides", "cached", "summary"], rows
            )
        )
        print()
        reg_rows = [
            [registry.kind, entry.name, entry.summary]
            for registry in (
                SCHEDULERS,
                ORDER_OBJECTIVES,
                BINDERS,
                CONTROLLER_BACKENDS,
            )
            for entry in registry
        ]
        print(render_table(["registry", "name", "summary"], reg_rows))
        return 0
    if not args.benchmark:
        print(
            "error: a benchmark name is required unless --list is given",
            file=sys.stderr,
        )
        return 2
    entry, allocation = _benchmark_design(args)
    cache = SynthesisCache(args.cache_dir) if args.cache_dir else None
    manifest = run_synthesis_pipeline(
        entry.dfg(),
        allocation,
        scheduler=args.scheduler,
        objective=args.objective,
        upto=args.to,
        cache=cache,
    )[1]
    print(manifest.render())
    if args.manifest:
        with open(args.manifest, "w") as handle:
            handle.write(manifest.to_json(timing=True))
            handle.write("\n")
        print(f"wrote manifest to {args.manifest}")
    if args.assert_all_cached and not manifest.all_cached():
        print(
            "error: expected every cacheable pass to be served from "
            "cache, got " + manifest.cache_summary(),
            file=sys.stderr,
        )
        return 1
    return 0


def _lint_worker(item):
    """Module-level lint worker: (name, allocation, scheduler) → report.

    Must stay importable so ``--jobs`` can pickle it onto the process
    pool; :func:`~repro.perf.engine.parallel_map` preserves item order,
    keeping the combined output byte-identical to a serial run.
    """
    name, allocation, scheduler = item
    from .verify import lint_benchmark

    return lint_benchmark(name, allocation=allocation, scheduler=scheduler)


def _check_worker(item):
    """Module-level model-check worker for ``repro check --jobs``."""
    name, allocation, scheduler, max_states, max_frontier = item
    from .verify.modelcheck import check_benchmark

    return check_benchmark(
        name,
        allocation=allocation,
        scheduler=scheduler,
        max_states=max_states,
        max_frontier=max_frontier,
    )


def _cmd_lint(args) -> int:
    import dataclasses
    import json

    from .perf.engine import parallel_map
    from .verify import (
        gate_report,
        load_baseline,
        write_baseline,
    )
    from .verify.baseline import baseline_path

    names = list(args.benchmarks) or [
        entry.name for entry in all_benchmarks()
    ]
    if args.allocation and len(names) != 1:
        print(
            "error: --allocation requires exactly one benchmark",
            file=sys.stderr,
        )
        return 2
    reports = parallel_map(
        _lint_worker,
        [(name, args.allocation, args.scheduler) for name in names],
        workers=args.jobs,
    )
    if args.write_baseline:
        for report in reports:
            path = write_baseline(args.baseline_dir, report)
            print(f"wrote baseline {path}", file=sys.stderr)
    gates = []
    for report in reports:
        baseline = load_baseline(args.baseline_dir, report.design)
        gate = gate_report(report, baseline, fail_on=args.fail_on)
        if args.check_baseline:
            path = baseline_path(args.baseline_dir, report.design)
            stable = (
                path.is_file()
                and path.read_text(encoding="utf-8")
                == report.to_json() + "\n"
            )
            gate = dataclasses.replace(gate, byte_stable=stable)
        gates.append(gate)
    if args.format == "json":
        out = (
            json.dumps(
                {
                    "format": 1,
                    "reports": [r.to_dict() for r in reports],
                },
                indent=2,
                sort_keys=True,
                separators=(",", ": "),
            )
            + "\n"
        )
    else:
        parts = []
        for report, gate in zip(reports, gates):
            parts.append(report.render())
            parts.append(gate.render())
        out = "\n".join(parts) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(out)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(out, end="")
    failed = [g for g in gates if not g.passed]
    for gate in failed:
        if args.format == "json" or args.output:
            print(gate.render(), file=sys.stderr)
    return 1 if failed else 0


def _cmd_check(args) -> int:
    import dataclasses
    import json

    from .perf.engine import parallel_map
    from .verify import (
        gate_report,
        load_baseline,
        write_baseline,
    )
    from .verify.baseline import baseline_path

    names = list(args.benchmarks) or [
        entry.name for entry in all_benchmarks()
    ]
    if args.allocation and len(names) != 1:
        print(
            "error: --allocation requires exactly one benchmark",
            file=sys.stderr,
        )
        return 2
    results = parallel_map(
        _check_worker,
        [
            (
                name,
                args.allocation,
                args.scheduler,
                args.max_states,
                args.max_frontier,
            )
            for name in names
        ],
        workers=args.jobs,
    )
    reports = [result.report for result in results]
    if args.write_baseline:
        for report in reports:
            path = write_baseline(args.baseline_dir, report)
            print(f"wrote baseline {path}", file=sys.stderr)
    gates = []
    for report in reports:
        baseline = load_baseline(args.baseline_dir, report.design)
        gate = gate_report(report, baseline, fail_on=args.fail_on)
        if args.check_baseline:
            path = baseline_path(args.baseline_dir, report.design)
            stable = (
                path.is_file()
                and path.read_text(encoding="utf-8")
                == report.to_json() + "\n"
            )
            gate = dataclasses.replace(gate, byte_stable=stable)
        gates.append(gate)
    if args.format == "json":
        out = (
            json.dumps(
                {
                    "format": 1,
                    "reports": [
                        {
                            "design": result.design,
                            "states": result.states,
                            "transitions": result.transitions,
                            "accepting": result.accepting,
                            "max_depth": result.max_depth,
                            "report": result.report.to_dict(),
                            "counterexamples": [
                                cex.to_dict()
                                for cex in result.counterexamples
                            ],
                        }
                        for result in results
                    ],
                },
                indent=2,
                sort_keys=True,
                separators=(",", ": "),
            )
            + "\n"
        )
    else:
        parts = []
        for result, gate in zip(results, gates):
            parts.append(result.render())
            parts.append(gate.render())
        out = "\n".join(parts) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(out)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(out, end="")
    failed = [g for g in gates if not g.passed]
    for gate in failed:
        if args.format == "json" or args.output:
            print(gate.render(), file=sys.stderr)
    return 1 if failed else 0


def _cmd_fabric_worker(args) -> int:
    from .fabric.worker import connect_and_serve

    if args.join:
        import json
        import os

        from .fabric import STATUS_FILE

        status_path = os.path.join(args.join, STATUS_FILE)
        try:
            with open(status_path) as handle:
                status = json.load(handle)
            host = status["address"]["host"]
            port = int(status["address"]["port"])
            token = status["token"]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(
                f"error: no joinable fabric coordinator recorded in "
                f"{status_path!r}: {exc}",
                file=sys.stderr,
            )
            return 1
    else:
        if not args.connect or args.token is None:
            print(
                "error: fabric worker needs --join DIR or both "
                "--connect HOST:PORT and --token TOKEN",
                file=sys.stderr,
            )
            return 2
        host, _, port_text = args.connect.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            print(
                f"error: --connect expects HOST:PORT, got "
                f"{args.connect!r}",
                file=sys.stderr,
            )
            return 2
        token = args.token
    try:
        return connect_and_serve(
            host or "127.0.0.1", port, token=token, node_id=args.node
        )
    except OSError as exc:
        print(
            f"error: fabric worker {args.node}: {exc}", file=sys.stderr
        )
        return 1


def _journal_dir_stats(path) -> "tuple[int, int] | None":
    """(committed shards, quarantined files) in a journal directory."""
    import os

    from .runtime.journal import SHARD_SUFFIX

    try:
        names = os.listdir(path)
    except OSError:
        return None
    return (
        sum(1 for name in names if name.endswith(SHARD_SUFFIX)),
        sum(1 for name in names if name.endswith(".corrupt")),
    )


def _cmd_fabric_status(args) -> int:
    import json
    import os

    from .fabric import STATUS_FILE, default_backup_path

    status_path = os.path.join(args.checkpoint, STATUS_FILE)
    try:
        with open(status_path) as handle:
            status = json.load(handle)
    except OSError:
        status = None
    if status is None:
        print("coordinator: none active")
    else:
        address = status.get("address", {})
        print(
            f"coordinator: {address.get('host')}:{address.get('port')}"
            f" (pid {status.get('pid')}, {status.get('nodes')} "
            f"node(s), {status.get('shards_missing')}/"
            f"{status.get('shards_total')} shard(s) outstanding)"
        )
        print(f"  join with: repro fabric worker --join {args.checkpoint}")
    for label, path in (
        ("primary", args.checkpoint),
        ("backup", default_backup_path(args.checkpoint)),
    ):
        stats = _journal_dir_stats(path)
        if stats is None:
            print(f"{label}: {path} (missing)")
        else:
            committed, corrupt = stats
            line = f"{label}: {path} — {committed} shard(s)"
            if corrupt:
                line += f", {corrupt} quarantined"
            print(line)
    return 0


def _cmd_fabric_drill(args) -> int:
    from .fabric.drill import run_drill

    outcome = run_drill(
        rows=args.rows,
        nodes=args.nodes,
        report_path=args.report,
        keep_dir=args.keep_dir,
    )
    print(outcome.render())
    return 0 if outcome.passed else 1


def _warn_quarantined_shards(checkpoint_dir: str) -> None:
    """Summarize quarantined shard files before a resume replays."""
    import os

    from .fabric.replica import default_backup_path

    for path in (checkpoint_dir, default_backup_path(checkpoint_dir)):
        stats = _journal_dir_stats(path)
        if stats and stats[1]:
            print(
                f"note: {stats[1]} quarantined shard file(s) in "
                f"{path}; they will be restored from a replica or "
                f"recomputed",
                file=sys.stderr,
            )


def _cmd_resume(args) -> int:
    import json
    import os

    manifest_path = os.path.join(args.checkpoint, RESUME_MANIFEST)
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        print(
            f"error: cannot read resume manifest {manifest_path!r}: "
            f"{exc}",
            file=sys.stderr,
        )
        return 1
    argv = manifest.get("argv")
    if not (
        isinstance(argv, list)
        and argv
        and all(isinstance(item, str) for item in argv)
    ):
        print(
            f"error: {manifest_path!r} does not record a resumable "
            f"invocation",
            file=sys.stderr,
        )
        return 1
    print("resuming: repro " + " ".join(argv), file=sys.stderr)
    _warn_quarantined_shards(args.checkpoint)
    return main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed synchronous control units for dataflow graphs "
            "under allocation of telescopic arithmetic units (DATE 2003)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "benchmarks", help="list the registered benchmark DFGs"
    ).set_defaults(func=_cmd_benchmarks)

    def add_workers_arg(p):
        p.add_argument(
            "-j",
            "--workers",
            type=int,
            default=1,
            help=(
                "parallel worker processes (1 = serial, 0 = auto); "
                "results are identical for any value"
            ),
        )

    def add_checkpoint_arg(p):
        p.add_argument(
            "--checkpoint-dir",
            metavar="DIR",
            help=(
                "journal completed trials in DIR; an interrupted run "
                "continues with 'repro resume DIR', byte-identically"
            ),
        )

    def add_fabric_args(p):
        p.add_argument(
            "--fabric",
            action="store_true",
            help=(
                "distribute the campaign over coordinator/worker "
                "nodes with a replicated checkpoint journal "
                "(requires --checkpoint-dir; output stays "
                "byte-identical)"
            ),
        )
        p.add_argument(
            "--nodes",
            type=int,
            default=2,
            metavar="N",
            help="fabric worker nodes to spawn (default: 2)",
        )
        p.add_argument(
            "--fabric-port",
            type=int,
            default=0,
            metavar="PORT",
            help="coordinator TCP port (default: 0 = OS-assigned)",
        )
        p.add_argument(
            "--lease-timeout",
            type=float,
            default=30.0,
            metavar="SECONDS",
            help=(
                "shard lease deadline; a node that holds a lease "
                "past it is presumed hung and the shard is "
                "reassigned (default: 30)"
            ),
        )

    def add_policy_args(p):
        from .runtime.policy import ON_FAILURE_CHOICES

        p.add_argument(
            "--timeout",
            type=float,
            metavar="SECONDS",
            help=(
                "per-trial timeout; hung workers are abandoned and "
                "their trials re-run in-process (enables supervision)"
            ),
        )
        p.add_argument(
            "--retries",
            type=int,
            metavar="N",
            help=(
                "pool re-submissions per failing trial, with "
                "deterministic backoff (enables supervision; default 2)"
            ),
        )
        p.add_argument(
            "--on-failure",
            choices=ON_FAILURE_CHOICES,
            help=(
                "once retries are exhausted: keep raising, run the "
                "trial in-process, skip it, or fail fast "
                "(enables supervision; default: retry)"
            ),
        )

    def add_completion_arg(p, default_p=0.7):
        p.add_argument(
            "--p",
            type=float,
            default=default_p,
            help=(
                "Bernoulli fast probability "
                f"(default: {default_p}; see also --completion)"
            ),
        )
        p.add_argument(
            "--completion",
            metavar="SPEC",
            help=(
                "completion-model spec, overriding --p: 'bernoulli:P', "
                "'per-unit:UNIT=P,...' (unit name, class, or '*' "
                "default), or 'markov:P_FAST,STICKINESS'"
            ),
        )

    def add_design_args(p):
        p.add_argument("benchmark", help="registered benchmark name")
        p.add_argument(
            "--allocation",
            help='allocation spec, e.g. "mul:2T,add:1" (default: paper)',
        )
        p.add_argument(
            "--scheduler",
            choices=SCHEDULERS.names(),
            default="list",
            help="time-step scheduler from the registry (default: list)",
        )

    p_syn = sub.add_parser(
        "synthesize", help="run the full flow and print every artifact"
    )
    add_design_args(p_syn)
    p_syn.add_argument("--verilog", help="write controller Verilog here")
    p_syn.add_argument("--dot", help="write the bound DFG as DOT here")
    p_syn.set_defaults(func=_cmd_synthesize)

    p_sim = sub.add_parser(
        "simulate", help="cycle-accurate simulation of the distributed unit"
    )
    add_design_args(p_sim)
    add_completion_arg(p_sim)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--iterations", type=int, default=1)
    p_sim.add_argument(
        "--trace", action="store_true", help="print the cycle trace"
    )
    p_sim.add_argument(
        "--utilization",
        action="store_true",
        help="print per-unit utilization",
    )
    p_sim.add_argument("--vcd", help="write a VCD waveform here")
    p_sim.set_defaults(func=_cmd_simulate)

    p_flt = sub.add_parser(
        "faults",
        help="seeded fault-injection campaign with coverage report",
    )
    add_design_args(p_flt)
    p_flt.add_argument(
        "--trials", type=int, default=100, help="faults per style"
    )
    p_flt.add_argument("--seed", type=int, default=0)
    add_completion_arg(p_flt)
    p_flt.add_argument(
        "--style",
        choices=("dist", "cent-sync", "both"),
        default="both",
        help="controller style(s) to attack (default: both)",
    )
    p_flt.add_argument("--json", help="write the JSON coverage report here")
    p_flt.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on any silent corruption escape",
    )
    add_workers_arg(p_flt)
    add_checkpoint_arg(p_flt)
    add_policy_args(p_flt)
    add_fabric_args(p_flt)
    p_flt.set_defaults(func=_cmd_faults)

    p_t1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p_t1.add_argument("benchmark", nargs="?", default="diffeq")
    p_t1.set_defaults(func=_cmd_table1)

    p_t2 = sub.add_parser("table2", help="regenerate the paper's Table 2")
    add_workers_arg(p_t2)
    add_checkpoint_arg(p_t2)
    add_fabric_args(p_t2)
    p_t2.set_defaults(func=_cmd_table2)

    p_rep = sub.add_parser(
        "report", help="run every experiment and emit a markdown report"
    )
    p_rep.add_argument("-o", "--output", help="write the report here")
    p_rep.add_argument(
        "--quick",
        action="store_true",
        help="skip the expensive CENT product minimization (Table 1)",
    )
    p_rep.set_defaults(func=_cmd_report)

    p_dist = sub.add_parser(
        "distribution", help="exact latency distributions (DIST vs SYNC)"
    )
    add_design_args(p_dist)
    add_completion_arg(p_dist)
    p_dist.set_defaults(func=_cmd_distribution)

    p_exp = sub.add_parser(
        "experiments",
        help="run extension experiments (ablations/sweeps) by name",
    )
    p_exp.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=(
            "experiment names (default: all): "
            + ", ".join(sorted(_EXPERIMENT_DRIVERS))
        ),
    )
    add_workers_arg(p_exp)
    add_checkpoint_arg(p_exp)
    add_policy_args(p_exp)
    add_fabric_args(p_exp)
    p_exp.add_argument(
        "--cache-dir",
        help=(
            "directory for the synthesis-artifact cache shared by every "
            "design the experiments construct"
        ),
    )
    p_exp.set_defaults(func=_cmd_experiments)

    p_bench = sub.add_parser(
        "bench",
        help="time the core flows and persist the perf trajectory",
    )
    p_bench.add_argument(
        "benchmarks",
        nargs="*",
        metavar="benchmark",
        default=None,
        help=(
            "registered benchmark names, including generated "
            "'gen:...' families (default: all ten fixed designs)"
        ),
    )
    p_bench.add_argument(
        "--compare",
        metavar="OLD.json",
        help=(
            "diff this run (or --compare-to) against a baseline "
            "BENCH_core.json; exit 1 on regression or value drift"
        ),
    )
    p_bench.add_argument(
        "--compare-to",
        metavar="NEW.json",
        help=(
            "with --compare: diff two report files without running "
            "any benchmark"
        ),
    )
    p_bench.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="slowdown fraction that counts as a regression (0.20 = 20%%)",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke scale: fewer trials, one timing round",
    )
    p_bench.add_argument(
        "--trials", type=int, default=400, help="Monte-Carlo trials"
    )
    p_bench.add_argument("--seed", type=int, default=0)
    add_completion_arg(p_bench)
    p_bench.add_argument(
        "-o", "--output", help="write the JSON report here (BENCH_core.json)"
    )
    p_bench.add_argument(
        "-j",
        "--workers",
        type=int,
        default=4,
        help="workers for the parallel Monte-Carlo column (0 = auto)",
    )
    p_bench.add_argument(
        "--cache-dir",
        help="directory for the synthesis-artifact cache",
    )
    add_checkpoint_arg(p_bench)
    add_fabric_args(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_res = sub.add_parser(
        "resume",
        help=(
            "continue an interrupted --checkpoint-dir run from its "
            "journal (byte-identical output)"
        ),
    )
    p_res.add_argument(
        "checkpoint",
        metavar="DIR",
        help="checkpoint directory of the interrupted run",
    )
    p_res.set_defaults(func=_cmd_resume)

    p_pipe = sub.add_parser(
        "pipeline",
        help=(
            "run the pass-based synthesis pipeline with provenance "
            "manifest and per-pass caching"
        ),
    )
    p_pipe.add_argument(
        "benchmark", nargs="?", help="registered benchmark name"
    )
    p_pipe.add_argument(
        "--allocation",
        help='allocation spec, e.g. "mul:2T,add:1" (default: paper)',
    )
    p_pipe.add_argument(
        "--scheduler",
        choices=SCHEDULERS.names(),
        default="list",
        help="time-step scheduler from the registry (default: list)",
    )
    p_pipe.add_argument(
        "--objective",
        choices=ORDER_OBJECTIVES.names(),
        default="latency",
        help="chain-assignment objective (default: latency)",
    )
    p_pipe.add_argument(
        "--to",
        metavar="PASS",
        default="distributed",
        help=(
            "run up to and including this pass "
            "(default: distributed; use cent-fsms for the full list)"
        ),
    )
    p_pipe.add_argument(
        "--cache-dir",
        help="directory for the per-pass synthesis-artifact cache",
    )
    p_pipe.add_argument(
        "--manifest",
        help="write the run manifest (with wall times) as JSON here",
    )
    p_pipe.add_argument(
        "--list",
        action="store_true",
        help="list the declared passes and stage registries, then exit",
    )
    p_pipe.add_argument(
        "--assert-all-cached",
        action="store_true",
        help=(
            "exit nonzero unless every cacheable pass was served from "
            "the cache (CI smoke for cache effectiveness)"
        ),
    )
    p_pipe.set_defaults(func=_cmd_pipeline)

    p_lint = sub.add_parser(
        "lint",
        help=(
            "static verification of synthesis artifacts and generated "
            "RTL (no simulation)"
        ),
    )
    p_lint.add_argument(
        "benchmarks",
        nargs="*",
        metavar="BENCHMARK",
        help="benchmark names (default: every registered benchmark)",
    )
    p_lint.add_argument(
        "--allocation",
        help=(
            'allocation spec, e.g. "mul:2T,add:1"; requires exactly '
            "one benchmark (default: paper allocation)"
        ),
    )
    p_lint.add_argument(
        "--scheduler",
        choices=SCHEDULERS.names(),
        default="list",
        help="time-step scheduler from the registry (default: list)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p_lint.add_argument(
        "-o",
        "--output",
        help="write the combined report here instead of stdout",
    )
    p_lint.add_argument(
        "--baseline-dir",
        default=DEFAULT_BASELINE_DIR,
        metavar="DIR",
        help=f"committed baselines (default: {DEFAULT_BASELINE_DIR})",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the fresh reports as the new baselines",
    )
    p_lint.add_argument(
        "--check-baseline",
        action="store_true",
        help=(
            "additionally require each baseline file to be "
            "byte-identical to the fresh report (CI drift gate)"
        ),
    )
    p_lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "never"),
        default="error",
        help=(
            "minimum severity of a NEW finding that fails the run "
            "(default: error; never = baseline/byte checks only)"
        ),
    )
    p_lint.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "lint benchmarks on N worker processes; output is "
            "byte-identical to a serial run (default: 1)"
        ),
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_check = sub.add_parser(
        "check",
        help=(
            "explicit-state model checking of the composed distributed "
            "controller network (MC-DEAD / MC-RACE / MC-REF)"
        ),
    )
    p_check.add_argument(
        "benchmarks",
        nargs="*",
        metavar="BENCHMARK",
        help="benchmark names (default: every registered benchmark)",
    )
    p_check.add_argument(
        "--allocation",
        help=(
            'allocation spec, e.g. "mul:2T,add:1"; requires exactly '
            "one benchmark (default: paper allocation)"
        ),
    )
    p_check.add_argument(
        "--scheduler",
        choices=SCHEDULERS.names(),
        default="list",
        help="time-step scheduler from the registry (default: list)",
    )
    p_check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p_check.add_argument(
        "-o",
        "--output",
        help="write the combined report here instead of stdout",
    )
    p_check.add_argument(
        "--baseline-dir",
        default=DEFAULT_CHECK_BASELINE_DIR,
        metavar="DIR",
        help=(
            f"committed baselines "
            f"(default: {DEFAULT_CHECK_BASELINE_DIR})"
        ),
    )
    p_check.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the fresh reports as the new baselines",
    )
    p_check.add_argument(
        "--check-baseline",
        action="store_true",
        help=(
            "additionally require each baseline file to be "
            "byte-identical to the fresh report (CI drift gate)"
        ),
    )
    p_check.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "never"),
        default="error",
        help=(
            "minimum severity of a NEW finding that fails the run "
            "(default: error; never = baseline/byte checks only)"
        ),
    )
    p_check.add_argument(
        "--max-states",
        type=int,
        default=200_000,
        metavar="N",
        help=(
            "state budget; exceeding it raises a structured "
            "ModelCheckBudgetExceeded (default: 200000)"
        ),
    )
    p_check.add_argument(
        "--max-frontier",
        type=int,
        default=100_000,
        metavar="N",
        help="BFS frontier budget (default: 100000)",
    )
    p_check.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "model-check benchmarks on N worker processes; output is "
            "byte-identical to a serial run (default: 1)"
        ),
    )
    p_check.set_defaults(func=_cmd_check)

    p_fab = sub.add_parser(
        "fabric",
        help=(
            "distributed campaign fabric: join worker nodes, inspect "
            "journals, run the failover chaos drill"
        ),
    )
    fab_sub = p_fab.add_subparsers(dest="fabric_command", required=True)

    p_fw = fab_sub.add_parser(
        "worker",
        help=(
            "run one worker node: lease shards from a coordinator "
            "until drained"
        ),
    )
    p_fw.add_argument(
        "--join",
        metavar="DIR",
        help=(
            "checkpoint directory of a live fabric run; reads the "
            "coordinator address and token from its fabric.json"
        ),
    )
    p_fw.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="coordinator address (alternative to --join)",
    )
    p_fw.add_argument(
        "--token", help="session token (required with --connect)"
    )
    p_fw.add_argument(
        "--node",
        type=int,
        default=0,
        metavar="ID",
        help="this node's id (default: 0)",
    )
    p_fw.set_defaults(func=_cmd_fabric_worker)

    p_fs = fab_sub.add_parser(
        "status",
        help=(
            "show the coordinator (if active) and the replicated "
            "journal shard counts for a checkpoint directory"
        ),
    )
    p_fs.add_argument(
        "checkpoint",
        metavar="DIR",
        help="primary checkpoint directory",
    )
    p_fs.set_defaults(func=_cmd_fabric_status)

    p_fd = fab_sub.add_parser(
        "drill",
        help=(
            "failover chaos drill: SIGKILL a worker node and restart "
            "the coordinator mid-campaign, then prove byte-identical "
            "recovery against a serial baseline"
        ),
    )
    p_fd.add_argument(
        "--rows",
        type=int,
        default=3,
        metavar="N",
        help="Table-2 rows to campaign over (default: 3)",
    )
    p_fd.add_argument(
        "--nodes",
        type=int,
        default=2,
        metavar="N",
        help="fabric worker nodes (default: 2)",
    )
    p_fd.add_argument(
        "--report",
        metavar="FILE",
        help="write the drill's RunReport JSON here (CI artifact)",
    )
    p_fd.add_argument(
        "--keep-dir",
        metavar="DIR",
        help=(
            "run in DIR and keep it afterwards (default: a "
            "temporary directory, removed)"
        ),
    )
    p_fd.set_defaults(func=_cmd_fabric_drill)

    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code.

    Every command runs under an ambient
    :class:`~repro.runtime.policy.RunReport`; any recoveries (retries,
    pool restarts, quarantined cache entries) are summarized on stderr
    after the command's own output.  Commands invoked with
    ``--checkpoint-dir`` additionally record their invocation in the
    checkpoint directory so ``repro resume`` can replay them.
    """
    from .runtime.policy import active_report

    parser = build_parser()
    actual_argv = list(argv) if argv is not None else sys.argv[1:]
    args = parser.parse_args(actual_argv)
    if getattr(args, "checkpoint_dir", None):
        _write_resume_manifest(args.checkpoint_dir, actual_argv)
    with active_report() as report:
        try:
            return args.func(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        finally:
            if report.recoveries:
                print(report.render(), file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
