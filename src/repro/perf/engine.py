"""Deterministic parallel trial execution.

Every statistical result of the reproduction — Monte-Carlo latency,
throughput sweeps, fault campaigns, the ablation studies — is a map of
one pure function over independent trial indices.  :func:`parallel_map`
executes exactly that shape on a :class:`~concurrent.futures.
ProcessPoolExecutor` while keeping three guarantees:

1. **Byte-identical results.**  Work items carry everything a trial
   needs; no shared RNG or mutable state crosses trials.  Per-trial
   seeds come from :func:`derive_seed`, a stable SHA-256 hash of
   ``(base_seed, trial)`` — independent of ``PYTHONHASHSEED``, process
   identity and platform — so a parallel run returns exactly the list a
   serial loop would.
2. **Chunked submission.**  Items are shipped to workers in contiguous
   chunks (``chunksize`` items per pickle round-trip), amortizing the
   serialization of the bound function over many trials.
3. **Serial fallback.**  ``workers=1`` or a single item degrade to an
   in-process loop with the same output; an unpicklable
   function/payload (closures, lambdas, open handles) does the same
   but emits a :class:`~repro.errors.SerialFallbackWarning` naming the
   offending payload, so a lost ``-j`` speedup is visible — the engine
   never changes *what* is computed, only *where*.
4. **Supervision (opt-in).**  A
   :class:`~repro.runtime.policy.RunPolicy` routes the pool through
   :func:`repro.runtime.supervisor.supervised_map`: worker crashes
   restart the pool and re-run only the lost chunks, failing items are
   retried with backoff, hung chunks degrade to in-process execution
   after a timeout, and every recovery lands in a structured
   :class:`~repro.runtime.policy.RunReport`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING, TypeVar

from ..errors import SerialFallbackWarning, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.policy import RunPolicy, RunReport

_T = TypeVar("_T")
_R = TypeVar("_R")

#: upper bound on auto-resolved worker counts (a fork bomb guard for
#: machines reporting hundreds of cores)
MAX_AUTO_WORKERS = 16

#: estimated pool spawn + import cost per worker process (seconds) the
#: parallel time saving must beat before a pool is worth starting —
#: measured at ~70–90 ms per spawned CPython 3.12 worker
POOL_STARTUP_S_PER_WORKER = 0.08


def derive_seed_text(text: str) -> int:
    """Stable 63-bit value from the SHA-256 of an arbitrary label.

    The single source of deterministic pseudo-randomness in the
    library: per-trial seeds, retry-backoff jitter and the campaign
    fabric's heartbeat/lease jitter all reduce to this hash, so every
    derived schedule is independent of ``PYTHONHASHSEED``, process
    identity, platform and the wall clock.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def derive_seed(base_seed: int, trial: int) -> int:
    """Stable 63-bit per-trial seed from ``(base_seed, trial)``.

    SHA-256 over the decimal rendering keeps the derivation independent
    of the per-process string hash seed, the platform and the Python
    version, so workers in different processes (or on different
    machines) reconstruct exactly the same trial seed.  Unlike
    ``base_seed + trial``, neighbouring trials share no arithmetic
    structure, so the underlying Mersenne streams are decorrelated.
    """
    return derive_seed_text(f"{int(base_seed)}:{int(trial)}")


def deterministic_jitter(tag: str, *parts: object) -> float:
    """Jitter factor in ``[0.5, 1.5)`` from the :func:`derive_seed_text`
    scheme.

    ``tag`` names the consumer (``"backoff"``, ``"fabric-lease"``,
    ``"fabric-heartbeat"``); ``parts`` identify the instance (item
    index, attempt number, node id).  Two identical runs derive
    identical jitters, so recovery schedules, lease deadlines and
    heartbeat cadences replay deterministically in drills.
    """
    label = ":".join([tag, *[str(part) for part in parts]])
    return 0.5 + derive_seed_text(label) / 2**63


def resolve_workers(workers: "int | None") -> int:
    """Normalize a worker-count spec to a concrete positive count.

    ``None`` or ``0`` auto-detects (``os.cpu_count()``, capped at
    :data:`MAX_AUTO_WORKERS`); positive integers pass through; anything
    negative is an error.
    """
    if workers is None or workers == 0:
        return min(os.cpu_count() or 1, MAX_AUTO_WORKERS)
    if workers < 0:
        raise SimulationError(
            f"workers must be >= 0 (0 = auto), got {workers}"
        )
    return int(workers)


def _is_picklable(payload: object) -> bool:
    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True


def default_chunksize(num_items: int, workers: int) -> int:
    """Chunk length balancing pickle amortization against load balance.

    Four chunks per worker keeps the pool busy even when trial costs
    vary (fault campaigns mix cheap detected runs with expensive
    tolerated ones) while bounding the per-item pickling overhead.
    """
    return max(1, -(-num_items // (workers * 4)))


def _callable_name(fn: object) -> str:
    """Compact display name for a work function (partial-aware)."""
    import functools

    if isinstance(fn, functools.partial):
        return f"functools.partial({_callable_name(fn.func)})"
    return (
        getattr(fn, "__qualname__", None)
        or getattr(fn, "__name__", None)
        or type(fn).__name__
    )


def _warn_serial_fallback(
    fn: object, payload: object, report: "RunReport | None"
) -> None:
    """Make a lost ``-j`` speedup loud: warning + recovery event."""
    from ..runtime.policy import record_event

    detail = (
        f"payload for {_callable_name(fn)} cannot cross a process "
        f"boundary (first item: {type(payload).__name__}); running "
        f"serially in-process — results are unchanged, the requested "
        f"-j speedup is lost"
    )
    warnings.warn(SerialFallbackWarning(detail), stacklevel=3)
    record_event(report, "serial-fallback", detail)


def _serial_map(
    fn: Callable[[_T], _R],
    work: Sequence[_T],
    on_result: "Callable[[int, _R], None] | None",
    start: int = 0,
) -> list[_R]:
    out: list[_R] = []
    for index, item in enumerate(work, start=start):
        value = fn(item)
        if on_result is not None:
            on_result(index, value)
        out.append(value)
    return out


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: "int | None" = 1,
    chunksize: "int | None" = None,
    policy: "RunPolicy | None" = None,
    report: "RunReport | None" = None,
    on_result: "Callable[[int, _R], None] | None" = None,
    amortize: bool = True,
) -> list[_R]:
    """Order-preserving map of ``fn`` over ``items``.

    With ``workers > 1`` the map runs on a process pool with chunked
    submission; with ``workers=1`` (the default), one item, or an
    unpicklable ``fn``/payload it runs serially in-process (the
    unpicklable case additionally emits a
    :class:`~repro.errors.SerialFallbackWarning`).  Both paths return
    the same list as ``[fn(x) for x in items]`` — callers get
    determinism for free and opt into parallelism per call.

    ``policy`` (a :class:`~repro.runtime.policy.RunPolicy`) supervises
    the pool: per-item timeouts, retries with deterministic backoff,
    pool restarts after worker crashes — see
    :mod:`repro.runtime.supervisor`.  Recovery events are recorded in
    ``report`` (or the ambient
    :func:`~repro.runtime.policy.active_report`).  ``on_result(index,
    value)`` fires in the calling process once per completed item, in
    completion order — checkpoint journals persist shards through it.

    ``fn`` must be a module-level callable (or a ``functools.partial``
    of one) whose captured arguments pickle; per-item randomness must be
    derived from the item itself (see :func:`derive_seed`).

    ``amortize=True`` (the default, skipped under a ``policy``) times
    the first item in-process and keeps the whole map serial when the
    estimated remaining work would not amortize the pool startup cost
    (:data:`POOL_STARTUP_S_PER_WORKER` per worker) — sub-millisecond
    trials no longer pay a pool that makes them *slower*.  The decision
    is recorded in ``report`` as a ``parallel-amortization`` event
    either way, so a silently-serial ``-j`` run stays observable.
    """
    from ..runtime.policy import record_event

    work: Sequence[_T] = list(items)
    if not work:
        return []
    count = min(resolve_workers(workers), len(work))
    if count > 1 and not (_is_picklable(fn) and _is_picklable(work[0])):
        _warn_serial_fallback(fn, work[0], report)
        count = 1
    if count <= 1:
        return _serial_map(fn, work, on_result)
    prefix: list[_R] = []
    offset = 0
    if amortize and policy is None:
        started = time.perf_counter()
        first = fn(work[0])
        probe_s = time.perf_counter() - started
        if on_result is not None:
            on_result(0, first)
        prefix = [first]
        offset = 1
        work = work[1:]
        count = min(count, len(work))
        startup_s = POOL_STARTUP_S_PER_WORKER * count
        # the pool saves at most the non-serial share of the remaining
        # serial time; it must beat the startup cost to be worth it
        saving_s = probe_s * len(work) * (1.0 - 1.0 / count)
        if saving_s < startup_s:
            record_event(
                report,
                "parallel-amortization",
                f"{len(work) + 1} items at ~{probe_s * 1e3:.2f} ms each "
                f"save ~{saving_s * 1e3:.0f} ms across {count} workers, "
                f"under the ~{startup_s * 1e3:.0f} ms pool startup; "
                f"running serially (results unchanged)",
            )
            return prefix + _serial_map(fn, work, on_result, start=offset)
        record_event(
            report,
            "parallel-amortization",
            f"{len(work) + 1} items at ~{probe_s * 1e3:.2f} ms each "
            f"amortize the ~{startup_s * 1e3:.0f} ms pool startup; "
            f"running on {count} workers",
        )
    if chunksize is None:
        chunksize = default_chunksize(len(work), count)
    if policy is not None:
        from ..runtime.supervisor import supervised_map

        return supervised_map(
            fn,
            work,
            workers=count,
            chunksize=chunksize,
            policy=policy,
            report=report,
            on_result=on_result,
        )
    try:
        with ProcessPoolExecutor(max_workers=count) as pool:
            results = list(pool.map(fn, work, chunksize=chunksize))
    except (pickle.PicklingError, AttributeError, TypeError):
        # A payload that *claimed* picklability can still fail inside
        # the pool (e.g. results that do not unpickle); fall back rather
        # than lose the run.
        _warn_serial_fallback(fn, work[0], report)
        return prefix + _serial_map(fn, work, on_result, start=offset)
    if on_result is not None:
        for index, value in enumerate(results):
            on_result(index + offset, value)
    return prefix + results
