"""Deterministic parallel trial execution.

Every statistical result of the reproduction — Monte-Carlo latency,
throughput sweeps, fault campaigns, the ablation studies — is a map of
one pure function over independent trial indices.  :func:`parallel_map`
executes exactly that shape on a :class:`~concurrent.futures.
ProcessPoolExecutor` while keeping three guarantees:

1. **Byte-identical results.**  Work items carry everything a trial
   needs; no shared RNG or mutable state crosses trials.  Per-trial
   seeds come from :func:`derive_seed`, a stable SHA-256 hash of
   ``(base_seed, trial)`` — independent of ``PYTHONHASHSEED``, process
   identity and platform — so a parallel run returns exactly the list a
   serial loop would.
2. **Chunked submission.**  Items are shipped to workers in contiguous
   chunks (``chunksize`` items per pickle round-trip), amortizing the
   serialization of the bound function over many trials.
3. **Serial fallback.**  ``workers=1``, a single item, or an
   unpicklable function/payload (closures, lambdas, open handles)
   silently degrade to an in-process loop with the same output — the
   engine never changes *what* is computed, only *where*.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..errors import SimulationError

_T = TypeVar("_T")
_R = TypeVar("_R")

#: upper bound on auto-resolved worker counts (a fork bomb guard for
#: machines reporting hundreds of cores)
MAX_AUTO_WORKERS = 16


def derive_seed(base_seed: int, trial: int) -> int:
    """Stable 63-bit per-trial seed from ``(base_seed, trial)``.

    SHA-256 over the decimal rendering keeps the derivation independent
    of the per-process string hash seed, the platform and the Python
    version, so workers in different processes (or on different
    machines) reconstruct exactly the same trial seed.  Unlike
    ``base_seed + trial``, neighbouring trials share no arithmetic
    structure, so the underlying Mersenne streams are decorrelated.
    """
    digest = hashlib.sha256(
        f"{int(base_seed)}:{int(trial)}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_workers(workers: "int | None") -> int:
    """Normalize a worker-count spec to a concrete positive count.

    ``None`` or ``0`` auto-detects (``os.cpu_count()``, capped at
    :data:`MAX_AUTO_WORKERS`); positive integers pass through; anything
    negative is an error.
    """
    if workers is None or workers == 0:
        return min(os.cpu_count() or 1, MAX_AUTO_WORKERS)
    if workers < 0:
        raise SimulationError(
            f"workers must be >= 0 (0 = auto), got {workers}"
        )
    return int(workers)


def _is_picklable(payload: object) -> bool:
    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True


def default_chunksize(num_items: int, workers: int) -> int:
    """Chunk length balancing pickle amortization against load balance.

    Four chunks per worker keeps the pool busy even when trial costs
    vary (fault campaigns mix cheap detected runs with expensive
    tolerated ones) while bounding the per-item pickling overhead.
    """
    return max(1, -(-num_items // (workers * 4)))


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: "int | None" = 1,
    chunksize: "int | None" = None,
) -> list[_R]:
    """Order-preserving map of ``fn`` over ``items``.

    With ``workers > 1`` the map runs on a process pool with chunked
    submission; with ``workers=1`` (the default), one item, or an
    unpicklable ``fn``/payload it runs serially in-process.  Both paths
    return the same list as ``[fn(x) for x in items]`` — callers get
    determinism for free and opt into parallelism per call.

    ``fn`` must be a module-level callable (or a ``functools.partial``
    of one) whose captured arguments pickle; per-item randomness must be
    derived from the item itself (see :func:`derive_seed`).
    """
    work: Sequence[_T] = list(items)
    if not work:
        return []
    count = min(resolve_workers(workers), len(work))
    if count > 1 and not (_is_picklable(fn) and _is_picklable(work[0])):
        count = 1
    if count <= 1:
        return [fn(item) for item in work]
    if chunksize is None:
        chunksize = default_chunksize(len(work), count)
    try:
        with ProcessPoolExecutor(max_workers=count) as pool:
            return list(pool.map(fn, work, chunksize=chunksize))
    except (pickle.PicklingError, AttributeError, TypeError):
        # A payload that *claimed* picklability can still fail inside
        # the pool (e.g. results that do not unpickle); fall back rather
        # than lose the run.
        return [fn(item) for item in work]
